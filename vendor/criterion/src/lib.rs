//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the API subset the workspace's benches use: [`Criterion`]
//! with `bench_function` / `benchmark_group`, [`BenchmarkGroup`] with
//! `throughput` / `bench_with_input` / `finish`, [`BenchmarkId`],
//! [`Throughput`], and the `criterion_group!` / `criterion_main!` macros
//! (both the positional and the `name =` / `config =` / `targets =`
//! forms).
//!
//! Instead of criterion's statistical sampling it times `sample_size`
//! iterations after one warm-up call and prints the mean per-iteration
//! wall-clock time — enough for the quick relative comparisons these
//! benches are for, and fast enough to run in constrained environments.

use std::time::{Duration, Instant};

/// Top-level bench driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each bench runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named bench.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, &mut routine);
        self
    }

    /// Opens a named group of related benches.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benches sharing a name prefix and throughput spec.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs, so results can be
    /// reported as a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a named bench within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(
            &full,
            self.criterion.sample_size,
            self.throughput,
            &mut routine,
        );
        self
    }

    /// Runs a parameterized bench within the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_one(
            &full,
            self.criterion.sample_size,
            self.throughput,
            &mut |b| routine(b, input),
        );
        self
    }

    /// Ends the group (reporting happens per-bench; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for one parameterization of a bench.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("variant", parameter)`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Passed to each bench routine; call [`Bencher::iter`] with the code to
/// time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine` (after the caller's warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    routine: &mut F,
) {
    // Warm-up: one untimed iteration.
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut warm);

    let mut bencher = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    routine(&mut bencher);

    let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 / per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  ({:.1} MB/s)", n as f64 / per_iter * 1e3)
        }
        _ => String::new(),
    };
    println!("{name:<40} {:>12.1} ns/iter{rate}", per_iter);
}

/// Declares a bench group: positional `criterion_group!(name, targets...)`
/// or the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        /// Runs this group's benchmark targets (generated by
        /// `criterion_group!`).
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial", |b| b.iter(|| 1u64 + 1));
    }

    fn grouped(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("param", 4usize), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }

    criterion_group!(positional, trivial);
    criterion_group! {
        name = named;
        config = Criterion::default().sample_size(5);
        targets = trivial, grouped
    }

    #[test]
    fn groups_run() {
        positional();
        named();
    }
}

//! Runner configuration and the deterministic RNG driving generation.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (the only knob the workspace uses).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64 generator; deterministic per test so failures reproduce.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test identifier (FNV-1a over the name), optionally
    /// perturbed by the `PROPTEST_SEED` environment variable for
    /// exploratory reruns.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = extra.trim().parse::<u64>() {
                h ^= n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0)");
        // Multiply-shift rejection-free mapping is fine for test data.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams_repeat() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_is_bounded() {
        let mut r = TestRng::deterministic("b");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}

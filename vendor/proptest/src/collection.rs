//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification accepted by [`vec`]: an exact size or a range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy generating a `Vec` of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)` — a vector whose length is
/// drawn from `size` and whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

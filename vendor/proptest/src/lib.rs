//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements exactly the API surface the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `boxed`, implemented for
//!   integer and float ranges, tuples, [`Just`], unions and mapped
//!   strategies;
//! * [`any`] over a small [`Arbitrary`] universe;
//! * `prop::collection::vec` with exact, `Range` and `RangeInclusive`
//!   size specs;
//! * the `proptest!`, `prop_oneof!`, `prop_assert!` and `prop_assert_eq!`
//!   macros;
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Differences from the real crate: generation is driven by a
//! deterministic SplitMix64 stream seeded from the test's module path (so
//! failures reproduce across runs), there is no shrinking (the failing
//! case's inputs are printed instead), and strategies are generators
//! rather than value trees. Both are fine for this workspace: the tests
//! only rely on coverage and reproducibility, not on minimal
//! counterexamples.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob import every test file uses: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Namespace mirror of `proptest::prop` (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Asserts a condition inside a `proptest!` body.
///
/// The real crate returns an `Err` to the runner; without shrinking a
/// plain panic carries the same information, and the runner prints the
/// generated inputs before propagating it.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Picks uniformly among several strategies producing the same value
/// type.
///
/// Weighted arms (`w => strat`) are not supported — the workspace only
/// uses the uniform form.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$attr:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..cfg.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(
                            &($strat),
                            &mut rng,
                        );
                    )+
                    let described = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest {}: case {}/{} failed with inputs: {}",
                            stringify!($name),
                            case + 1,
                            cfg.cases,
                            described,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("t1");
        for _ in 0..1000 {
            let v = (3u64..17).new_value(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).new_value(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_respects_size_specs() {
        let mut rng = crate::test_runner::TestRng::deterministic("t2");
        for _ in 0..200 {
            let exact = crate::collection::vec(any::<u64>(), 7).new_value(&mut rng);
            assert_eq!(exact.len(), 7);
            let ranged = crate::collection::vec(0u64..5, 1..4).new_value(&mut rng);
            assert!((1..4).contains(&ranged.len()));
            assert!(ranged.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = crate::test_runner::TestRng::deterministic("t3");
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.new_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic("t4");
        let s = (0u64..10, 0u64..10).prop_map(|(a, b)| a * 10 + b);
        for _ in 0..100 {
            assert!(s.new_value(&mut rng) < 100);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, config applies, asserts work.
        #[test]
        fn macro_smoke(x in 0u64..100, ys in crate::collection::vec(1u32..5, 2..6)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.iter().filter(|&&y| y >= 5).count(), 0);
        }
    }
}

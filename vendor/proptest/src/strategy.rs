//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A value generator. The real crate's strategies produce shrinkable
/// value trees; this stand-in produces plain values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list (a macro misuse).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64 range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Types with a canonical full-domain strategy (the `any::<T>()` form).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Full-domain strategy for an [`Arbitrary`] type.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy covering `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

//! End-to-end harness tests: real experiments through the parallel
//! driver, BENCH JSON on real disk, and the `exp_all`/`bench_diff`
//! binaries through their actual CLI surface.

use reach_bench::experiments::by_name;
use reach_bench::{
    diff_paths, diff_reports, run_suite, BenchReport, CellStatus, DriverOptions, MetricValue,
    Thresholds, Tier,
};
use std::path::{Path, PathBuf};
use std::process::Command;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("reach_harness_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn smoke_opts(jobs: usize) -> DriverOptions {
    DriverOptions {
        tier: Tier::Smoke,
        jobs,
        out_dir: None,
        ..DriverOptions::default()
    }
}

type ComparableCell = (String, String, Vec<(String, String)>);

/// Strips the observability-only fields that legitimately differ between
/// runs, leaving exactly what determinism promises.
fn comparable(r: &BenchReport) -> Vec<ComparableCell> {
    r.cells
        .iter()
        .map(|c| {
            (
                c.cell.workload.clone(),
                c.cell.config.clone(),
                c.metrics
                    .iter()
                    .map(|(k, v)| (k.to_string(), format!("{v:?}")))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn same_experiment_is_deterministic_across_runs_and_pool_sizes() {
    let exp = by_name("t13_scheduler").unwrap();
    let a = run_suite(&[exp.as_ref()], &smoke_opts(1));
    let b = run_suite(&[exp.as_ref()], &smoke_opts(4));
    assert_eq!(comparable(&a[0]), comparable(&b[0]));
    assert!(a[0].cells.iter().all(|c| c.status == CellStatus::Ok));
}

#[test]
fn bench_file_round_trips_through_disk() {
    let exp = by_name("t8_ablation").unwrap();
    let reports = run_suite(&[exp.as_ref()], &smoke_opts(2));
    let dir = tmp_dir("roundtrip");
    let path = reports[0].write_to_dir(&dir).unwrap();
    assert_eq!(
        path.file_name().unwrap().to_str().unwrap(),
        "BENCH_t8_ablation.json"
    );
    let back = BenchReport::read_from_file(&path).unwrap();
    assert_eq!(back.to_json().to_string(), reports[0].to_json().to_string());
    assert_eq!(comparable(&back), comparable(&reports[0]));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn diff_passes_within_threshold_and_fails_past_it() {
    let exp = by_name("t8_ablation").unwrap();
    let base = run_suite(&[exp.as_ref()], &smoke_opts(2)).remove(0);

    // Identical runs diff clean even at zero tolerance.
    let clean = diff_reports(
        &base,
        &base.clone(),
        &Thresholds {
            default_rel: 0.0,
            ..Thresholds::default()
        },
    );
    assert!(clean.ok(), "{:?}", clean.violations);
    assert!(clean.compared > 0);

    // A 5% efficiency drift passes the default 10% gate; 15% fails it.
    for (drift, expect_ok) in [(0.95, true), (0.85, false)] {
        let mut cur = base.clone();
        let eff = cur.cells[0].metrics.get_f64("eff").unwrap();
        cur.cells[0].metrics.put_f64("eff", eff * drift);
        let d = diff_reports(&base, &cur, &Thresholds::default());
        assert_eq!(d.ok(), expect_ok, "drift {drift}: {:?}", d.violations);
    }

    // Dropping a baseline metric from the current run is a violation.
    let mut cur = base.clone();
    cur.cells[0].metrics = {
        let mut m = reach_bench::CellMetrics::new();
        for (k, v) in base.cells[0].metrics.iter().skip(1) {
            m.put(k, v.clone());
        }
        m
    };
    assert!(!diff_reports(&base, &cur, &Thresholds::default()).ok());
}

#[test]
fn fault_matrix_reports_explicit_rungs_and_na_ratios() {
    // The satellite-1 regression, end to end: a zero/zero degradation
    // ratio must surface as NaN -> rendered "n/a", never a silent 0.0
    // "perfect" — and the fault-matrix cells must carry their rung/why
    // as explicit string metrics.
    assert!(reach_core::ratio(0, 0).is_nan());
    assert_eq!(MetricValue::Float(reach_core::ratio(5, 0)).render(), "n/a");

    let exp = by_name("fault_matrix").unwrap();
    let report = run_suite(&[exp.as_ref()], &smoke_opts(4)).remove(0);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    for c in &report.cells {
        assert_eq!(c.status, CellStatus::Ok, "{}: {:?}", c.cell, c.status);
        assert!(
            matches!(c.metrics.get("rung"), Some(MetricValue::Str(_))),
            "{}: rung must be an explicit string metric",
            c.cell
        );
        assert!(
            c.metrics.get("lat_vs_healthy").is_some(),
            "{}: finish() must derive lat_vs_healthy",
            c.cell
        );
    }
}

#[test]
fn exp_all_binary_writes_valid_bench_files_and_gates_cleanly() {
    let dir_a = tmp_dir("cli_a");
    let dir_b = tmp_dir("cli_b");
    let run = |dir: &Path, jobs: &str| {
        let st = Command::new(env!("CARGO_BIN_EXE_exp_all"))
            .args([
                "--smoke",
                "--jobs",
                jobs,
                "--only",
                "t13_scheduler,t8_ablation",
                "--out-dir",
            ])
            .arg(dir)
            .status()
            .unwrap();
        assert!(st.success());
    };
    run(&dir_a, "2");
    run(&dir_b, "4");

    // Both runs produced parseable reports with the expected names.
    for dir in [&dir_a, &dir_b] {
        for name in ["BENCH_t13_scheduler.json", "BENCH_t8_ablation.json"] {
            let r = BenchReport::read_from_file(&dir.join(name)).unwrap();
            assert_eq!(r.tier, Tier::Smoke);
            assert!(!r.cells.is_empty());
        }
    }

    // bench_diff agrees they are identical at zero tolerance…
    let gate = |base: &Path, cur: &Path, extra: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_bench_diff"))
            .arg(base)
            .arg(cur)
            .args(extra)
            .status()
            .unwrap()
    };
    assert!(gate(&dir_a, &dir_b, &["--rel", "0"]).success());

    // …and exits non-zero once a regression is injected.
    let zero = diff_paths(
        &dir_a,
        &dir_b,
        &Thresholds {
            default_rel: 0.0,
            ..Thresholds::default()
        },
    )
    .unwrap();
    assert!(zero.ok(), "{:?}", zero.violations);
    let mut doctored = BenchReport::read_from_file(&dir_b.join("BENCH_t8_ablation.json")).unwrap();
    let eff = doctored.cells[0].metrics.get_f64("eff").unwrap();
    doctored.cells[0].metrics.put_f64("eff", eff * 0.5);
    doctored.write_to_dir(&dir_b).unwrap();
    let st = gate(&dir_a, &dir_b, &["--rel", "0.10"]);
    assert_eq!(st.code(), Some(1));

    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

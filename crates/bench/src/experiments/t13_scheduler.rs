//! T13 (§4.2): integrating event hiding with a µs-task scheduler.
//!
//! A queue of short request-sized tasks (each a small instrumented chase)
//! is served under three disciplines: FIFO run-to-completion (event
//! agnostic), the ready-queue *side-car* (the hiding mechanism switches
//! among whatever the scheduler exposes as ready), and the *event-aware*
//! scheduler (the oldest task runs primary; younger tasks scavenge its
//! stalls). Reported: makespan, sojourn percentiles, per-task service
//! time, and machine efficiency.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::fresh;
use reach_core::{pgo_pipeline, run_task_queue, PipelineOptions, SchedPolicy, Task};
use reach_sim::MachineConfig;
use reach_workloads::{build_chase, ChaseParams};

const TASKS: usize = 16;
/// Cycles between arrivals (tasks arrive faster than FIFO can serve).
const GAP: u64 = 1000;

const POLICIES: &[&str] = &["fifo", "side-car", "event-aware"];

fn params() -> ChaseParams {
    ChaseParams {
        nodes: 24, // ~24 DRAM hops ≈ 2.5 µs of unhidden work per task
        hops: 24,
        node_stride: 4096,
        work_per_hop: 60,
        work_insts: 1,
        seed: 0x713,
    }
}

/// The T13 task-queue scheduling experiment.
pub struct T13Scheduler;

impl Experiment for T13Scheduler {
    fn name(&self) -> &'static str {
        "t13_scheduler"
    }

    fn title(&self) -> &'static str {
        "T13: us-scale task queue under three scheduling disciplines"
    }

    fn notes(&self) -> &'static str {
        "shape: both hiding disciplines shrink makespan and queueing; the \
         event-aware scheduler additionally keeps per-task service time \
         near solo (side-car stretches every task it rotates through)."
    }

    fn cells(&self, _tier: Tier) -> Vec<Cell> {
        POLICIES
            .iter()
            .map(|p| Cell::new("task-queue", *p))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let cfg = MachineConfig::default();
        let build = |mem: &mut _, alloc: &mut _| build_chase(mem, alloc, params(), TASKS + 1);

        let policy = match cell.config.as_str() {
            "fifo" => SchedPolicy::Fifo,
            "side-car" => SchedPolicy::SideCar,
            "event-aware" => SchedPolicy::EventAware,
            other => panic!("unknown T13 policy {other:?}"),
        };

        // Instrument once. A 24-hop task is far too short to profile on
        // its own, so the profiling run uses a long chase with the *same
        // program image* (hops and layout are register data, not code).
        let (mut pm, pw) = fresh(&cfg, build);
        let prog = if policy == SchedPolicy::Fifo {
            pw.prog.clone()
        } else {
            let prof_params = ChaseParams {
                nodes: 4096,
                hops: 4096,
                seed: 0x9999,
                ..params()
            };
            let mut palloc = reach_workloads::AddrAlloc::new(0x4000_0000);
            let pw_long = build_chase(&mut pm.mem, &mut palloc, prof_params, 1);
            assert_eq!(pw_long.prog, pw.prog, "same binary");
            let mut prof = vec![pw_long.instances[0].make_context(99)];
            pgo_pipeline(&mut pm, &pw.prog, &mut prof, &PipelineOptions::default())
                .unwrap()
                .prog
        };

        let (mut m, w) = fresh(&cfg, build);
        let mut tasks: Vec<Task> = (0..TASKS)
            .map(|i| Task {
                ctx: w.instances[i].make_context(i),
                arrival: i as u64 * GAP,
            })
            .collect();
        let rep = run_task_queue(&mut m, &prog, &mut tasks, policy, 1 << 22).unwrap();
        assert_eq!(rep.completed, TASKS);
        for task in &tasks {
            let i = task.ctx.id;
            w.instances[i].assert_checksum(&task.ctx);
        }

        let mut out = CellMetrics::new();
        out.put_u64("makespan_cyc", rep.makespan)
            .put_u64("sojourn_p50", rep.sojourn_percentile(0.5))
            .put_u64("sojourn_p99", rep.sojourn_percentile(0.99))
            .put_u64("service_p50", rep.service_percentile(0.5))
            .put_f64("eff", m.counters.cpu_efficiency());
        out
    }
}

//! T8 (§3.2): ablation of the two instrumentation optimizations —
//! liveness-minimized save sets and yield coalescing.
//!
//! On the 4-chain lockstep chase every iteration has four adjacent
//! independent likely-miss loads. Coalescing folds their four switches
//! into one; liveness shrinks each switch's save set from the full
//! architectural file to the handful of live registers. The matrix shows
//! all four combinations.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::{fresh, interleave_checked, pgo_build};
use reach_core::{InterleaveOptions, PipelineOptions};
use reach_instrument::PrimaryOptions;
use reach_sim::MachineConfig;
use reach_workloads::{build_multi_chase, MultiChaseParams};

const N: usize = 16;

const COMBOS: &[(&str, bool, bool)] = &[
    ("live=no,coal=no", false, false),
    ("live=no,coal=yes", false, true),
    ("live=yes,coal=no", true, false),
    ("live=yes,coal=yes", true, true),
];

/// The T8 optimization-ablation experiment.
pub struct T8Ablation;

impl Experiment for T8Ablation {
    fn name(&self) -> &'static str {
        "t8_ablation"
    }

    fn title(&self) -> &'static str {
        "T8: optimization ablation (4-chain chase, 16 coroutines)"
    }

    fn notes(&self) -> &'static str {
        "shape: coalescing quarters the switches (4 chains per yield); \
         liveness shrinks each switch; together they set the efficiency \
         ceiling of the mechanism on switch-bound kernels."
    }

    fn cells(&self, _tier: Tier) -> Vec<Cell> {
        COMBOS
            .iter()
            .map(|&(config, _, _)| Cell::new("multi4", config))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let &(_, live, coal) = COMBOS
            .iter()
            .find(|(config, _, _)| *config == cell.config)
            .expect("known combo");
        let cfg = MachineConfig::default();
        let params = MultiChaseParams {
            chains: 4,
            nodes: 512,
            hops: 512,
            node_stride: 256,
            seed: 0x78,
        };
        let build = |mem: &mut _, alloc: &mut _| build_multi_chase(mem, alloc, params, N + 1);
        let opts = PipelineOptions {
            primary: PrimaryOptions {
                use_liveness: live,
                coalesce: coal,
                ..PrimaryOptions::default()
            },
            ..PipelineOptions::default()
        };
        let built = pgo_build(&cfg, build, N, &opts);
        let (mut m, w) = fresh(&cfg, build);
        let (rep, _) =
            interleave_checked(&mut m, &built.prog, &w, 0..N, &InterleaveOptions::default());
        let mut out = CellMetrics::new();
        out.put_u64(
            "yields_inserted",
            built.primary_report.yields_inserted as u64,
        )
        .put_f64(
            "cyc_per_switch",
            m.counters.switch_cycles as f64 / rep.switches.max(1) as f64,
        )
        .put_u64("switch_cyc", m.counters.switch_cycles)
        .put_f64("eff", m.counters.cpu_efficiency());
        out
    }
}

//! T14 (extension): does a hardware stride prefetcher make the software
//! mechanism unnecessary?
//!
//! The paper targets events "not exposed to software" that hardware also
//! cannot *predict* — irregular, dependent accesses. A next-line
//! prefetcher (degree 4, streamer-style) is switched on and the unhidden
//! stall fraction plus the PGO-coroutine efficiency are re-measured on a
//! streaming scan (stride-predictable) and a pointer chase
//! (unpredictable):
//!
//! * the prefetcher nearly eliminates the scan's stalls — hardware owns
//!   the regular patterns, exactly why the cost model should leave them
//!   alone;
//! * the chase is untouched by the prefetcher, and profile-guided
//!   coroutines hide it the same either way — the two mechanisms
//!   complement, not compete.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::{fresh, interleave_checked, pgo_build};
use reach_baselines::run_sequential;
use reach_core::{InterleaveOptions, PipelineOptions};
use reach_sim::{MachineConfig, Memory};
use reach_workloads::{build_chase, build_scan, AddrAlloc, BuiltWorkload, ChaseParams, ScanParams};

const N: usize = 8;

const WORKLOADS: &[&str] = &["stream-scan", "pointer-chase"];
const PREFETCH: &[&str] = &["hwpf=off", "hwpf=on"];

fn build(name: &str, mem: &mut Memory, alloc: &mut AddrAlloc) -> BuiltWorkload {
    match name {
        "pointer-chase" => build_chase(
            mem,
            alloc,
            ChaseParams {
                nodes: 1024,
                hops: 1024,
                node_stride: 4096,
                work_per_hop: 20,
                work_insts: 1,
                seed: 0x714,
            },
            N + 1,
        ),
        "stream-scan" => build_scan(
            mem,
            alloc,
            ScanParams {
                words: 1 << 16,
                passes: 1,
                seed: 0x714,
            },
            N + 1,
        ),
        other => panic!("unknown T14 workload {other:?}"),
    }
}

/// The T14 hardware-prefetcher interaction experiment.
pub struct T14HwPrefetcher;

impl Experiment for T14HwPrefetcher {
    fn name(&self) -> &'static str {
        "t14_hw_prefetcher"
    }

    fn title(&self) -> &'static str {
        "T14: hardware stream prefetcher (degree 4) vs the software mechanism"
    }

    fn notes(&self) -> &'static str {
        "shape: the prefetcher erases the scan's (predictable) stalls and \
         leaves the chase's (dependent) stalls untouched; profile-guided \
         coroutines keep hiding the chase either way — the mechanisms are \
         complementary, which is why the paper targets the irregular case."
    }

    fn cells(&self, _tier: Tier) -> Vec<Cell> {
        PREFETCH
            .iter()
            .flat_map(|p| WORKLOADS.iter().map(move |w| Cell::new(*w, *p)))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let degree = match cell.config.as_str() {
            "hwpf=off" => 0,
            "hwpf=on" => 4,
            other => panic!("unknown T14 config {other:?}"),
        };
        let cfg = MachineConfig {
            hw_prefetch_degree: degree,
            ..MachineConfig::default()
        };
        let wname = cell.workload.clone();
        let builder = |mem: &mut Memory, alloc: &mut AddrAlloc| build(&wname, mem, alloc);

        // Unhidden stall fraction.
        let (mut m, w) = fresh(&cfg, builder);
        let mut ctxs = w.make_contexts();
        ctxs.truncate(N);
        run_sequential(&mut m, &w.prog, &mut ctxs, 1 << 26).unwrap();
        let stall = m.counters.stall_fraction();

        // PGO coroutines.
        let built = pgo_build(&cfg, builder, N, &PipelineOptions::default());
        let (mut m, w) = fresh(&cfg, builder);
        interleave_checked(&mut m, &built.prog, &w, 0..N, &InterleaveOptions::default());
        let coro = m.counters.cpu_efficiency();

        let mut out = CellMetrics::new();
        out.put_f64("stall_unhidden", stall)
            .put_f64("eff_coro", coro);
        out
    }
}

//! T7 (§3.2): the yield-insertion trade-off and the policies that
//! navigate it.
//!
//! "Aggressive instrumentation minimizes CPU stalls due to uninstrumented
//! cache misses, at the risk of incurring unnecessary overhead if a load
//! turns out to be a cache hit." On the tiered workload, the four sites'
//! miss likelihoods are ≈ {0, mixed, ~1, ~1} but their *stalls* differ
//! sharply (L3-resident ≈ 4 ns visible, DRAM ≈ 90 ns): a pure likelihood
//! threshold cannot distinguish the L3 site (likely miss, not worth a
//! switch) from the DRAM site (likely miss, very worth it) — the
//! quantitative gain/cost model can.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::{fresh, interleave_checked, pgo_build};
use reach_core::{InterleaveOptions, PipelineOptions};
use reach_instrument::{Policy, PrimaryOptions};
use reach_sim::MachineConfig;
use reach_workloads::{build_tiered, TieredParams};

const N: usize = 8;

const POLICIES: &[&str] = &[
    "threshold-0.01",
    "threshold-0.1",
    "threshold-0.3",
    "threshold-0.5",
    "threshold-0.7",
    "threshold-0.9",
    "threshold-0.99",
    "top-1",
    "top-2",
    "cost-margin-1.0",
    "all",
];

const SMOKE: &[&str] = &["threshold-0.1", "top-2", "cost-margin-1.0", "all"];

fn policy(config: &str) -> Policy {
    if let Some(thr) = config.strip_prefix("threshold-") {
        return Policy::Threshold(thr.parse().expect("threshold value"));
    }
    if let Some(k) = config.strip_prefix("top-") {
        return Policy::TopK(k.parse().expect("top-k value"));
    }
    if let Some(margin) = config.strip_prefix("cost-margin-") {
        return Policy::CostModel {
            margin: margin.parse().expect("margin value"),
        };
    }
    assert_eq!(config, "all", "unknown T7 policy {config:?}");
    Policy::All
}

/// The T7 insertion-policy sweep.
pub struct T7Policy;

impl Experiment for T7Policy {
    fn name(&self) -> &'static str {
        "t7_policy"
    }

    fn title(&self) -> &'static str {
        "T7: insertion policy sweep (tiered workload, per-site stalls differ)"
    }

    fn notes(&self) -> &'static str {
        "shape: low thresholds over-instrument (hit sites pay switches), \
         very high thresholds miss the DRAM site; the gain/cost model picks \
         only the sites whose hidden stall beats the switch price."
    }

    fn cells(&self, tier: Tier) -> Vec<Cell> {
        POLICIES
            .iter()
            .filter(|p| tier == Tier::Full || SMOKE.contains(p))
            .map(|p| Cell::new("tiered", *p))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let cfg = MachineConfig::default();
        let params = TieredParams {
            iters: 8192,
            ..TieredParams::default()
        };
        let build = |mem: &mut _, alloc: &mut _| build_tiered(mem, alloc, &params, N + 1);
        let opts = PipelineOptions {
            primary: PrimaryOptions {
                policy: policy(&cell.config),
                ..PrimaryOptions::default()
            },
            ..PipelineOptions::default()
        };
        let built = pgo_build(&cfg, build, N, &opts);
        let (mut m, w) = fresh(&cfg, build);
        interleave_checked(&mut m, &built.prog, &w, 0..N, &InterleaveOptions::default());
        let mut out = CellMetrics::new();
        out.put_u64("sites", built.primary_report.sites_selected() as u64)
            .put_u64("yields_fired", m.counters.yields_fired)
            .put_f64("eff", m.counters.cpu_efficiency());
        out
    }
}

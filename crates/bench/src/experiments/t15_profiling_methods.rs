//! T15 (§2): instrumentation-based vs sample-based profiling.
//!
//! The paper's case for sampling: instrumentation-based profiling "incurs
//! significant CPU and memory overhead" and "cannot easily support our
//! proposal, because it is hard to obtain visibility into hardware events
//! like L2/L3 cache misses with only instrumentation".
//!
//! Both collectors run over the same workloads:
//!
//! * **counting instrumentation** — a load/add/store counter update at
//!   every load site: exact execution counts, zero event visibility, and
//!   overhead paid on *every* execution (plus counter-traffic cache
//!   pollution);
//! * **PEBS-style sampling** — periodic samples of miss loads, stall
//!   cycles and retired instructions: approximate counts, full event
//!   visibility, overhead proportional to the sampling rate.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::fresh;
use reach_instrument::{instrument_counting, R_COUNTER_BASE};
use reach_profile::{collect, CollectorConfig};
use reach_sim::{MachineConfig, Memory};
use reach_workloads::{
    build_chase, build_scan, build_tiered, AddrAlloc, BuiltWorkload, ChaseParams, ScanParams,
    TieredParams,
};

const WORKLOADS: &[&str] = &["pointer-chase", "tiered", "warm-scan"];
const METHODS: &[&str] = &["counting", "sampling"];

fn build(name: &str, mem: &mut Memory, alloc: &mut AddrAlloc) -> BuiltWorkload {
    match name {
        "pointer-chase" => build_chase(
            mem,
            alloc,
            ChaseParams {
                nodes: 2048,
                hops: 2048,
                node_stride: 4096,
                work_per_hop: 10,
                work_insts: 1,
                seed: 0x715,
            },
            1,
        ),
        "tiered" => build_tiered(
            mem,
            alloc,
            &TieredParams {
                iters: 8192,
                ..TieredParams::default()
            },
            1,
        ),
        "warm-scan" => build_scan(
            mem,
            alloc,
            ScanParams {
                words: 1 << 12, // 32 KiB: L1-resident once warm
                passes: 16,
                seed: 0x715,
            },
            1,
        ),
        other => panic!("unknown T15 workload {other:?}"),
    }
}

/// The T15 profiling-method comparison.
pub struct T15ProfilingMethods;

impl Experiment for T15ProfilingMethods {
    fn name(&self) -> &'static str {
        "t15_profiling_methods"
    }

    fn title(&self) -> &'static str {
        "T15: profiling method comparison (overhead and event visibility)"
    }

    fn notes(&self) -> &'static str {
        "shape: on stall-bound code the counter updates hide behind misses, \
         but on compute-bound code counting inflates run time severely — \
         and in every case it sees no hardware events: execution counts \
         alone cannot say which loads miss. Sampling's overhead is tunable \
         (T11) and it is the only method that exposes the events the \
         instrumenter needs."
    }

    fn cells(&self, _tier: Tier) -> Vec<Cell> {
        WORKLOADS
            .iter()
            .flat_map(|w| METHODS.iter().map(move |m| Cell::new(*w, *m)))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let cfg = MachineConfig::default();
        let wname = cell.workload.clone();
        let builder = |mem: &mut Memory, alloc: &mut AddrAlloc| build(&wname, mem, alloc);
        let mut out = CellMetrics::new();
        match cell.config.as_str() {
            "counting" => {
                // Clean run for the overhead baseline.
                let (mut m, w) = fresh(&cfg, builder);
                w.run_solo(&mut m, 0, 1 << 26);
                let clean_cycles = m.now;
                let clean_insts = m.counters.instructions;

                let (mut m, w) = fresh(&cfg, builder);
                let counted = instrument_counting(&w.prog).expect("counting pass");
                let counter_base = 0xF000_0000u64;
                let mut ctx = w.instances[0].make_context(0);
                ctx.set_reg(R_COUNTER_BASE, counter_base);
                m.run_to_completion(&counted.prog, &mut ctx, 1 << 26)
                    .unwrap();
                w.instances[0].assert_checksum(&ctx);
                let exec_counts: u64 = counted
                    .read_counts(&m, counter_base)
                    .unwrap()
                    .iter()
                    .map(|&(_, n)| n)
                    .sum();
                out.put_f64(
                    "cycle_overhead",
                    (m.now as f64 - clean_cycles as f64) / clean_cycles as f64,
                )
                .put_f64(
                    "inst_overhead",
                    (m.counters.instructions as f64 - clean_insts as f64) / clean_insts as f64,
                )
                .put_u64("exec_counts", exec_counts)
                .put_str("counts_kind", "exact")
                .put_u64("miss_sites", 0);
            }
            "sampling" => {
                let (mut m, w) = fresh(&cfg, builder);
                let mut ctxs = w.make_contexts();
                let (profile, cost) =
                    collect(&mut m, &w.prog, &mut ctxs, &CollectorConfig::default()).unwrap();
                let est_total: f64 = profile
                    .retired_samples
                    .values()
                    .map(|&n| n as f64 * profile.periods.retired as f64)
                    .sum();
                out.put_f64("cycle_overhead", cost.overhead())
                    .put_f64("inst_overhead", 0.0)
                    .put_f64("exec_counts", est_total)
                    .put_str("counts_kind", "estimated")
                    .put_u64("miss_sites", profile.l2_miss_samples.len() as u64);
            }
            other => panic!("unknown T15 method {other:?}"),
        }
        out
    }
}

//! SELFHEAL: the self-healing runtime supervisor, end to end.
//!
//! Four service scenarios — healthy steady state, workload drift, a
//! runaway-scavenger overload burst, and drift whose *repair* keeps
//! failing (PEBS sample loss injected via the PR 2 fault plan) — each
//! run under two policies:
//!
//! * **supervised** — the full monitor → diagnose → re-profile →
//!   hot-swap → contain loop of [`reach_core::supervise`];
//! * **unsupervised** — the same serving loop and the same estimator
//!   bookkeeping, but no triggers, swaps or shedding (the passive
//!   baseline the supervisor must beat).
//!
//! The service is zipf KV traffic where every job and every profiling
//! attempt draws a *fresh* instance (disjoint table + request stream),
//! so misses are compulsory and the in-situ sample stream is never
//! silenced by cache residency. Drift ships a binary profiled against
//! uniform traffic (θ=0: the value load always misses) into a hot-head
//! live mix (θ=3: value loads hit; only the request stream misses) —
//! the stale build pays a useless yield per lookup until the supervisor
//! re-profiles and swaps.
//!
//! [`Experiment::finish`] enforces the recovery contract: the
//! supervised drift arm's post-recovery p99 must sit within
//! [`RECOVERY_SLACK`]× the healthy steady state *and* strictly beat the
//! unsupervised arm; the overload arm must shed (and later restore)
//! scavengers and beat the passive arm's burst mean; the rebuild-fault
//! arm must end with the circuit breaker open on an explicitly recorded
//! degraded rung — never a panic. Violations fail the run, which is how
//! CI consumes this experiment.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::report::{BenchReport, CellStatus};
use reach_core::{
    percentile, pgo_pipeline_degrading, supervise, Action, BreakerState, DegradeOptions,
    DeployedBuild, DualModeOptions, ServiceWorkload, SupervisorOptions, SupervisorReport,
    WatchdogOptions,
};
use reach_profile::{OnlineEstimatorOptions, Periods};
use reach_sim::{
    AluOp, Cond, Context, FaultInjector, FaultPlan, Machine, MachineConfig, Program,
    ProgramBuilder, Reg,
};
use reach_workloads::{build_zipf_kv, AddrAlloc, InstanceSetup, ZipfKvParams};

/// Post-recovery p99 must be within this factor of healthy steady state.
const RECOVERY_SLACK: f64 = 1.5;

/// Epochs every scenario runs.
const EPOCHS: u64 = 16;

/// The runaway burst occupies these epochs of the overload scenario.
const BURST: std::ops::Range<u64> = 2..10;

/// Tail window for post-recovery percentiles (after the burst and the
/// drift repair have both settled).
const TAIL_FROM: u64 = 12;

const SCENARIOS: &[&str] = &["healthy", "drift", "overload", "rebuild-fault"];
const POLICIES: &[&str] = &["supervised", "unsupervised"];

/// The zipf service shared by every scenario (same construction as the
/// supervisor unit fixtures): fresh instances per job, a stale
/// profiling pool for the initial deployment and a live pool for
/// rebuilds.
struct Service {
    prog: Program,
    live: Vec<InstanceSetup>,
    cursor: usize,
    prof_stale: Vec<InstanceSetup>,
    prof_live: Vec<InstanceSetup>,
    prof_cursor: usize,
    runaway: Option<(Program, std::ops::Range<u64>)>,
}

impl Service {
    fn new(m: &mut Machine, stale_theta: f64, live_theta: f64) -> Service {
        let mut alloc = AddrAlloc::new(crate::LAYOUT_BASE);
        let params = |theta: f64, seed: u64| ZipfKvParams {
            table_entries: 1 << 15,
            lookups: 1024,
            theta,
            seed,
        };
        let live = build_zipf_kv(&mut m.mem, &mut alloc, params(live_theta, 13), 56);
        let stale = build_zipf_kv(&mut m.mem, &mut alloc, params(stale_theta, 11), 8);
        let prof = build_zipf_kv(&mut m.mem, &mut alloc, params(live_theta, 17), 12);
        Service {
            prog: live.prog,
            live: live.instances,
            cursor: 0,
            prof_stale: stale.instances,
            prof_live: prof.instances,
            prof_cursor: 0,
            runaway: None,
        }
    }

    fn next_live(&mut self) -> Context {
        let i = self.cursor;
        self.cursor += 1;
        self.live[i % self.live.len()].make_context(1_000 + i)
    }

    fn stale_profiling_contexts(&self, attempt: u32) -> Vec<Context> {
        let n = self.prof_stale.len();
        (0..2)
            .map(|k| {
                self.prof_stale[(2 * attempt as usize + k) % n]
                    .make_context(9_500 + 2 * attempt as usize + k)
            })
            .collect()
    }
}

impl ServiceWorkload for Service {
    fn arrivals(&mut self, _epoch: u64) -> usize {
        1
    }
    fn primary_context(&mut self, _job: u64) -> Context {
        self.next_live()
    }
    fn scavenger_context(&mut self, _epoch: u64, _job: u64, _slot: usize) -> Context {
        self.next_live()
    }
    fn scavenger_program(&mut self, epoch: u64) -> Option<Program> {
        let (prog, range) = self.runaway.as_ref()?;
        range.contains(&epoch).then(|| prog.clone())
    }
    fn profiling_contexts(&mut self, _attempt: u32) -> Vec<Context> {
        let n = self.prof_live.len();
        (0..2)
            .map(|_| {
                let i = self.prof_cursor;
                self.prof_cursor += 1;
                self.prof_live[i % n].make_context(9_000 + i)
            })
            .collect()
    }
}

/// A cooperative-free infinite loop for the overload scenario's
/// scavenger pool.
fn runaway_prog() -> Program {
    let mut b = ProgramBuilder::new("runaway");
    b.imm(Reg(1), 1);
    let top = b.label();
    b.bind(top);
    b.alu(AluOp::Add, Reg(2), Reg(2), Reg(1), 1);
    b.branch(Cond::Nez, Reg(1), top);
    b.halt();
    b.finish().unwrap()
}

/// Profiling periods sized to the 1024-lookup test jobs (the defaults
/// would leave too few samples to pass profile validation).
fn fast_degrade() -> DegradeOptions {
    let mut d = DegradeOptions::default();
    d.pipeline.collector.periods = Periods {
        l2_miss: 13,
        l3_miss: 13,
        stall: 13,
        retired: 13,
    };
    d
}

fn breaker_str(b: &BreakerState) -> &'static str {
    match b {
        BreakerState::Closed => "closed",
        BreakerState::Backoff { .. } => "backoff",
        BreakerState::Open => "open",
    }
}

fn base_opts(seed: u64) -> SupervisorOptions {
    SupervisorOptions {
        epochs: EPOCHS,
        service_per_epoch: 1,
        scavengers: 2,
        insitu_period: 31,
        estimator: OnlineEstimatorOptions {
            window: 2048,
            min_samples: 8,
        },
        staleness_threshold: 0.6,
        max_rebuild_failures: 2,
        backoff_base_epochs: 1,
        backoff_max_epochs: 8,
        probation_epochs: 4,
        seed,
        degrade: fast_degrade(),
        ..SupervisorOptions::default()
    }
}

fn scenario_opts(scenario: &str, seed: u64) -> SupervisorOptions {
    let mut o = base_opts(seed);
    match scenario {
        "overload" => {
            o.slo_p99_cycles = 800_000;
            o.slo_window = 2;
            // It is an overload scenario: leave repair to the shedder.
            o.staleness_threshold = 2.0;
            o.dual = DualModeOptions {
                drain_scavengers: false,
                isolate_faults: true,
                watchdog: Some(WatchdogOptions {
                    slice_steps: 2_000,
                    overrun_cycles: 500,
                    // Containment is the supervisor's job here, not the
                    // per-job watchdog's.
                    max_overruns: u32::MAX,
                    ..WatchdogOptions::default()
                }),
                ..DualModeOptions::default()
            };
        }
        "rebuild-fault" => {
            // A single profiling round per rebuild: with the PEBS skid
            // fault armed, every round's miss samples land off the load
            // PCs and profile validation rejects the rebuild, so the
            // ladder degrades and the breaker eventually opens.
            o.degrade.max_reprofiles = 0;
        }
        _ => {}
    }
    o
}

/// Mean primary latency over an epoch range (0 when no jobs landed
/// there).
fn mean_over(rep: &SupervisorReport, range: std::ops::Range<u64>) -> u64 {
    let v: Vec<u64> = rep
        .latencies
        .iter()
        .filter(|(e, _)| range.contains(e))
        .map(|(_, l)| *l)
        .collect();
    if v.is_empty() {
        0
    } else {
        v.iter().sum::<u64>() / v.len() as u64
    }
}

/// The self-healing supervisor experiment.
pub struct SelfHeal;

impl Experiment for SelfHeal {
    fn name(&self) -> &'static str {
        "selfheal"
    }

    fn title(&self) -> &'static str {
        "SELFHEAL: runtime supervisor (drift / overload / rebuild-fault x supervised / unsupervised)"
    }

    fn notes(&self) -> &'static str {
        "clean if the supervised drift arm swaps back to full PGO with \
         post-recovery p99 within 1.5x healthy steady state and strictly \
         better than the unsupervised arm; the overload arm sheds and \
         restores scavengers and beats the passive burst mean; the \
         rebuild-fault arm ends with the breaker open on a recorded \
         degraded rung; and the healthy arm never false-triggers."
    }

    fn cells(&self, _tier: Tier) -> Vec<Cell> {
        // The matrix is already CI-sized; smoke == full keeps the
        // committed baseline valid for both tiers.
        SCENARIOS
            .iter()
            .flat_map(|s| POLICIES.iter().map(move |p| Cell::new(*s, *p)))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, seed: u64) -> CellMetrics {
        let scenario = cell.workload.as_str();
        let (stale_theta, live_theta) = match scenario {
            "healthy" | "overload" => (0.0, 0.0),
            "drift" | "rebuild-fault" => (0.0, 3.0),
            other => panic!("unknown scenario {other:?}"),
        };
        let mut m = Machine::new(MachineConfig::default());
        let mut svc = Service::new(&mut m, stale_theta, live_theta);
        if scenario == "overload" {
            svc.runaway = Some((runaway_prog(), BURST));
        }
        let orig = svc.prog.clone();

        let mut opts = scenario_opts(scenario, seed);
        opts.supervise = cell.config == "supervised";

        // Initial deployment: built against the (possibly stale) profile
        // pool, on a fault-free machine.
        let init: DeployedBuild = pgo_pipeline_degrading(
            &mut m,
            &orig,
            |a| svc.stale_profiling_contexts(a),
            &opts.degrade,
        )
        .into();
        let init_rung = init.rung;

        // The rebuild-fault scenario arms PEBS sample loss *after* the
        // initial build: serving continues, but every re-profiling
        // attempt starves.
        if scenario == "rebuild-fault" {
            // Constant +9 instruction skid: every PEBS sample (in-situ
            // and re-profiling alike) reports a PC past the real load,
            // so rebuilt profiles fail load-coverage validation while
            // the estimator still sees a (wildly stale-looking) stream.
            m.faults = Some(FaultInjector::new(
                FaultPlan::none(seed).with_pebs_extra_skid(9),
            ));
        }

        let r = supervise(&mut m, &mut svc, &orig, init, &opts).expect("validated config");

        let sheds = r
            .incidents
            .iter()
            .filter(|i| matches!(i.action, Action::ShedScavengers { .. }))
            .count() as u64;
        let restores = r
            .incidents
            .iter()
            .filter(|i| matches!(i.action, Action::RestoreScavenger { .. }))
            .count() as u64;
        let all: Vec<u64> = r.latencies.iter().map(|(_, l)| *l).collect();

        let mut out = CellMetrics::new();
        out.put_str("init_rung", init_rung.to_string())
            .put_str("final_rung", r.final_rung.to_string())
            .put_str("breaker", breaker_str(&r.breaker))
            .put_u64("served", r.served)
            .put_u64("shed_jobs", r.shed_jobs)
            .put_u64("job_faults", r.job_faults)
            .put_u64("swaps", r.swaps)
            .put_u64("rebuilds", r.rebuilds)
            .put_u64("rebuild_failures", u64::from(r.rebuild_failures))
            .put_u64("incidents", r.incidents.len() as u64)
            .put_u64("sheds", sheds)
            .put_u64("restores", restores)
            .put_u64("p99_cyc", percentile(&all, 0.99))
            .put_u64("p99_tail_cyc", r.p99_after(TAIL_FROM))
            .put_u64("burst_mean_cyc", mean_over(&r, BURST))
            .put_f64("staleness_peak", r.staleness_peak)
            .put_f64("staleness_last", r.staleness_last)
            .put_u64("overruns", r.overruns)
            .put_u64("quarantines", r.quarantine_events)
            .put_u64("readmissions", r.readmissions)
            .put_u64("scav_final", r.scav_budget_final as u64)
            .put_u64("incident_hash", r.incident_log_hash());
        out
    }

    fn finish(&self, report: &mut BenchReport) -> Vec<String> {
        let mut violations = Vec::new();
        let get = |w: &str, c: &str, m: &str| -> Option<f64> {
            report
                .cells
                .iter()
                .find(|r| r.cell.workload == w && r.cell.config == c)
                .filter(|r| r.status == CellStatus::Ok)
                .and_then(|r| r.metrics.get_f64(m))
        };
        let get_str = |w: &str, c: &str, m: &str| -> Option<String> {
            report
                .cells
                .iter()
                .find(|r| r.cell.workload == w && r.cell.config == c)
                .filter(|r| r.status == CellStatus::Ok)
                .and_then(|r| r.metrics.get(m))
                .map(|v| v.render())
        };

        // Healthy steady state must not false-trigger.
        if get("healthy", "supervised", "swaps") != Some(0.0)
            || get("healthy", "supervised", "incidents") != Some(0.0)
        {
            violations.push("healthy/supervised: supervisor acted on a healthy service".into());
        }
        // No unsupervised arm may ever act.
        for s in SCENARIOS {
            if get(s, "unsupervised", "incidents").is_some_and(|i| i != 0.0) {
                violations.push(format!("{s}/unsupervised: passive arm recorded incidents"));
            }
        }

        let healthy = get("healthy", "supervised", "p99_tail_cyc");

        // Drift: repaired, recovered, and strictly better than passive.
        if get("drift", "supervised", "swaps").is_none_or(|s| s < 1.0) {
            violations.push("drift/supervised: no hot swap happened".into());
        }
        if get_str("drift", "supervised", "final_rung").as_deref() != Some("full-pgo") {
            violations.push("drift/supervised: did not end on full PGO".into());
        }
        match (
            healthy,
            get("drift", "supervised", "p99_tail_cyc"),
            get("drift", "unsupervised", "p99_tail_cyc"),
        ) {
            (Some(h), Some(ds), Some(du)) => {
                if ds > RECOVERY_SLACK * h {
                    violations.push(format!(
                        "drift/supervised: post-recovery p99 {ds:.0} > {RECOVERY_SLACK}x healthy {h:.0}"
                    ));
                }
                if ds >= du {
                    violations.push(format!(
                        "drift/supervised: post-recovery p99 {ds:.0} not better than unsupervised {du:.0}"
                    ));
                }
            }
            _ => violations.push("drift: missing cells for the recovery comparison".into()),
        }

        // Overload: shed, restored, recovered, and better than passive
        // across the burst.
        if get("overload", "supervised", "sheds").is_none_or(|s| s < 1.0) {
            violations.push("overload/supervised: never shed a scavenger".into());
        }
        if get("overload", "supervised", "restores").is_none_or(|s| s < 1.0) {
            violations.push("overload/supervised: never restored a scavenger".into());
        }
        match (
            get("overload", "supervised", "burst_mean_cyc"),
            get("overload", "unsupervised", "burst_mean_cyc"),
        ) {
            (Some(s), Some(u)) => {
                if s >= u {
                    violations.push(format!(
                        "overload/supervised: burst mean {s:.0} not better than unsupervised {u:.0}"
                    ));
                }
            }
            _ => violations.push("overload: missing cells for the burst comparison".into()),
        }
        if let (Some(h), Some(ot)) = (healthy, get("overload", "supervised", "p99_tail_cyc")) {
            if ot > RECOVERY_SLACK * h {
                violations.push(format!(
                    "overload/supervised: post-burst p99 {ot:.0} > {RECOVERY_SLACK}x healthy {h:.0}"
                ));
            }
        }

        // Rebuild-fault: contained by the breaker on a recorded rung.
        if get_str("rebuild-fault", "supervised", "breaker").as_deref() != Some("open") {
            violations.push("rebuild-fault/supervised: breaker did not open".into());
        }
        if get_str("rebuild-fault", "supervised", "final_rung").is_none_or(|r| r == "full-pgo") {
            violations
                .push("rebuild-fault/supervised: no degraded rung recorded after breaker".into());
        }
        if get("rebuild-fault", "supervised", "job_faults").is_none_or(|f| f != 0.0) {
            violations.push("rebuild-fault/supervised: serving faulted during containment".into());
        }
        violations
    }
}

//! T11 (§3.2): sampling-parameter trade-offs.
//!
//! "Higher sampling frequency expedites profile collections at the cost
//! of higher run time overhead" — and precision (skid) and buffer sizing
//! matter too. The simulator maintains exact ground truth, so profile
//! fidelity is directly scoreable: precision/recall of the predicted
//! miss-PC set (at the 0.5-likelihood threshold) plus the mean absolute
//! error of likelihood estimates, against the run-time cost of sampling.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::fresh;
use reach_profile::{collect, score, CollectorConfig, Periods};
use reach_sim::MachineConfig;
use reach_workloads::{build_tiered, TieredParams};

/// (config key, period scale, skid, buffer capacity).
const CONFIGS: &[(&str, u64, u32, usize)] = &[
    ("periods=1x,skid=0,buf=4096", 1, 0, 4096),
    ("periods=4x,skid=0,buf=4096", 4, 0, 4096),
    ("periods=16x,skid=0,buf=4096", 16, 0, 4096),
    ("periods=64x,skid=0,buf=4096", 64, 0, 4096),
    ("periods=256x,skid=0,buf=4096", 256, 0, 4096),
    ("periods=1x,skid=4,buf=4096", 1, 4, 4096), // samples land late
    ("periods=1x,skid=16,buf=4096", 1, 16, 4096),
    ("periods=1x,skid=0,buf=32", 1, 0, 32), // tiny buffer: drops
];

const SMOKE: &[&str] = &[
    "periods=1x,skid=0,buf=4096",
    "periods=64x,skid=0,buf=4096",
    "periods=1x,skid=16,buf=4096",
];

/// The T11 sampling-fidelity experiment.
pub struct T11Sampling;

impl Experiment for T11Sampling {
    fn name(&self) -> &'static str {
        "t11_sampling"
    }

    fn title(&self) -> &'static str {
        "T11: profile fidelity vs sampling cost (tiered workload)"
    }

    fn notes(&self) -> &'static str {
        "shape: fidelity degrades gracefully with coarser periods while \
         overhead falls; skid smears attribution across neighbouring PCs; \
         undersized buffers drop samples."
    }

    fn cells(&self, tier: Tier) -> Vec<Cell> {
        CONFIGS
            .iter()
            .filter(|(c, _, _, _)| tier == Tier::Full || SMOKE.contains(c))
            .map(|&(c, _, _, _)| Cell::new("tiered", c))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let &(_, scale, skid, buffer) = CONFIGS
            .iter()
            .find(|(c, _, _, _)| *c == cell.config)
            .expect("known sampling config");
        let cfg = MachineConfig::default();
        let params = TieredParams {
            iters: 16_384,
            ..TieredParams::default()
        };
        let build = |mem: &mut _, alloc: &mut _| build_tiered(mem, alloc, &params, 1);

        let (mut m, w) = fresh(&cfg, build);
        let mut ctxs = w.make_contexts();
        let base = Periods::default();
        let ccfg = CollectorConfig {
            periods: Periods {
                l2_miss: base.l2_miss * scale,
                l3_miss: base.l3_miss * scale,
                stall: base.stall * scale,
                retired: base.retired * scale,
            },
            skid,
            buffer_capacity: buffer,
            ..CollectorConfig::default()
        };
        let (mut profile, cost) = collect(&mut m, &w.prog, &mut ctxs, &ccfg).unwrap();
        // Score with block smoothing, exactly as the instrumenter will
        // consume it.
        profile = reach_instrument::smooth_profile(&profile, &w.prog);
        let acc = score(&profile, &m.counters, 0.5);

        let mut out = CellMetrics::new();
        out.put_f64("overhead", cost.overhead())
            .put_u64("dropped", cost.dropped_samples)
            .put_f64("precision", acc.precision)
            .put_f64("recall", acc.recall)
            .put_f64("mae", acc.likelihood_mae);
        out
    }
}

//! F10 (§3.3): dual-mode execution as the scavenger pool scales.
//!
//! A latency-sensitive primary chase co-runs with 0–8 scavenger
//! instances. More scavengers fill more of the primary's miss windows
//! (starved fills drop to zero) and raise machine efficiency, while the
//! primary's latency stays within a small factor of solo — and the
//! on-demand scale-up depth (scavengers chained per fill) reveals how
//! many contexts one 100 ns miss actually needs when the scavengers
//! themselves keep missing.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::{fresh, pgo_build};
use reach_core::{ratio, run_dual_mode, DualModeOptions, PipelineOptions};
use reach_sim::{Context, MachineConfig};
use reach_workloads::{build_chase, ChaseParams};

const MAX_POOL: usize = 8;
const SMOKE_POOLS: &[usize] = &[0, 2, 8];

fn params() -> ChaseParams {
    ChaseParams {
        nodes: 512,
        hops: 512,
        node_stride: 4096,
        work_per_hop: 60, // ~20 ns of work per hop
        work_insts: 1,
        seed: 0xf10,
    }
}

/// The F10 scavenger-pool sweep.
pub struct F10DualMode;

impl Experiment for F10DualMode {
    fn name(&self) -> &'static str {
        "f10_dualmode"
    }

    fn title(&self) -> &'static str {
        "F10: dual-mode as the scavenger pool grows (primary = cold chase)"
    }

    fn notes(&self) -> &'static str {
        "shape: a handful of scavengers suffices (chains >1 show on-demand \
         scale-up); primary latency stays bounded while efficiency climbs."
    }

    fn cells(&self, tier: Tier) -> Vec<Cell> {
        (0..=MAX_POOL)
            .filter(|p| tier == Tier::Full || SMOKE_POOLS.contains(p))
            .map(|p| Cell::new("chase", format!("pool={p}")))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let pool: usize = cell
            .config
            .strip_prefix("pool=")
            .and_then(|s| s.parse().ok())
            .expect("config is pool=<n>");
        let cfg = MachineConfig::default();
        let build = |mem: &mut _, alloc: &mut _| build_chase(mem, alloc, params(), MAX_POOL + 2);
        let built = pgo_build(&cfg, build, MAX_POOL + 1, &PipelineOptions::default());

        // Solo latency reference (deterministic, so safe to recompute
        // per cell under the parallel driver).
        let (mut m, w) = fresh(&cfg, build);
        let solo = w.run_solo(&mut m, 0, 1 << 24).stats.latency().unwrap();

        let (mut m, w) = fresh(&cfg, build);
        let mut primary = w.instances[0].make_context(0);
        let mut scavs: Vec<Context> = (1..=pool).map(|i| w.instances[i].make_context(i)).collect();
        let rep = run_dual_mode(
            &mut m,
            &built.prog,
            &mut primary,
            &built.prog,
            &mut scavs,
            &DualModeOptions::default(),
        )
        .unwrap();
        w.instances[0].assert_checksum(&primary);
        let lat = rep.primary_latency.unwrap();

        let mut out = CellMetrics::new();
        out.put_u64("latency_cyc", lat)
            .put_f64("vs_solo", ratio(lat, solo))
            .put_u64("starved_fills", rep.starved_fills)
            .put_u64("max_chain", rep.max_scavengers_per_fill as u64)
            .put_f64("mean_fill_cyc", rep.mean_fill())
            .put_f64("eff", m.counters.cpu_efficiency());
        out
    }
}

//! T4 (§1): "modern CPUs have only 2 to 8 threads per physical core,
//! which is insufficient for SMT to fully hide the latency of events like
//! memory accesses".
//!
//! Sweeps the degree of concurrency on a DRAM-bound 4-chain lockstep
//! chase. The kernel is compute-light (≈6 ns of work per 100 ns of
//! misses), so hiding needs far more than 8 contexts' worth of
//! *switch-free* overlap — or, for coroutines, yield coalescing to
//! amortize switches across the four independent fills. SMT stops at the
//! hardware's 8 contexts (`eff_smt` is n/a past the limit); software
//! coroutines keep scaling.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::{fresh, interleave_checked, pgo_build};
use reach_core::{InterleaveOptions, PipelineOptions};
use reach_sim::{run_smt, MachineConfig};
use reach_workloads::{build_multi_chase, MultiChaseParams};

const MAX_N: usize = 64;
const SWEEP: &[usize] = &[1, 2, 4, 8, 16, 32, 64];
const SMOKE: &[usize] = &[1, 8, 64];

fn params() -> MultiChaseParams {
    MultiChaseParams {
        chains: 4,
        nodes: 512,
        hops: 512,
        node_stride: 256,
        seed: 0x74,
    }
}

/// The T4 concurrency-sweep experiment.
pub struct T4Concurrency;

impl Experiment for T4Concurrency {
    fn name(&self) -> &'static str {
        "t4_concurrency"
    }

    fn title(&self) -> &'static str {
        "T4: CPU efficiency vs degree of concurrency (4-chain DRAM chase)"
    }

    fn notes(&self) -> &'static str {
        "SMT is capped by the hardware context count (n/a past it); \
         coalesced coroutine yields keep climbing well past it."
    }

    fn cells(&self, tier: Tier) -> Vec<Cell> {
        SWEEP
            .iter()
            .filter(|n| tier == Tier::Full || SMOKE.contains(n))
            .map(|n| Cell::new("multi4", format!("n={n}")))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let n: usize = cell
            .config
            .strip_prefix("n=")
            .and_then(|s| s.parse().ok())
            .expect("config is n=<count>");
        let cfg = MachineConfig::default();
        let build = |mem: &mut _, alloc: &mut _| build_multi_chase(mem, alloc, params(), MAX_N + 1);

        let eff_smt = if n <= cfg.smt_max_contexts {
            let (mut m, w) = fresh(&cfg, build);
            let mut ctxs: Vec<_> = (0..n).map(|i| w.instances[i].make_context(i)).collect();
            run_smt(&mut m, &w.prog, &mut ctxs, 1 << 24).unwrap();
            m.counters.cpu_efficiency()
        } else {
            f64::NAN // past the hardware limit: no such machine exists
        };

        let built = pgo_build(&cfg, build, MAX_N, &PipelineOptions::default());
        let (mut m, w) = fresh(&cfg, build);
        interleave_checked(&mut m, &built.prog, &w, 0..n, &InterleaveOptions::default());
        let eff_coro = m.counters.cpu_efficiency();

        let mut out = CellMetrics::new();
        out.put_f64("eff_smt", eff_smt)
            .put_f64("eff_coro", eff_coro);
        out
    }
}

//! F6 (§2): manual CoroBase-style instrumentation vs profile-guided.
//!
//! The developer "decides where these events may happen and hard codes
//! event handlers at these locations at development time" — i.e. a
//! prefetch+yield at every pointer dereference, with a full-register save
//! (no liveness tooling). Profile-guided instrumentation instead measures
//! where stalls actually come from and models the gain.
//!
//! Three workloads separate the regimes:
//!
//! * **cold chase** — misses exactly where the developer expects: PGO must
//!   *match* manual;
//! * **hot hash probe** — the dereferences nearly always hit: manual pays
//!   prefetch+switch on every probe for nothing, PGO inserts nothing;
//! * **tiered sites** — four syntactically identical dereferences with
//!   wildly different miss behaviour: the developer cannot tell them
//!   apart, the profile can.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::{fresh, interleave_checked, pgo_build};
use reach_baselines::instrument_manual;
use reach_core::{InterleaveOptions, PipelineOptions};
use reach_sim::{MachineConfig, Memory};
use reach_workloads::{
    build_chase, build_hash, build_tiered, site_load_pc, AddrAlloc, BuiltWorkload, ChaseParams,
    HashParams, TieredParams, PROBE_LOAD_PC,
};

const N: usize = 8;

const WORKLOADS: &[&str] = &["cold-chase", "hot-hash", "tiered"];
const MECHANISMS: &[&str] = &["manual", "pgo"];

fn build(name: &str, mem: &mut Memory, alloc: &mut AddrAlloc) -> BuiltWorkload {
    match name {
        "cold-chase" => build_chase(
            mem,
            alloc,
            ChaseParams {
                nodes: 1024,
                hops: 1024,
                node_stride: 4096,
                work_per_hop: 20,
                work_insts: 1,
                seed: 0xf6,
            },
            N + 1,
        ),
        "hot-hash" => build_hash(
            mem,
            alloc,
            HashParams {
                capacity: 1 << 9, // 8 KiB: L1-resident
                occupied: 256,
                lookups: 4096,
                hit_fraction: 1.0,
                seed: 0xf6,
            },
            N + 1,
        ),
        "tiered" => build_tiered(
            mem,
            alloc,
            &TieredParams {
                iters: 8192,
                ..TieredParams::default()
            },
            N + 1,
        ),
        other => panic!("unknown F6 workload {other:?}"),
    }
}

/// The load PCs a developer would identify as "pointer dereferences".
fn manual_pcs(name: &str) -> Vec<usize> {
    match name {
        "cold-chase" => vec![0],           // the next-pointer load
        "hot-hash" => vec![PROBE_LOAD_PC], // "the probe is a deref"
        // All four sites look identical in the source.
        "tiered" => (0..4).map(site_load_pc).collect(),
        other => panic!("unknown F6 workload {other:?}"),
    }
}

/// The F6 manual-vs-PGO experiment.
pub struct F6ManualVsPgo;

impl Experiment for F6ManualVsPgo {
    fn name(&self) -> &'static str {
        "f6_manual_vs_pgo"
    }

    fn title(&self) -> &'static str {
        "F6: manual (CoroBase-style) vs profile-guided instrumentation"
    }

    fn notes(&self) -> &'static str {
        "shape: PGO matches manual where the developer guessed right (cold \
         chase) and strictly wins where the guess is wrong (hot probe) or \
         impossible to make statically (tiered sites)."
    }

    fn cells(&self, _tier: Tier) -> Vec<Cell> {
        WORKLOADS
            .iter()
            .flat_map(|w| MECHANISMS.iter().map(move |m| Cell::new(*w, *m)))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let cfg = MachineConfig::default();
        let wname = cell.workload.clone();
        let builder = |mem: &mut Memory, alloc: &mut AddrAlloc| build(&wname, mem, alloc);

        let prog = match cell.config.as_str() {
            "manual" => {
                // Manual: developer-placed prefetch+yield, full save sets.
                let (_, w0) = fresh(&cfg, builder);
                instrument_manual(&w0.prog, &manual_pcs(&cell.workload))
                    .expect("manual instrumentation")
                    .0
            }
            "pgo" => pgo_build(&cfg, builder, N, &PipelineOptions::default()).prog,
            other => panic!("unknown F6 mechanism {other:?}"),
        };
        let (mut m, w) = fresh(&cfg, builder);
        interleave_checked(&mut m, &prog, &w, 0..N, &InterleaveOptions::default());
        let mut out = CellMetrics::new();
        out.put_u64("yields_fired", m.counters.yields_fired)
            .put_u64("switch_cyc", m.counters.switch_cycles)
            .put_f64("eff", m.counters.cpu_efficiency());
        out
    }
}

//! F1 (Figure 1): which mechanism hides events of which duration?
//!
//! Sweeps the memory-event latency from ~1 ns to 10 µs and measures CPU
//! efficiency under every mechanism on a 4-chain lockstep pointer chase
//! (compute-light, miss-heavy — the regime the paper targets):
//!
//! * **OoOE (sequential)** — the core's overlap window alone;
//! * **SMT-2 / SMT-8** — switch-on-stall hardware threads;
//! * **coroutines + PGO** — the paper's mechanism, 16 software contexts;
//! * **OS threads** — the same interleaving at 1 µs switch cost.
//!
//! Expected shape (Figure 1): OoOE suffices below ~10 ns and collapses
//! after; SMT helps but saturates at its 2–8 contexts; profile-guided
//! coroutines dominate the 10 ns–1 µs middle band; OS threads only become
//! *viable* (≫ sequential) at µs scale.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::{fresh, interleave_checked, pgo_build};
use reach_baselines::run_sequential;
use reach_core::{InterleaveOptions, PipelineOptions, SwitchMode};
use reach_sim::{run_smt, MachineConfig};
use reach_workloads::{build_multi_chase, MultiChaseParams};

const CORO_N: usize = 16;

/// (mem_latency cycles, cell config key).
const DURATIONS: &[(u64, &str)] = &[
    (3, "event=1ns"),
    (15, "event=5ns"),
    (30, "event=10ns"),
    (90, "event=30ns"),
    (300, "event=100ns"),
    (900, "event=300ns"),
    (3000, "event=1us"),
    (9000, "event=3us"),
    (30000, "event=10us"),
];

/// The smoke subset: one point per regime (OoOE-owned, coroutine-owned,
/// thread-viable).
const SMOKE: &[&str] = &["event=10ns", "event=300ns", "event=3us"];

fn config_for(mem_latency: u64) -> MachineConfig {
    let mut cfg = MachineConfig::default();
    // A flat fast hierarchy so the *single* swept event dominates.
    cfg.l1.hit_latency = 1;
    cfg.l2.hit_latency = 2;
    cfg.l3.hit_latency = 3;
    cfg.mem_latency = mem_latency;
    cfg
}

fn params() -> MultiChaseParams {
    MultiChaseParams {
        chains: 4,
        nodes: 512,
        hops: 512,
        node_stride: 256,
        seed: 0xf1,
    }
}

/// The F1 mechanism-spectrum experiment.
pub struct F1Spectrum;

impl Experiment for F1Spectrum {
    fn name(&self) -> &'static str {
        "f1_spectrum"
    }

    fn title(&self) -> &'static str {
        "F1: CPU efficiency vs event duration (4-chain pointer chase)"
    }

    fn notes(&self) -> &'static str {
        "shape check: OoOE handles <=10ns; SMT saturates at 8 contexts; \
         coroutines+PGO own the 10ns-1us band; threads only catch up near 1us+."
    }

    fn cells(&self, tier: Tier) -> Vec<Cell> {
        DURATIONS
            .iter()
            .filter(|(_, label)| tier == Tier::Full || SMOKE.contains(label))
            .map(|&(_, label)| Cell::new("multi4", label))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let &(d, _) = DURATIONS
            .iter()
            .find(|(_, label)| *label == cell.config)
            .expect("known duration");
        let cfg = config_for(d);
        let build =
            |mem: &mut _, alloc: &mut _| build_multi_chase(mem, alloc, params(), CORO_N + 1);

        // OoOE only: one instance, sequential.
        let (mut m, w) = fresh(&cfg, build);
        let mut ctxs = vec![w.instances[0].make_context(0)];
        run_sequential(&mut m, &w.prog, &mut ctxs, 1 << 24).unwrap();
        let seq_eff = m.counters.cpu_efficiency();

        // SMT with 2 and 8 hardware contexts.
        let smt_eff = |n: usize| {
            let (mut m, w) = fresh(&cfg, build);
            let mut ctxs: Vec<_> = (0..n).map(|i| w.instances[i].make_context(i)).collect();
            run_smt(&mut m, &w.prog, &mut ctxs, 1 << 24).unwrap();
            m.counters.cpu_efficiency()
        };
        let smt2 = smt_eff(2);
        let smt8 = smt_eff(8);

        // Coroutines + PGO (the paper's mechanism).
        let built = pgo_build(&cfg, build, CORO_N, &PipelineOptions::default());
        let (mut m, w) = fresh(&cfg, build);
        interleave_checked(
            &mut m,
            &built.prog,
            &w,
            0..CORO_N,
            &InterleaveOptions::default(),
        );
        let coro_eff = m.counters.cpu_efficiency();

        // OS threads over the same instrumented binary.
        let (mut m, w) = fresh(&cfg, build);
        let topts = InterleaveOptions {
            switch: SwitchMode::Thread,
            ..InterleaveOptions::default()
        };
        interleave_checked(&mut m, &built.prog, &w, 0..CORO_N, &topts);
        let thread_eff = m.counters.cpu_efficiency();

        let mut out = CellMetrics::new();
        out.put_f64("eff_seq", seq_eff)
            .put_f64("eff_smt2", smt2)
            .put_f64("eff_smt8", smt8)
            .put_f64("eff_coro16", coro_eff)
            .put_f64("eff_thread16", thread_eff);
        out
    }
}

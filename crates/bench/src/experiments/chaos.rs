//! CHAOS: deterministic crash–restart campaigns over supervised serving.
//!
//! Every cell takes one fault class from the PR 2 matrix (PEBS sample
//! loss/skid/corruption, LBR truncation, stale profiles, wrong-address
//! prefetches, runaway scavengers, injected traps) and layers it over
//! the crash-model base: seed-derived crash instants plus torn-write
//! and partial-flush faults on the supervisor's durable journal. Each
//! schedule runs the full serve → crash → recover → resume loop of
//! [`reach_core::run_schedule`] and is audited by its five safety
//! oracles (never serve an unverified build, epoch monotonicity across
//! restarts, bounded unavailability, journal-projection ≡ live state,
//! breaker-open ⇒ degraded rung).
//!
//! The gated contract is **zero oracle violations in every cell** plus
//! a byte-stable cross-restart incident hash (`xr_hash`) — the
//! replay-determinism guarantee extended over simulated process
//! crashes. Recovery wall time (`recovery_host_ms`) and `availability`
//! are recorded for trend-watching but are report-only in CI: the
//! first is host noise, the second legitimately moves when the
//! at-least-once re-serving window shifts.
//!
//! `reach_chaos` is the operator's view of the same engine: bigger
//! randomized batches, plus the shrinker that bisects any violating
//! schedule down to a copy-pasteable minimal repro.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::report::{BenchReport, CellStatus};
use reach_core::{
    pgo_pipeline_degrading, run_schedule, ChaosOptions, ChaosSchedule, ChaosWorld, DegradeOptions,
    DeployedBuild, DualModeOptions, Rung, ServiceWorkload, SupervisorOptions, WatchdogOptions,
};
use reach_profile::{OnlineEstimatorOptions, Periods};
use reach_sim::{
    AluOp, Cond, Context, FaultPlan, Machine, MachineConfig, Program, ProgramBuilder, Reg,
    SplitMix64,
};
use reach_workloads::{build_zipf_kv, AddrAlloc, InstanceSetup, ZipfKvParams};

/// Schedules each cell runs (all crash-bearing; instants seed-derived).
const CAMPAIGNS: u64 = 6;

/// Epochs per schedule: long enough that drift trips a rebuild and the
/// crash instants land across every loop stage.
const EPOCHS: u64 = 10;

/// One fault class layered over the crash + torn-write base.
struct Class {
    name: &'static str,
    /// Extra fault channels armed on top of the base plan.
    arm: fn(FaultPlan) -> FaultPlan,
    /// Feed every rebuild a drifted profile.
    stale: bool,
    /// Arm the runaway-scavenger burst in the service.
    runaway: bool,
}

fn classes() -> Vec<Class> {
    fn id(p: FaultPlan) -> FaultPlan {
        p
    }
    vec![
        Class {
            name: "baseline",
            arm: id,
            stale: false,
            runaway: false,
        },
        Class {
            name: "pebs-drop",
            arm: |p| p.with_pebs_drop(0.5),
            stale: false,
            runaway: false,
        },
        Class {
            name: "pebs-skid",
            arm: |p| p.with_pebs_extra_skid(9),
            stale: false,
            runaway: false,
        },
        Class {
            name: "pebs-pc-corrupt",
            arm: |p| p.with_pebs_pc_corrupt(0.4, 12),
            stale: false,
            runaway: false,
        },
        Class {
            name: "lbr-trunc",
            arm: |p| p.with_lbr_drop(0.6),
            stale: false,
            runaway: false,
        },
        Class {
            name: "stale-profile",
            arm: id,
            stale: true,
            runaway: false,
        },
        Class {
            name: "prefetch-corrupt",
            arm: |p| p.with_prefetch_corrupt(0.6, 16),
            stale: false,
            runaway: false,
        },
        Class {
            name: "runaway-scav",
            arm: id,
            stale: false,
            runaway: true,
        },
        Class {
            name: "coro-trap",
            arm: |p| p.with_trap_every(30_000),
            stale: false,
            runaway: false,
        },
    ]
}

/// The drift-prone zipf-KV service every schedule supervises (the
/// supervisor fixtures' construction): fresh instances per job so
/// misses stay compulsory, a live profiling pool for rebuilds, and an
/// optional runaway scavenger burst in epochs 2..5.
struct Service {
    live: Vec<InstanceSetup>,
    cursor: usize,
    prof_live: Vec<InstanceSetup>,
    prof_cursor: usize,
    runaway: Option<Program>,
}

impl ServiceWorkload for Service {
    fn arrivals(&mut self, _epoch: u64) -> usize {
        1
    }
    fn primary_context(&mut self, _job: u64) -> Context {
        let i = self.cursor;
        self.cursor += 1;
        self.live[i % self.live.len()].make_context(1_000 + i)
    }
    fn scavenger_context(&mut self, _epoch: u64, _job: u64, _slot: usize) -> Context {
        let i = self.cursor;
        self.cursor += 1;
        self.live[i % self.live.len()].make_context(1_000 + i)
    }
    fn scavenger_program(&mut self, epoch: u64) -> Option<Program> {
        let prog = self.runaway.as_ref()?;
        (2..5).contains(&epoch).then(|| prog.clone())
    }
    fn profiling_contexts(&mut self, _attempt: u32) -> Vec<Context> {
        let n = self.prof_live.len();
        (0..2)
            .map(|_| {
                let i = self.prof_cursor;
                self.prof_cursor += 1;
                self.prof_live[i % n].make_context(9_000 + i)
            })
            .collect()
    }
}

/// A cooperative-free infinite loop for the runaway-scavenger class.
fn runaway_prog() -> Program {
    let mut b = ProgramBuilder::new("runaway");
    b.imm(Reg(1), 1);
    let top = b.label();
    b.bind(top);
    b.alu(AluOp::Add, Reg(2), Reg(2), Reg(1), 1);
    b.branch(Cond::Nez, Reg(1), top);
    b.halt();
    b.finish().unwrap()
}

/// Profiling periods sized to the 1024-lookup test jobs.
fn fast_degrade() -> DegradeOptions {
    let mut d = DegradeOptions::default();
    d.pipeline.collector.periods = Periods {
        l2_miss: 13,
        l3_miss: 13,
        stall: 13,
        retired: 13,
    };
    d
}

/// Builds one fresh serving world for a schedule: drifted zipf-KV
/// traffic (initial build profiled against uniform keys, live traffic
/// hot-headed) so staleness trips rebuilds and crash points land in
/// every supervisor loop stage. Shared with the `reach_chaos` CLI.
pub fn drift_world(schedule: &ChaosSchedule) -> ChaosWorld {
    let mut m = Machine::new(MachineConfig::default());
    let mut alloc = AddrAlloc::new(crate::LAYOUT_BASE);
    let params = |theta: f64, seed: u64| ZipfKvParams {
        table_entries: 1 << 15,
        lookups: 1024,
        theta,
        seed,
    };
    let live = build_zipf_kv(&mut m.mem, &mut alloc, params(3.0, 13), 56);
    let stale = build_zipf_kv(&mut m.mem, &mut alloc, params(0.0, 11), 8);
    let prof = build_zipf_kv(&mut m.mem, &mut alloc, params(3.0, 17), 12);
    let orig = live.prog.clone();
    let svc = Service {
        live: live.instances,
        cursor: 0,
        prof_live: prof.instances,
        prof_cursor: 0,
        runaway: schedule.runaway.then(runaway_prog),
    };
    let built = pgo_pipeline_degrading(
        &mut m,
        &orig,
        |a| {
            let n = stale.instances.len();
            (0..2)
                .map(|k| {
                    let i = 2 * a as usize + k;
                    stale.instances[i % n].make_context(9_500 + i)
                })
                .collect()
        },
        &fast_degrade(),
    );
    assert_eq!(built.rung, Rung::FullPgo, "{:?}", built.reasons);
    ChaosWorld {
        machine: m,
        workload: Box::new(svc),
        original: orig,
        initial: DeployedBuild::from(built),
    }
}

/// The engine configuration every cell (and the `reach_chaos` CLI)
/// runs: the supervisor knobs the selfheal fixtures use, correct
/// recovery, no artifact bit-rot. The watchdog must be armed — without
/// it a runaway scavenger gets an unbounded slice and the run never
/// terminates (containment is the supervisor's job; the per-job
/// watchdog just bounds each slice).
pub fn default_chaos_opts() -> ChaosOptions {
    ChaosOptions::new(SupervisorOptions {
        epochs: EPOCHS,
        service_per_epoch: 1,
        scavengers: 2,
        insitu_period: 31,
        estimator: OnlineEstimatorOptions {
            window: 2048,
            min_samples: 8,
        },
        staleness_threshold: 0.6,
        seed: 42,
        degrade: fast_degrade(),
        dual: DualModeOptions {
            drain_scavengers: false,
            isolate_faults: true,
            watchdog: Some(WatchdogOptions {
                slice_steps: 2_000,
                overrun_cycles: 500,
                max_overruns: u32::MAX,
                ..WatchdogOptions::default()
            }),
            ..DualModeOptions::default()
        },
        ..SupervisorOptions::default()
    })
}

/// The crash-campaign experiment.
pub struct Chaos;

impl Experiment for Chaos {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn title(&self) -> &'static str {
        "CHAOS: crash-restart campaigns (fault class x crash + torn-write schedules)"
    }

    fn notes(&self) -> &'static str {
        "clean if every fault class survives its crash schedules with \
         zero oracle violations: no unverified build served, epochs \
         monotone across restarts, every crash bounded to one recovery \
         segment, journal projection equal to live state, breaker-open \
         never over full PGO. xr_hash certifies the cross-restart \
         incident log replayed bit-for-bit; recovery_host_ms and \
         availability are informational."
    }

    fn cells(&self, _tier: Tier) -> Vec<Cell> {
        // Already CI-sized; smoke == full keeps one committed baseline
        // valid for both tiers.
        classes()
            .iter()
            .map(|c| Cell::new("zipf-drift", c.name))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, seed: u64) -> CellMetrics {
        let class = classes()
            .into_iter()
            .find(|c| c.name == cell.config)
            .expect("known fault class");
        let opts = default_chaos_opts();

        // Seed-derived schedules: every one carries the crash +
        // torn-write + partial-flush base, half carry a second crash.
        let mut rng = SplitMix64::new(seed);
        let mut agg = CellMetrics::new();
        let (mut violations, mut crashes, mut segments) = (0u64, 0u64, 0u64);
        let (mut recoveries_degraded, mut torn_tails) = (0u64, 0u64);
        let (mut served, mut shed_jobs, mut swaps, mut rebuilds) = (0u64, 0u64, 0u64, 0u64);
        let (mut journal_records, mut recovery_ns) = (0u64, 0u64);
        let mut xr_hash = 0u64;
        let mut first_violation = String::from("-");
        for k in 0..CAMPAIGNS {
            let plan = (class.arm)(
                FaultPlan::none(rng.next_u64())
                    .with_torn_write(0.6)
                    .with_partial_flush(0.4),
            );
            let n_crashes = 1 + (k % 2) as usize;
            let schedule = ChaosSchedule {
                plan,
                crashes: (0..n_crashes).map(|_| 1 + rng.next_below(24)).collect(),
                stale_rebuilds: class.stale,
                runaway: class.runaway,
            };
            let run = run_schedule(&mut drift_world, &schedule, &opts).expect("validated config");
            violations += run.violations.len() as u64;
            if first_violation == "-" {
                if let Some(v) = run.violations.first() {
                    first_violation = format!("{v} [{}]", schedule.repro());
                }
            }
            crashes += run.crashes;
            segments += run.segments;
            recoveries_degraded += run.recoveries_degraded;
            torn_tails += run.torn_tails;
            served += run.served;
            shed_jobs += run.shed_jobs;
            swaps += run.swaps;
            rebuilds += run.rebuilds;
            journal_records += run.journal_records;
            recovery_ns += run.recovery_host_ns;
            // Same order-sensitive fold as CampaignReport::xr_hash.
            xr_hash = {
                let mut z = xr_hash
                    .wrapping_add(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(run.incident_hash.wrapping_mul(0xD1B5_4A32_D192_ED03));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
        }

        // At-least-once serving: jobs re-served after a crash lose no
        // epoch, so availability is served over the crash-free job count.
        let expected = (EPOCHS * CAMPAIGNS) as f64;
        agg.put_u64("campaigns", CAMPAIGNS)
            .put_u64("violations", violations)
            .put_u64("crashes", crashes)
            .put_u64("segments", segments)
            .put_u64("recoveries_degraded", recoveries_degraded)
            .put_u64("torn_tails", torn_tails)
            .put_u64("served", served)
            .put_u64("shed_jobs", shed_jobs)
            .put_u64("swaps", swaps)
            .put_u64("rebuilds", rebuilds)
            .put_u64("journal_records", journal_records)
            .put_u64("xr_hash", xr_hash)
            .put_str("first_violation", first_violation)
            .put_f64("availability", served as f64 / expected)
            .put_f64("recovery_host_ms", recovery_ns as f64 / 1e6);
        agg
    }

    fn finish(&self, report: &mut BenchReport) -> Vec<String> {
        let mut violations = Vec::new();
        for c in &report.cells {
            if c.status != CellStatus::Ok {
                continue;
            }
            let n = c.metrics.get_f64("violations").unwrap_or(f64::NAN);
            if n != 0.0 {
                let detail = c
                    .metrics
                    .get("first_violation")
                    .map(|v| v.render())
                    .unwrap_or_default();
                violations.push(format!(
                    "{}: {n:.0} oracle violation(s), first: {detail}",
                    c.cell
                ));
            }
            // Every schedule carries armed crash instants (late ones may
            // legitimately outlive a short segment), so a cell with no
            // crash at all or no journal means the harness went dark.
            if c.metrics.get_f64("crashes").unwrap_or(0.0) == 0.0 {
                violations.push(format!("{}: no schedule ever crashed", c.cell));
            }
            if c.metrics.get_f64("journal_records").unwrap_or(0.0) == 0.0 {
                violations.push(format!("{}: empty durable journal", c.cell));
            }
        }
        violations
    }
}

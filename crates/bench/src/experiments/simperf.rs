//! SIMPERF: host-side interpreter throughput — how fast does the
//! simulator itself run on the machine under it?
//!
//! Every experiment, test and fault-matrix cell in this repo executes
//! through `Machine::step`/`Machine::run`, so interpreter throughput is
//! the wall-clock budget of the whole project. All other experiments
//! measure *simulated* cycles (deterministic, byte-identical across
//! hosts); this one measures the *host* side: simulated instructions
//! retired per host second, and host nanoseconds per simulated step.
//!
//! Two metric classes per cell:
//!
//! * `sim_insts` / `sim_cycles` — exact counters, deterministic, gated
//!   byte-identical by `bench_diff` like every other experiment (they
//!   double as a semantics canary for the fast-path interpreter);
//! * `sim_ips` / `host_ns_per_inst` / `host_ms` — host wall-clock
//!   measurements. These vary run to run and host to host, so CI diffs
//!   them **report-only** (see the `--report-metric` flag of
//!   `bench_diff`): the trajectory accumulates in the uploaded
//!   `BENCH_simperf.json` artifacts without flaky gating.
//!
//! The workload mix exercises the interpreter's distinct regimes:
//! dependent cold loads (pointer chase — the memory fast path), hash
//! probes over a DRAM-sized table (zipf), warm streaming loads (cache
//! fast path), a load-free ALU kernel, and a simulated-L1-resident tight
//! pointer chase — the last two are *dispatch-bound*: almost no time in
//! the simulated memory system, so they measure dispatch mechanism.
//!
//! Every cell runs the superblock engine and the per-instruction fused
//! fast path **interleaved A/B, best of pairs**: each repetition times
//! both engines back to back, so host-frequency drift hits both equally.
//! The engines must produce byte-identical counters and clocks (asserted
//! every rep — a free differential canary on top of `prop_fastpath`);
//! `sim_ips` reports the default (superblock) engine, `fastpath_ips` the
//! blocks-off engine, and `speedup_blocks` their ratio. Block-cache
//! stats (`blocks_compiled`, `block_hit_rate`, `block_invalidations`)
//! ride along report-only.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::fresh;
use reach_baselines::run_sequential;
use reach_sim::isa::{AluOp, Cond, ProgramBuilder, Reg};
use reach_sim::{CacheLevelConfig, Context, Machine, MachineConfig};
use reach_workloads::{
    build_chase, build_scan, build_zipf_kv, ChaseParams, ScanParams, ZipfKvParams,
};
use std::time::Instant;

/// Workload keys.
///
/// * `chase-hot` is the headline interpreter-throughput cell: a pointer
///   chase that misses hard in the *simulated* hierarchy (a scaled-down
///   cache geometry, see [`hot_config`]) while its data and metadata stay
///   resident in the *host* caches — so the number measures the
///   interpreter's miss path, not the benchmark host's DRAM weather.
/// * `chase-dram` / `zipf-uniform` are the same miss-heavy kernels at
///   full footprint (tens of MiB): host-memory-bound, noisier, but
///   honest about end-to-end wall clock on big workloads.
const WORKLOADS: &[&str] = &[
    "chase-hot",
    "chase-dram",
    "chase-tight",
    "zipf-uniform",
    "scan-warm",
    "alu-dense",
];

/// CI smoke subset: miss-path kernels plus the dispatch-bound kernels.
const SMOKE: &[&str] = &["chase-hot", "chase-dram", "chase-tight", "alu-dense"];

/// Step budget: large enough that per-run setup noise is negligible.
const MAX_STEPS: u64 = 1 << 26;

/// Repetitions per cell; the host metrics report the fastest rep
/// (minimum wall time), the standard way to strip scheduler noise from
/// a microbenchmark. The deterministic metrics must be identical across
/// reps — asserted, as a free determinism canary.
const REPS: usize = 3;

/// Builds the load-free ALU kernel: a counted loop of dependent 1-cycle
/// ALU ops — the regime the fused Imm/Alu dispatch loop targets. Returns
/// the machine and the host seconds spent *executing* (build excluded).
fn run_alu_dense(blocks: bool) -> (Machine, f64) {
    const ITERS: u64 = 200_000;
    let mut b = ProgramBuilder::new("alu_dense");
    let cnt = Reg(0);
    let one = Reg(1);
    let acc = Reg(2);
    b.imm(cnt, ITERS).imm(one, 1).imm(acc, 0);
    let top = b.label();
    b.bind(top);
    for _ in 0..16 {
        b.alu(AluOp::Add, acc, acc, one, 1);
    }
    b.alu(AluOp::Sub, cnt, cnt, one, 1);
    b.branch(Cond::Nez, cnt, top);
    b.halt();
    let prog = b.finish().expect("alu kernel is well-formed");
    let mut m = Machine::new(MachineConfig::default());
    m.blocks_enabled = blocks;
    let mut ctx = Context::new(0);
    let started = Instant::now();
    let exit = m.run_to_completion(&prog, &mut ctx, MAX_STEPS).unwrap();
    let host_s = started.elapsed().as_secs_f64();
    assert_eq!(exit, reach_sim::Exit::Done);
    assert_eq!(ctx.reg(acc), 16 * ITERS, "alu kernel checksum");
    (m, host_s)
}

/// A scaled-down cache geometry (L1 8 KiB, L2 64 KiB, L3 256 KiB, same
/// associativities, line size and latencies as the default) for the
/// `chase-hot` cell: the simulated miss behaviour of a DRAM-bound chase
/// at 1/32 the host footprint.
fn hot_config() -> MachineConfig {
    let mut cfg = MachineConfig::default();
    cfg.l1 = CacheLevelConfig {
        size_bytes: 8 * 1024,
        ..cfg.l1
    };
    cfg.l2 = CacheLevelConfig {
        size_bytes: 64 * 1024,
        ..cfg.l2
    };
    cfg.l3 = CacheLevelConfig {
        size_bytes: 256 * 1024,
        ..cfg.l3
    };
    cfg
}

/// Runs one of the built workloads sequentially; the timer covers only
/// the execution phase, not workload construction or checksum checks.
fn run_workload(name: &str, blocks: bool) -> (Machine, f64) {
    let cfg = if name == "chase-hot" {
        hot_config()
    } else {
        MachineConfig::default()
    };
    let (mut m, w) = fresh(&cfg, |mem, alloc| match name {
        // 8192 nodes × 64-byte stride = 512 KiB: double the (scaled)
        // simulated L3, a fraction of the host L2.
        "chase-hot" => build_chase(
            mem,
            alloc,
            ChaseParams {
                nodes: 8192,
                hops: 1 << 17,
                node_stride: 64,
                work_per_hop: 0,
                work_insts: 1,
                seed: 0x51,
            },
            1,
        ),
        "chase-dram" => build_chase(
            mem,
            alloc,
            ChaseParams {
                nodes: 8192,
                hops: 1 << 17,
                node_stride: 4096,
                work_per_hop: 0,
                work_insts: 1,
                seed: 0x51,
            },
            1,
        ),
        // 64 nodes × 64-byte stride = 4 KiB: resident in the simulated
        // L1 after one lap, so every hop is an L1 hit and the cell is
        // dispatch-bound — the tight-loop regime superblocks target.
        "chase-tight" => build_chase(
            mem,
            alloc,
            ChaseParams {
                nodes: 64,
                hops: 1 << 17,
                node_stride: 64,
                work_per_hop: 0,
                work_insts: 1,
                seed: 0x51,
            },
            1,
        ),
        "zipf-uniform" => build_zipf_kv(
            mem,
            alloc,
            ZipfKvParams {
                table_entries: 1 << 21,
                lookups: 1 << 14,
                theta: 0.0,
                seed: 0x51,
            },
            1,
        ),
        "scan-warm" => build_scan(
            mem,
            alloc,
            ScanParams {
                words: 1 << 16,
                passes: 16,
                seed: 0x51,
            },
            1,
        ),
        other => panic!("unknown simperf workload {other:?}"),
    });
    m.blocks_enabled = blocks;
    let mut ctxs = w.make_contexts();
    let started = Instant::now();
    run_sequential(&mut m, &w.prog, &mut ctxs, MAX_STEPS).unwrap();
    let host_s = started.elapsed().as_secs_f64();
    for (i, c) in ctxs.iter().enumerate() {
        w.instances[i].assert_checksum(c);
    }
    (m, host_s)
}

/// The host-throughput experiment.
pub struct SimPerf;

impl Experiment for SimPerf {
    fn name(&self) -> &'static str {
        "simperf"
    }

    fn title(&self) -> &'static str {
        "SIMPERF: host-side interpreter throughput (simulated insts / host second)"
    }

    fn notes(&self) -> &'static str {
        "sim_insts/sim_cycles are deterministic and gated; sim_ips, \
         host_ns_per_inst and host_ms are host measurements, diffed \
         report-only in CI."
    }

    fn cells(&self, tier: Tier) -> Vec<Cell> {
        WORKLOADS
            .iter()
            .filter(|w| tier == Tier::Full || SMOKE.contains(w))
            .map(|w| Cell::new(*w, "seq"))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let run_one = |blocks: bool| match cell.workload.as_str() {
            "alu-dense" => run_alu_dense(blocks),
            other => run_workload(other, blocks),
        };
        let mut insts = 0u64;
        let mut cycles = 0u64;
        let mut best_blocks = f64::INFINITY;
        let mut best_fast = f64::INFINITY;
        let mut bstats = reach_sim::BlockCacheStats::default();
        for rep in 0..REPS {
            let (mb, sb) = run_one(true);
            let (mf, sf) = run_one(false);
            // The two engines must be observationally identical — this
            // doubles as a differential canary on real workloads.
            assert_eq!(
                mb.counters, mf.counters,
                "{}: engine counters diverge",
                cell
            );
            assert_eq!(mb.now, mf.now, "{}: engine clocks diverge", cell);
            if rep == 0 {
                insts = mb.counters.instructions;
                cycles = mb.now;
                bstats = mb.block_cache.stats.clone();
            } else {
                assert_eq!(
                    (mb.counters.instructions, mb.now),
                    (insts, cycles),
                    "{}: simulated metrics differ across repetitions",
                    cell
                );
            }
            best_blocks = best_blocks.min(sb);
            best_fast = best_fast.min(sf);
        }
        let mut out = CellMetrics::new();
        out.put_u64("sim_insts", insts)
            .put_u64("sim_cycles", cycles)
            .put_f64("sim_ips", insts as f64 / best_blocks)
            .put_f64("fastpath_ips", insts as f64 / best_fast)
            .put_f64("speedup_blocks", best_fast / best_blocks)
            .put_f64("host_ns_per_inst", best_blocks * 1e9 / insts as f64)
            .put_f64("host_ms", best_blocks * 1e3)
            .put_u64("blocks_compiled", bstats.compiled)
            .put_f64("block_hit_rate", bstats.hit_rate())
            .put_u64("block_invalidations", bstats.invalidations);
        out
    }
}

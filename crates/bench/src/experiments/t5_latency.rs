//! T5 (§1 + §3.3): "SMT is known to likely lead to significantly
//! increased latencies … our proposal can simultaneously achieve low
//! latency and high CPU efficiency."
//!
//! One latency-sensitive *query* (a cold DRAM pointer chase) co-runs with
//! 7 *batch* instances of the same binary whose working sets are cache-
//! resident (warm chases — pure compute from the core's point of view).
//! Measured: the query's latency inflation vs running alone, and machine
//! CPU efficiency:
//!
//! * solo — reference latency, efficiency wasted on stalls;
//! * SMT-8 co-run — fair hardware multiplexing: efficiency recovers but
//!   the query waits its 1/8 issue share (no priority exists);
//! * symmetric coroutines — fair software round-robin: same story;
//! * dual-mode — the query runs primary, batch scavenges its stalls:
//!   near-solo latency at high efficiency.
//!
//! `vs_solo` is derived in [`Experiment::finish`] from the solo cell, so
//! the four cells stay independent under the parallel driver.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::report::{BenchReport, CellStatus};
use reach_core::{
    pgo_pipeline, ratio, run_dual_mode, run_interleaved, DualModeOptions, InterleaveOptions,
    PipelineOptions,
};
use reach_sim::{run_smt, Context, Machine, MachineConfig, Memory};
use reach_workloads::{build_chase, AddrAlloc, BuiltWorkload, ChaseParams};

const POOL: usize = 7;
const WORK: u32 = 30;

const MECHANISMS: &[&str] = &["solo", "smt8", "coro-sym", "dual-mode"];

fn query_params() -> ChaseParams {
    ChaseParams {
        nodes: 1024,
        hops: 1024,
        node_stride: 4096, // page-spread: every hop misses DRAM
        work_per_hop: WORK,
        work_insts: 1,
        seed: 0x75,
    }
}

fn batch_params() -> ChaseParams {
    ChaseParams {
        nodes: 64, // 16 KiB: L1-resident after the first lap
        hops: 8192,
        node_stride: 256,
        work_per_hop: WORK, // same program text as the query
        work_insts: 1,
        seed: 0x76,
    }
}

/// Lays out 1 query instance (+1 for profiling) and `POOL` batch
/// instances; both workloads share one program image.
fn fresh_setup(cfg: &MachineConfig) -> (Machine, BuiltWorkload, BuiltWorkload) {
    fn setup(mem: &mut Memory, alloc: &mut AddrAlloc) -> (BuiltWorkload, BuiltWorkload) {
        let q = build_chase(mem, alloc, query_params(), 2);
        let b = build_chase(mem, alloc, batch_params(), POOL);
        assert_eq!(q.prog, b.prog, "same binary for query and batch");
        (q, b)
    }
    let mut m = Machine::new(cfg.clone());
    let mut alloc = AddrAlloc::new(crate::LAYOUT_BASE);
    let (q, b) = setup(&mut m.mem, &mut alloc);
    (m, q, b)
}

fn contexts(q: &BuiltWorkload, b: &BuiltWorkload) -> Vec<Context> {
    let mut v = vec![q.instances[0].make_context(0)];
    v.extend((0..POOL).map(|i| b.instances[i].make_context(i + 1)));
    v
}

/// The T5 tail-latency experiment.
pub struct T5Latency;

impl Experiment for T5Latency {
    fn name(&self) -> &'static str {
        "t5_latency"
    }

    fn title(&self) -> &'static str {
        "T5: high-priority query latency when co-run with 7 batch instances"
    }

    fn notes(&self) -> &'static str {
        "shape: SMT and fair round-robin inflate the query several-fold; \
         dual-mode keeps it near solo while efficiency stays high."
    }

    fn cells(&self, _tier: Tier) -> Vec<Cell> {
        MECHANISMS
            .iter()
            .map(|m| Cell::new("query+batch", *m))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let cfg = MachineConfig::default();
        let mut out = CellMetrics::new();
        let (lat, eff) = match cell.config.as_str() {
            "solo" => {
                let (mut m, q, _b) = fresh_setup(&cfg);
                let ctx = q.run_solo(&mut m, 0, 1 << 24);
                (ctx.stats.latency().unwrap(), m.counters.cpu_efficiency())
            }
            "smt8" => {
                // Uninstrumented binary: hardware needs no rewriting.
                let (mut m, q, b) = fresh_setup(&cfg);
                let mut ctxs = contexts(&q, &b);
                let rep = run_smt(&mut m, &q.prog, &mut ctxs, 1 << 24).unwrap();
                q.instances[0].assert_checksum(&ctxs[0]);
                (rep.latencies[0].unwrap(), m.counters.cpu_efficiency())
            }
            "coro-sym" | "dual-mode" => {
                // Instrument once, profiling the query-shaped instance.
                let (mut pm, pq, _pb) = fresh_setup(&cfg);
                let mut prof = vec![pq.instances[1].make_context(99)];
                let built = pgo_pipeline(&mut pm, &pq.prog, &mut prof, &PipelineOptions::default())
                    .unwrap();
                if cell.config == "coro-sym" {
                    let (mut m, q, b) = fresh_setup(&cfg);
                    let mut ctxs = contexts(&q, &b);
                    let rep = run_interleaved(
                        &mut m,
                        &built.prog,
                        &mut ctxs,
                        &InterleaveOptions::default(),
                    )
                    .unwrap();
                    q.instances[0].assert_checksum(&ctxs[0]);
                    (rep.latencies[0].unwrap(), m.counters.cpu_efficiency())
                } else {
                    let (mut m, q, b) = fresh_setup(&cfg);
                    let mut primary = q.instances[0].make_context(0);
                    let mut scavs: Vec<Context> = (0..POOL)
                        .map(|i| b.instances[i].make_context(i + 1))
                        .collect();
                    let rep = run_dual_mode(
                        &mut m,
                        &built.prog,
                        &mut primary,
                        &built.prog,
                        &mut scavs,
                        &DualModeOptions::default(),
                    )
                    .unwrap();
                    q.instances[0].assert_checksum(&primary);
                    (rep.primary_latency.unwrap(), m.counters.cpu_efficiency())
                }
            }
            other => panic!("unknown T5 mechanism {other:?}"),
        };
        out.put_u64("latency_cyc", lat).put_f64("eff", eff);
        out
    }

    fn finish(&self, report: &mut BenchReport) -> Vec<String> {
        let solo = report
            .cell("query+batch", "solo")
            .filter(|c| c.status == CellStatus::Ok)
            .and_then(|c| c.metrics.get_f64("latency_cyc"));
        for c in &mut report.cells {
            if c.status != CellStatus::Ok {
                continue;
            }
            let vs = match (c.metrics.get_f64("latency_cyc"), solo) {
                (Some(lat), Some(s)) => ratio(lat as u64, s as u64),
                _ => f64::NAN,
            };
            c.metrics.put_f64("vs_solo", vs);
        }
        Vec::new()
    }
}

//! T2 (§1): "some widely-used modern applications lose more than 60% of
//! all processor cycles due to memory-bound CPU stalls".
//!
//! Measures the stall-cycle fraction of each workload run plainly (no
//! hiding) on the default machine. The memory-bound kernels (pointer
//! chase, large hash probe, uniform KV over a DRAM-sized table) must land
//! above 60%; the locality controls (streaming scan, hot KV) stay below.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::fresh;
use reach_baselines::run_sequential;
use reach_sim::{MachineConfig, Memory};
use reach_workloads::{
    build_chase, build_hash, build_scan, build_search, build_zipf_kv, AddrAlloc, BuiltWorkload,
    ChaseParams, HashParams, ScanParams, SearchParams, ZipfKvParams,
};

/// Workload keys, full-tier order; the first four are the memory-bound
/// kernels the paper's claim covers, the last two the locality controls.
const WORKLOADS: &[&str] = &[
    "chase-dram",
    "hash-16mib",
    "kv-uniform",
    "binsearch-16mib",
    "kv-skewed",
    "scan-warm",
];

const SMOKE: &[&str] = &["chase-dram", "kv-uniform", "scan-warm"];

fn build(name: &str, mem: &mut Memory, alloc: &mut AddrAlloc) -> BuiltWorkload {
    match name {
        "chase-dram" => build_chase(
            mem,
            alloc,
            ChaseParams {
                nodes: 8192,
                hops: 8192,
                node_stride: 4096,
                work_per_hop: 0,
                work_insts: 1,
                seed: 0x72,
            },
            1,
        ),
        "hash-16mib" => build_hash(
            mem,
            alloc,
            HashParams {
                capacity: 1 << 20, // 16 MiB > L3
                occupied: 500_000,
                lookups: 4096,
                hit_fraction: 0.8,
                seed: 0x72,
            },
            1,
        ),
        "kv-uniform" => build_zipf_kv(
            mem,
            alloc,
            ZipfKvParams {
                table_entries: 1 << 21,
                lookups: 8192,
                theta: 0.0, // uniform: the analytics-like worst case
                seed: 0x72,
            },
            1,
        ),
        "binsearch-16mib" => build_search(
            mem,
            alloc,
            SearchParams {
                array_len: 1 << 21,
                searches: 1024,
                seed: 0x72,
            },
            1,
        ),
        "kv-skewed" => build_zipf_kv(
            mem,
            alloc,
            ZipfKvParams {
                table_entries: 1 << 21,
                lookups: 8192,
                theta: 1.2, // hot head: the locality control
                seed: 0x72,
            },
            1,
        ),
        "scan-warm" => build_scan(
            mem,
            alloc,
            ScanParams {
                words: 1 << 15, // 256 KiB: L2-resident once warm
                passes: 8,
                seed: 0x72,
            },
            1,
        ),
        other => panic!("unknown T2 workload {other:?}"),
    }
}

/// The T2 stall-fraction experiment.
pub struct T2StallFraction;

impl Experiment for T2StallFraction {
    fn name(&self) -> &'static str {
        "t2_stall_fraction"
    }

    fn title(&self) -> &'static str {
        "T2: memory-bound stall fraction, unhidden (paper: >60% for modern apps)"
    }

    fn notes(&self) -> &'static str {
        "claim holds if the memory-bound rows (chase, hash, uniform KV, \
         binary search) show stall > 60%."
    }

    fn cells(&self, tier: Tier) -> Vec<Cell> {
        WORKLOADS
            .iter()
            .filter(|w| tier == Tier::Full || SMOKE.contains(w))
            .map(|w| Cell::new(*w, "plain"))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let cfg = MachineConfig::default();
        let (mut m, w) = fresh(&cfg, |mem, alloc| build(&cell.workload, mem, alloc));
        let mut ctxs = w.make_contexts();
        run_sequential(&mut m, &w.prog, &mut ctxs, 1 << 26).unwrap();
        for (i, c) in ctxs.iter().enumerate() {
            w.instances[i].assert_checksum(c);
        }
        let mut out = CellMetrics::new();
        out.put_f64("stall", m.counters.stall_fraction())
            .put_f64("busy", m.counters.cpu_efficiency());
        out
    }
}

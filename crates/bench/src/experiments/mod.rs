//! The experiment registry: every `exp_*` harness as a library module.
//!
//! Each submodule implements [`crate::experiment::Experiment`] for one
//! paper table/figure; [`all`] returns the full suite in EXPERIMENTS.md
//! order and is what `exp_all` drives in-process.

pub mod chaos;
pub mod f10_dualmode;
pub mod f1_spectrum;
pub mod f6_manual_vs_pgo;
pub mod f9_interyield;
pub mod fault_matrix;
pub mod multicore;
pub mod selfheal;
pub mod simperf;
pub mod t11_sampling;
pub mod t12_whatif;
pub mod t13_scheduler;
pub mod t14_hw_prefetcher;
pub mod t15_profiling_methods;
pub mod t16_sfi;
pub mod t17_drift;
pub mod t2_stall_fraction;
pub mod t3_switch_cost;
pub mod t4_concurrency;
pub mod t5_latency;
pub mod t7_policy;
pub mod t8_ablation;
pub mod verify;

use crate::experiment::Experiment;

/// Every experiment in the suite, EXPERIMENTS.md order.
pub fn all() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(f1_spectrum::F1Spectrum),
        Box::new(t2_stall_fraction::T2StallFraction),
        Box::new(t3_switch_cost::T3SwitchCost),
        Box::new(t4_concurrency::T4Concurrency),
        Box::new(t5_latency::T5Latency),
        Box::new(f6_manual_vs_pgo::F6ManualVsPgo),
        Box::new(t7_policy::T7Policy),
        Box::new(t8_ablation::T8Ablation),
        Box::new(f9_interyield::F9InterYield),
        Box::new(f10_dualmode::F10DualMode),
        Box::new(t11_sampling::T11Sampling),
        Box::new(t12_whatif::T12WhatIf),
        Box::new(t13_scheduler::T13Scheduler),
        Box::new(t14_hw_prefetcher::T14HwPrefetcher),
        Box::new(t15_profiling_methods::T15ProfilingMethods),
        Box::new(t16_sfi::T16Sfi),
        Box::new(t17_drift::T17Drift),
        Box::new(fault_matrix::FaultMatrix),
        Box::new(selfheal::SelfHeal),
        Box::new(chaos::Chaos),
        Box::new(multicore::Multicore),
        Box::new(simperf::SimPerf),
        Box::new(verify::Verify),
    ]
}

/// Looks an experiment up by its stable name.
pub fn by_name(name: &str) -> Option<Box<dyn Experiment>> {
    all().into_iter().find(|e| e.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Tier;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let exps = all();
        assert_eq!(exps.len(), 23);
        for e in &exps {
            assert!(by_name(e.name()).is_some());
        }
        let mut names: Vec<&str> = exps.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), exps.len(), "duplicate experiment name");
    }

    #[test]
    fn every_smoke_matrix_is_a_subset_of_full() {
        for e in all() {
            let full = e.cells(Tier::Full);
            let smoke = e.cells(Tier::Smoke);
            assert!(!smoke.is_empty(), "{}: empty smoke matrix", e.name());
            for c in &smoke {
                assert!(
                    full.contains(c),
                    "{}: smoke cell {c} not in the full matrix",
                    e.name()
                );
            }
        }
    }

    #[test]
    fn cell_keys_are_unique_within_each_experiment() {
        for e in all() {
            for tier in [Tier::Full, Tier::Smoke] {
                let cells = e.cells(tier);
                let mut keys: Vec<String> = cells.iter().map(|c| c.key()).collect();
                keys.sort();
                keys.dedup();
                assert_eq!(keys.len(), cells.len(), "{}: duplicate cell key", e.name());
            }
        }
    }
}

//! Fault matrix: every workload in the registry run under each injected
//! fault class, through the degrading PGO pipeline and the hardened
//! dual-mode runtime (watchdog + trap isolation).
//!
//! Each cell answers two robustness questions:
//!
//! 1. **Which rung did the build land on?** Profiling-side faults (PEBS
//!    sample loss/skid/corruption, LBR truncation, stale profiles) must
//!    surface as explicit rung/reason outcomes (string metrics), never
//!    panics or silent misbuilds.
//! 2. **Did the primary's latency stay bounded?** Runtime-side faults
//!    (wrong-address prefetches, runaway scavengers, injected coroutine
//!    traps) must be contained by the watchdog/isolation machinery: the
//!    primary finishes within [`BOUND`]× its healthy latency (or is
//!    explicitly reported as trapped).
//!
//! The bound checks run in [`Experiment::finish`] over the assembled
//! report (the healthy reference is the same workload's `baseline` cell),
//! so cells stay independent under the parallel driver; violations make
//! the run exit non-zero, which is how CI consumes this as a smoke test.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::report::{BenchReport, CellStatus};
use crate::{fresh, workload_builder, WORKLOAD_NAMES};
use reach_core::{
    pgo_pipeline_degrading, ratio, run_dual_mode, DegradeOptions, DegradeReason, DualModeOptions,
    PipelineOptions, WatchdogOptions,
};
use reach_instrument::{elide_yields, ElideMode};
use reach_profile::{Profile, ProfileValidationOptions};
use reach_sim::{FaultInjector, FaultPlan, MachineConfig, SplitMix64};

/// Max tolerated primary-latency inflation vs the healthy (baseline)
/// cell of the same workload, for containment-class faults.
const BOUND: f64 = 3.0;

/// Slack over the *uninstrumented* solo latency for faults that corrupt
/// the build. A corrupted profile that still passes validation yields
/// *misplaced* instrumentation: the primary pays switch/check/prefetch
/// overhead on top of its now-unhidden misses. That overhead is bounded
/// by a constant factor of the work itself, so 2x the uninstrumented
/// floor is the divergence line.
const LOSE_OPT_SLACK: f64 = 2.0;

/// What a fault class may legitimately cost.
#[derive(Clone, Copy, PartialEq)]
enum BoundKind {
    /// Runtime containment: the hardened executor must keep the primary
    /// within [`BOUND`]× its healthy latency.
    Contain,
    /// Build corruption: the optimization may be lost entirely, so the
    /// primary is bounded by the uninstrumented latency (with
    /// [`LOSE_OPT_SLACK`]), never by divergence.
    LoseOpt,
}

/// One fault class: what is injected where.
struct Class {
    name: &'static str,
    /// Plan armed on the profiling machine (corrupts collection).
    pipeline_plan: FaultPlan,
    /// Plan armed on the evaluation machine (corrupts the run).
    eval_plan: FaultPlan,
    /// Simulate a stale profile (drift injected post-smoothing).
    stale: bool,
    /// Replace the scavenger binary with its yield-elided twin.
    runaway: bool,
    /// Which latency bound this class must respect.
    bound: BoundKind,
}

fn classes() -> Vec<Class> {
    let s = 0xFA_0175u64;
    let none = FaultPlan::none(s);
    vec![
        Class {
            name: "baseline",
            pipeline_plan: none,
            eval_plan: none,
            stale: false,
            runaway: false,
            bound: BoundKind::Contain,
        },
        Class {
            name: "pebs-drop",
            pipeline_plan: FaultPlan::none(s).with_pebs_drop(0.7),
            eval_plan: none,
            stale: false,
            runaway: false,
            bound: BoundKind::LoseOpt,
        },
        Class {
            name: "pebs-skid",
            pipeline_plan: FaultPlan::none(s).with_pebs_extra_skid(12),
            eval_plan: none,
            stale: false,
            runaway: false,
            bound: BoundKind::LoseOpt,
        },
        Class {
            name: "pebs-pc-corrupt",
            pipeline_plan: FaultPlan::none(s).with_pebs_pc_corrupt(0.5, 16),
            eval_plan: none,
            stale: false,
            runaway: false,
            bound: BoundKind::LoseOpt,
        },
        Class {
            name: "lbr-trunc",
            pipeline_plan: FaultPlan::none(s).with_lbr_drop(0.8),
            eval_plan: none,
            stale: false,
            runaway: false,
            bound: BoundKind::LoseOpt,
        },
        Class {
            name: "stale-profile",
            pipeline_plan: none,
            eval_plan: none,
            stale: true,
            runaway: false,
            bound: BoundKind::LoseOpt,
        },
        Class {
            name: "prefetch-corrupt",
            pipeline_plan: none,
            eval_plan: FaultPlan::none(s).with_prefetch_corrupt(0.9, 32),
            stale: false,
            runaway: false,
            bound: BoundKind::LoseOpt,
        },
        Class {
            name: "runaway-scav",
            pipeline_plan: none,
            eval_plan: none,
            stale: false,
            runaway: true,
            bound: BoundKind::Contain,
        },
        Class {
            name: "coro-trap",
            pipeline_plan: none,
            eval_plan: FaultPlan::none(s).with_trap_every(10_000),
            stale: false,
            runaway: false,
            bound: BoundKind::Contain,
        },
    ]
}

fn class_bound(name: &str) -> Option<BoundKind> {
    classes().iter().find(|c| c.name == name).map(|c| c.bound)
}

/// The stale-profile fault: move 90% of the miss mass to pseudo-random
/// PCs, as if the binary drifted since the profile was taken.
fn stale_mutator(p: &mut Profile) {
    let mut rng = SplitMix64::new(0x57A1E);
    p.inject_drift(0.9, 512, &mut rng);
}

fn reason_code(r: &DegradeReason) -> &'static str {
    match r {
        DegradeReason::ProfilingFailed(_) => "profiling-failed",
        DegradeReason::ProfileRejected(_) => "profile-rejected",
        DegradeReason::ReprofileExhausted { .. } => "reprofile-exhausted",
        DegradeReason::PipelineRefused(_) => "pipeline-refused",
        DegradeReason::ScavengerOnlyFailed(_) => "scav-only-failed",
    }
}

/// The robustness fault-injection matrix.
pub struct FaultMatrix;

impl Experiment for FaultMatrix {
    fn name(&self) -> &'static str {
        "fault_matrix"
    }

    fn title(&self) -> &'static str {
        "Fault matrix: degradation rung + primary-latency containment per fault class"
    }

    fn notes(&self) -> &'static str {
        "clean if every fault class degraded to an explicit rung with \
         primary latency within its bound (3x healthy for containment \
         classes, the uninstrumented floor for build-corruption classes), \
         or an isolated, reported trap."
    }

    fn cells(&self, tier: Tier) -> Vec<Cell> {
        let workloads: &[&str] = match tier {
            Tier::Full => &WORKLOAD_NAMES,
            Tier::Smoke => &["chase"],
        };
        workloads
            .iter()
            .flat_map(|w| classes().into_iter().map(move |c| Cell::new(*w, c.name)))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let class = classes()
            .into_iter()
            .find(|c| c.name == cell.config)
            .expect("known fault class");
        let build = workload_builder(&cell.workload).expect("known workload");
        let cfg = MachineConfig::default();
        let watchdog = WatchdogOptions {
            slice_steps: 500,
            overrun_cycles: 1_200,
            max_overruns: 3,
            ..WatchdogOptions::default()
        };

        // Uninstrumented solo latency: the floor LoseOpt classes degrade
        // toward when the profile-guided build is lost.
        let uninstr = {
            let (mut sm, sw) = fresh(&cfg, &*build);
            sw.run_solo(&mut sm, 0, 1 << 24).stats.latency().unwrap()
        };

        // --- Build: degrading pipeline on a (possibly faulty) profiling
        // machine. ---
        let (mut pm, pw) = fresh(&cfg, &*build);
        if !class.pipeline_plan.is_none() {
            pm.faults = Some(FaultInjector::new(class.pipeline_plan));
        }
        let dopts = DegradeOptions {
            profile_mutator: class.stale.then_some(stale_mutator as fn(&mut Profile)),
            pipeline: PipelineOptions {
                // Stricter than the ladder default: a profile whose
                // sample mass has skidded off the load instructions
                // must be rejected, not turned into misplaced
                // prefetches that cost more than no PGO at all.
                validation: Some(ProfileValidationOptions {
                    min_load_coverage: 0.5,
                    ..ProfileValidationOptions::default()
                }),
                ..PipelineOptions::default()
            },
            ..DegradeOptions::default()
        };
        let built = pgo_pipeline_degrading(
            &mut pm,
            &pw.prog,
            |attempt| vec![pw.instances[1].make_context(1000 + attempt as usize)],
            &dopts,
        );
        let why = built
            .reasons
            .first()
            .map(reason_code)
            .unwrap_or("-")
            .to_string();
        let log_total = |fi: &FaultInjector| {
            fi.log.pebs_events_dropped
                + fi.log.pebs_pcs_corrupted
                + fi.log.lbr_records_dropped
                + fi.log.prefetches_corrupted
                + fi.log.traps_injected
        };
        let injected_pipeline = pm.faults.as_ref().map(&log_total).unwrap_or(0);

        // --- Run: hardened dual-mode on a fresh (possibly faulty)
        // evaluation machine. ---
        let (mut em, ew) = fresh(&cfg, &*build);
        if !class.eval_plan.is_none() {
            em.faults = Some(FaultInjector::new(class.eval_plan));
        }
        let scav_prog = if class.runaway {
            elide_yields(&built.prog, ElideMode::All, 1.0, 7, cfg.cond_check_cost).0
        } else {
            built.prog.clone()
        };
        let mut primary = ew.instances[0].make_context(0);
        let mut scavs = vec![ew.instances[1].make_context(1)];
        let rep = run_dual_mode(
            &mut em,
            &built.prog,
            &mut primary,
            &scav_prog,
            &mut scavs,
            &DualModeOptions {
                watchdog: Some(watchdog),
                isolate_faults: true,
                max_steps_per_ctx: 1 << 24,
                ..DualModeOptions::default()
            },
        )
        .expect("isolation must contain every injected fault");

        // --- Record the cell; the bound check happens in finish(). ---
        let injected = injected_pipeline + em.faults.as_ref().map(&log_total).unwrap_or(0);
        let latency = match rep.primary_latency {
            Some(lat) => {
                if class.name != "coro-trap" {
                    ew.instances[0].assert_checksum(&primary);
                }
                lat as f64
            }
            None => f64::NAN, // trapped: isolated and reported, no latency
        };
        // Per-channel injection counts (pipeline + eval injectors
        // summed): additive columns after the original metrics, so the
        // long-standing baseline values stay byte-identical.
        let channel = |f: fn(&reach_sim::FaultLog) -> u64| {
            pm.faults.as_ref().map(|i| f(&i.log)).unwrap_or(0)
                + em.faults.as_ref().map(|i| f(&i.log)).unwrap_or(0)
        };
        let mut out = CellMetrics::new();
        out.put_str("rung", built.rung.to_string())
            .put_str("why", why)
            .put_f64("latency_cyc", latency)
            .put_u64("uninstr_cyc", uninstr)
            .put_f64("eff", em.counters.cpu_efficiency())
            .put_u64("quarantined", rep.quarantined.len() as u64)
            .put_u64("overruns", rep.overruns)
            .put_u64("ctx_faults", rep.context_faults.len() as u64)
            .put_u64("injected", injected)
            .put_u64("inj_pebs_dropped", channel(|l| l.pebs_events_dropped))
            .put_u64("inj_pebs_pc_corrupted", channel(|l| l.pebs_pcs_corrupted))
            .put_u64("inj_lbr_dropped", channel(|l| l.lbr_records_dropped))
            .put_u64(
                "inj_prefetch_corrupted",
                channel(|l| l.prefetches_corrupted),
            )
            .put_u64("inj_traps", channel(|l| l.traps_injected));
        out
    }

    fn finish(&self, report: &mut BenchReport) -> Vec<String> {
        let mut violations = Vec::new();
        // Healthy (baseline-class) latency per workload.
        let healthy: Vec<(String, Option<f64>)> = report
            .cells
            .iter()
            .filter(|c| c.cell.config == "baseline" && c.status == CellStatus::Ok)
            .map(|c| (c.cell.workload.clone(), c.metrics.get_f64("latency_cyc")))
            .collect();

        for c in &mut report.cells {
            if c.status != CellStatus::Ok {
                continue;
            }
            let wname = &c.cell.workload;
            let class_name = &c.cell.config;
            let healthy_lat = healthy
                .iter()
                .find(|(w, _)| w == wname)
                .and_then(|(_, l)| *l)
                .filter(|l| !l.is_nan());
            let lat = c.metrics.get_f64("latency_cyc").unwrap_or(f64::NAN);

            // lat_vs_healthy: n/a when trapped or no healthy reference.
            let vs = match healthy_lat {
                Some(h) if !lat.is_nan() => ratio(lat as u64, h as u64),
                _ => f64::NAN,
            };
            c.metrics.put_f64("lat_vs_healthy", vs);

            let Some(bound) = class_bound(class_name) else {
                violations.push(format!("{wname}/{class_name}: unknown fault class"));
                continue;
            };
            if !lat.is_nan() {
                if let Some(h) = healthy_lat {
                    let uninstr = c.metrics.get_f64("uninstr_cyc").unwrap_or(f64::NAN);
                    let allowed = match bound {
                        BoundKind::Contain => BOUND * h,
                        // Losing the optimization is legitimate; diverging
                        // past the uninstrumented floor is not.
                        BoundKind::LoseOpt => (BOUND * h).max(LOSE_OPT_SLACK * uninstr),
                    };
                    if lat > allowed {
                        violations.push(format!(
                            "{wname}/{class_name}: primary latency {vs:.2}x healthy \
                             ({lat:.0} cyc > allowed {allowed:.0} cyc)"
                        ));
                    }
                }
            }
            if class_name == "runaway-scav" {
                let quarantined = c.metrics.get_f64("quarantined").unwrap_or(0.0);
                let overruns = c.metrics.get_f64("overruns").unwrap_or(0.0);
                if quarantined == 0.0 && overruns == 0.0 {
                    violations.push(format!(
                        "{wname}/runaway-scav: watchdog saw no overrun and quarantined nothing"
                    ));
                }
            }
        }
        violations
    }
}

//! T17 (extension, §2): continuous PGO under workload drift.
//!
//! §2 grounds the proposal in production profiling infrastructure
//! ("Google-wide profiling", AutoFDO): profiles are collected
//! continuously because behaviour drifts. Here the Zipf KV traffic
//! drifts from uniform (θ=0: every lookup misses DRAM) to extremely hot
//! (θ=2: the head is L1-resident), and the pipeline reacts:
//!
//! 1. instrument against the *old* profile (uniform traffic: the value
//!    load is a guaranteed DRAM miss, clearly worth a yield);
//! 2. production shifts; the stale binary now pays a prefetch+switch on
//!    every lookup for loads that almost always hit — pure overhead;
//! 3. sampling continues on the *instrumented* binary; the new samples
//!    are folded back to original PCs ([`remap_to_origin`]) and compared
//!    with the shipped profile — the miss-distribution distance flags the
//!    drift (`profile_distance`, n/a before day 2's samples exist);
//! 4. re-instrumenting from the fresh profile recovers the efficiency.
//!
//! [`remap_to_origin`]: reach_instrument::remap_to_origin

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::interleave_checked;
use crate::report::{BenchReport, CellStatus};
use reach_core::InterleaveOptions;
use reach_instrument::{instrument_primary, remap_to_origin, smooth_profile, PrimaryOptions};
use reach_profile::{collect, CollectorConfig, OnlineEstimatorOptions, OnlineStalenessEstimator};
use reach_sim::{Machine, MachineConfig};
use reach_workloads::{build_zipf_kv, AddrAlloc, BuiltWorkload, ZipfKvParams};

const N: usize = 8;

const PHASES: &[&str] = &["day1", "day2-stale", "day2-repgo"];

fn params(theta: f64) -> ZipfKvParams {
    ZipfKvParams {
        table_entries: 1 << 21,
        lookups: 8192,
        theta,
        seed: 0x717,
    }
}

fn setup(theta: f64) -> (Machine, BuiltWorkload) {
    let mut m = Machine::new(MachineConfig::default());
    let mut alloc = AddrAlloc::new(crate::LAYOUT_BASE);
    let w = build_zipf_kv(&mut m.mem, &mut alloc, params(theta), N + 1);
    (m, w)
}

/// Collects a raw profile of `prog` on a theta-shaped workload; returns
/// it in `prog`'s own PC space.
fn profile_on(theta: f64, prog: &reach_sim::Program) -> reach_profile::Profile {
    let (mut m, w) = setup(theta);
    let mut ctx = vec![w.instances[N].make_context(99)];
    let (p, _) = collect(&mut m, prog, &mut ctx, &CollectorConfig::default()).unwrap();
    p
}

fn run(prog: &reach_sim::Program, theta: f64) -> f64 {
    let (mut m, w) = setup(theta);
    interleave_checked(&mut m, prog, &w, 0..N, &InterleaveOptions::default());
    m.counters.cpu_efficiency()
}

/// The T17 continuous-PGO drift experiment.
pub struct T17Drift;

impl Experiment for T17Drift {
    fn name(&self) -> &'static str {
        "t17_drift"
    }

    fn title(&self) -> &'static str {
        "T17: continuous PGO under workload drift (zipf KV, theta 0.0 -> 2.0)"
    }

    fn notes(&self) -> &'static str {
        "shape: after the drift the shipped binary pays a switch per lookup \
         for loads that now hit; the remapped production samples flag the \
         drift (profile_distance) and one re-instrumentation round strips \
         the useless yields — §2's continuous-profiling loop, closed."
    }

    fn cells(&self, _tier: Tier) -> Vec<Cell> {
        PHASES.iter().map(|p| Cell::new("zipf-drift", *p)).collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let mcfg = MachineConfig::default();
        let (_, w0) = setup(0.0);
        let orig = w0.prog.clone();

        // Day 1: uniform traffic; profile and ship. Deterministic, so
        // each cell can rebuild the shipped binary independently.
        let day1_raw = profile_on(0.0, &orig);
        let day1 = smooth_profile(&day1_raw, &orig);
        let opts = PrimaryOptions::default();
        let (shipped, day1_report) = instrument_primary(&orig, &day1, &mcfg, &opts).unwrap();

        let mut out = CellMetrics::new();
        match cell.config.as_str() {
            "day1" => {
                out.put_u64("sites", day1_report.sites_selected() as u64)
                    .put_str("traffic", "theta=0.0")
                    .put_f64("eff", run(&shipped, 0.0))
                    .put_f64("profile_distance", f64::NAN)
                    .put_f64("est_distance", f64::NAN)
                    .put_f64("est_err", f64::NAN);
            }
            "day2-stale" => {
                // Traffic drifts hot; the shipped binary is stale overhead.
                out.put_u64("sites", day1_report.sites_selected() as u64)
                    .put_str("traffic", "theta=2.0")
                    .put_f64("eff", run(&shipped, 2.0))
                    .put_f64("profile_distance", f64::NAN)
                    .put_f64("est_distance", f64::NAN)
                    .put_f64("est_err", f64::NAN);
            }
            "day2-repgo" => {
                // Continuous sampling on the shipped binary under the new
                // traffic, folded back to original PCs.
                let day2_inst_raw = profile_on(2.0, &shipped);
                let day2_raw = remap_to_origin(&day2_inst_raw, &day1_report.pc_map.origin);
                let distance = day1_raw.miss_distribution_distance(&day2_raw);

                // The supervisor's online estimator, fed the same
                // production sample stream (folded to original PCs),
                // must agree with this offline oracle distance — the
                // agreement is gated in finish().
                let mut est = OnlineStalenessEstimator::new(OnlineEstimatorOptions {
                    window: 1 << 20, // no decay: the oracle sees every sample too
                    min_samples: 8,
                });
                let mut stream: Vec<(usize, u64)> = day2_inst_raw
                    .l2_miss_samples
                    .iter()
                    .map(|(pc, n)| (*pc, *n))
                    .collect();
                stream.sort_unstable();
                for (pc, n) in stream {
                    if let Some(Some(opc)) = day1_report.pc_map.origin.get(pc) {
                        est.observe_many(*opc, n);
                    }
                }
                let est_distance = est.staleness_vs(&day1_raw);

                // Re-instrument from the fresh profile.
                let day2 = smooth_profile(&day2_raw, &orig);
                let (reshipped, day2_report) =
                    instrument_primary(&orig, &day2, &mcfg, &opts).unwrap();
                out.put_u64("sites", day2_report.sites_selected() as u64)
                    .put_str("traffic", "theta=2.0")
                    .put_f64("eff", run(&reshipped, 2.0))
                    .put_f64("profile_distance", distance)
                    .put_f64("est_distance", est_distance)
                    .put_f64("est_err", (est_distance - distance).abs());
            }
            other => panic!("unknown T17 phase {other:?}"),
        }
        out
    }

    fn finish(&self, report: &mut BenchReport) -> Vec<String> {
        // The online estimator and the offline remap-and-compare oracle
        // read the same sample stream; if they disagree, the
        // supervisor's drift trigger cannot be trusted.
        let mut violations = Vec::new();
        for c in &report.cells {
            if c.status != CellStatus::Ok || c.cell.config != "day2-repgo" {
                continue;
            }
            let err = c.metrics.get_f64("est_err").unwrap_or(f64::NAN);
            // NaN (estimate withheld / metric missing) must violate too.
            if err.is_nan() || err > 0.05 {
                violations.push(format!(
                    "{}: online estimator disagrees with the oracle distance (|err| = {err:.4})",
                    c.cell
                ));
            }
        }
        violations
    }
}

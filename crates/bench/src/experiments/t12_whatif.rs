//! T12 (§4.1): the hardware what-if — presence-probe-conditional yields.
//!
//! "Hardware support to expose events, e.g., indicating whether a cache
//! line is in L1/L2 cache, could be highly useful here, as it allows
//! yields to be conditional on whether targeted events actually happen."
//!
//! On a Zipf-skewed KV workload the instrumented value load misses only
//! part of the time: statically-placed primary yields pay a switch on
//! every execution, while probe-conditional yields pay only the (cheap)
//! check on the hit path. The sweep over skew shows the win growing as
//! the hit fraction rises.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::{fresh, interleave_checked, pgo_build};
use reach_core::{make_conditional, InterleaveOptions, PipelineOptions};
use reach_instrument::{Policy, PrimaryOptions};
use reach_sim::MachineConfig;
use reach_workloads::{build_zipf_kv, ZipfKvParams};

const N: usize = 8;

const THETAS: &[&str] = &["0.0", "0.6", "0.9", "1.1"];
const SMOKE_THETAS: &[&str] = &["0.0", "1.1"];
const BINARIES: &[&str] = &["static", "probe-cond"];

/// The T12 presence-probe what-if experiment.
pub struct T12WhatIf;

impl Experiment for T12WhatIf {
    fn name(&self) -> &'static str {
        "t12_whatif"
    }

    fn title(&self) -> &'static str {
        "T12: static primary yields vs presence-probe conditional (zipf KV)"
    }

    fn notes(&self) -> &'static str {
        "shape: at high skew most lookups hit and the probe suppresses the \
         useless switches; at theta=0 nearly every lookup misses and the \
         probe only adds its check cost."
    }

    fn cells(&self, tier: Tier) -> Vec<Cell> {
        THETAS
            .iter()
            .filter(|t| tier == Tier::Full || SMOKE_THETAS.contains(t))
            .flat_map(|t| {
                BINARIES
                    .iter()
                    .map(move |b| Cell::new(format!("zipf-theta={t}"), *b))
            })
            .collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let theta: f64 = cell
            .workload
            .strip_prefix("zipf-theta=")
            .and_then(|s| s.parse().ok())
            .expect("workload is zipf-theta=<f>");
        let cfg = MachineConfig::default();
        let params = ZipfKvParams {
            table_entries: 1 << 21,
            lookups: 8192,
            theta,
            seed: 0x712,
        };
        let build = |mem: &mut _, alloc: &mut _| build_zipf_kv(mem, alloc, params, N + 1);
        // Threshold policy on purpose: instrument the skewed load even at
        // moderate likelihood, then let the probe sort hits from misses at
        // run time (the paper's "place conditional yields at locations
        // that often but not always incur target events").
        let opts = PipelineOptions {
            primary: PrimaryOptions {
                policy: Policy::Threshold(0.2),
                ..PrimaryOptions::default()
            },
            ..PipelineOptions::default()
        };
        let built = pgo_build(&cfg, build, N, &opts);
        let prog = match cell.config.as_str() {
            "static" => built.prog,
            "probe-cond" => make_conditional(&built.prog),
            other => panic!("unknown T12 binary {other:?}"),
        };
        let (mut m, w) = fresh(&cfg, build);
        interleave_checked(&mut m, &prog, &w, 0..N, &InterleaveOptions::default());
        let mut out = CellMetrics::new();
        out.put_u64("yields_fired", m.counters.yields_fired)
            .put_u64("suppressed", m.counters.yields_suppressed)
            .put_f64("eff", m.counters.cpu_efficiency());
        out
    }
}

//! T16 (§4.2): coroutine isolation — SFI overhead with and without miss
//! hiding.
//!
//! The paper notes the mechanism "can co-exist with either isolation
//! mechanism" and asks "whether a co-design of SFI and our proposal can
//! help reduce the runtime overhead of SFI". First-order numbers: the SFI
//! pass (address masking before every memory access) is applied and
//! measured under the plain sequential run and under profile-guided
//! coroutine interleaving.
//!
//! The shape worth knowing: on a stall-dominated run SFI's checks hide in
//! the shadow of the misses (tiny relative cost); once the mechanism
//! hides the misses, the run becomes busy-bound and SFI's checks surface
//! at their full instruction cost. Isolation is cheap exactly when the
//! CPU is being wasted — one more reason to co-design the two rewriters
//! (both passes share the same decode/CFG machinery here).
//!
//! `overhead_vs_plain` is derived in [`Experiment::finish`] from the
//! matching plain cell, so the four cells stay independent under the
//! parallel driver.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::fresh;
use crate::report::{BenchReport, CellStatus};
use reach_baselines::run_sequential;
use reach_core::{pgo_pipeline, run_interleaved, InterleaveOptions, PipelineOptions};
use reach_instrument::{instrument_sfi, R_SFI_MASK};
use reach_sim::{Context, MachineConfig, Program};
use reach_workloads::{build_chase, BuiltWorkload, ChaseParams};

const N: usize = 8;
const MASK: u64 = u64::MAX >> 8; // generous domain: all layout addresses fit

const BINARIES: &[&str] = &["plain", "sfi"];
const EXECUTORS: &[&str] = &["seq", "coro"];

fn params() -> ChaseParams {
    ChaseParams {
        nodes: 1024,
        hops: 1024,
        node_stride: 4096,
        work_per_hop: 20,
        work_insts: 1,
        seed: 0x716,
    }
}

fn contexts(w: &BuiltWorkload, n: usize) -> Vec<Context> {
    (0..n)
        .map(|i| {
            let mut c = w.instances[i].make_context(i);
            c.set_reg(R_SFI_MASK, MASK);
            c
        })
        .collect()
}

/// Builds the PGO-instrumented version of `prog`, profiling instance `N`.
fn pgo(prog: &Program, cfg: &MachineConfig) -> Program {
    let (mut m, w) = fresh(cfg, |mem, alloc| build_chase(mem, alloc, params(), N + 1));
    let mut prof = vec![{
        let mut c = w.instances[N].make_context(99);
        c.set_reg(R_SFI_MASK, MASK);
        c
    }];
    pgo_pipeline(&mut m, prog, &mut prof, &PipelineOptions::default())
        .expect("pipeline")
        .prog
}

/// The T16 SFI-overhead experiment.
pub struct T16Sfi;

impl Experiment for T16Sfi {
    fn name(&self) -> &'static str {
        "t16_sfi"
    }

    fn title(&self) -> &'static str {
        "T16: SFI (address masking) overhead, sequential vs hidden"
    }

    fn notes(&self) -> &'static str {
        "shape: SFI rides almost free while stalls dominate, and surfaces \
         at full cost once hiding makes the run busy-bound — quantifying \
         the co-design question §4.2 raises."
    }

    fn cells(&self, _tier: Tier) -> Vec<Cell> {
        EXECUTORS
            .iter()
            .flat_map(|e| BINARIES.iter().map(move |b| Cell::new(*b, *e)))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let cfg = MachineConfig::default();
        let build = |mem: &mut _, alloc: &mut _| build_chase(mem, alloc, params(), N + 1);

        let (_, w0) = fresh(&cfg, build);
        let (base, guarded) = match cell.workload.as_str() {
            "plain" => (w0.prog.clone(), 0u64),
            "sfi" => {
                let (prog, rep) = instrument_sfi(&w0.prog).expect("sfi pass");
                (prog, rep.guarded as u64)
            }
            other => panic!("unknown T16 binary {other:?}"),
        };

        let (mut m, w) = fresh(&cfg, build);
        let mut ctxs = contexts(&w, N);
        match cell.config.as_str() {
            "seq" => {
                run_sequential(&mut m, &base, &mut ctxs, 1 << 26).unwrap();
            }
            "coro" => {
                let instrumented = pgo(&base, &cfg);
                let r = run_interleaved(
                    &mut m,
                    &instrumented,
                    &mut ctxs,
                    &InterleaveOptions::default(),
                )
                .unwrap();
                assert_eq!(r.completed, N);
            }
            other => panic!("unknown T16 executor {other:?}"),
        }
        for (i, c) in ctxs.iter().enumerate() {
            w.instances[i].assert_checksum(c);
        }

        let mut out = CellMetrics::new();
        out.put_u64("cycles", m.now)
            .put_f64("eff", m.counters.cpu_efficiency())
            .put_u64("guarded", guarded);
        out
    }

    fn finish(&self, report: &mut BenchReport) -> Vec<String> {
        for executor in EXECUTORS {
            let plain = report
                .cell("plain", executor)
                .filter(|c| c.status == CellStatus::Ok)
                .and_then(|c| c.metrics.get_f64("cycles"));
            if let Some(c) = report.cell_mut("sfi", executor) {
                if c.status != CellStatus::Ok {
                    continue;
                }
                let overhead = match (c.metrics.get_f64("cycles"), plain) {
                    (Some(sfi), Some(p)) if p > 0.0 => sfi / p - 1.0,
                    _ => f64::NAN,
                };
                c.metrics.put_f64("overhead_vs_plain", overhead);
            }
        }
        Vec::new()
    }
}

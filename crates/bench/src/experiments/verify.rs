//! VERIFY: translation-validation coverage — proof wall-time and
//! mutation-kill rate across the standard workload suite.
//!
//! Each cell runs the full PGO pipeline on one workload and then drives
//! the symbolic equivalence checker ([`reach_instrument::equiv`]) two
//! ways:
//!
//! * **soundness / cost** — the shipped binary must *prove out* against
//!   the original under the composed origin map (any refusal here is a
//!   checker false positive and fails the cell); the proof's wall time
//!   is measured host-side (minimum over [`REPS`] repetitions), and its
//!   size (block pairs, discharged obligations, interned terms) is
//!   recorded;
//! * **sensitivity** — a fixed matrix of seeded rewrite mutants (the
//!   bugs a broken instrumenter or pc-map composition could produce:
//!   dropped save bits, mis-placed insertions, skewed prefetch
//!   operands, corrupted origin entries, mis-relocated branches) is
//!   applied to the shipped binary, and the checker must *kill* (refuse)
//!   every one.
//!
//! All proof-shape and kill metrics are deterministic and gated
//! byte-identical by `bench_diff`; `verify_ms` is a host wall-clock
//! measurement and is diffed **report-only** in CI, like `simperf`'s
//! host metrics.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::harness::{fresh, pgo_build};
use crate::workloads::{workload_builder, WORKLOAD_NAMES};
use reach_core::PipelineOptions;
use reach_instrument::{verify_rewrite, LintOptions};
use reach_sim::isa::{Inst, Program, Reg};
use reach_sim::MachineConfig;
use std::time::Instant;

/// CI smoke subset.
const SMOKE: &[&str] = &["chase", "zipf"];

/// Repetitions for the wall-time measurement; the minimum is reported
/// and the proof shape must be identical across reps (a free determinism
/// canary, as in `simperf`).
const REPS: usize = 3;

/// One seeded rewrite mutant: mutates the shipped binary and/or its
/// origin map in place, returning `false` when the binary has no site
/// the mutant applies to.
type Mutant = fn(&mut Program, &mut [Option<usize>]) -> bool;

/// The first yield carrying a non-empty save mask.
fn first_masked_yield(p: &Program) -> Option<usize> {
    p.insts
        .iter()
        .position(|i| matches!(i, Inst::Yield { save_regs: Some(m), .. } if *m != 0))
}

/// The first *inserted* prefetch (`origin[pc]` is `None`).
fn first_inserted_prefetch(p: &Program, origin: &[Option<usize>]) -> Option<usize> {
    p.insts
        .iter()
        .enumerate()
        .position(|(pc, i)| matches!(i, Inst::Prefetch { .. }) && origin[pc].is_none())
}

/// Drops the lowest set bit from the first save mask — the classic
/// "liveness off by one register" instrumenter bug.
fn drop_save_bit(p: &mut Program, _o: &mut [Option<usize>]) -> bool {
    let Some(pc) = first_masked_yield(p) else {
        return false;
    };
    if let Inst::Yield {
        save_regs: Some(m), ..
    } = &mut p.insts[pc]
    {
        *m &= *m - 1;
    }
    true
}

/// Empties the first save mask entirely ("forgot liveness").
fn clear_save_mask(p: &mut Program, _o: &mut [Option<usize>]) -> bool {
    let Some(pc) = first_masked_yield(p) else {
        return false;
    };
    if let Inst::Yield { save_regs, .. } = &mut p.insts[pc] {
        *save_regs = Some(0);
    }
    true
}

/// Rotates the first insertion run one slot: `[P…, Y, anchor]` becomes
/// `[anchor, P…, Y]` with the origin map unchanged — an off-by-one
/// insertion pc. The prefetch loses its consuming load and the yield
/// slides past the anchor its save mask was computed for.
fn rotate_insertion(p: &mut Program, o: &mut [Option<usize>]) -> bool {
    let Some(ppc) = first_inserted_prefetch(p, o) else {
        return false;
    };
    let Some(anchor) = (ppc..p.len()).find(|&pc| o[pc].is_some()) else {
        return false;
    };
    p.insts[ppc..=anchor].rotate_right(1);
    true
}

/// Skews the first inserted prefetch's offset by a page — it now
/// requests a line nothing loads.
fn skew_prefetch_offset(p: &mut Program, o: &mut [Option<usize>]) -> bool {
    let Some(pc) = first_inserted_prefetch(p, o) else {
        return false;
    };
    if let Inst::Prefetch { offset, .. } = &mut p.insts[pc] {
        *offset += 4096;
    }
    true
}

/// Repoints the first inserted prefetch at a register no load in the
/// binary dereferences — the "swapped operands" bug class. (Bumping to
/// an *adjacent* register is not guaranteed wrong: on multi-chain
/// workloads the next register is another chain's pointer, and
/// prefetching it early is still a consumed, equivalent prefetch.)
fn bump_prefetch_addr(p: &mut Program, o: &mut [Option<usize>]) -> bool {
    let Some(pc) = first_inserted_prefetch(p, o) else {
        return false;
    };
    let mut dereferenced = 0u32;
    for i in &p.insts {
        if let Inst::Load { addr, .. } | Inst::Prefetch { addr, .. } = i {
            dereferenced |= 1 << addr.0;
        }
    }
    let Some(wrong) = (0..32u8).find(|r| dereferenced & (1 << r) == 0) else {
        return false;
    };
    if let Inst::Prefetch { addr, .. } = &mut p.insts[pc] {
        *addr = Reg(wrong);
    }
    true
}

/// Claims an inserted instruction *is* the next survivor — a duplicated
/// origin entry, the pc-map composition bug.
fn duplicate_origin(p: &mut Program, o: &mut [Option<usize>]) -> bool {
    let Some(ins) = (0..p.len()).find(|&pc| o[pc].is_none()) else {
        return false;
    };
    let Some(next) = (ins..p.len()).find_map(|pc| o[pc]) else {
        return false;
    };
    o[ins] = Some(next);
    true
}

/// Mis-relocates the first branch by one slot.
fn retarget_branch(p: &mut Program, _o: &mut [Option<usize>]) -> bool {
    let n = p.len();
    let Some(pc) = p
        .insts
        .iter()
        .position(|i| matches!(i, Inst::Branch { .. }))
    else {
        return false;
    };
    if let Inst::Branch { target, .. } = &mut p.insts[pc] {
        *target = (*target + 1) % n;
    }
    true
}

/// The seeded-mutant matrix, in stable order.
fn mutants() -> Vec<(&'static str, Mutant)> {
    vec![
        ("drop-save-bit", drop_save_bit),
        ("clear-save-mask", clear_save_mask),
        ("rotate-insertion", rotate_insertion),
        ("skew-prefetch-offset", skew_prefetch_offset),
        ("bump-prefetch-addr", bump_prefetch_addr),
        ("duplicate-origin", duplicate_origin),
        ("retarget-branch", retarget_branch),
    ]
}

/// The translation-validation experiment.
pub struct Verify;

impl Experiment for Verify {
    fn name(&self) -> &'static str {
        "verify"
    }

    fn title(&self) -> &'static str {
        "VERIFY: translation validation — proof wall-time and mutation-kill rate"
    }

    fn notes(&self) -> &'static str {
        "blocks/obligations/terms and the mutant kill counts are \
         deterministic and gated; verify_ms is host wall clock, diffed \
         report-only in CI. kill_rate must stay 1.0: every seeded \
         rewrite bug is refused by the checker."
    }

    fn cells(&self, tier: Tier) -> Vec<Cell> {
        WORKLOAD_NAMES
            .iter()
            .filter(|w| tier == Tier::Full || SMOKE.contains(w))
            .map(|w| Cell::new(*w, "pipeline"))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let cfg = MachineConfig::default();
        let build = workload_builder(&cell.workload).expect("known workload");
        let built = pgo_build(&cfg, &*build, 1, &PipelineOptions::default());
        let (_, w) = fresh(&cfg, &*workload_builder(&cell.workload).unwrap());
        let opts = LintOptions::default();

        // Soundness + cost: the shipped binary proves out; time it.
        let mut best_s = f64::INFINITY;
        let mut shape = None;
        for _ in 0..REPS {
            let started = Instant::now();
            let rep = verify_rewrite(&w.prog, &built.prog, &built.origin, &opts);
            let host_s = started.elapsed().as_secs_f64();
            assert!(
                rep.ok() && rep.lint.is_clean(),
                "{}: checker false positive on the pipeline's own output:\n{rep}",
                cell
            );
            let key = (
                rep.blocks_checked,
                rep.save_obligations,
                rep.prefetch_obligations,
                rep.terms,
            );
            match &shape {
                None => shape = Some(key),
                Some(k) => assert_eq!(*k, key, "{}: proof shape differs across reps", cell),
            }
            best_s = best_s.min(host_s);
        }
        let (blocks, saves, prefs, terms) = shape.unwrap();

        // Sensitivity: every applicable seeded mutant must be refused.
        let mut total = 0u64;
        let mut killed = 0u64;
        for (mname, mutate) in mutants() {
            let mut p = built.prog.clone();
            let mut o = built.origin.clone();
            if !mutate(&mut p, &mut o) {
                continue;
            }
            total += 1;
            let rep = verify_rewrite(&w.prog, &p, &o, &opts);
            if rep.ok() {
                eprintln!("{}: mutant {mname} SURVIVED the checker", cell);
            } else {
                killed += 1;
            }
        }

        let mut out = CellMetrics::new();
        out.put_u64("verify_ok", 1)
            .put_u64("blocks_checked", blocks as u64)
            .put_u64("save_obligations", saves as u64)
            .put_u64("prefetch_obligations", prefs as u64)
            .put_u64("terms", terms as u64)
            .put_u64("mutants_total", total)
            .put_u64("mutants_killed", killed)
            .put_f64("kill_rate", killed as f64 / total as f64)
            .put_f64("verify_ms", best_s * 1e3);
        out
    }
}

//! T3 (§1/§2): context-switch costs across mechanisms.
//!
//! The paper's numbers: coroutine switches < 10 ns (9 ns for Boost
//! fcontext_t), OS thread/process switches several hundred ns to a few µs
//! [14, 38], SMT switches effectively free but capped at 2–8 contexts.
//! Each cell reports (a) the modelled cost from the machine
//! configuration, and (b) the *measured* per-switch cost extracted from
//! an instrumented run (switch cycles / switches), including the liveness
//! save-set reduction.
//!
//! The companion Criterion bench (`benches/switch_cost.rs`) measures the
//! host machine's real resume and thread hand-off costs.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::{cyc_ns, fresh, interleave_checked, pgo_build};
use reach_core::{InterleaveOptions, PipelineOptions, SwitchMode};
use reach_instrument::PrimaryOptions;
use reach_sim::isa::NUM_REGS;
use reach_sim::MachineConfig;
use reach_workloads::{build_chase, ChaseParams};

const N: usize = 8;

const MECHANISMS: &[&str] = &["coro-full", "coro-liveness", "smt", "thread"];

fn params() -> ChaseParams {
    ChaseParams {
        nodes: 1024,
        hops: 1024,
        node_stride: 4096,
        work_per_hop: 10,
        work_insts: 1,
        seed: 0x73,
    }
}

fn measured_switch(cfg: &MachineConfig, use_liveness: bool, mode: SwitchMode) -> (f64, u64) {
    let opts = PipelineOptions {
        primary: PrimaryOptions {
            use_liveness,
            ..PrimaryOptions::default()
        },
        ..PipelineOptions::default()
    };
    let build = |mem: &mut _, alloc: &mut _| build_chase(mem, alloc, params(), N + 1);
    let built = pgo_build(cfg, build, N, &opts);
    let (mut m, w) = fresh(cfg, build);
    let iopts = InterleaveOptions {
        switch: mode,
        ..InterleaveOptions::default()
    };
    let (rep, _) = interleave_checked(&mut m, &built.prog, &w, 0..N, &iopts);
    (
        m.counters.switch_cycles as f64 / rep.switches.max(1) as f64,
        rep.switches,
    )
}

/// The T3 switch-cost experiment.
pub struct T3SwitchCost;

impl Experiment for T3SwitchCost {
    fn name(&self) -> &'static str {
        "t3_switch_cost"
    }

    fn title(&self) -> &'static str {
        "T3: context switch cost by mechanism"
    }

    fn notes(&self) -> &'static str {
        "the paper's 9 ns-class coroutine switch is orders of magnitude \
         cheaper than a 1 us thread switch; liveness shrinks each save set \
         further (compare the coro rows' measured cost)."
    }

    fn cells(&self, _tier: Tier) -> Vec<Cell> {
        MECHANISMS.iter().map(|m| Cell::new("chase", *m)).collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let cfg = MachineConfig::default();
        let full = cfg.coro_switch_cost(NUM_REGS as u8);
        let mut out = CellMetrics::new();
        let (modelled, measured, switches) = match cell.config.as_str() {
            "coro-full" => {
                let (c, s) = measured_switch(&cfg, false, SwitchMode::Coroutine);
                (cyc_ns(full, cfg.clock_ghz), c, s)
            }
            "coro-liveness" => {
                let (c, s) = measured_switch(&cfg, true, SwitchMode::Coroutine);
                (
                    format!(
                        "{} .. {}",
                        cyc_ns(cfg.coro_switch_cost(0), cfg.clock_ghz),
                        cyc_ns(full, cfg.clock_ghz)
                    ),
                    c,
                    s,
                )
            }
            "smt" => (cyc_ns(cfg.smt_switch, cfg.clock_ghz), 0.0, 0),
            "thread" => {
                let (c, s) = measured_switch(&cfg, true, SwitchMode::Thread);
                (cyc_ns(cfg.thread_switch, cfg.clock_ghz), c, s)
            }
            other => panic!("unknown T3 mechanism {other:?}"),
        };
        out.put_str("modelled", modelled)
            .put_f64("measured_cyc", measured)
            .put_f64("measured_ns", measured / cfg.clock_ghz)
            .put_u64("switches", switches);
        out
    }
}

//! MULTICORE: sharded fleet serving on the N-core machine model.
//!
//! Each cell runs the key-sharded zipf-KV fleet of
//! [`reach_core::run_fleet`] on an N-core [`reach_sim::MultiCore`]
//! (per-core private L1/L2, shared-L3 occupancy + DRAM-bandwidth
//! contention model) and reports aggregate throughput scaling,
//! per-shard tail latency, cross-shard forwarding behavior and —
//! in the deploy cells — the rolling re-instrumentation rollout riding
//! behind the max-unavailable=1 gate, with drained shards donating
//! their scavenger slices to the survivors.
//!
//! The matrix crosses core count {1, 2, 4} with supervised vs.
//! unsupervised serving and steady-state vs. deploy-in-flight. Traffic
//! scales with the shard count (one owner-rotating arrival per shard
//! per epoch, each ingressing at its neighbor), so `agg_jobs_per_epoch`
//! is the scaling curve and `p99_max` the worst shard's tail.
//!
//! Everything here is simulated and deterministic: every counter, the
//! per-shard p99s and the fleet event-log hash gate byte-identically at
//! `--rel 0`. Zero `violations` doubles as the fleet-invariant gate
//! (capacity during healthy rolling deploys, poison containment,
//! journal-projection ≡ live state).
//!
//! `reach_chaos --fleet` is the operator's view of the same world:
//! randomized fleet schedules (shard crashes mid-rollout, torn journals
//! on one shard, runaway scavengers on another, poisoned rollouts) over
//! the same factory, audited by the fleet chaos oracles.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::report::{BenchReport, CellStatus};
use reach_core::{
    pgo_pipeline_degrading, run_fleet, Arrival, DeployedBuild, FleetChaosOptions,
    FleetChaosSchedule, FleetChaosWorld, FleetOptions, FleetWorkload, RolloutOptions, Rung,
};
use reach_sim::{Context, MultiCore, MultiCoreConfig, Program};
use reach_workloads::{build_zipf_kv, AddrAlloc, InstanceSetup, ZipfKvParams};

/// Fleet epochs per cell: enough for a full rolling deploy (drain +
/// health window per shard) across four shards, including the final
/// Done transition.
const EPOCHS: u64 = 16;

struct ShardStreams {
    live: Vec<InstanceSetup>,
    cursor: usize,
    prof: Vec<InstanceSetup>,
    prof_cursor: usize,
}

/// The key-sharded zipf-KV fleet service: every core holds an identical
/// table layout (so one program and one initial build serve
/// fleet-wide), arrivals rotate owners round-robin with each request
/// ingressing at the owner's neighbor (all traffic exercises the
/// forwarding path when `shards > 1`).
pub struct FleetService {
    per: Vec<ShardStreams>,
    shards: usize,
    per_epoch: usize,
}

impl FleetWorkload for FleetService {
    fn arrivals(&mut self, epoch: u64) -> Vec<Arrival> {
        (0..self.per_epoch)
            .map(|i| {
                let owner = (epoch as usize + i) % self.shards;
                Arrival {
                    ingress: (owner + 1) % self.shards,
                    owner,
                }
            })
            .collect()
    }
    fn primary_context(&mut self, shard: usize, _job: u64) -> Context {
        let p = &mut self.per[shard];
        let i = p.cursor;
        p.cursor += 1;
        p.live[i % p.live.len()].make_context(1_000 + i)
    }
    fn scavenger_context(&mut self, shard: usize, _epoch: u64, _job: u64, _slot: usize) -> Context {
        let p = &mut self.per[shard];
        let i = p.cursor;
        p.cursor += 1;
        p.live[i % p.live.len()].make_context(1_000 + i)
    }
    fn profiling_contexts(&mut self, shard: usize, _attempt: u32) -> Vec<Context> {
        let p = &mut self.per[shard];
        let n = p.prof.len();
        (0..2)
            .map(|_| {
                let i = p.prof_cursor;
                p.prof_cursor += 1;
                p.prof[i % n].make_context(9_000 + i)
            })
            .collect()
    }
}

/// Builds one fresh fleet world: N cores with byte-identical zipf table
/// layouts, the shared original program and the shared initial build
/// (profiled against the live distribution — steady cells stay
/// trigger-free). Shared with the `reach_chaos --fleet` CLI, which
/// wraps it into a [`FleetChaosWorld`] factory.
pub fn fleet_world(shards: usize) -> (MultiCore, FleetService, Program, DeployedBuild) {
    let mut mc = MultiCore::new(MultiCoreConfig::new(shards));
    let mut per = Vec::new();
    let mut orig: Option<Program> = None;
    for s in 0..shards {
        let m = &mut mc.cores[s];
        let mut alloc = AddrAlloc::new(crate::LAYOUT_BASE);
        let params = |theta: f64, seed: u64| ZipfKvParams {
            table_entries: 1 << 15,
            lookups: 1024,
            theta,
            seed,
        };
        let live = build_zipf_kv(&mut m.mem, &mut alloc, params(3.0, 13), 56);
        let prof = build_zipf_kv(&mut m.mem, &mut alloc, params(3.0, 17), 12);
        match &orig {
            None => orig = Some(live.prog.clone()),
            Some(o) => assert_eq!(
                o.fingerprint(),
                live.prog.fingerprint(),
                "cores must share one program"
            ),
        }
        per.push(ShardStreams {
            live: live.instances,
            cursor: 0,
            prof: prof.instances,
            prof_cursor: 0,
        });
    }
    let orig = orig.unwrap();
    let mut svc = FleetService {
        per,
        shards,
        per_epoch: shards,
    };
    let built = {
        let mc0 = &mut mc.cores[0];
        pgo_pipeline_degrading(
            mc0,
            &orig,
            |a| svc.profiling_contexts(0, a),
            &super::chaos::default_chaos_opts().sup.degrade,
        )
    };
    assert_eq!(built.rung, Rung::FullPgo, "{:?}", built.reasons);
    (mc, svc, orig, DeployedBuild::from(built))
}

/// The fleet configuration every cell (and `reach_chaos --fleet`) runs:
/// the chaos-suite supervisor knobs per shard, fleet epochs sized for a
/// full rolling deploy, work-stealing on.
pub fn default_fleet_opts(shards: usize, seed: u64) -> FleetOptions {
    FleetOptions {
        shards,
        epochs: EPOCHS,
        sup: super::chaos::default_chaos_opts().sup,
        seed,
        ..FleetOptions::default()
    }
}

/// The rolling-deploy shape the deploy cells (and the fleet chaos
/// rollout arm) use: drain from epoch 2, one health epoch per shard, a
/// permissive p99 gate (fault containment is what the chaos oracles
/// probe; the tight-p99 freeze path has its own unit tests).
pub fn default_rollout() -> RolloutOptions {
    RolloutOptions {
        start_epoch: 2,
        health_epochs: 1,
        p99_factor: 100.0,
        poison: None,
    }
}

/// The `reach_chaos --fleet` engine configuration over [`fleet_world`].
pub fn default_fleet_chaos_opts(shards: usize) -> FleetChaosOptions {
    let mut o = FleetChaosOptions::new(default_fleet_opts(shards, 7));
    o.rollout_template = default_rollout();
    o
}

/// A [`FleetChaosWorld`] factory over [`fleet_world`] for the chaos CLI.
pub fn fleet_chaos_factory(shards: usize) -> impl FnMut(&FleetChaosSchedule) -> FleetChaosWorld {
    move |_schedule: &FleetChaosSchedule| {
        let (mc, svc, original, initial) = fleet_world(shards);
        FleetChaosWorld {
            mc,
            workload: Box::new(svc),
            original,
            initial,
        }
    }
}

/// One matrix point.
struct Config {
    name: &'static str,
    cores: usize,
    supervised: bool,
    deploy: bool,
}

fn configs() -> Vec<Config> {
    vec![
        Config {
            name: "c1-sup-steady",
            cores: 1,
            supervised: true,
            deploy: false,
        },
        Config {
            name: "c2-sup-steady",
            cores: 2,
            supervised: true,
            deploy: false,
        },
        Config {
            name: "c4-sup-steady",
            cores: 4,
            supervised: true,
            deploy: false,
        },
        Config {
            name: "c2-sup-deploy",
            cores: 2,
            supervised: true,
            deploy: true,
        },
        Config {
            name: "c4-sup-deploy",
            cores: 4,
            supervised: true,
            deploy: true,
        },
        Config {
            name: "c2-unsup-steady",
            cores: 2,
            supervised: false,
            deploy: false,
        },
        Config {
            name: "c4-unsup-steady",
            cores: 4,
            supervised: false,
            deploy: false,
        },
    ]
}

/// The sharded-fleet experiment.
pub struct Multicore;

impl Experiment for Multicore {
    fn name(&self) -> &'static str {
        "multicore"
    }

    fn title(&self) -> &'static str {
        "MULTICORE: sharded fleet serving (core count x supervision x deploy-in-flight)"
    }

    fn notes(&self) -> &'static str {
        "clean if every cell reports zero fleet-invariant violations \
         (capacity >= (N-1)/N during healthy rolling deploys, poison \
         containment, journal projection == live state) and the deploy \
         cells complete their rollout behind the max-unavailable=1 \
         gate. agg_jobs_per_epoch is the throughput-scaling curve, \
         p99_max the worst shard's tail; fleet_hash certifies the \
         fleet event + incident logs replayed bit-for-bit."
    }

    fn cells(&self, _tier: Tier) -> Vec<Cell> {
        // Already CI-sized; smoke == full keeps one committed baseline
        // valid for both tiers.
        configs()
            .iter()
            .map(|c| Cell::new("zipf-fleet", c.name))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, seed: u64) -> CellMetrics {
        let cfg = configs()
            .into_iter()
            .find(|c| c.name == cell.config)
            .expect("known fleet config");
        let (mut mc, mut svc, orig, initial) = fleet_world(cfg.cores);
        let mut opts = default_fleet_opts(cfg.cores, seed);
        opts.sup.supervise = cfg.supervised;
        if cfg.deploy {
            opts.rollout = Some(default_rollout());
        }
        let rep = run_fleet(&mut mc, &mut svc, &orig, initial, &opts).expect("validated config");
        let uncore = mc.status();

        let shed_jobs: u64 = rep.shards.iter().map(|s| s.shed_jobs).sum();
        let swaps: u64 = rep.shards.iter().map(|s| s.swaps).sum();
        let job_faults: u64 = rep.shards.iter().map(|s| s.job_faults).sum();
        let p99s: Vec<u64> = rep.shards.iter().map(|s| s.p99()).collect();
        let served = rep.served();

        let mut m = CellMetrics::new();
        m.put_u64("cores", cfg.cores as u64)
            .put_u64("violations", rep.violations.len() as u64)
            .put_u64("served", served)
            .put_f64("agg_jobs_per_epoch", served as f64 / EPOCHS as f64)
            .put_u64("p99_max", p99s.iter().copied().max().unwrap_or(0))
            .put_u64("p99_min", p99s.iter().copied().min().unwrap_or(0))
            .put_u64("job_faults", job_faults)
            .put_u64("admitted_direct", rep.admitted_direct)
            .put_u64("forwarded", rep.forwarded)
            .put_u64("retries", rep.retries)
            .put_u64("timeouts", rep.timeouts)
            .put_u64("forward_shed", rep.forward_shed)
            .put_u64("shed_jobs", shed_jobs)
            .put_u64("swaps", swaps)
            .put_u64("min_serving_healthy", rep.min_serving_healthy as u64)
            .put_u64("rollout_deploys", rep.rollout_deploys)
            .put_u64("rollout_completed", u64::from(rep.rollout_completed))
            .put_u64("rollout_frozen", u64::from(rep.rollout_frozen))
            .put_u64("steals", rep.steals)
            .put_u64("l3_extra_peak", uncore.l3_extra_peak)
            .put_u64("mem_extra_peak", uncore.mem_extra_peak)
            .put_u64("fleet_hash", rep.fleet_hash());
        m
    }

    fn finish(&self, report: &mut BenchReport) -> Vec<String> {
        let mut violations = Vec::new();
        for c in &report.cells {
            if c.status != CellStatus::Ok {
                continue;
            }
            let n = c.metrics.get_f64("violations").unwrap_or(f64::NAN);
            if n != 0.0 {
                violations.push(format!("{}: {n:.0} fleet-invariant violation(s)", c.cell));
            }
            if c.metrics.get_f64("served").unwrap_or(0.0) == 0.0 {
                violations.push(format!("{}: fleet served nothing", c.cell));
            }
            let deploy = c.cell.config.ends_with("-deploy");
            if deploy && c.metrics.get_f64("rollout_completed").unwrap_or(0.0) != 1.0 {
                violations.push(format!("{}: rolling deploy did not complete", c.cell));
            }
            if deploy && c.metrics.get_f64("steals").unwrap_or(0.0) == 0.0 {
                violations.push(format!(
                    "{}: no scavenger slices were stolen from the drained shard",
                    c.cell
                ));
            }
            // max-unavailable=1: deploy cells may dip to N-1 but never
            // below; steady cells must never lose a shard at all.
            let cores = c.metrics.get_f64("cores").unwrap_or(0.0);
            let min_serving = c.metrics.get_f64("min_serving_healthy").unwrap_or(0.0);
            let floor = if deploy { cores - 1.0 } else { cores };
            if min_serving < floor {
                violations.push(format!(
                    "{}: min serving shards {min_serving:.0} under the {floor:.0} floor",
                    c.cell
                ));
            }
        }
        violations
    }
}

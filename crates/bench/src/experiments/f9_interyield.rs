//! F9 (§3.3): scavenger instrumentation bounds the inter-yield interval.
//!
//! Primary yields land only where misses are likely, so on a
//! compute-heavy region "adjacent yields can be arbitrarily far apart".
//! The scavenger pass inserts conditional yields targeting a bounded
//! interval, using profiled load costs for the common case and a static
//! worst-case dataflow for the rest.
//!
//! A workload alternating DRAM-missing hops with a long compute burst
//! makes the gap visible. Each cell reports the *static* worst-case bound
//! from the pass (`static_max_cyc`, n/a = unbounded) and the *measured*
//! distribution of gaps between fired yields of scavenger-mode
//! coroutines; the target sweep (150–1200 cycles) quantifies the §3.3
//! tension between timely yielding and check/switch overhead.

use crate::experiment::{Cell, CellMetrics, Experiment, Tier};
use crate::{fresh, pgo_build};
use reach_core::{percentiles, run_interleaved, InterleaveOptions, PipelineOptions};
use reach_instrument::ScavengerOptions;
use reach_sim::{Context, MachineConfig, Mode};
use reach_workloads::{build_chase, ChaseParams};

const N: usize = 8;

const CONFIGS: &[&str] = &[
    "primary-only",
    "scav-150",
    "scav-300",
    "scav-600",
    "scav-1200",
];

const SMOKE: &[&str] = &["primary-only", "scav-300"];

fn params() -> ChaseParams {
    ChaseParams {
        nodes: 512,
        hops: 512,
        node_stride: 4096,
        work_per_hop: 100, // 7 x 100 cycles: ~233 ns of compute per hop,
        work_insts: 7,     // splittable at instruction granularity
        seed: 0xf9,
    }
}

/// The F9 inter-yield-interval experiment.
pub struct F9InterYield;

impl Experiment for F9InterYield {
    fn name(&self) -> &'static str {
        "f9_interyield"
    }

    fn title(&self) -> &'static str {
        "F9: inter-yield interval, primary-only vs scavenger pass (target in cycles)"
    }

    fn notes(&self) -> &'static str {
        "shape: without the scavenger pass the compute burst (~700 cyc) \
         stretches the gap far past any target (static max n/a = unbounded); \
         with it both the static bound and the measured tail collapse to \
         ~the target — and halving the target roughly doubles the \
         conditional yields and their overhead."
    }

    fn cells(&self, tier: Tier) -> Vec<Cell> {
        CONFIGS
            .iter()
            .filter(|c| tier == Tier::Full || SMOKE.contains(c))
            .map(|c| Cell::new("chase-burst", *c))
            .collect()
    }

    fn run_cell(&self, cell: &Cell, _seed: u64) -> CellMetrics {
        let cfg = MachineConfig::default();
        let build = |mem: &mut _, alloc: &mut _| build_chase(mem, alloc, params(), N + 1);
        let scav = cell.config.strip_prefix("scav-").map(|t| ScavengerOptions {
            target_interval: t.parse().expect("target cycles"),
            use_liveness: true,
        });
        let opts = PipelineOptions {
            scavenger: scav,
            ..PipelineOptions::default()
        };
        let built = pgo_build(&cfg, build, N, &opts);

        let (scav_yields, static_max) = match &built.scavenger_report {
            Some(r) => (
                r.yields_inserted as u64,
                r.max_interval_after.map(|v| v as f64).unwrap_or(f64::NAN),
            ),
            None => {
                // Analyze the primary-only binary by running the pass with
                // an enormous target (no insertions, report only).
                let probe = reach_instrument::instrument_scavenger(
                    &built.prog,
                    Some((&built.profile, &built.origin)),
                    &cfg,
                    &ScavengerOptions {
                        target_interval: u64::MAX / 4,
                        use_liveness: true,
                    },
                )
                .unwrap()
                .1;
                (
                    0,
                    probe
                        .max_interval_before
                        .map(|v| v as f64)
                        .unwrap_or(f64::NAN),
                )
            }
        };

        // Measure the fired-yield gap distribution in scavenger mode.
        let (mut m, w) = fresh(&cfg, build);
        let mut ctxs: Vec<Context> = (0..N)
            .map(|i| {
                let mut c = w.instances[i].make_context(i);
                c.mode = Mode::Scavenger; // conditional yields armed
                c
            })
            .collect();
        let iopts = InterleaveOptions {
            record_intervals: true,
            ..InterleaveOptions::default()
        };
        let rep = run_interleaved(&mut m, &built.prog, &mut ctxs, &iopts).unwrap();
        for (i, c) in ctxs.iter().enumerate() {
            w.instances[i].assert_checksum(c);
        }
        let ps = percentiles(&rep.intervals, &[0.5, 0.95]);
        let overhead = (m.counters.check_cycles + m.counters.switch_cycles) as f64
            / m.counters.total_cycles() as f64;

        let mut out = CellMetrics::new();
        out.put_u64("scav_yields", scav_yields)
            .put_f64("static_max_cyc", static_max)
            .put_u64("p50_cyc", ps[0])
            .put_u64("p95_cyc", ps[1])
            .put_u64("max_cyc", rep.intervals.iter().copied().max().unwrap_or(0))
            .put_f64("overhead", overhead);
        out
    }
}

//! The [`Experiment`] abstraction every `exp_*` harness registers into.
//!
//! An experiment is a named matrix of independent **cells** — one
//! (workload × config) point each. The driver (see [`crate::driver`])
//! fans cells out across a thread pool; because every cell builds its own
//! deterministic machine and workload, cells can run in any order on any
//! thread and still produce byte-identical metrics.
//!
//! Cells report their results as typed [`CellMetrics`] (exact `u64`
//! counters, `f64` fractions/ratios, or small enums as strings), which
//! serialize losslessly into the `BENCH_<experiment>.json` schema (see
//! [`crate::report`]) and diff against committed baselines (see
//! [`crate::diff`]).

use crate::report::BenchReport;

/// How much of the matrix to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// The full matrix behind every EXPERIMENTS.md table.
    Full,
    /// A CI-sized subset. Smoke cells are a *subset* of the full matrix
    /// (same workload/config keys, same per-cell work) wherever possible,
    /// so smoke baselines stay comparable with full-tier runs.
    Smoke,
}

impl Tier {
    /// Canonical lowercase name ("full" / "smoke").
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Full => "full",
            Tier::Smoke => "smoke",
        }
    }

    /// Inverse of [`Tier::as_str`].
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "full" => Some(Tier::Full),
            "smoke" => Some(Tier::Smoke),
            _ => None,
        }
    }
}

/// One point of an experiment's matrix: a workload crossed with a
/// configuration. Both strings are stable keys — they name the cell in
/// BENCH JSON and are what [`crate::diff`] matches baselines against.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Cell {
    /// Workload key (e.g. "chase", "multi4", "zipf").
    pub workload: String,
    /// Configuration key (e.g. "n=16", "policy=cost-margin-1.0").
    pub config: String,
}

impl Cell {
    /// Builds a cell from any stringy pair.
    pub fn new(workload: impl Into<String>, config: impl Into<String>) -> Cell {
        Cell {
            workload: workload.into(),
            config: config.into(),
        }
    }

    /// The `workload/config` key used in logs and seed derivation.
    pub fn key(&self) -> String {
        format!("{}/{}", self.workload, self.config)
    }
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.workload, self.config)
    }
}

/// A single metric value. Counters stay exact `u64` (they round-trip
/// through JSON without passing through `f64`); fractions and ratios are
/// `f64` (NaN serializes as `null` — "not available", e.g. a degradation
/// ratio with a zero baseline); small categorical outcomes (degradation
/// rungs, reasons) are strings and diff by equality.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// An exact counter.
    UInt(u64),
    /// A fraction, ratio or estimate; NaN means "not available".
    Float(f64),
    /// A categorical outcome; regressions are inequality.
    Str(String),
}

impl MetricValue {
    /// Numeric view (`UInt` widened to `f64`); `None` for strings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            MetricValue::UInt(n) => Some(*n as f64),
            MetricValue::Float(x) => Some(*x),
            MetricValue::Str(_) => None,
        }
    }

    /// Human rendering for tables: exact ints, 4-decimal floats, "n/a"
    /// for NaN, strings verbatim.
    pub fn render(&self) -> String {
        match self {
            MetricValue::UInt(n) => n.to_string(),
            MetricValue::Float(x) if x.is_nan() => "n/a".into(),
            MetricValue::Float(x) => format!("{x:.4}"),
            MetricValue::Str(s) => s.clone(),
        }
    }
}

/// The ordered metric map one cell produces. Insertion order is the
/// column order in tables and the key order in JSON, so keep it stable
/// across cells of one experiment.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CellMetrics {
    entries: Vec<(String, MetricValue)>,
}

impl CellMetrics {
    /// An empty metric map.
    pub fn new() -> CellMetrics {
        CellMetrics::default()
    }

    /// Inserts (or replaces) an exact counter.
    pub fn put_u64(&mut self, key: impl Into<String>, v: u64) -> &mut Self {
        self.put(key, MetricValue::UInt(v))
    }

    /// Inserts (or replaces) a float metric.
    pub fn put_f64(&mut self, key: impl Into<String>, v: f64) -> &mut Self {
        self.put(key, MetricValue::Float(v))
    }

    /// Inserts (or replaces) a categorical metric.
    pub fn put_str(&mut self, key: impl Into<String>, v: impl Into<String>) -> &mut Self {
        self.put(key, MetricValue::Str(v.into()))
    }

    /// Inserts (or replaces) any metric value.
    pub fn put(&mut self, key: impl Into<String>, v: MetricValue) -> &mut Self {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = v;
        } else {
            self.entries.push((key, v));
        }
        self
    }

    /// Looks a metric up by key.
    pub fn get(&self, key: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Numeric shortcut for [`CellMetrics::get`].
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(MetricValue::as_f64)
    }

    /// Iterates `(key, value)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One experiment: a stable name, a cell matrix per [`Tier`], and a
/// deterministic per-cell measurement.
///
/// Implementations must be `Sync`: the driver calls [`Experiment::run_cell`]
/// from several threads at once. Each call must build all of its own
/// state (machine, workload, instrumented binary) from the cell key and
/// seed alone — no shared mutable state, no ambient randomness — so two
/// runs of the same cell produce byte-identical metrics.
pub trait Experiment: Sync {
    /// Stable snake_case name; `BENCH_<name>.json` is derived from it.
    fn name(&self) -> &'static str;

    /// One-line human title for the rendered table.
    fn title(&self) -> &'static str {
        self.name()
    }

    /// The "shape" note printed after the table (may be empty).
    fn notes(&self) -> &'static str {
        ""
    }

    /// The cell matrix for a tier. Smoke must be a subset-or-equal
    /// amount of work vs full.
    fn cells(&self, tier: Tier) -> Vec<Cell>;

    /// Measures one cell. `seed` is derived from the cell key (see
    /// [`cell_seed`]) and is the only randomness a cell may consume;
    /// experiments reproducing fixed paper tables may ignore it in favor
    /// of their hard-coded workload seeds. Panics are contained by the
    /// driver and recorded as a failed cell.
    fn run_cell(&self, cell: &Cell, seed: u64) -> CellMetrics;

    /// Post-processing over the assembled report: derive cross-cell
    /// metrics (ratios vs a baseline cell) and check experiment-level
    /// bounds. Returned strings are recorded as `violations` in the
    /// report and make the run exit non-zero.
    fn finish(&self, _report: &mut BenchReport) -> Vec<String> {
        Vec::new()
    }
}

/// Derives the deterministic per-cell seed from the experiment and cell
/// keys: FNV-1a over `"<experiment>/<workload>/<config>"`, finalized
/// with the SplitMix64 mixer so related keys land far apart.
pub fn cell_seed(experiment: &str, cell: &Cell) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in experiment
        .as_bytes()
        .iter()
        .chain(b"/")
        .chain(cell.workload.as_bytes())
        .chain(b"/")
        .chain(cell.config.as_bytes())
    {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // SplitMix64 finalizer.
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_seed_is_stable_and_spread() {
        let a = cell_seed("t4", &Cell::new("multi4", "n=1"));
        let b = cell_seed("t4", &Cell::new("multi4", "n=2"));
        let c = cell_seed("t5", &Cell::new("multi4", "n=1"));
        assert_eq!(a, cell_seed("t4", &Cell::new("multi4", "n=1")));
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Key concatenation must not be ambiguous across field borders.
        let d = cell_seed("t4", &Cell::new("multi4/n", "=1"));
        assert_ne!(a, d);
    }

    #[test]
    fn metrics_keep_insertion_order_and_replace() {
        let mut m = CellMetrics::new();
        m.put_u64("b", 2).put_f64("a", 0.5).put_u64("b", 3);
        let keys: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&MetricValue::UInt(3)));
        assert_eq!(m.get_f64("a"), Some(0.5));
    }

    #[test]
    fn render_marks_nan_unavailable() {
        assert_eq!(MetricValue::Float(f64::NAN).render(), "n/a");
        assert_eq!(MetricValue::Float(0.25).render(), "0.2500");
        assert_eq!(MetricValue::UInt(7).render(), "7");
        assert_eq!(MetricValue::Str("full-pgo".into()).render(), "full-pgo");
    }
}

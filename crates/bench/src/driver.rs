//! The parallel experiment driver: fans (experiment × cell) jobs out
//! across a scoped thread pool, contains per-cell failures, renders the
//! human tables and writes one `BENCH_<experiment>.json` per experiment.
//!
//! Every `exp_*` binary funnels through [`single_main`]; `exp_all` runs
//! the whole registry in-process through [`suite_main`] — one shared
//! pool over *all* cells of *all* experiments, so a wide experiment
//! cannot serialize the suite behind it.
//!
//! Failure containment: a cell that panics (the pre-driver `exp_all`
//! aborted the whole suite when one sibling binary failed to launch) is
//! caught, recorded as a `failed` cell with its message, and the rest of
//! the matrix keeps running.

use crate::experiment::{cell_seed, Cell, Experiment, Tier};
use crate::report::{BenchReport, CellResult, CellStatus, SCHEMA_VERSION};
use crate::table::Table;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Driver configuration, shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct DriverOptions {
    /// Full matrix or CI smoke subset.
    pub tier: Tier,
    /// Worker threads; 0 means `available_parallelism`.
    pub jobs: usize,
    /// Where `BENCH_*.json` files land; `None` disables writing.
    pub out_dir: Option<PathBuf>,
    /// Restrict `exp_all` to these experiment names (empty = all).
    pub only: Vec<String>,
}

impl Default for DriverOptions {
    fn default() -> DriverOptions {
        DriverOptions {
            tier: Tier::Full,
            jobs: 0,
            out_dir: Some(PathBuf::from(".")),
            only: Vec::new(),
        }
    }
}

impl DriverOptions {
    /// Parses the shared CLI surface:
    /// `[--smoke] [--jobs N] [--out-dir DIR] [--no-out] [--only a,b]`.
    ///
    /// # Errors
    ///
    /// A human-readable message for an unknown flag or malformed value.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<DriverOptions, String> {
        let mut opts = DriverOptions::default();
        let mut args = args;
        while let Some(a) = args.next() {
            let mut value_of =
                |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
            match a.as_str() {
                "--smoke" => opts.tier = Tier::Smoke,
                "--full" => opts.tier = Tier::Full,
                "--jobs" => {
                    let v = value_of("--jobs")?;
                    opts.jobs = v
                        .parse()
                        .map_err(|_| format!("--jobs: not a number: {v:?}"))?;
                }
                "--out-dir" => opts.out_dir = Some(PathBuf::from(value_of("--out-dir")?)),
                "--no-out" => opts.out_dir = None,
                "--only" => {
                    opts.only = value_of("--only")?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect();
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: [--smoke|--full] [--jobs N] [--out-dir DIR] [--no-out] \
                         [--only exp1,exp2]"
                            .into(),
                    );
                }
                other => return Err(format!("unknown flag {other:?} (try --help)")),
            }
        }
        Ok(opts)
    }

    fn worker_count(&self, jobs_available: usize) -> usize {
        let n = if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.jobs
        };
        n.clamp(1, jobs_available.max(1))
    }
}

/// `git rev-parse --short=12 HEAD`, or "unknown" outside a checkout.
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Runs one cell with panic containment, returning its result and
/// timing.
fn run_one(exp: &dyn Experiment, cell: &Cell) -> CellResult {
    let started = Instant::now();
    let seed = cell_seed(exp.name(), cell);
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| exp.run_cell(cell, seed)));
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    match outcome {
        Ok(metrics) => CellResult {
            cell: cell.clone(),
            status: CellStatus::Ok,
            metrics,
            wall_ms,
        },
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".into());
            CellResult {
                cell: cell.clone(),
                status: CellStatus::Failed(msg),
                metrics: Default::default(),
                wall_ms,
            }
        }
    }
}

/// Runs a set of experiments over one shared worker pool and returns a
/// report per experiment, in input order.
///
/// Per-cell failures (panics) become `failed` cells; experiment-level
/// `finish` violations land in [`BenchReport::violations`]. Neither
/// aborts the suite.
pub fn run_suite(exps: &[&dyn Experiment], opts: &DriverOptions) -> Vec<BenchReport> {
    let suite_start = Instant::now();
    // Flatten: (experiment index, cell index within experiment, cell).
    let matrices: Vec<Vec<Cell>> = exps.iter().map(|e| e.cells(opts.tier)).collect();
    let jobs: Vec<(usize, usize)> = matrices
        .iter()
        .enumerate()
        .flat_map(|(ei, cells)| (0..cells.len()).map(move |ci| (ei, ci)))
        .collect();

    let slots: Vec<Mutex<Vec<Option<CellResult>>>> = matrices
        .iter()
        .map(|cells| Mutex::new(vec![None; cells.len()]))
        .collect();
    let next = AtomicUsize::new(0);
    let workers = opts.worker_count(jobs.len());

    // Suppress the default panic hook's backtrace spam while cells run;
    // contained panics are reported as failed cells instead.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(ei, ci)) = jobs.get(i) else { break };
                let result = run_one(exps[ei], &matrices[ei][ci]);
                slots[ei].lock().unwrap()[ci] = Some(result);
            });
        }
    });
    std::panic::set_hook(prev_hook);

    let sha = git_sha();
    exps.iter()
        .zip(slots)
        .map(|(exp, slot)| {
            let cells: Vec<CellResult> = slot
                .into_inner()
                .unwrap()
                .into_iter()
                .map(|c| c.expect("every cell ran"))
                .collect();
            let mut report = BenchReport {
                experiment: exp.name().to_string(),
                schema_version: SCHEMA_VERSION,
                git_sha: sha.clone(),
                tier: opts.tier,
                cells,
                wall_ms: suite_start.elapsed().as_secs_f64() * 1e3,
                violations: Vec::new(),
            };
            report.violations = exp.finish(&mut report);
            report
        })
        .collect()
}

/// Renders a report as the human table: workload/config columns plus the
/// union of metric keys in first-seen order; failed cells show their
/// error.
pub fn render_report(exp: &dyn Experiment, report: &BenchReport) -> String {
    let mut keys: Vec<String> = Vec::new();
    for c in &report.cells {
        for (k, _) in c.metrics.iter() {
            if !keys.iter().any(|have| have == k) {
                keys.push(k.to_string());
            }
        }
    }
    let mut headers: Vec<&str> = vec!["workload", "config"];
    headers.extend(keys.iter().map(String::as_str));
    let mut t = Table::new(exp.title(), &headers);
    for c in &report.cells {
        let mut row = vec![c.cell.workload.clone(), c.cell.config.clone()];
        match &c.status {
            CellStatus::Ok => {
                row.extend(keys.iter().map(|k| {
                    c.metrics
                        .get(k)
                        .map(|v| v.render())
                        .unwrap_or_else(|| "-".into())
                }));
            }
            CellStatus::Failed(msg) => row.push(format!("FAILED: {msg}")),
        }
        t.row(row);
    }
    t.render()
}

/// Prints a report (table, notes, failures, violations) and returns
/// whether it is clean.
pub fn print_report(exp: &dyn Experiment, report: &BenchReport) -> bool {
    print!("{}", render_report(exp, report));
    if !exp.notes().is_empty() {
        println!("{}", exp.notes());
    }
    let failed: Vec<&CellResult> = report
        .cells
        .iter()
        .filter(|c| matches!(c.status, CellStatus::Failed(_)))
        .collect();
    for c in &failed {
        if let CellStatus::Failed(msg) = &c.status {
            eprintln!("FAILED cell {}/{}: {msg}", report.experiment, c.cell);
        }
    }
    for v in &report.violations {
        eprintln!("VIOLATION {}: {v}", report.experiment);
    }
    println!();
    failed.is_empty() && report.violations.is_empty()
}

/// Runs experiments, prints tables, writes BENCH files; returns the
/// process exit code (0 clean, 1 on any failed cell, violation or write
/// error).
pub fn run_and_emit(exps: &[&dyn Experiment], opts: &DriverOptions) -> i32 {
    let reports = run_suite(exps, opts);
    let mut clean = true;
    for (exp, report) in exps.iter().zip(&reports) {
        clean &= print_report(*exp, report);
        if let Some(dir) = &opts.out_dir {
            match report.write_to_dir(dir) {
                Ok(path) => println!("wrote {}", path.display()),
                Err(e) => {
                    eprintln!("could not write {}: {e}", report.filename());
                    clean = false;
                }
            }
        }
    }
    let total_cells: usize = reports.iter().map(|r| r.cells.len()).sum();
    let failed: usize = reports
        .iter()
        .flat_map(|r| &r.cells)
        .filter(|c| matches!(c.status, CellStatus::Failed(_)))
        .count();
    let violations: usize = reports.iter().map(|r| r.violations.len()).sum();
    println!(
        "{} experiment(s), {} cell(s), {} failed, {} violation(s), tier {}.",
        reports.len(),
        total_cells,
        failed,
        violations,
        opts.tier.as_str(),
    );
    i32::from(!clean)
}

/// `main` body for a single-experiment binary: parse CLI, run, emit.
pub fn single_main(exp: &dyn Experiment) -> ! {
    let opts = match DriverOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    std::process::exit(run_and_emit(&[exp], &opts));
}

/// `main` body for `exp_all`: parse CLI (honoring `--only`), run the
/// registry in-process over one shared pool, emit everything.
pub fn suite_main(all: &[&dyn Experiment]) -> ! {
    let opts = match DriverOptions::parse(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let selected: Vec<&dyn Experiment> = if opts.only.is_empty() {
        all.to_vec()
    } else {
        let unknown: Vec<&String> = opts
            .only
            .iter()
            .filter(|name| !all.iter().any(|e| e.name() == name.as_str()))
            .collect();
        if !unknown.is_empty() {
            eprintln!(
                "unknown experiment(s) {:?}; known: {:?}",
                unknown,
                all.iter().map(|e| e.name()).collect::<Vec<_>>()
            );
            std::process::exit(2);
        }
        all.iter()
            .filter(|e| opts.only.iter().any(|n| n == e.name()))
            .copied()
            .collect()
    };
    std::process::exit(run_and_emit(&selected, &opts));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::CellMetrics;

    /// A tiny deterministic experiment: metrics derived purely from the
    /// cell key and seed; one cell panics on demand.
    struct Toy {
        panic_on: &'static str,
    }

    impl Experiment for Toy {
        fn name(&self) -> &'static str {
            "toy"
        }

        fn cells(&self, tier: Tier) -> Vec<Cell> {
            let n = match tier {
                Tier::Full => 6,
                Tier::Smoke => 2,
            };
            (0..n).map(|i| Cell::new("w", format!("c={i}"))).collect()
        }

        fn run_cell(&self, cell: &Cell, seed: u64) -> CellMetrics {
            assert!(cell.config != self.panic_on, "injected cell failure");
            let mut m = CellMetrics::new();
            m.put_u64("seed_lo", seed & 0xFFFF);
            m.put_f64("half", (seed & 0xFF) as f64 / 2.0);
            m
        }

        fn finish(&self, report: &mut BenchReport) -> Vec<String> {
            if report.cell("w", "c=0").is_some() {
                vec![]
            } else {
                vec!["lost the first cell".into()]
            }
        }
    }

    #[test]
    fn suite_runs_all_cells_in_order_and_in_parallel() {
        let toy = Toy { panic_on: "" };
        let opts = DriverOptions {
            jobs: 4,
            out_dir: None,
            ..DriverOptions::default()
        };
        let reports = run_suite(&[&toy], &opts);
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.cells.len(), 6);
        // Matrix order is preserved regardless of completion order.
        for (i, c) in r.cells.iter().enumerate() {
            assert_eq!(c.cell.config, format!("c={i}"));
            assert_eq!(c.status, CellStatus::Ok);
        }
        assert!(r.violations.is_empty());
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let toy = Toy { panic_on: "" };
        let opts = DriverOptions {
            jobs: 3,
            out_dir: None,
            ..DriverOptions::default()
        };
        let a = run_suite(&[&toy], &opts);
        let b = run_suite(&[&toy], &opts);
        for (ra, rb) in a.iter().zip(&b) {
            for (ca, cb) in ra.cells.iter().zip(&rb.cells) {
                assert_eq!(ca.cell, cb.cell);
                assert_eq!(ca.metrics, cb.metrics);
            }
        }
    }

    /// Regression for the pre-driver `exp_all`, which `panic!`ed out of
    /// the whole suite when launching one sibling failed: a failing cell
    /// must be recorded and every other cell still run.
    #[test]
    fn failing_cell_is_recorded_not_fatal() {
        let toy = Toy { panic_on: "c=2" };
        let opts = DriverOptions {
            jobs: 2,
            out_dir: None,
            ..DriverOptions::default()
        };
        let reports = run_suite(&[&toy], &opts);
        let r = &reports[0];
        assert_eq!(r.cells.len(), 6);
        let failed: Vec<&CellResult> = r
            .cells
            .iter()
            .filter(|c| matches!(c.status, CellStatus::Failed(_)))
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].cell.config, "c=2");
        match &failed[0].status {
            CellStatus::Failed(msg) => assert!(msg.contains("injected"), "msg: {msg}"),
            CellStatus::Ok => unreachable!(),
        }
        // Siblings all completed.
        assert_eq!(
            r.cells
                .iter()
                .filter(|c| c.status == CellStatus::Ok)
                .count(),
            5
        );
    }

    #[test]
    fn smoke_is_a_subset() {
        let toy = Toy { panic_on: "" };
        let full = toy.cells(Tier::Full);
        for c in toy.cells(Tier::Smoke) {
            assert!(full.contains(&c));
        }
    }

    #[test]
    fn cli_parses_the_shared_surface() {
        let opts = DriverOptions::parse(
            [
                "--smoke",
                "--jobs",
                "4",
                "--out-dir",
                "/tmp/x",
                "--only",
                "a,b",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(opts.tier, Tier::Smoke);
        assert_eq!(opts.jobs, 4);
        assert_eq!(
            opts.out_dir.as_deref(),
            Some(std::path::Path::new("/tmp/x"))
        );
        assert_eq!(opts.only, ["a", "b"]);
        assert!(DriverOptions::parse(["--bogus".to_string()].into_iter()).is_err());
        let none = DriverOptions::parse(["--no-out".to_string()].into_iter()).unwrap();
        assert!(none.out_dir.is_none());
    }

    #[test]
    fn render_marks_failed_cells() {
        let toy = Toy { panic_on: "c=1" };
        let opts = DriverOptions {
            tier: Tier::Smoke,
            jobs: 1,
            out_dir: None,
            ..DriverOptions::default()
        };
        let reports = run_suite(&[&toy], &opts);
        let s = render_report(&toy, &reports[0]);
        assert!(s.contains("FAILED"), "{s}");
        assert!(s.contains("seed_lo"), "{s}");
    }
}

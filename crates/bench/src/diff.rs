//! Regression gating between two BENCH reports (or directories of
//! them): every baseline metric must exist in the current run and stay
//! within its per-metric threshold.
//!
//! Comparison rules, per baseline cell matched by (workload, config):
//!
//! * numeric metrics (exact counters and floats compare on the same
//!   axis): relative change `|cur - base| / |base|` must not exceed the
//!   metric's threshold; when the baseline is `0`, the *absolute* change
//!   is held to the threshold instead;
//! * `NaN` (serialized `null`) baselines only match `NaN` currents —
//!   a value appearing where none was available (or vice versa) is a
//!   schema-level change worth failing loudly on;
//! * string metrics (degradation rungs, reasons) must be equal;
//! * a baseline cell or metric missing from the current run is a
//!   violation; *extra* current cells/metrics are reported as notes
//!   (new coverage is not a regression);
//! * `wall_ms`, `git_sha` and tier bookkeeping are observability, never
//!   compared — except that diffing a smoke run against a full run is
//!   refused outright.

use crate::report::{BenchReport, CellStatus};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Per-metric tolerance configuration.
#[derive(Clone, Debug)]
pub struct Thresholds {
    /// Relative tolerance applied when no per-metric override matches.
    pub default_rel: f64,
    /// Metric-key → relative-tolerance overrides.
    pub per_metric: BTreeMap<String, f64>,
    /// Metric keys whose regressions are *reported but never fatal*:
    /// any would-be violation on them is downgraded to a note. Used for
    /// host-wall-clock metrics (e.g. the `simperf` throughput numbers),
    /// which vary with the benchmark host and would make a hard gate
    /// flaky, but whose trajectory is still worth surfacing in CI logs.
    pub report_only: BTreeSet<String>,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds {
            default_rel: 0.10,
            per_metric: BTreeMap::new(),
            report_only: BTreeSet::new(),
        }
    }
}

impl Thresholds {
    /// The tolerance for a metric key.
    pub fn for_metric(&self, key: &str) -> f64 {
        self.per_metric
            .get(key)
            .copied()
            .unwrap_or(self.default_rel)
    }
}

/// Outcome of one comparison.
#[derive(Clone, Debug, Default)]
pub struct DiffResult {
    /// Regressions: each fails the gate.
    pub violations: Vec<String>,
    /// Non-fatal observations (new cells/metrics, skipped baselines).
    pub notes: Vec<String>,
    /// Metrics that were actually compared.
    pub compared: usize,
}

impl DiffResult {
    /// True when the gate passes.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    fn merge(&mut self, other: DiffResult) {
        self.violations.extend(other.violations);
        self.notes.extend(other.notes);
        self.compared += other.compared;
    }
}

/// Compares one current report against its baseline.
pub fn diff_reports(base: &BenchReport, cur: &BenchReport, thr: &Thresholds) -> DiffResult {
    let mut out = DiffResult::default();
    let exp = &base.experiment;
    if base.experiment != cur.experiment {
        out.violations.push(format!(
            "experiment name changed: baseline {:?} vs current {:?}",
            base.experiment, cur.experiment
        ));
        return out;
    }
    if base.tier != cur.tier {
        out.violations.push(format!(
            "{exp}: tier mismatch (baseline {}, current {}) — runs are not comparable",
            base.tier.as_str(),
            cur.tier.as_str()
        ));
        return out;
    }

    for bc in &base.cells {
        let key = format!("{exp}/{}", bc.cell);
        let Some(cc) = cur.cell(&bc.cell.workload, &bc.cell.config) else {
            out.violations
                .push(format!("{key}: cell missing from current run"));
            continue;
        };
        match (&bc.status, &cc.status) {
            (CellStatus::Failed(why), _) => {
                // A failed baseline has no metrics to hold anyone to.
                out.notes
                    .push(format!("{key}: baseline cell failed ({why}); skipped"));
                continue;
            }
            (CellStatus::Ok, CellStatus::Failed(why)) => {
                out.violations.push(format!("{key}: cell now fails: {why}"));
                continue;
            }
            (CellStatus::Ok, CellStatus::Ok) => {}
        }
        for (mk, bv) in bc.metrics.iter() {
            let mkey = format!("{key}:{mk}");
            let problem: Option<String> = match cc.metrics.get(mk) {
                None => Some(format!("{mkey}: metric missing from current run")),
                Some(cv) => {
                    out.compared += 1;
                    match (bv.as_f64(), cv.as_f64()) {
                        (Some(b), Some(c)) => {
                            let tol = thr.for_metric(mk);
                            match (b.is_nan(), c.is_nan()) {
                                (true, true) => None,
                                (true, false) | (false, true) => Some(format!(
                                    "{mkey}: availability changed (baseline {}, current {})",
                                    render_num(b),
                                    render_num(c)
                                )),
                                (false, false) => {
                                    let delta = (c - b).abs();
                                    let rel = if b == 0.0 { delta } else { delta / b.abs() };
                                    if rel > tol {
                                        Some(format!(
                                            "{mkey}: {} -> {} ({}{:.1}% vs tolerance {:.1}%)",
                                            render_num(b),
                                            render_num(c),
                                            if c >= b { "+" } else { "-" },
                                            rel * 100.0,
                                            tol * 100.0
                                        ))
                                    } else {
                                        None
                                    }
                                }
                            }
                        }
                        (None, None) => {
                            if bv != cv {
                                Some(format!("{mkey}: {:?} -> {:?}", bv.render(), cv.render()))
                            } else {
                                None
                            }
                        }
                        _ => Some(format!(
                            "{mkey}: metric type changed ({:?} -> {:?})",
                            bv.render(),
                            cv.render()
                        )),
                    }
                }
            };
            if let Some(p) = problem {
                if thr.report_only.contains(mk) {
                    out.notes.push(format!("{p} [report-only]"));
                } else {
                    out.violations.push(p);
                }
            }
        }
        for (mk, _) in cc.metrics.iter() {
            if bc.metrics.get(mk).is_none() {
                out.notes
                    .push(format!("{key}:{mk}: new metric (not in baseline)"));
            }
        }
    }
    for cc in &cur.cells {
        if base.cell(&cc.cell.workload, &cc.cell.config).is_none() {
            out.notes
                .push(format!("{exp}/{}: new cell (not in baseline)", cc.cell));
        }
    }
    out
}

fn render_num(x: f64) -> String {
    if x.is_nan() {
        "n/a".into()
    } else if x == x.trunc() && x.abs() < 1e15 {
        format!("{x}")
    } else {
        format!("{x:.4}")
    }
}

/// Compares a baseline path against a current path. Files diff 1:1;
/// directories match their `BENCH_*.json` files by name (a baseline file
/// missing from the current directory is a violation, an extra current
/// file a note).
///
/// # Errors
///
/// I/O or parse failures reading either side.
pub fn diff_paths(base: &Path, cur: &Path, thr: &Thresholds) -> Result<DiffResult, String> {
    if base.is_dir() != cur.is_dir() {
        return Err(format!(
            "cannot compare a directory with a file: {} vs {}",
            base.display(),
            cur.display()
        ));
    }
    if !base.is_dir() {
        let b = BenchReport::read_from_file(base)?;
        let c = BenchReport::read_from_file(cur)?;
        return Ok(diff_reports(&b, &c, thr));
    }
    let mut out = DiffResult::default();
    let list = |dir: &Path| -> Result<Vec<String>, String> {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect();
        names.sort();
        Ok(names)
    };
    let base_names = list(base)?;
    if base_names.is_empty() {
        return Err(format!("no BENCH_*.json files in {}", base.display()));
    }
    for name in &base_names {
        let cur_file = cur.join(name);
        if !cur_file.exists() {
            out.violations
                .push(format!("{name}: baseline file missing from current run"));
            continue;
        }
        let b = BenchReport::read_from_file(&base.join(name))?;
        let c = BenchReport::read_from_file(&cur_file)?;
        out.merge(diff_reports(&b, &c, thr));
    }
    for name in list(cur)? {
        if !base_names.contains(&name) {
            out.notes
                .push(format!("{name}: new file (not in baseline)"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Cell, CellMetrics, Tier};
    use crate::report::{CellResult, SCHEMA_VERSION};

    fn report(eff: f64, cycles: u64, rung: &str) -> BenchReport {
        let mut m = CellMetrics::new();
        m.put_f64("eff", eff)
            .put_u64("cycles", cycles)
            .put_str("rung", rung)
            .put_f64("maybe", f64::NAN);
        BenchReport {
            experiment: "demo".into(),
            schema_version: SCHEMA_VERSION,
            git_sha: "x".into(),
            tier: Tier::Smoke,
            cells: vec![CellResult {
                cell: Cell::new("w", "c"),
                status: CellStatus::Ok,
                metrics: m,
                wall_ms: 1.0,
            }],
            wall_ms: 1.0,
            violations: vec![],
        }
    }

    #[test]
    fn identical_reports_pass_with_zero_tolerance() {
        let b = report(0.5, 1000, "full-pgo");
        let thr = Thresholds {
            default_rel: 0.0,
            ..Thresholds::default()
        };
        let d = diff_reports(&b, &b.clone(), &thr);
        assert!(d.ok(), "{:?}", d.violations);
        assert_eq!(d.compared, 4);
    }

    #[test]
    fn at_threshold_passes_past_threshold_fails() {
        let b = report(0.50, 1000, "full-pgo");
        let thr = Thresholds::default(); // 10%
                                         // At (just inside) the threshold: +9.8% is allowed.
        let d = diff_reports(&b, &report(0.549, 1000, "full-pgo"), &thr);
        assert!(d.ok(), "{:?}", d.violations);
        // Past it fails, both directions.
        assert!(!diff_reports(&b, &report(0.556, 1000, "full-pgo"), &thr).ok());
        assert!(!diff_reports(&b, &report(0.44, 1000, "full-pgo"), &thr).ok());
        // Counters use the same relative rule.
        assert!(diff_reports(&b, &report(0.5, 1100, "full-pgo"), &thr).ok());
        assert!(!diff_reports(&b, &report(0.5, 1111, "full-pgo"), &thr).ok());
    }

    #[test]
    fn per_metric_override_wins() {
        let b = report(0.50, 1000, "full-pgo");
        let mut thr = Thresholds::default();
        thr.per_metric.insert("eff".into(), 0.01);
        let d = diff_reports(&b, &report(0.52, 1000, "full-pgo"), &thr);
        assert!(!d.ok());
        assert!(d.violations[0].contains("eff"), "{:?}", d.violations);
    }

    #[test]
    fn string_and_nan_rules() {
        let b = report(0.5, 1000, "full-pgo");
        let thr = Thresholds::default();
        // Rung regression is a violation regardless of numbers.
        let d = diff_reports(&b, &report(0.5, 1000, "scavenger-only"), &thr);
        assert!(!d.ok());
        // NaN baseline vs value: availability change.
        let mut cur = report(0.5, 1000, "full-pgo");
        cur.cells[0].metrics.put_f64("maybe", 3.0);
        assert!(!diff_reports(&b, &cur, &thr).ok());
    }

    #[test]
    fn missing_cell_metric_or_new_failure_violates() {
        let b = report(0.5, 1000, "full-pgo");
        let thr = Thresholds::default();
        let mut gone = b.clone();
        gone.cells.clear();
        assert!(!diff_reports(&b, &gone, &thr).ok());

        let mut nofail = b.clone();
        nofail.cells[0].status = CellStatus::Failed("boom".into());
        nofail.cells[0].metrics = CellMetrics::new();
        assert!(!diff_reports(&b, &nofail, &thr).ok());
        // Failed *baseline* is skipped with a note, not a violation.
        let d = diff_reports(&nofail, &b, &thr);
        assert!(d.ok());
        assert_eq!(d.notes.len(), 1);
    }

    #[test]
    fn tier_mismatch_is_refused() {
        let b = report(0.5, 1000, "full-pgo");
        let mut cur = b.clone();
        cur.tier = Tier::Full;
        assert!(!diff_reports(&b, &cur, &Thresholds::default()).ok());
    }

    #[test]
    fn report_only_metrics_note_but_never_fail() {
        let b = report(0.50, 1000, "full-pgo");
        let mut thr = Thresholds::default();
        thr.report_only.insert("eff".into());
        // A wild swing on a report-only metric: noted, not fatal.
        let d = diff_reports(&b, &report(5.0, 1000, "full-pgo"), &thr);
        assert!(d.ok(), "{:?}", d.violations);
        assert!(
            d.notes
                .iter()
                .any(|n| n.contains("eff") && n.contains("[report-only]")),
            "{:?}",
            d.notes
        );
        // Even a missing report-only metric is only a note...
        let mut gone = report(0.5, 1000, "full-pgo");
        gone.cells[0].metrics = {
            let mut m = CellMetrics::new();
            m.put_u64("cycles", 1000)
                .put_str("rung", "full-pgo")
                .put_f64("maybe", f64::NAN);
            m
        };
        assert!(diff_reports(&b, &gone, &thr).ok());
        // ...while other metrics still gate as violations.
        assert!(!diff_reports(&b, &report(5.0, 2000, "full-pgo"), &thr).ok());
    }

    #[test]
    fn zero_baseline_uses_absolute_change() {
        let mut b = report(0.5, 1000, "full-pgo");
        b.cells[0].metrics.put_u64("faults", 0);
        let thr = Thresholds::default(); // 0.10 absolute when base == 0
        let mut ok = b.clone();
        ok.cells[0].metrics.put_u64("faults", 0);
        assert!(diff_reports(&b, &ok, &thr).ok());
        let mut bad = b.clone();
        bad.cells[0].metrics.put_u64("faults", 2);
        assert!(!diff_reports(&b, &bad, &thr).ok());
    }
}

//! # reach-bench — experiment harnesses
//!
//! One `exp_*` binary per experiment in DESIGN.md §5 / EXPERIMENTS.md.
//! Every experiment is a library module in [`experiments`] implementing
//! the [`Experiment`] trait: a named matrix of deterministic
//! (workload × config) cells. The shared [`driver`] fans cells out
//! across a scoped thread pool (per-cell seeds derived from the cell
//! key), renders the paper table, and writes one machine-readable
//! `BENCH_<experiment>.json` per experiment (see [`report`]).
//!
//! The `exp_*` binaries are thin wrappers over
//! [`driver::single_main`]; `exp_all` runs the whole registry
//! in-process via [`driver::suite_main`]; `bench_diff` gates two BENCH
//! runs against per-metric regression thresholds (see [`diff`]).
//!
//! Run the CI-sized tier with:
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_all -- --smoke --jobs 4
//! ```
//!
//! Criterion benches (`benches/`) measure the host-hardware side: real
//! coroutine resume cost, real thread hand-off cost, and real
//! prefetch-interleaving speedups.

pub mod diff;
pub mod driver;
pub mod experiment;
pub mod experiments;
pub mod harness;
pub mod report;
pub mod table;
pub mod workloads;

pub use diff::{diff_paths, diff_reports, DiffResult, Thresholds};
pub use driver::{run_suite, DriverOptions};
pub use experiment::{cell_seed, Cell, CellMetrics, Experiment, MetricValue, Tier};
pub use harness::{fresh, interleave_checked, pgo_build, RunRow, WorkloadBuilder, LAYOUT_BASE};
pub use report::{BenchReport, CellResult, CellStatus, SCHEMA_VERSION};
pub use table::{cyc_ns, f, pct, Table};
pub use workloads::{workload_builder, WORKLOAD_NAMES};

//! # reach-bench — experiment harnesses
//!
//! One `exp_*` binary per experiment in DESIGN.md §5 / EXPERIMENTS.md.
//! Each binary sets up deterministic workloads, runs every mechanism
//! involved, and prints the table or series the paper's claim implies.
//! Criterion benches (`benches/`) measure the host-hardware side: real
//! coroutine resume cost, real thread hand-off cost, and real
//! prefetch-interleaving speedups.
//!
//! Run all experiments with:
//!
//! ```sh
//! for b in $(cargo run --bin 2>&1 | grep exp_); do cargo run --release --bin $b; done
//! ```

pub mod harness;
pub mod table;
pub mod workloads;

pub use harness::{fresh, interleave_checked, pgo_build, RunRow, WorkloadBuilder, LAYOUT_BASE};
pub use table::{cyc_ns, f, pct, Table};
pub use workloads::{workload_builder, WORKLOAD_NAMES};

//! Shared experiment plumbing: fresh deterministic machine+workload
//! setups, the PGO convenience wrapper, and per-mechanism run rows.

use reach_core::{
    pgo_pipeline, run_interleaved, CycleSummary, InstrumentedBinary, InterleaveOptions,
    PipelineOptions,
};
use reach_sim::{Context, Machine, MachineConfig, Memory};
use reach_workloads::{AddrAlloc, BuiltWorkload};

/// Base address where workload layout begins; high enough to dodge the
/// null page, low enough to stay readable in dumps.
pub const LAYOUT_BASE: u64 = 0x10_0000;

/// A boxed deterministic workload constructor, the currency experiment
/// harnesses pass around when one binary covers several workload cases.
pub type WorkloadBuilder = Box<dyn Fn(&mut Memory, &mut AddrAlloc) -> BuiltWorkload>;

/// Builds a fresh machine and lays out a workload in it with a fresh
/// allocator. The builder closure must be deterministic so that repeated
/// calls (for different mechanisms) see identical layouts.
pub fn fresh<W>(
    cfg: &MachineConfig,
    build: impl FnOnce(&mut Memory, &mut AddrAlloc) -> W,
) -> (Machine, W) {
    let mut m = Machine::new(cfg.clone());
    let mut alloc = AddrAlloc::new(LAYOUT_BASE);
    let w = build(&mut m.mem, &mut alloc);
    (m, w)
}

/// Runs the full PGO pipeline for a workload builder: profiles instance
/// `profile_idx` on a throwaway machine, returning the instrumented
/// binary. The caller then evaluates on a *fresh* machine from the same
/// builder.
///
/// # Panics
///
/// Panics if the pipeline fails — experiment harnesses treat that as a
/// configuration bug.
pub fn pgo_build(
    cfg: &MachineConfig,
    build: impl FnOnce(&mut Memory, &mut AddrAlloc) -> BuiltWorkload,
    profile_idx: usize,
    opts: &PipelineOptions,
) -> InstrumentedBinary {
    let (mut m, w) = fresh(cfg, build);
    let mut prof = vec![w.instances[profile_idx].make_context(1000 + profile_idx)];
    pgo_pipeline(&mut m, &w.prog, &mut prof, opts).expect("pipeline failed")
}

/// One mechanism's outcome on one workload configuration.
#[derive(Clone, Debug)]
pub struct RunRow {
    /// Mechanism label.
    pub name: String,
    /// Wall-clock cycles of the measured phase.
    pub cycles: u64,
    /// Cycle accounting.
    pub summary: CycleSummary,
    /// Finished-context latencies.
    pub latencies: Vec<u64>,
}

impl RunRow {
    /// Builds a row from a machine after the measured phase.
    pub fn from_machine(
        name: impl Into<String>,
        machine: &Machine,
        cycles: u64,
        latencies: Vec<u64>,
    ) -> RunRow {
        RunRow {
            name: name.into(),
            cycles,
            summary: CycleSummary::from_counters(&machine.counters, &machine.cfg),
            latencies,
        }
    }
}

/// Convenience: interleave `ids` instances of `w` over `prog` on
/// `machine`; asserts all complete with correct checksums and returns
/// the report.
///
/// # Panics
///
/// Panics on execution errors or checksum mismatches.
pub fn interleave_checked(
    machine: &mut Machine,
    prog: &reach_sim::Program,
    w: &BuiltWorkload,
    ids: std::ops::Range<usize>,
    opts: &InterleaveOptions,
) -> (reach_core::InterleaveReport, Vec<Context>) {
    let mut ctxs: Vec<Context> = ids
        .clone()
        .map(|i| w.instances[i].make_context(i))
        .collect();
    let rep = run_interleaved(machine, prog, &mut ctxs, opts).expect("interleave failed");
    assert_eq!(rep.completed, ids.len(), "not all instances completed");
    for (k, i) in ids.enumerate() {
        w.instances[i].assert_checksum(&ctxs[k]);
    }
    (rep, ctxs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_core::PipelineOptions;
    use reach_workloads::{build_chase, ChaseParams};

    fn params() -> ChaseParams {
        ChaseParams {
            nodes: 128,
            hops: 128,
            node_stride: 4096,
            work_per_hop: 10,
            work_insts: 1,
            seed: 42,
        }
    }

    #[test]
    fn fresh_is_deterministic() {
        let cfg = MachineConfig::default();
        let (_, w1) = fresh(&cfg, |mem, alloc| build_chase(mem, alloc, params(), 2));
        let (_, w2) = fresh(&cfg, |mem, alloc| build_chase(mem, alloc, params(), 2));
        assert_eq!(w1.instances, w2.instances);
    }

    #[test]
    fn pgo_build_then_interleave_checked() {
        let cfg = MachineConfig::default();
        let built = pgo_build(
            &cfg,
            |mem, alloc| build_chase(mem, alloc, params(), 3),
            2,
            &PipelineOptions::default(),
        );
        let (mut m, w) = fresh(&cfg, |mem, alloc| build_chase(mem, alloc, params(), 3));
        let (rep, _) =
            interleave_checked(&mut m, &built.prog, &w, 0..2, &InterleaveOptions::default());
        assert_eq!(rep.completed, 2);
        let row = RunRow::from_machine("pgo", &m, rep.cycles, vec![]);
        assert!(row.summary.efficiency > 0.0);
    }
}

//! `reach-chaos` — deterministic crash–restart chaos campaigns from the
//! command line.
//!
//! Runs seed-derived randomized fault schedules (crash instants,
//! journal torn-writes/partial-flushes, the PR 2 fault channels, stale
//! rebuilds, runaway scavengers) against the supervised zipf-drift
//! service, audits every run with the five chaos safety oracles, and —
//! when a schedule violates — prints it as a copy-pasteable
//! `ChaosSchedule` constructor chain, optionally shrunk to a minimal
//! repro first.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin reach_chaos -- \
//!     [--campaigns N] [--seed S] [--minimize] [--broken] \
//!     [--fleet [--shards N]]
//! ```
//!
//! Options:
//!
//! * `--campaigns N` — schedules to run (default 50).
//! * `--seed S` — campaign seed; campaign `i` of seed `S` is identical
//!   across machines and reruns (default 1).
//! * `--minimize` — shrink each violating schedule (drop crashes, zero
//!   channels, bisect crash instants) before printing its repro.
//! * `--broken` — sabotage recovery on purpose (`revalidate: false`
//!   plus artifact bit-rot between crash and restart) to demo the
//!   oracle catching it; with `--minimize`, the shrinker demo too.
//! * `--fleet` — run *fleet* schedules instead: shard crashes
//!   mid-rollout, torn journals on one shard, runaway scavengers on
//!   another, poisoned rolling deploys, audited by the fleet oracles
//!   (capacity, poison containment, journal-projection ≡ live state,
//!   bounded unavailability). Not combinable with `--minimize` or
//!   `--broken`.
//! * `--shards N` — fleet width for `--fleet` (default 2).
//!
//! Exit status: 0 when every schedule passed all oracles, 1 when any
//! violated (including under `--broken` — the violation is the point,
//! but the exit code stays honest), 2 on usage errors.

use reach_bench::experiments::chaos::{default_chaos_opts, drift_world};
use reach_bench::experiments::multicore::{default_fleet_chaos_opts, fleet_chaos_factory};
use reach_core::{minimize, run_campaigns, run_fleet_campaigns, run_schedule, StoredBuild};
use reach_sim::Inst;

const MINIMIZE_BUDGET: u64 = 128;

fn usage() -> ! {
    eprintln!(
        "usage: reach_chaos [--campaigns N] [--seed S] [--minimize] [--broken] \
         [--fleet [--shards N]]"
    );
    std::process::exit(2);
}

/// Runs randomized fleet schedules and reports like the single-shard
/// path: aggregate counters, the batch xr-hash, and a copy-pasteable
/// repro for every violating schedule. Exit 1 on any violation.
fn fleet_main(campaigns: u64, seed: u64, shards: usize) -> ! {
    let opts = default_fleet_chaos_opts(shards);
    let mut factory = fleet_chaos_factory(shards);
    println!("== reach-chaos --fleet: {campaigns} campaign(s), {shards} shard(s), seed {seed} ==");
    let rep = run_fleet_campaigns(&mut factory, campaigns, seed, &opts).expect("validated config");
    println!(
        "campaigns {}  shard-crashes {}  recoveries {}  rollout-deploys {}  rollouts-frozen {}",
        rep.campaigns, rep.crashes, rep.recoveries, rep.rollout_deploys, rep.rollouts_frozen
    );
    println!(
        "served {}  shed {}  stolen-slices {}  batch fleet hash 0x{:016x}",
        rep.served, rep.shed, rep.steals, rep.xr_hash
    );
    if rep.violations.is_empty() {
        println!(
            "OK: zero fleet-oracle violations across {} campaign(s).",
            rep.campaigns
        );
        std::process::exit(0);
    }
    eprintln!(
        "FAIL: {} of {} campaign(s) violated a fleet oracle:",
        rep.violating, rep.campaigns
    );
    for (schedule, violations) in &rep.violations {
        eprintln!("-- schedule: {}", schedule.repro());
        for v in violations {
            eprintln!("   {v}");
        }
    }
    std::process::exit(1);
}

fn parse_u64(arg: Option<String>, flag: &str) -> u64 {
    match arg.as_deref().map(str::parse) {
        Some(Ok(v)) => v,
        _ => {
            eprintln!("{flag} needs an unsigned integer");
            usage();
        }
    }
}

fn main() {
    let mut campaigns = 50u64;
    let mut seed = 1u64;
    let mut do_minimize = false;
    let mut broken = false;
    let mut fleet = false;
    let mut shards = 2usize;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--campaigns" => campaigns = parse_u64(args.next(), "--campaigns"),
            "--seed" => seed = parse_u64(args.next(), "--seed"),
            "--minimize" => do_minimize = true,
            "--broken" => broken = true,
            "--fleet" => fleet = true,
            "--shards" => shards = parse_u64(args.next(), "--shards") as usize,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if fleet {
        if do_minimize || broken {
            eprintln!("--fleet does not combine with --minimize/--broken");
            usage();
        }
        fleet_main(campaigns, seed, shards);
    }

    let mut opts = default_chaos_opts();
    if broken {
        // The deliberately-broken recovery path the campaign engine
        // exists to catch: skip re-validation and bit-rot the deployed
        // artifact's yield save sets between crash and restart.
        opts.recover.revalidate = false;
        opts.corrupt_artifacts = Some(|b: &mut StoredBuild| {
            for inst in &mut b.prog.insts {
                if let Inst::Yield { save_regs, .. } = inst {
                    *save_regs = Some(0);
                }
            }
        });
    }

    println!(
        "== reach-chaos: {campaigns} campaign(s), seed {seed}{} ==",
        if broken { ", recovery SABOTAGED" } else { "" }
    );
    let rep = run_campaigns(&mut drift_world, campaigns, seed, &opts).expect("validated config");
    println!(
        "campaigns {}  crashes {}  segments {}  degraded-recoveries {}  torn-tails {}",
        rep.campaigns, rep.crashes, rep.segments, rep.recoveries_degraded, rep.torn_tails
    );
    println!(
        "served {}  shed {}  swaps {}  rebuilds {}  journal-records {}",
        rep.served, rep.shed_jobs, rep.swaps, rep.rebuilds, rep.journal_records
    );
    println!(
        "recovery host time {:.3} ms  cross-restart incident hash 0x{:016x}",
        rep.recovery_host_ns as f64 / 1e6,
        rep.xr_hash
    );

    if rep.violations.is_empty() {
        println!(
            "OK: zero oracle violations across {} campaign(s).",
            rep.campaigns
        );
        return;
    }

    eprintln!(
        "FAIL: {} of {} campaign(s) violated a safety oracle:",
        rep.violating, rep.campaigns
    );
    for (schedule, violations) in &rep.violations {
        eprintln!(
            "-- schedule ({} events): {}",
            schedule.event_count(),
            schedule.repro()
        );
        for v in violations {
            eprintln!("   {v}");
        }
        if do_minimize {
            let (minimal, trials) = minimize(&mut drift_world, schedule, &opts, MINIMIZE_BUDGET)
                .expect("validated config");
            let rerun = run_schedule(&mut drift_world, &minimal, &opts).expect("validated config");
            eprintln!(
                "   minimized to {} event(s) in {trials} trial(s), still violating ({}):",
                minimal.event_count(),
                rerun.violations.first().map(String::as_str).unwrap_or("?")
            );
            eprintln!("   repro: {}", minimal.repro());
        }
    }
    std::process::exit(1);
}

//! `reach-verify` — translation validation of pipeline rewrites from
//! the command line.
//!
//! Runs the PGO pipeline on named workloads and *proves* each shipped
//! binary observationally equivalent to its original (modulo inserted
//! yields/prefetches) with the symbolic equivalence checker, printing
//! the proof report (or, with `--sfi`, proving the SFI sandboxing pass
//! instead, with the maskedness obligation enabled).
//!
//! ```sh
//! cargo run --release -p reach-bench --bin reach_verify -- [WORKLOAD ...] [options]
//! ```
//!
//! Workloads: `chase multi hash zipf tiered` (default: all).
//!
//! Options:
//!
//! * `--sfi` — verify the SFI sandboxing pass on the original binary
//!   (RL0008 then also requires every rewritten access to be provably
//!   masked).
//! * `--deny CODE`, `--warn CODE`, `--allow CODE` — override a lint's
//!   level; `CODE` is a stable code (`RL0009`) or name
//!   (`save-set-unprovable`).
//! * `--list` — print the lint catalog and exit.
//!
//! Exit status: 0 when every rewrite proved out, 1 when any deny-level
//! equivalence finding fired, 2 on usage errors.

use reach_bench::{fresh, pgo_build, workload_builder, WORKLOAD_NAMES};
use reach_core::PipelineOptions;
use reach_instrument::{
    instrument_sfi, verify_rewrite, verify_rewrite_map, Level, Lint, LintOptions,
};
use reach_sim::MachineConfig;

fn usage() -> ! {
    eprintln!(
        "usage: reach_verify [WORKLOAD ...] [--sfi] \
         [--deny CODE] [--warn CODE] [--allow CODE] [--list]\n\
         workloads: {}",
        WORKLOAD_NAMES.join(" ")
    );
    std::process::exit(2);
}

fn parse_lint_or_die(arg: Option<String>) -> Lint {
    let Some(s) = arg else { usage() };
    match Lint::parse(&s) {
        Some(l) => l,
        None => {
            eprintln!("unknown lint '{s}'; known lints:");
            for l in Lint::ALL {
                eprintln!("  {} {}", l.code(), l.name());
            }
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut names: Vec<String> = Vec::new();
    let mut sfi = false;
    let mut opts = LintOptions::default();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sfi" => sfi = true,
            "--deny" => opts
                .levels
                .push((parse_lint_or_die(args.next()), Level::Deny)),
            "--warn" => opts
                .levels
                .push((parse_lint_or_die(args.next()), Level::Warn)),
            "--allow" => opts
                .levels
                .push((parse_lint_or_die(args.next()), Level::Allow)),
            "--list" => {
                println!("{:<8} {:<32} default", "code", "name");
                for l in Lint::ALL {
                    println!("{:<8} {:<32} {}", l.code(), l.name(), l.default_level());
                }
                return;
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with('-') => usage(),
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        names = WORKLOAD_NAMES.iter().map(|s| s.to_string()).collect();
    }
    opts.sfi = sfi;

    let cfg = MachineConfig::default();
    let mut any_deny = false;
    for name in &names {
        let Some(build) = workload_builder(name) else {
            eprintln!(
                "unknown workload '{name}'; use: {}",
                WORKLOAD_NAMES.join(" ")
            );
            std::process::exit(2);
        };
        let (_, w) = fresh(&cfg, &*build);
        let (variant, report) = if sfi {
            let (sandboxed, rep) = instrument_sfi(&w.prog).expect("SFI pass failed");
            (
                "sfi",
                verify_rewrite_map(&w.prog, &sandboxed, &rep.pc_map, &opts),
            )
        } else {
            let built = pgo_build(&cfg, &*build, 1, &PipelineOptions::default());
            (
                "pipeline",
                verify_rewrite(&w.prog, &built.prog, &built.origin, &opts),
            )
        };
        println!("== reach-verify: {name} ({variant}) ==");
        println!("{report}");
        any_deny |= !report.ok();
    }
    if any_deny {
        std::process::exit(1);
    }
}

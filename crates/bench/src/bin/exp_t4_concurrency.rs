//! Thin wrapper: runs the [`t4_concurrency`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`t4_concurrency`]: reach_bench::experiments::t4_concurrency

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::t4_concurrency::T4Concurrency);
}

//! T4 (§1): "modern CPUs have only 2 to 8 threads per physical core,
//! which is insufficient for SMT to fully hide the latency of events like
//! memory accesses".
//!
//! Sweeps the degree of concurrency on a DRAM-bound 4-chain lockstep
//! chase. The kernel is compute-light (≈6 ns of work per 100 ns of
//! misses), so hiding needs far more than 8 contexts' worth of
//! *switch-free* overlap — or, for coroutines, yield coalescing to
//! amortize switches across the four independent fills. SMT stops at the
//! hardware's 8 contexts; software coroutines keep scaling.

use reach_bench::{fresh, interleave_checked, pct, pgo_build, Table};
use reach_core::{InterleaveOptions, PipelineOptions};
use reach_sim::{run_smt, MachineConfig};
use reach_workloads::{build_multi_chase, MultiChaseParams};

fn params() -> MultiChaseParams {
    MultiChaseParams {
        chains: 4,
        nodes: 512,
        hops: 512,
        node_stride: 256,
        seed: 0x74,
    }
}

const MAX_N: usize = 64;

fn main() {
    let cfg = MachineConfig::default();
    let build = |mem: &mut _, alloc: &mut _| build_multi_chase(mem, alloc, params(), MAX_N + 1);

    let mut t = Table::new(
        "T4: CPU efficiency vs degree of concurrency (4-chain DRAM chase)",
        &["contexts", "SMT", "coroutines+PGO"],
    );

    let built = pgo_build(&cfg, build, MAX_N, &PipelineOptions::default());

    for &n in &[1usize, 2, 4, 8, 16, 32, 64] {
        let smt = if n <= cfg.smt_max_contexts {
            let (mut m, w) = fresh(&cfg, build);
            let mut ctxs: Vec<_> = (0..n).map(|i| w.instances[i].make_context(i)).collect();
            run_smt(&mut m, &w.prog, &mut ctxs, 1 << 24).unwrap();
            pct(m.counters.cpu_efficiency())
        } else {
            "n/a (hw limit)".to_string()
        };

        let (mut m, w) = fresh(&cfg, build);
        interleave_checked(&mut m, &built.prog, &w, 0..n, &InterleaveOptions::default());
        let coro = pct(m.counters.cpu_efficiency());

        t.row(vec![n.to_string(), smt, coro]);
    }
    t.print();
    println!(
        "SMT is capped at {} contexts by the hardware; coalesced coroutine\n\
         yields keep climbing well past it.",
        cfg.smt_max_contexts
    );
}

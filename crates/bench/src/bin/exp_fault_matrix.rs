//! Thin wrapper: runs the [`fault_matrix`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`fault_matrix`]: reach_bench::experiments::fault_matrix

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::fault_matrix::FaultMatrix);
}

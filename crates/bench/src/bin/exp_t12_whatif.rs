//! T12 (§4.1): the hardware what-if — presence-probe-conditional yields.
//!
//! "Hardware support to expose events, e.g., indicating whether a cache
//! line is in L1/L2 cache, could be highly useful here, as it allows
//! yields to be conditional on whether targeted events actually happen."
//!
//! On a Zipf-skewed KV workload the instrumented value load misses only
//! part of the time: statically-placed primary yields pay a switch on
//! every execution, while probe-conditional yields pay only the (cheap)
//! check on the hit path. The sweep over skew shows the win growing as
//! the hit fraction rises.

use reach_bench::{fresh, interleave_checked, pct, pgo_build, Table};
use reach_core::{make_conditional, InterleaveOptions, PipelineOptions};
use reach_instrument::{Policy, PrimaryOptions};
use reach_sim::MachineConfig;
use reach_workloads::{build_zipf_kv, ZipfKvParams};

const N: usize = 8;

fn main() {
    let cfg = MachineConfig::default();
    let mut t = Table::new(
        "T12: static primary yields vs presence-probe conditional (zipf KV)",
        &["skew", "binary", "yields fired", "suppressed", "CPU eff"],
    );

    for &theta in &[0.0, 0.6, 0.9, 1.1] {
        let params = ZipfKvParams {
            table_entries: 1 << 21,
            lookups: 8192,
            theta,
            seed: 0x712,
        };
        let build = |mem: &mut _, alloc: &mut _| build_zipf_kv(mem, alloc, params, N + 1);
        // Threshold policy on purpose: instrument the skewed load even at
        // moderate likelihood, then let the probe sort hits from misses at
        // run time (the paper's "place conditional yields at locations
        // that often but not always incur target events").
        let opts = PipelineOptions {
            primary: PrimaryOptions {
                policy: Policy::Threshold(0.2),
                ..PrimaryOptions::default()
            },
            ..PipelineOptions::default()
        };
        let built = pgo_build(&cfg, build, N, &opts);
        let conditional = make_conditional(&built.prog);

        for (name, prog) in [("static", &built.prog), ("probe-cond", &conditional)] {
            let (mut m, w) = fresh(&cfg, build);
            interleave_checked(&mut m, prog, &w, 0..N, &InterleaveOptions::default());
            t.row(vec![
                format!("theta={theta}"),
                name.into(),
                m.counters.yields_fired.to_string(),
                m.counters.yields_suppressed.to_string(),
                pct(m.counters.cpu_efficiency()),
            ]);
        }
    }
    t.print();
    println!(
        "shape: at high skew most lookups hit and the probe suppresses the\n\
         useless switches; at theta=0 nearly every lookup misses and the\n\
         probe only adds its check cost."
    );
}

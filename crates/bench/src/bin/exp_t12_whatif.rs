//! Thin wrapper: runs the [`t12_whatif`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`t12_whatif`]: reach_bench::experiments::t12_whatif

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::t12_whatif::T12WhatIf);
}

//! Thin wrapper: runs the [`selfheal`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`selfheal`]: reach_bench::experiments::selfheal

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::selfheal::SelfHeal);
}

//! F10 (§3.3): dual-mode execution as the scavenger pool scales.
//!
//! A latency-sensitive primary chase co-runs with 0–8 scavenger
//! instances. More scavengers fill more of the primary's miss windows
//! (starved fills drop to zero) and raise machine efficiency, while the
//! primary's latency stays within a small factor of solo — and the
//! on-demand scale-up depth (scavengers chained per fill) reveals how
//! many contexts one 100 ns miss actually needs when the scavengers
//! themselves keep missing.

use reach_bench::{f, fresh, pct, pgo_build, Table};
use reach_core::{run_dual_mode, DualModeOptions, PipelineOptions};
use reach_sim::{Context, MachineConfig};
use reach_workloads::{build_chase, ChaseParams};

const MAX_POOL: usize = 8;

fn params() -> ChaseParams {
    ChaseParams {
        nodes: 512,
        hops: 512,
        node_stride: 4096,
        work_per_hop: 60, // ~20 ns of work per hop
        work_insts: 1,
        seed: 0xf10,
    }
}

fn main() {
    let cfg = MachineConfig::default();
    let build = |mem: &mut _, alloc: &mut _| build_chase(mem, alloc, params(), MAX_POOL + 2);
    let built = pgo_build(&cfg, build, MAX_POOL + 1, &PipelineOptions::default());

    // Solo latency reference.
    let (mut m, w) = fresh(&cfg, build);
    let solo = w.run_solo(&mut m, 0, 1 << 24).stats.latency().unwrap();

    let mut t = Table::new(
        "F10: dual-mode as the scavenger pool grows (primary = cold chase)",
        &[
            "scavengers",
            "primary vs solo",
            "starved fills",
            "max chain/fill",
            "mean fill (cyc)",
            "CPU eff",
        ],
    );

    for pool in 0..=MAX_POOL {
        let (mut m, w) = fresh(&cfg, build);
        let mut primary = w.instances[0].make_context(0);
        let mut scavs: Vec<Context> = (1..=pool).map(|i| w.instances[i].make_context(i)).collect();
        let rep = run_dual_mode(
            &mut m,
            &built.prog,
            &mut primary,
            &built.prog,
            &mut scavs,
            &DualModeOptions::default(),
        )
        .unwrap();
        w.instances[0].assert_checksum(&primary);
        let lat = rep.primary_latency.unwrap();
        t.row(vec![
            pool.to_string(),
            format!("{}x", f(lat as f64 / solo as f64, 2)),
            rep.starved_fills.to_string(),
            rep.max_scavengers_per_fill.to_string(),
            f(rep.mean_fill(), 0),
            pct(m.counters.cpu_efficiency()),
        ]);
    }
    t.print();
    println!(
        "shape: a handful of scavengers suffices (chains >1 show on-demand\n\
         scale-up); primary latency stays bounded while efficiency climbs."
    );
}

//! Thin wrapper: runs the [`f10_dualmode`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`f10_dualmode`]: reach_bench::experiments::f10_dualmode

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::f10_dualmode::F10DualMode);
}

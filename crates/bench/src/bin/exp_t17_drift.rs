//! T17 (extension, §2): continuous PGO under workload drift.
//!
//! §2 grounds the proposal in production profiling infrastructure
//! ("Google-wide profiling", AutoFDO): profiles are collected
//! continuously because behaviour drifts. Here the Zipf KV traffic
//! drifts from uniform (θ=0: every lookup misses DRAM) to extremely hot
//! (θ=2: the head is L1-resident), and the pipeline reacts:
//!
//! 1. instrument against the *old* profile (uniform traffic: the value
//!    load is a guaranteed DRAM miss, clearly worth a yield);
//! 2. production shifts; the stale binary now pays a prefetch+switch on
//!    every lookup for loads that almost always hit — pure overhead;
//! 3. sampling continues on the *instrumented* binary; the new samples
//!    are folded back to original PCs ([`remap_to_origin`]) and compared
//!    with the shipped profile — the miss-distribution distance flags the
//!    drift;
//! 4. re-instrumenting from the fresh profile recovers the efficiency.
//!
//! [`remap_to_origin`]: reach_instrument::remap_to_origin

use reach_bench::{f, interleave_checked, pct, Table};
use reach_core::InterleaveOptions;
use reach_instrument::{instrument_primary, remap_to_origin, smooth_profile, PrimaryOptions};
use reach_profile::{collect, CollectorConfig};
use reach_sim::{Machine, MachineConfig};
use reach_workloads::{build_zipf_kv, AddrAlloc, BuiltWorkload, ZipfKvParams};

const N: usize = 8;

fn params(theta: f64) -> ZipfKvParams {
    ZipfKvParams {
        table_entries: 1 << 21,
        lookups: 8192,
        theta,
        seed: 0x717,
    }
}

fn setup(theta: f64) -> (Machine, BuiltWorkload) {
    let mut m = Machine::new(MachineConfig::default());
    let mut alloc = AddrAlloc::new(reach_bench::LAYOUT_BASE);
    let w = build_zipf_kv(&mut m.mem, &mut alloc, params(theta), N + 1);
    (m, w)
}

/// Collects a raw profile of `prog` on a theta-shaped workload; returns
/// it in `prog`'s own PC space.
fn profile_on(theta: f64, prog: &reach_sim::Program) -> reach_profile::Profile {
    let (mut m, w) = setup(theta);
    let mut ctx = vec![w.instances[N].make_context(99)];
    let (p, _) = collect(&mut m, prog, &mut ctx, &CollectorConfig::default()).unwrap();
    p
}

fn main() {
    let cfg = MachineConfig::default();
    let mcfg = cfg.clone();
    let (_, w0) = setup(0.0);
    let orig = w0.prog.clone();

    // Day 1: uniform traffic; profile and ship.
    let day1_raw = profile_on(0.0, &orig);
    let day1 = smooth_profile(&day1_raw, &orig);
    let opts = PrimaryOptions::default();
    let (shipped, day1_report) = instrument_primary(&orig, &day1, &mcfg, &opts).unwrap();

    let mut t = Table::new(
        "T17: continuous PGO under workload drift (zipf KV, theta 0.0 -> 2.0)",
        &["phase", "binary", "traffic", "CPU eff", "profile distance"],
    );

    let run = |prog: &reach_sim::Program, theta: f64| -> f64 {
        let (mut m, w) = setup(theta);
        interleave_checked(&mut m, prog, &w, 0..N, &InterleaveOptions::default());
        m.counters.cpu_efficiency()
    };

    t.row(vec![
        "day 1".into(),
        format!("PGO@0.0 ({} sites)", day1_report.sites_selected()),
        "theta=0.0".into(),
        pct(run(&shipped, 0.0)),
        "-".into(),
    ]);

    // Day 2: traffic drifts hot; the shipped binary is stale overhead.
    t.row(vec![
        "day 2 (drifted)".into(),
        format!("PGO@0.0 ({} sites)", day1_report.sites_selected()),
        "theta=2.0".into(),
        pct(run(&shipped, 2.0)),
        "-".into(),
    ]);

    // Continuous sampling on the shipped binary under the new traffic,
    // folded back to original PCs.
    let day2_inst_raw = profile_on(2.0, &shipped);
    let day2_raw = remap_to_origin(&day2_inst_raw, &day1_report.pc_map.origin);
    let distance = day1_raw.miss_distribution_distance(&day2_raw);

    // Re-instrument from the fresh profile.
    let day2 = smooth_profile(&day2_raw, &orig);
    let (reshipped, day2_report) = instrument_primary(&orig, &day2, &mcfg, &opts).unwrap();
    t.row(vec![
        "day 2 (re-PGO)".into(),
        format!("PGO@2.0 ({} sites)", day2_report.sites_selected()),
        "theta=2.0".into(),
        pct(run(&reshipped, 2.0)),
        f(distance, 2),
    ]);

    t.print();
    println!(
        "shape: after the drift the shipped binary pays a switch per lookup\n\
         for loads that now hit; the remapped production samples flag the\n\
         drift (distance {:.2}) and one re-instrumentation round strips the\n\
         useless yields — §2's continuous-profiling loop, closed.",
        distance
    );
}

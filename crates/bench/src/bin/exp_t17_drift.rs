//! Thin wrapper: runs the [`t17_drift`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`t17_drift`]: reach_bench::experiments::t17_drift

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::t17_drift::T17Drift);
}

//! T3 (§1/§2): context-switch costs across mechanisms.
//!
//! The paper's numbers: coroutine switches < 10 ns (9 ns for Boost
//! fcontext_t), OS thread/process switches several hundred ns to a few µs
//! [14, 38], SMT switches effectively free but capped at 2–8 contexts.
//! This harness reports (a) the modelled costs, (b) the *measured*
//! per-switch cost extracted from instrumented runs (switch cycles /
//! switches), including the liveness save-set reduction, and (c) how many
//! registers liveness lets an instrumented chase save.
//!
//! The companion Criterion bench (`benches/switch_cost.rs`) measures the
//! host machine's real resume and thread hand-off costs.

use reach_bench::{cyc_ns, fresh, interleave_checked, pgo_build, Table};
use reach_core::{InterleaveOptions, PipelineOptions, SwitchMode};
use reach_instrument::PrimaryOptions;
use reach_sim::isa::NUM_REGS;
use reach_sim::MachineConfig;
use reach_workloads::{build_chase, ChaseParams};

fn params() -> ChaseParams {
    ChaseParams {
        nodes: 1024,
        hops: 1024,
        node_stride: 4096,
        work_per_hop: 10,
        work_insts: 1,
        seed: 0x73,
    }
}

const N: usize = 8;

fn measured_switch(cfg: &MachineConfig, use_liveness: bool, mode: SwitchMode) -> (f64, u64) {
    let opts = PipelineOptions {
        primary: PrimaryOptions {
            use_liveness,
            ..PrimaryOptions::default()
        },
        ..PipelineOptions::default()
    };
    let build = |mem: &mut _, alloc: &mut _| build_chase(mem, alloc, params(), N + 1);
    let built = pgo_build(cfg, build, N, &opts);
    let (mut m, w) = fresh(cfg, build);
    let iopts = InterleaveOptions {
        switch: mode,
        ..InterleaveOptions::default()
    };
    let (rep, _) = interleave_checked(&mut m, &built.prog, &w, 0..N, &iopts);
    (
        m.counters.switch_cycles as f64 / rep.switches.max(1) as f64,
        rep.switches,
    )
}

fn main() {
    let cfg = MachineConfig::default();
    let mut t = Table::new(
        "T3: context switch cost by mechanism",
        &["mechanism", "modelled", "measured/switch", "switches"],
    );

    // Modelled numbers straight from the configuration.
    let full = cfg.coro_switch_cost(NUM_REGS as u8);
    let (coro_full, s1) = measured_switch(&cfg, false, SwitchMode::Coroutine);
    t.row(vec![
        "coroutine (full save)".into(),
        cyc_ns(full, cfg.clock_ghz),
        format!("{coro_full:.1} cyc ({:.1} ns)", coro_full / cfg.clock_ghz),
        s1.to_string(),
    ]);

    let (coro_live, s2) = measured_switch(&cfg, true, SwitchMode::Coroutine);
    t.row(vec![
        "coroutine (liveness save)".into(),
        format!(
            "{} .. {}",
            cyc_ns(cfg.coro_switch_cost(0), cfg.clock_ghz),
            cyc_ns(full, cfg.clock_ghz)
        ),
        format!("{coro_live:.1} cyc ({:.1} ns)", coro_live / cfg.clock_ghz),
        s2.to_string(),
    ]);

    t.row(vec![
        "SMT hardware context".into(),
        cyc_ns(cfg.smt_switch, cfg.clock_ghz),
        "0.0 cyc (0.0 ns)".into(),
        "-".into(),
    ]);

    let (thread, s3) = measured_switch(&cfg, true, SwitchMode::Thread);
    t.row(vec![
        "OS thread".into(),
        cyc_ns(cfg.thread_switch, cfg.clock_ghz),
        format!("{thread:.1} cyc ({:.1} ns)", thread / cfg.clock_ghz),
        s3.to_string(),
    ]);

    t.print();
    println!(
        "liveness saves {:.1} cycles per switch on this workload; the paper's\n\
         9 ns-class coroutine switch is ~{}x cheaper than a 1 us thread switch.",
        coro_full - coro_live,
        (cfg.thread_switch / cfg.coro_switch_base)
    );
}

//! Thin wrapper: runs the [`t3_switch_cost`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`t3_switch_cost`]: reach_bench::experiments::t3_switch_cost

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::t3_switch_cost::T3SwitchCost);
}

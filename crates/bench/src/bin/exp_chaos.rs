//! Thin wrapper: runs the [`chaos`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`chaos`]: reach_bench::experiments::chaos

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::chaos::Chaos);
}

//! Host-side interpreter throughput harness (see
//! [`reach_bench::experiments::simperf`]).
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_simperf -- --smoke
//! ```

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::simperf::SimPerf);
}

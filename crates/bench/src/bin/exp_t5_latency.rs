//! T5 (§1 + §3.3): "SMT is known to likely lead to significantly
//! increased latencies … our proposal can simultaneously achieve low
//! latency and high CPU efficiency."
//!
//! One latency-sensitive *query* (a cold DRAM pointer chase) co-runs with
//! 7 *batch* instances of the same binary whose working sets are cache-
//! resident (warm chases — pure compute from the core's point of view).
//! Measured: the query's latency inflation vs running alone, and machine
//! CPU efficiency:
//!
//! * solo — reference latency, efficiency wasted on stalls;
//! * SMT-8 co-run — fair hardware multiplexing: efficiency recovers but
//!   the query waits its 1/8 issue share (no priority exists);
//! * symmetric coroutines — fair software round-robin: same story;
//! * dual-mode — the query runs primary, batch scavenges its stalls:
//!   near-solo latency at high efficiency.

use reach_bench::{f, pct, Table};
use reach_core::{
    pgo_pipeline, run_dual_mode, run_interleaved, DualModeOptions, InterleaveOptions,
    PipelineOptions,
};
use reach_sim::{run_smt, Context, Machine, MachineConfig, Memory};
use reach_workloads::{build_chase, AddrAlloc, BuiltWorkload, ChaseParams};

const POOL: usize = 7;
const WORK: u32 = 30;

fn query_params() -> ChaseParams {
    ChaseParams {
        nodes: 1024,
        hops: 1024,
        node_stride: 4096, // page-spread: every hop misses DRAM
        work_per_hop: WORK,
        work_insts: 1,
        seed: 0x75,
    }
}

fn batch_params() -> ChaseParams {
    ChaseParams {
        nodes: 64, // 16 KiB: L1-resident after the first lap
        hops: 8192,
        node_stride: 256,
        work_per_hop: WORK, // same program text as the query
        work_insts: 1,
        seed: 0x76,
    }
}

/// Lays out 1 query instance (+1 for profiling) and `POOL` batch
/// instances; both workloads share one program image.
fn setup(mem: &mut Memory, alloc: &mut AddrAlloc) -> (BuiltWorkload, BuiltWorkload) {
    let q = build_chase(mem, alloc, query_params(), 2);
    let b = build_chase(mem, alloc, batch_params(), POOL);
    assert_eq!(q.prog, b.prog, "same binary for query and batch");
    (q, b)
}

fn fresh_setup(cfg: &MachineConfig) -> (Machine, BuiltWorkload, BuiltWorkload) {
    let mut m = Machine::new(cfg.clone());
    let mut alloc = AddrAlloc::new(reach_bench::LAYOUT_BASE);
    let (q, b) = setup(&mut m.mem, &mut alloc);
    (m, q, b)
}

fn contexts(q: &BuiltWorkload, b: &BuiltWorkload) -> Vec<Context> {
    let mut v = vec![q.instances[0].make_context(0)];
    v.extend((0..POOL).map(|i| b.instances[i].make_context(i + 1)));
    v
}

fn main() {
    let cfg = MachineConfig::default();

    // Instrument once, profiling the query-shaped instance.
    let (mut pm, pq, _pb) = fresh_setup(&cfg);
    let mut prof = vec![pq.instances[1].make_context(99)];
    let built = pgo_pipeline(&mut pm, &pq.prog, &mut prof, &PipelineOptions::default()).unwrap();

    let mut t = Table::new(
        "T5: high-priority query latency when co-run with 7 batch instances",
        &[
            "mechanism",
            "query latency (cyc)",
            "vs solo",
            "CPU efficiency",
        ],
    );

    // Solo reference.
    let (mut m, q, _b) = fresh_setup(&cfg);
    let solo_ctx = q.run_solo(&mut m, 0, 1 << 24);
    let solo = solo_ctx.stats.latency().unwrap();
    t.row(vec![
        "solo (no co-runners)".into(),
        solo.to_string(),
        "1.00x".into(),
        pct(m.counters.cpu_efficiency()),
    ]);

    // SMT-8 co-run (uninstrumented binary: hardware needs no rewriting).
    let (mut m, q, b) = fresh_setup(&cfg);
    let mut ctxs = contexts(&q, &b);
    let rep = run_smt(&mut m, &q.prog, &mut ctxs, 1 << 24).unwrap();
    let smt_lat = rep.latencies[0].unwrap();
    q.instances[0].assert_checksum(&ctxs[0]);
    t.row(vec![
        "SMT-8 co-run".into(),
        smt_lat.to_string(),
        format!("{}x", f(smt_lat as f64 / solo as f64, 2)),
        pct(m.counters.cpu_efficiency()),
    ]);

    // Symmetric coroutine interleave over the instrumented binary.
    let (mut m, q, b) = fresh_setup(&cfg);
    let mut ctxs = contexts(&q, &b);
    let rep = run_interleaved(
        &mut m,
        &built.prog,
        &mut ctxs,
        &InterleaveOptions::default(),
    )
    .unwrap();
    let sym_lat = rep.latencies[0].unwrap();
    q.instances[0].assert_checksum(&ctxs[0]);
    t.row(vec![
        "symmetric coroutines".into(),
        sym_lat.to_string(),
        format!("{}x", f(sym_lat as f64 / solo as f64, 2)),
        pct(m.counters.cpu_efficiency()),
    ]);

    // Dual-mode: query primary, batch scavenges.
    let (mut m, q, b) = fresh_setup(&cfg);
    let mut primary = q.instances[0].make_context(0);
    let mut scavs: Vec<Context> = (0..POOL)
        .map(|i| b.instances[i].make_context(i + 1))
        .collect();
    let rep = run_dual_mode(
        &mut m,
        &built.prog,
        &mut primary,
        &built.prog,
        &mut scavs,
        &DualModeOptions::default(),
    )
    .unwrap();
    q.instances[0].assert_checksum(&primary);
    let dual_lat = rep.primary_latency.unwrap();
    t.row(vec![
        "dual-mode (asym. concurrency)".into(),
        dual_lat.to_string(),
        format!("{}x", f(dual_lat as f64 / solo as f64, 2)),
        pct(m.counters.cpu_efficiency()),
    ]);

    t.print();
    println!(
        "shape: SMT and fair round-robin inflate the query several-fold; \n\
         dual-mode keeps it near solo while efficiency stays high."
    );
}

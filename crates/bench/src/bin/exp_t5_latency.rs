//! Thin wrapper: runs the [`t5_latency`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`t5_latency`]: reach_bench::experiments::t5_latency

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::t5_latency::T5Latency);
}

//! T14 (extension): does a hardware stride prefetcher make the software
//! mechanism unnecessary?
//!
//! The paper targets events "not exposed to software" that hardware also
//! cannot *predict* — irregular, dependent accesses. A next-line
//! prefetcher (degree 4, streamer-style) is switched on
//! and the unhidden stall fraction plus the PGO-coroutine efficiency are
//! re-measured on a streaming scan (stride-predictable) and a pointer
//! chase (unpredictable):
//!
//! * the prefetcher nearly eliminates the scan's stalls — hardware owns
//!   the regular patterns, exactly why the cost model should leave them
//!   alone;
//! * the chase is untouched by the prefetcher, and profile-guided
//!   coroutines hide it the same either way — the two mechanisms
//!   complement, not compete.

use reach_baselines::run_sequential;
use reach_bench::{fresh, interleave_checked, pct, pgo_build, Table};
use reach_core::{InterleaveOptions, PipelineOptions};
use reach_sim::{MachineConfig, Memory};
use reach_workloads::{build_chase, build_scan, AddrAlloc, BuiltWorkload, ChaseParams, ScanParams};

const N: usize = 8;

fn chase(mem: &mut Memory, alloc: &mut AddrAlloc) -> BuiltWorkload {
    build_chase(
        mem,
        alloc,
        ChaseParams {
            nodes: 1024,
            hops: 1024,
            node_stride: 4096,
            work_per_hop: 20,
            work_insts: 1,
            seed: 0x714,
        },
        N + 1,
    )
}

fn scan(mem: &mut Memory, alloc: &mut AddrAlloc) -> BuiltWorkload {
    build_scan(
        mem,
        alloc,
        ScanParams {
            words: 1 << 16,
            passes: 1,
            seed: 0x714,
        },
        N + 1,
    )
}

fn main() {
    let mut t = Table::new(
        "T14: hardware stream prefetcher (degree 4) vs the software mechanism",
        &["workload", "hw pf", "stall (unhidden)", "coro+PGO eff"],
    );

    for degree in [0usize, 4] {
        let cfg = MachineConfig {
            hw_prefetch_degree: degree,
            ..MachineConfig::default()
        };
        for (name, build) in [
            (
                "stream scan",
                scan as fn(&mut Memory, &mut AddrAlloc) -> BuiltWorkload,
            ),
            (
                "pointer chase",
                chase as fn(&mut Memory, &mut AddrAlloc) -> BuiltWorkload,
            ),
        ] {
            // Unhidden stall fraction.
            let (mut m, w) = fresh(&cfg, build);
            let mut ctxs = w.make_contexts();
            ctxs.truncate(N);
            run_sequential(&mut m, &w.prog, &mut ctxs, 1 << 26).unwrap();
            let stall = m.counters.stall_fraction();

            // PGO coroutines.
            let built = pgo_build(&cfg, build, N, &PipelineOptions::default());
            let (mut m, w) = fresh(&cfg, build);
            interleave_checked(&mut m, &built.prog, &w, 0..N, &InterleaveOptions::default());
            let coro = m.counters.cpu_efficiency();

            t.row(vec![
                name.into(),
                if degree == 0 { "off" } else { "on" }.into(),
                pct(stall),
                pct(coro),
            ]);
        }
    }
    t.print();
    println!(
        "shape: the prefetcher erases the scan's (predictable) stalls and\n\
         leaves the chase's (dependent) stalls untouched; profile-guided\n\
         coroutines keep hiding the chase either way — the mechanisms are\n\
         complementary, which is why the paper targets the irregular case."
    );
}

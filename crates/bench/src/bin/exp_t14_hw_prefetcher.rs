//! Thin wrapper: runs the [`t14_hw_prefetcher`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`t14_hw_prefetcher`]: reach_bench::experiments::t14_hw_prefetcher

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::t14_hw_prefetcher::T14HwPrefetcher);
}

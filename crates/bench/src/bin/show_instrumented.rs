//! Developer tool: run the PGO pipeline on a named workload and print the
//! annotated before/after disassembly — the "objdump" view of what the
//! instrumenter did and why. With `--lint`, also print the `reach-lint`
//! reports for both the original and the instrumented binary. With
//! `--verify`, run the symbolic equivalence checker and print its proof
//! report (nonzero exit if the rewrite does not prove out).
//!
//! ```sh
//! cargo run --release -p reach-bench --bin show_instrumented [chase|multi|hash|zipf|tiered] [--lint] [--verify]
//! ```

use reach_bench::{fresh, pgo_build, workload_builder, WORKLOAD_NAMES};
use reach_core::PipelineOptions;
use reach_instrument::{lint_program, verify_rewrite, LintOptions};
use reach_sim::MachineConfig;

fn main() {
    let mut name = "chase".to_string();
    let mut lint = false;
    let mut verify = false;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--lint" => lint = true,
            "--verify" => verify = true,
            other => name = other.to_string(),
        }
    }
    let cfg = MachineConfig::default();
    let build = workload_builder(&name).unwrap_or_else(|| {
        eprintln!(
            "unknown workload '{name}'; use {}",
            WORKLOAD_NAMES.join("|")
        );
        std::process::exit(2);
    });

    let (_, w) = fresh(&cfg, &*build);
    let built = pgo_build(&cfg, &*build, 1, &PipelineOptions::default());

    println!("== {name}: original binary ==");
    print!("{}", w.prog.disasm());

    println!("\n== {name}: pipeline report ==");
    for d in &built.primary_report.decisions {
        println!(
            "load @{:>3}: p(miss)={:.2} gain={:>6.1} cyc cost={:>5.1} cyc -> {}",
            d.pc,
            d.likelihood,
            d.gain,
            d.cost,
            if d.instrument { "INSTRUMENT" } else { "skip" }
        );
    }
    if let Some(s) = &built.scavenger_report {
        println!(
            "scavenger: {} conditional yields; static inter-yield interval {:?} -> {:?}",
            s.yields_inserted, s.max_interval_before, s.max_interval_after
        );
    }

    println!("\n== {name}: instrumented binary (| = inserted) ==");
    for (pc, inst) in built.prog.insts.iter().enumerate() {
        let marker = match built.origin[pc] {
            None => '|',
            Some(_) => ' ',
        };
        let origin = built.origin[pc]
            .map(|o| format!("{o:>4}"))
            .unwrap_or_else(|| "   +".into());
        println!("{marker} {pc:>4} (orig {origin}): {inst}");
    }

    if lint {
        let opts = LintOptions::default();
        println!("\n== {name}: reach-lint (original) ==");
        print!("{}", lint_program(&w.prog, None, &opts));
        println!("\n== {name}: reach-lint (instrumented) ==");
        print!("{}", lint_program(&built.prog, Some(&built.origin), &opts));
    }

    if verify {
        println!("\n== {name}: translation validation ==");
        let report = verify_rewrite(&w.prog, &built.prog, &built.origin, &LintOptions::default());
        println!("{report}");
        if !report.ok() {
            std::process::exit(1);
        }
    }
}

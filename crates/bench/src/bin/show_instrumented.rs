//! Developer tool: run the PGO pipeline on a named workload and print the
//! annotated before/after disassembly — the "objdump" view of what the
//! instrumenter did and why.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin show_instrumented [chase|multi|hash|zipf|tiered]
//! ```

use reach_bench::{fresh, pgo_build};
use reach_core::PipelineOptions;
use reach_sim::MachineConfig;
use reach_workloads::{
    build_chase, build_hash, build_multi_chase, build_tiered, build_zipf_kv, ChaseParams,
    HashParams, MultiChaseParams, TieredParams, ZipfKvParams,
};

fn builder(name: &str) -> reach_bench::WorkloadBuilder {
    match name {
        "chase" => Box::new(|mem, alloc| {
            build_chase(
                mem,
                alloc,
                ChaseParams {
                    nodes: 1024,
                    hops: 1024,
                    node_stride: 4096,
                    work_per_hop: 20,
                    work_insts: 1,
                    seed: 1,
                },
                2,
            )
        }),
        "multi" => {
            Box::new(|mem, alloc| build_multi_chase(mem, alloc, MultiChaseParams::default(), 2))
        }
        "hash" => Box::new(|mem, alloc| {
            build_hash(
                mem,
                alloc,
                HashParams {
                    capacity: 1 << 18,
                    occupied: 120_000,
                    lookups: 2048,
                    hit_fraction: 0.8,
                    seed: 1,
                },
                2,
            )
        }),
        "zipf" => Box::new(|mem, alloc| build_zipf_kv(mem, alloc, ZipfKvParams::default(), 2)),
        "tiered" => Box::new(|mem, alloc| {
            build_tiered(
                mem,
                alloc,
                &TieredParams {
                    iters: 8192,
                    ..TieredParams::default()
                },
                2,
            )
        }),
        other => {
            eprintln!("unknown workload '{other}'; use chase|multi|hash|zipf|tiered");
            std::process::exit(2);
        }
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "chase".into());
    let cfg = MachineConfig::default();
    let build = builder(&name);

    let (_, w) = fresh(&cfg, &*build);
    let built = pgo_build(&cfg, &*build, 1, &PipelineOptions::default());

    println!("== {name}: original binary ==");
    print!("{}", w.prog.disasm());

    println!("\n== {name}: pipeline report ==");
    for d in &built.primary_report.decisions {
        println!(
            "load @{:>3}: p(miss)={:.2} gain={:>6.1} cyc cost={:>5.1} cyc -> {}",
            d.pc,
            d.likelihood,
            d.gain,
            d.cost,
            if d.instrument { "INSTRUMENT" } else { "skip" }
        );
    }
    if let Some(s) = &built.scavenger_report {
        println!(
            "scavenger: {} conditional yields; static inter-yield interval {:?} -> {:?}",
            s.yields_inserted, s.max_interval_before, s.max_interval_after
        );
    }

    println!("\n== {name}: instrumented binary (| = inserted) ==");
    for (pc, inst) in built.prog.insts.iter().enumerate() {
        let marker = match built.origin[pc] {
            None => '|',
            Some(_) => ' ',
        };
        let origin = built.origin[pc]
            .map(|o| format!("{o:>4}"))
            .unwrap_or_else(|| "   +".into());
        println!("{marker} {pc:>4} (orig {origin}): {inst}");
    }
}

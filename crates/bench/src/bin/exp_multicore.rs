//! Thin wrapper: runs the [`multicore`] experiment through the shared
//! parallel driver (`--smoke --jobs N --out-dir DIR`; see
//! `reach_bench::driver`).
//!
//! [`multicore`]: reach_bench::experiments::multicore

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::multicore::Multicore);
}

//! Thin wrapper: runs the [`f1_spectrum`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`f1_spectrum`]: reach_bench::experiments::f1_spectrum

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::f1_spectrum::F1Spectrum);
}

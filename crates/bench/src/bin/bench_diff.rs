//! Regression gate between two BENCH runs.
//!
//! ```sh
//! bench_diff <baseline> <current> [--rel TOL] [--metric KEY=TOL]... \
//!     [--report-metric KEY]...
//! ```
//!
//! `<baseline>` and `<current>` are either two `BENCH_*.json` files or
//! two directories of them (matched by file name). Exits non-zero when
//! any baseline metric regresses past its threshold — see
//! [`reach_bench::diff`] for the exact comparison rules.
//! `--report-metric KEY` downgrades all regressions on metric `KEY` to
//! notes (for host-wall-clock metrics whose variance would make a hard
//! gate flaky).
//!
//! ```sh
//! # Gate a fresh smoke run against the committed baselines, with a
//! # tighter bound on CPU efficiency and host throughput report-only:
//! cargo run --release -p reach-bench --bin bench_diff -- \
//!     bench/baselines out --rel 0.10 --metric eff=0.05 \
//!     --report-metric sim_ips
//! ```

use reach_bench::{diff_paths, Thresholds};
use std::path::PathBuf;

const USAGE: &str = "usage: bench_diff <baseline-file-or-dir> <current-file-or-dir> \
     [--rel TOL] [--metric KEY=TOL]... [--report-metric KEY]...";

fn parse(args: impl Iterator<Item = String>) -> Result<(PathBuf, PathBuf, Thresholds), String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut thr = Thresholds::default();
    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--rel" => {
                let v = args.next().ok_or("--rel needs a value")?;
                thr.default_rel = v
                    .parse()
                    .map_err(|_| format!("--rel: not a number: {v:?}"))?;
            }
            "--metric" => {
                let v = args.next().ok_or("--metric needs KEY=TOL")?;
                let (key, tol) = v
                    .split_once('=')
                    .ok_or_else(|| format!("--metric: expected KEY=TOL, got {v:?}"))?;
                let tol: f64 = tol
                    .parse()
                    .map_err(|_| format!("--metric {key}: not a number: {tol:?}"))?;
                thr.per_metric.insert(key.to_string(), tol);
            }
            "--report-metric" => {
                let key = args.next().ok_or("--report-metric needs a metric key")?;
                thr.report_only.insert(key);
            }
            "--help" | "-h" => return Err(USAGE.into()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag {flag:?} (try --help)"));
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    if paths.len() != 2 {
        return Err(USAGE.into());
    }
    let cur = paths.pop().expect("two paths");
    let base = paths.pop().expect("two paths");
    Ok((base, cur, thr))
}

fn main() {
    let (base, cur, thr) = match parse(std::env::args().skip(1)) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let result = match diff_paths(&base, &cur, &thr) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("bench_diff: {msg}");
            std::process::exit(2);
        }
    };
    for note in &result.notes {
        println!("note: {note}");
    }
    if result.violations.is_empty() {
        println!(
            "OK: {} metric(s) within thresholds ({} vs {}).",
            result.compared,
            base.display(),
            cur.display()
        );
    } else {
        eprintln!(
            "FAIL: {} regression(s) across {} compared metric(s):",
            result.violations.len(),
            result.compared
        );
        for v in &result.violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}

//! T2 (§1): "some widely-used modern applications lose more than 60% of
//! all processor cycles due to memory-bound CPU stalls".
//!
//! Measures the stall-cycle fraction of each workload run plainly (no
//! hiding) on the default machine. The memory-bound kernels (pointer
//! chase, large hash probe, uniform KV over a DRAM-sized table) must land
//! above 60%; the locality controls (streaming scan, hot KV) stay below.

use reach_baselines::run_sequential;
use reach_bench::{fresh, pct, Table};
use reach_sim::MachineConfig;
use reach_workloads::{
    build_chase, build_hash, build_scan, build_search, build_zipf_kv, ChaseParams, HashParams,
    ScanParams, SearchParams, ZipfKvParams,
};

fn main() {
    let cfg = MachineConfig::default();
    let mut t = Table::new(
        "T2: memory-bound stall fraction, unhidden (paper: >60% for modern apps)",
        &["workload", "stall", "busy"],
    );

    let mut run = |name: &str, m: &mut reach_sim::Machine, w: &reach_workloads::BuiltWorkload| {
        let mut ctxs = w.make_contexts();
        run_sequential(m, &w.prog, &mut ctxs, 1 << 26).unwrap();
        for (i, c) in ctxs.iter().enumerate() {
            w.instances[i].assert_checksum(c);
        }
        t.row(vec![
            name.to_string(),
            pct(m.counters.stall_fraction()),
            pct(m.counters.cpu_efficiency()),
        ]);
    };

    {
        let (mut m, w) = fresh(&cfg, |mem, alloc| {
            build_chase(
                mem,
                alloc,
                ChaseParams {
                    nodes: 8192,
                    hops: 8192,
                    node_stride: 4096,
                    work_per_hop: 0,
                    work_insts: 1,
                    seed: 0x72,
                },
                1,
            )
        });
        run("pointer chase (DRAM)", &mut m, &w);
    }
    {
        let (mut m, w) = fresh(&cfg, |mem, alloc| {
            build_hash(
                mem,
                alloc,
                HashParams {
                    capacity: 1 << 20, // 16 MiB > L3
                    occupied: 500_000,
                    lookups: 4096,
                    hit_fraction: 0.8,
                    seed: 0x72,
                },
                1,
            )
        });
        run("hash probe (16 MiB table)", &mut m, &w);
    }
    {
        let (mut m, w) = fresh(&cfg, |mem, alloc| {
            build_zipf_kv(
                mem,
                alloc,
                ZipfKvParams {
                    table_entries: 1 << 21,
                    lookups: 8192,
                    theta: 0.0, // uniform: the analytics-like worst case
                    seed: 0x72,
                },
                1,
            )
        });
        run("uniform KV (16 MiB values)", &mut m, &w);
    }
    {
        let (mut m, w) = fresh(&cfg, |mem, alloc| {
            build_search(
                mem,
                alloc,
                SearchParams {
                    array_len: 1 << 21,
                    searches: 1024,
                    seed: 0x72,
                },
                1,
            )
        });
        run("binary search (16 MiB array)", &mut m, &w);
    }
    {
        let (mut m, w) = fresh(&cfg, |mem, alloc| {
            build_zipf_kv(
                mem,
                alloc,
                ZipfKvParams {
                    table_entries: 1 << 21,
                    lookups: 8192,
                    theta: 1.2, // hot head: the locality control
                    seed: 0x72,
                },
                1,
            )
        });
        run("skewed KV (theta=1.2)", &mut m, &w);
    }
    {
        let (mut m, w) = fresh(&cfg, |mem, alloc| {
            build_scan(
                mem,
                alloc,
                ScanParams {
                    words: 1 << 15, // 256 KiB: L2-resident once warm
                    passes: 8,
                    seed: 0x72,
                },
                1,
            )
        });
        run("warm scan (256 KiB x8)", &mut m, &w);
    }

    t.print();
    println!("claim holds if the first four rows show stall > 60%.");
}

//! Thin wrapper: runs the [`t2_stall_fraction`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`t2_stall_fraction`]: reach_bench::experiments::t2_stall_fraction

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::t2_stall_fraction::T2StallFraction);
}

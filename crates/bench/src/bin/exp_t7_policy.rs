//! Thin wrapper: runs the [`t7_policy`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`t7_policy`]: reach_bench::experiments::t7_policy

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::t7_policy::T7Policy);
}

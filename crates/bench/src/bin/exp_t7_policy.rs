//! T7 (§3.2): the yield-insertion trade-off and the policies that
//! navigate it.
//!
//! "Aggressive instrumentation minimizes CPU stalls due to uninstrumented
//! cache misses, at the risk of incurring unnecessary overhead if a load
//! turns out to be a cache hit." On the tiered workload, the four sites'
//! miss likelihoods are ≈ {0, mixed, ~1, ~1} but their *stalls* differ
//! sharply (L3-resident ≈ 4 ns visible, DRAM ≈ 90 ns): a pure likelihood
//! threshold cannot distinguish the L3 site (likely miss, not worth a
//! switch) from the DRAM site (likely miss, very worth it) — the
//! quantitative gain/cost model can.

use reach_bench::{fresh, interleave_checked, pct, pgo_build, Table};
use reach_core::{InterleaveOptions, PipelineOptions};
use reach_instrument::{Policy, PrimaryOptions};
use reach_sim::MachineConfig;
use reach_workloads::{build_tiered, TieredParams};

const N: usize = 8;

fn main() {
    let cfg = MachineConfig::default();
    let params = TieredParams {
        iters: 8192,
        ..TieredParams::default()
    };
    let build = |mem: &mut _, alloc: &mut _| build_tiered(mem, alloc, &params, N + 1);

    let mut t = Table::new(
        "T7: insertion policy sweep (tiered workload, per-site stalls differ)",
        &["policy", "sites", "yields fired", "CPU eff"],
    );

    let run = |name: String, policy: Policy, t: &mut Table| {
        let opts = PipelineOptions {
            primary: PrimaryOptions {
                policy,
                ..PrimaryOptions::default()
            },
            ..PipelineOptions::default()
        };
        let built = pgo_build(&cfg, build, N, &opts);
        let (mut m, w) = fresh(&cfg, build);
        interleave_checked(&mut m, &built.prog, &w, 0..N, &InterleaveOptions::default());
        t.row(vec![
            name,
            built.primary_report.sites_selected().to_string(),
            m.counters.yields_fired.to_string(),
            pct(m.counters.cpu_efficiency()),
        ]);
    };

    for &thr in &[0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
        run(format!("threshold {thr}"), Policy::Threshold(thr), &mut t);
    }
    run("top-1 by stall".into(), Policy::TopK(1), &mut t);
    run("top-2 by stall".into(), Policy::TopK(2), &mut t);
    run(
        "cost model (margin 1.0)".into(),
        Policy::CostModel { margin: 1.0 },
        &mut t,
    );
    run("all loads".into(), Policy::All, &mut t);
    t.print();
    println!(
        "shape: low thresholds over-instrument (hit sites pay switches),\n\
         very high thresholds miss the DRAM site; the gain/cost model picks\n\
         only the sites whose hidden stall beats the switch price."
    );
}

//! T15 (§2): instrumentation-based vs sample-based profiling.
//!
//! The paper's case for sampling: instrumentation-based profiling "incurs
//! significant CPU and memory overhead" and "cannot easily support our
//! proposal, because it is hard to obtain visibility into hardware events
//! like L2/L3 cache misses with only instrumentation".
//!
//! Both collectors run over the same workloads:
//!
//! * **counting instrumentation** — a load/add/store counter update at
//!   every load site: exact execution counts, zero event visibility, and
//!   overhead paid on *every* execution (plus counter-traffic cache
//!   pollution);
//! * **PEBS-style sampling** — periodic samples of miss loads, stall
//!   cycles and retired instructions: approximate counts, full event
//!   visibility, overhead proportional to the sampling rate.

use reach_bench::{fresh, pct, Table};
use reach_instrument::{instrument_counting, R_COUNTER_BASE};
use reach_profile::{collect, CollectorConfig};
use reach_sim::MachineConfig;
use reach_workloads::{
    build_chase, build_scan, build_tiered, ChaseParams, ScanParams, TieredParams,
};

fn main() {
    let cfg = MachineConfig::default();
    let mut t = Table::new(
        "T15: profiling method comparison (overhead and event visibility)",
        &[
            "workload",
            "method",
            "cycle overhead",
            "inst overhead",
            "exec counts",
            "miss visibility",
        ],
    );

    let cases: Vec<(&str, reach_bench::WorkloadBuilder)> = vec![
        (
            "pointer chase",
            Box::new(|mem, alloc| {
                build_chase(
                    mem,
                    alloc,
                    ChaseParams {
                        nodes: 2048,
                        hops: 2048,
                        node_stride: 4096,
                        work_per_hop: 10,
                        work_insts: 1,
                        seed: 0x715,
                    },
                    1,
                )
            }),
        ),
        (
            "tiered sites",
            Box::new(|mem, alloc| {
                build_tiered(
                    mem,
                    alloc,
                    &TieredParams {
                        iters: 8192,
                        ..TieredParams::default()
                    },
                    1,
                )
            }),
        ),
        (
            "warm scan (compute-bound)",
            Box::new(|mem, alloc| {
                build_scan(
                    mem,
                    alloc,
                    ScanParams {
                        words: 1 << 12, // 32 KiB: L1-resident once warm
                        passes: 16,
                        seed: 0x715,
                    },
                    1,
                )
            }),
        ),
    ];

    for (name, build) in &cases {
        // Clean run for the overhead baseline.
        let (mut m, w) = fresh(&cfg, &**build);
        w.run_solo(&mut m, 0, 1 << 26);
        let clean_cycles = m.now;
        let clean_insts = m.counters.instructions;

        // Counting instrumentation.
        let (mut m, w) = fresh(&cfg, &**build);
        let counted = instrument_counting(&w.prog).expect("counting pass");
        let counter_base = 0xF000_0000u64;
        let mut ctx = w.instances[0].make_context(0);
        ctx.set_reg(R_COUNTER_BASE, counter_base);
        m.run_to_completion(&counted.prog, &mut ctx, 1 << 26)
            .unwrap();
        w.instances[0].assert_checksum(&ctx);
        let counting_overhead = (m.now as f64 - clean_cycles as f64) / clean_cycles as f64;
        let inst_overhead =
            (m.counters.instructions as f64 - clean_insts as f64) / clean_insts as f64;
        let total_counted: u64 = counted
            .read_counts(&m, counter_base)
            .unwrap()
            .iter()
            .map(|&(_, n)| n)
            .sum();
        t.row(vec![
            (*name).into(),
            "counting instr.".into(),
            pct(counting_overhead),
            pct(inst_overhead),
            format!("exact ({total_counted})"),
            "none".into(),
        ]);

        // Sample-based collector.
        let (mut m, w) = fresh(&cfg, &**build);
        let mut ctxs = w.make_contexts();
        let (profile, cost) =
            collect(&mut m, &w.prog, &mut ctxs, &CollectorConfig::default()).unwrap();
        let est_total: f64 = profile
            .retired_samples
            .values()
            .map(|&n| n as f64 * profile.periods.retired as f64)
            .sum();
        let miss_sites = profile.l2_miss_samples.len();
        t.row(vec![
            (*name).into(),
            "PEBS sampling".into(),
            pct(cost.overhead()),
            "0.0%".into(),
            format!("~est ({est_total:.0})"),
            format!("{miss_sites} miss sites + stalls"),
        ]);
    }
    t.print();
    println!(
        "shape: on stall-bound code the counter updates hide behind misses,\n\
         but on compute-bound code counting inflates run time severely —\n\
         and in every case it sees no hardware events: execution counts\n\
         alone cannot say which loads miss. Sampling's overhead is tunable\n\
         (T11) and it is the only method that exposes the events the\n\
         instrumenter needs."
    );
}

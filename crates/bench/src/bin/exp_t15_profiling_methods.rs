//! Thin wrapper: runs the [`t15_profiling_methods`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`t15_profiling_methods`]: reach_bench::experiments::t15_profiling_methods

fn main() {
    reach_bench::driver::single_main(
        &reach_bench::experiments::t15_profiling_methods::T15ProfilingMethods,
    );
}

//! Thin wrapper: runs the [`t8_ablation`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`t8_ablation`]: reach_bench::experiments::t8_ablation

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::t8_ablation::T8Ablation);
}

//! T8 (§3.2): ablation of the two instrumentation optimizations —
//! liveness-minimized save sets and yield coalescing.
//!
//! On the 4-chain lockstep chase every iteration has four adjacent
//! independent likely-miss loads. Coalescing folds their four switches
//! into one; liveness shrinks each switch's save set from the full
//! architectural file to the handful of live registers. The table shows
//! all four combinations.

use reach_bench::{f, fresh, interleave_checked, pct, pgo_build, Table};
use reach_core::{InterleaveOptions, PipelineOptions};
use reach_instrument::PrimaryOptions;
use reach_sim::MachineConfig;
use reach_workloads::{build_multi_chase, MultiChaseParams};

const N: usize = 16;

fn main() {
    let cfg = MachineConfig::default();
    let params = MultiChaseParams {
        chains: 4,
        nodes: 512,
        hops: 512,
        node_stride: 256,
        seed: 0x78,
    };
    let build = |mem: &mut _, alloc: &mut _| build_multi_chase(mem, alloc, params, N + 1);

    let mut t = Table::new(
        "T8: optimization ablation (4-chain chase, 16 coroutines)",
        &[
            "liveness",
            "coalescing",
            "yields/iter",
            "cyc/switch",
            "switch cyc",
            "CPU eff",
        ],
    );

    for &(live, coal) in &[(false, false), (false, true), (true, false), (true, true)] {
        let opts = PipelineOptions {
            primary: PrimaryOptions {
                use_liveness: live,
                coalesce: coal,
                ..PrimaryOptions::default()
            },
            ..PipelineOptions::default()
        };
        let built = pgo_build(&cfg, build, N, &opts);
        let (mut m, w) = fresh(&cfg, build);
        let (rep, _) =
            interleave_checked(&mut m, &built.prog, &w, 0..N, &InterleaveOptions::default());
        let per_switch = m.counters.switch_cycles as f64 / rep.switches.max(1) as f64;
        t.row(vec![
            if live { "yes" } else { "no" }.into(),
            if coal { "yes" } else { "no" }.into(),
            built.primary_report.yields_inserted.to_string(),
            f(per_switch, 1),
            m.counters.switch_cycles.to_string(),
            pct(m.counters.cpu_efficiency()),
        ]);
    }
    t.print();
    println!(
        "shape: coalescing quarters the switches (4 chains per yield);\n\
         liveness shrinks each switch; together they set the efficiency\n\
         ceiling of the mechanism on switch-bound kernels."
    );
}

//! Thin wrapper: runs the [`f6_manual_vs_pgo`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`f6_manual_vs_pgo`]: reach_bench::experiments::f6_manual_vs_pgo

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::f6_manual_vs_pgo::F6ManualVsPgo);
}

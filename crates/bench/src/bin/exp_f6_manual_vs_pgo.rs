//! F6 (§2): manual CoroBase-style instrumentation vs profile-guided.
//!
//! The developer "decides where these events may happen and hard codes
//! event handlers at these locations at development time" — i.e. a
//! prefetch+yield at every pointer dereference, with a full-register save
//! (no liveness tooling). Profile-guided instrumentation instead measures
//! where stalls actually come from and models the gain.
//!
//! Three workloads separate the regimes:
//!
//! * **cold chase** — misses exactly where the developer expects: PGO must
//!   *match* manual;
//! * **hot hash probe** — the dereferences nearly always hit: manual pays
//!   prefetch+switch on every probe for nothing, PGO inserts nothing;
//! * **tiered sites** — four syntactically identical dereferences with
//!   wildly different miss behaviour: the developer cannot tell them
//!   apart, the profile can.

use reach_baselines::instrument_manual;
use reach_bench::{fresh, interleave_checked, pct, pgo_build, Table};
use reach_core::{InterleaveOptions, PipelineOptions};
use reach_sim::{Machine, MachineConfig, Program};
use reach_workloads::{
    build_chase, build_hash, build_tiered, site_load_pc, BuiltWorkload, ChaseParams, HashParams,
    TieredParams, PROBE_LOAD_PC,
};

const N: usize = 8;

struct Case {
    name: &'static str,
    build: reach_bench::WorkloadBuilder,
    /// The load PCs a developer would identify as "pointer dereferences".
    manual_pcs: Vec<usize>,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "cold chase",
            build: Box::new(|mem, alloc| {
                build_chase(
                    mem,
                    alloc,
                    ChaseParams {
                        nodes: 1024,
                        hops: 1024,
                        node_stride: 4096,
                        work_per_hop: 20,
                        work_insts: 1,
                        seed: 0xf6,
                    },
                    N + 1,
                )
            }),
            manual_pcs: vec![0], // the next-pointer load
        },
        Case {
            name: "hot hash probe",
            build: Box::new(|mem, alloc| {
                build_hash(
                    mem,
                    alloc,
                    HashParams {
                        capacity: 1 << 9, // 8 KiB: L1-resident
                        occupied: 256,
                        lookups: 4096,
                        hit_fraction: 1.0,
                        seed: 0xf6,
                    },
                    N + 1,
                )
            }),
            manual_pcs: vec![PROBE_LOAD_PC], // "the probe is a deref"
        },
        Case {
            name: "tiered sites",
            build: Box::new(|mem, alloc| {
                build_tiered(
                    mem,
                    alloc,
                    &TieredParams {
                        iters: 8192,
                        ..TieredParams::default()
                    },
                    N + 1,
                )
            }),
            // All four sites look identical in the source.
            manual_pcs: (0..4).map(site_load_pc).collect(),
        },
    ]
}

fn run(
    prog: &Program,
    build: &dyn Fn(&mut reach_sim::Memory, &mut reach_workloads::AddrAlloc) -> BuiltWorkload,
    cfg: &MachineConfig,
) -> (Machine, reach_core::InterleaveReport) {
    let (mut m, w) = fresh(cfg, build);
    let (rep, _) = interleave_checked(&mut m, prog, &w, 0..N, &InterleaveOptions::default());
    (m, rep)
}

fn main() {
    let cfg = MachineConfig::default();
    let mut t = Table::new(
        "F6: manual (CoroBase-style) vs profile-guided instrumentation",
        &[
            "workload",
            "mechanism",
            "yields fired",
            "switch cyc",
            "CPU eff",
        ],
    );

    for case in cases() {
        // Manual: developer-placed prefetch+yield, full save sets.
        let (_, w0) = fresh(&cfg, &*case.build);
        let (manual_prog, _) =
            instrument_manual(&w0.prog, &case.manual_pcs).expect("manual instrumentation");
        let (m, _) = run(&manual_prog, &*case.build, &cfg);
        t.row(vec![
            case.name.into(),
            "manual".into(),
            m.counters.yields_fired.to_string(),
            m.counters.switch_cycles.to_string(),
            pct(m.counters.cpu_efficiency()),
        ]);

        // PGO: the full pipeline.
        let built = pgo_build(&cfg, &*case.build, N, &PipelineOptions::default());
        let (m, _) = run(&built.prog, &*case.build, &cfg);
        t.row(vec![
            case.name.into(),
            "profile-guided".into(),
            m.counters.yields_fired.to_string(),
            m.counters.switch_cycles.to_string(),
            pct(m.counters.cpu_efficiency()),
        ]);
    }
    t.print();
    println!(
        "shape: PGO matches manual where the developer guessed right (cold\n\
         chase) and strictly wins where the guess is wrong (hot probe) or\n\
         impossible to make statically (tiered sites)."
    );
}

//! T16 (§4.2): coroutine isolation — SFI overhead with and without miss
//! hiding.
//!
//! The paper notes the mechanism "can co-exist with either isolation
//! mechanism" and asks "whether a co-design of SFI and our proposal can
//! help reduce the runtime overhead of SFI". First-order numbers: the SFI
//! pass (address masking before every memory access) is applied below and
//! measured under the plain sequential run and under profile-guided
//! coroutine interleaving.
//!
//! The shape worth knowing: on a stall-dominated run SFI's checks hide in
//! the shadow of the misses (tiny relative cost); once the mechanism
//! hides the misses, the run becomes busy-bound and SFI's checks surface
//! at their full instruction cost. Isolation is cheap exactly when the
//! CPU is being wasted — one more reason to co-design the two rewriters
//! (both passes share the same decode/CFG machinery here).

use reach_baselines::run_sequential;
use reach_bench::{f, fresh, pct, Table};
use reach_core::{pgo_pipeline, run_interleaved, InterleaveOptions, PipelineOptions};
use reach_instrument::{instrument_sfi, R_SFI_MASK};
use reach_sim::{Context, MachineConfig, Program};
use reach_workloads::{build_chase, BuiltWorkload, ChaseParams};

const N: usize = 8;
const MASK: u64 = u64::MAX >> 8; // generous domain: all layout addresses fit

fn params() -> ChaseParams {
    ChaseParams {
        nodes: 1024,
        hops: 1024,
        node_stride: 4096,
        work_per_hop: 20,
        work_insts: 1,
        seed: 0x716,
    }
}

fn contexts(w: &BuiltWorkload, n: usize) -> Vec<Context> {
    (0..n)
        .map(|i| {
            let mut c = w.instances[i].make_context(i);
            c.set_reg(R_SFI_MASK, MASK);
            c
        })
        .collect()
}

/// Builds the PGO-instrumented version of `prog`, profiling instance `N`.
fn pgo(prog: &Program, cfg: &MachineConfig) -> Program {
    let (mut m, w) = fresh(cfg, |mem, alloc| build_chase(mem, alloc, params(), N + 1));
    let mut prof = vec![{
        let mut c = w.instances[N].make_context(99);
        c.set_reg(R_SFI_MASK, MASK);
        c
    }];
    pgo_pipeline(&mut m, prog, &mut prof, &PipelineOptions::default())
        .expect("pipeline")
        .prog
}

fn main() {
    let cfg = MachineConfig::default();
    let build = |mem: &mut _, alloc: &mut _| build_chase(mem, alloc, params(), N + 1);

    let (_, w0) = fresh(&cfg, build);
    let plain = w0.prog.clone();
    let (sfi, rep) = instrument_sfi(&plain).expect("sfi pass");

    let mut t = Table::new(
        "T16: SFI (address masking) overhead, sequential vs hidden",
        &["binary", "executor", "cycles", "CPU eff", "SFI overhead"],
    );

    let mut seq_cycles = [0u64; 2];
    for (k, (name, prog)) in [("plain", &plain), ("+SFI", &sfi)].iter().enumerate() {
        let (mut m, w) = fresh(&cfg, build);
        let mut ctxs = contexts(&w, N);
        run_sequential(&mut m, prog, &mut ctxs, 1 << 26).unwrap();
        for (i, c) in ctxs.iter().enumerate() {
            w.instances[i].assert_checksum(c);
        }
        seq_cycles[k] = m.now;
        let overhead = if k == 0 {
            "-".to_string()
        } else {
            format!(
                "+{}%",
                f(
                    (seq_cycles[1] as f64 / seq_cycles[0] as f64 - 1.0) * 100.0,
                    1
                )
            )
        };
        t.row(vec![
            name.to_string(),
            "sequential".into(),
            m.now.to_string(),
            pct(m.counters.cpu_efficiency()),
            overhead,
        ]);
    }

    let mut coro_cycles = [0u64; 2];
    for (k, (name, base)) in [("plain", &plain), ("+SFI", &sfi)].iter().enumerate() {
        let instrumented = pgo(base, &cfg);
        let (mut m, w) = fresh(&cfg, build);
        let mut ctxs = contexts(&w, N);
        let r = run_interleaved(
            &mut m,
            &instrumented,
            &mut ctxs,
            &InterleaveOptions::default(),
        )
        .unwrap();
        assert_eq!(r.completed, N);
        for (i, c) in ctxs.iter().enumerate() {
            w.instances[i].assert_checksum(c);
        }
        coro_cycles[k] = m.now;
        let overhead = if k == 0 {
            "-".to_string()
        } else {
            format!(
                "+{}%",
                f(
                    (coro_cycles[1] as f64 / coro_cycles[0] as f64 - 1.0) * 100.0,
                    1
                )
            )
        };
        t.row(vec![
            name.to_string(),
            "coroutines+PGO".into(),
            m.now.to_string(),
            pct(m.counters.cpu_efficiency()),
            overhead,
        ]);
    }

    t.print();
    println!(
        "{} memory ops guarded. shape: SFI rides almost free while stalls\n\
         dominate, and surfaces at full cost once hiding makes the run\n\
         busy-bound — quantifying the co-design question §4.2 raises.",
        rep.guarded
    );
}

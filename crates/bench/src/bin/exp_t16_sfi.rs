//! Thin wrapper: runs the [`t16_sfi`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`t16_sfi`]: reach_bench::experiments::t16_sfi

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::t16_sfi::T16Sfi);
}

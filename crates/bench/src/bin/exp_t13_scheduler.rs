//! Thin wrapper: runs the [`t13_scheduler`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`t13_scheduler`]: reach_bench::experiments::t13_scheduler

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::t13_scheduler::T13Scheduler);
}

//! T13 (§4.2): integrating event hiding with a µs-task scheduler.
//!
//! A queue of short request-sized tasks (each a small instrumented chase)
//! is served under three disciplines: FIFO run-to-completion (event
//! agnostic), the ready-queue *side-car* (the hiding mechanism switches
//! among whatever the scheduler exposes as ready), and the *event-aware*
//! scheduler (the oldest task runs primary; younger tasks scavenge its
//! stalls). Reported: makespan, sojourn percentiles, per-task service
//! time, and machine efficiency.

use reach_bench::{fresh, pct, Table};
use reach_core::{pgo_pipeline, run_task_queue, PipelineOptions, SchedPolicy, Task};
use reach_sim::MachineConfig;
use reach_workloads::{build_chase, ChaseParams};

const TASKS: usize = 16;
/// Cycles between arrivals (tasks arrive faster than FIFO can serve).
const GAP: u64 = 1000;

fn params() -> ChaseParams {
    ChaseParams {
        nodes: 24, // ~24 DRAM hops ≈ 2.5 µs of unhidden work per task
        hops: 24,
        node_stride: 4096,
        work_per_hop: 60,
        work_insts: 1,
        seed: 0x713,
    }
}

fn main() {
    let cfg = MachineConfig::default();
    let build = |mem: &mut _, alloc: &mut _| build_chase(mem, alloc, params(), TASKS + 1);

    // Instrument once. A 24-hop task is far too short to profile on its
    // own, so the profiling run uses a long chase with the *same program
    // image* (hops and layout are register data, not code).
    let (mut pm, pw) = fresh(&cfg, build);
    let prof_params = ChaseParams {
        nodes: 4096,
        hops: 4096,
        seed: 0x9999,
        ..params()
    };
    let mut palloc = reach_workloads::AddrAlloc::new(0x4000_0000);
    let pw_long = build_chase(&mut pm.mem, &mut palloc, prof_params, 1);
    assert_eq!(pw_long.prog, pw.prog, "same binary");
    let mut prof = vec![pw_long.instances[0].make_context(99)];
    let built = pgo_pipeline(&mut pm, &pw.prog, &mut prof, &PipelineOptions::default()).unwrap();

    let mut t = Table::new(
        "T13: us-scale task queue under three scheduling disciplines",
        &[
            "policy",
            "makespan (cyc)",
            "sojourn p50",
            "sojourn p99",
            "service p50",
            "CPU eff",
        ],
    );

    for (name, policy, prog) in [
        ("FIFO (no hiding)", SchedPolicy::Fifo, &pw.prog),
        ("side-car ready queue", SchedPolicy::SideCar, &built.prog),
        ("event-aware", SchedPolicy::EventAware, &built.prog),
    ] {
        let (mut m, w) = fresh(&cfg, build);
        let mut tasks: Vec<Task> = (0..TASKS)
            .map(|i| Task {
                ctx: w.instances[i].make_context(i),
                arrival: i as u64 * GAP,
            })
            .collect();
        let rep = run_task_queue(&mut m, prog, &mut tasks, policy, 1 << 22).unwrap();
        assert_eq!(rep.completed, TASKS);
        for task in &tasks {
            let i = task.ctx.id;
            w.instances[i].assert_checksum(&task.ctx);
        }
        t.row(vec![
            name.into(),
            rep.makespan.to_string(),
            rep.sojourn_percentile(0.5).to_string(),
            rep.sojourn_percentile(0.99).to_string(),
            rep.service_percentile(0.5).to_string(),
            pct(m.counters.cpu_efficiency()),
        ]);
    }
    t.print();
    println!(
        "shape: both hiding disciplines shrink makespan and queueing; the\n\
         event-aware scheduler additionally keeps per-task service time\n\
         near solo (side-car stretches every task it rotates through)."
    );
}

//! Thin wrapper: runs the [`f9_interyield`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`f9_interyield`]: reach_bench::experiments::f9_interyield

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::f9_interyield::F9InterYield);
}

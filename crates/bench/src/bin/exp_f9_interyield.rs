//! F9 (§3.3): scavenger instrumentation bounds the inter-yield interval.
//!
//! Primary yields land only where misses are likely, so on a
//! compute-heavy region "adjacent yields can be arbitrarily far apart".
//! The scavenger pass inserts conditional yields targeting a 100 ns
//! (300-cycle) interval, using profiled load costs for the common case
//! and a static worst-case dataflow for the rest.
//!
//! A workload alternating DRAM-missing hops with a long compute burst
//! makes the gap visible. We report the *static* worst-case bound from
//! the pass and the *measured* distribution of gaps between fired yields
//! of scavenger-mode coroutines.

use reach_bench::{cyc_ns, fresh, pgo_build, Table};
use reach_core::{percentile, run_interleaved, InterleaveOptions, PipelineOptions};
use reach_instrument::ScavengerOptions;
use reach_sim::{Context, MachineConfig, Mode};
use reach_workloads::{build_chase, BuiltWorkload, ChaseParams};

const N: usize = 8;

fn params() -> ChaseParams {
    ChaseParams {
        nodes: 512,
        hops: 512,
        node_stride: 4096,
        work_per_hop: 100, // 7 x 100 cycles: ~233 ns of compute per hop,
        work_insts: 7,     // splittable at instruction granularity
        seed: 0xf9,
    }
}

fn measure(
    prog: &reach_sim::Program,
    cfg: &MachineConfig,
    build: &dyn Fn(&mut reach_sim::Memory, &mut reach_workloads::AddrAlloc) -> BuiltWorkload,
) -> Vec<u64> {
    let (mut m, w) = fresh(cfg, build);
    let mut ctxs: Vec<Context> = (0..N)
        .map(|i| {
            let mut c = w.instances[i].make_context(i);
            c.mode = Mode::Scavenger; // conditional yields armed
            c
        })
        .collect();
    let opts = InterleaveOptions {
        record_intervals: true,
        ..InterleaveOptions::default()
    };
    let rep = run_interleaved(&mut m, prog, &mut ctxs, &opts).unwrap();
    for (i, c) in ctxs.iter().enumerate() {
        w.instances[i].assert_checksum(c);
    }
    rep.intervals
}

fn main() {
    let cfg = MachineConfig::default();
    let build = |mem: &mut _, alloc: &mut _| build_chase(mem, alloc, params(), N + 1);

    let mut t = Table::new(
        "F9: inter-yield interval, primary-only vs + scavenger pass (target 300 cyc = 100 ns)",
        &["binary", "static max", "p50", "p95", "max (measured)"],
    );

    for (name, scav) in [
        ("primary only", None),
        (
            "primary + scavenger",
            Some(ScavengerOptions {
                target_interval: 300,
                use_liveness: true,
            }),
        ),
    ] {
        let opts = PipelineOptions {
            scavenger: scav,
            ..PipelineOptions::default()
        };
        let built = pgo_build(&cfg, build, N, &opts);
        let static_max = match &built.scavenger_report {
            Some(r) => r
                .max_interval_after
                .map(|v| cyc_ns(v, cfg.clock_ghz))
                .unwrap_or_else(|| "unbounded".into()),
            None => {
                // Analyze the primary-only binary by running the pass with
                // an enormous target (no insertions, report only).
                let probe = reach_instrument::instrument_scavenger(
                    &built.prog,
                    Some((&built.profile, &built.origin)),
                    &cfg,
                    &ScavengerOptions {
                        target_interval: u64::MAX / 4,
                        use_liveness: true,
                    },
                )
                .unwrap()
                .1;
                probe
                    .max_interval_before
                    .map(|v| cyc_ns(v, cfg.clock_ghz))
                    .unwrap_or_else(|| "unbounded".into())
            }
        };
        let intervals = measure(&built.prog, &cfg, &build);
        t.row(vec![
            name.into(),
            static_max,
            cyc_ns(percentile(&intervals, 0.5), cfg.clock_ghz),
            cyc_ns(percentile(&intervals, 0.95), cfg.clock_ghz),
            cyc_ns(intervals.iter().copied().max().unwrap_or(0), cfg.clock_ghz),
        ]);
    }
    t.print();
    println!(
        "shape: without the scavenger pass the compute burst (~700 cyc)\n\
         stretches the gap far past the 300-cycle target; with it, both the\n\
         static bound and the measured tail collapse to ~the target.\n"
    );

    // Second table: the dense-vs-sparse trade-off as the target shrinks.
    // Tighter intervals mean more conditional yields — better latency
    // control for the primary, more check/switch overhead for the
    // scavengers.
    let mut t2 = Table::new(
        "F9b: target-interval sweep (denser conditional yields cost overhead)",
        &[
            "target",
            "scav yields",
            "static max",
            "p95 burst",
            "checks+switch",
        ],
    );
    for target in [150u64, 300, 600, 1200] {
        let opts = PipelineOptions {
            scavenger: Some(ScavengerOptions {
                target_interval: target,
                use_liveness: true,
            }),
            ..PipelineOptions::default()
        };
        let built = pgo_build(&cfg, build, N, &opts);
        let scav = built.scavenger_report.as_ref().expect("pass ran");
        let (mut m, w) = fresh(&cfg, build);
        let mut ctxs: Vec<Context> = (0..N)
            .map(|i| {
                let mut c = w.instances[i].make_context(i);
                c.mode = Mode::Scavenger;
                c
            })
            .collect();
        let iopts = InterleaveOptions {
            record_intervals: true,
            ..InterleaveOptions::default()
        };
        let rep = run_interleaved(&mut m, &built.prog, &mut ctxs, &iopts).unwrap();
        for (i, c) in ctxs.iter().enumerate() {
            w.instances[i].assert_checksum(c);
        }
        let overhead = (m.counters.check_cycles + m.counters.switch_cycles) as f64
            / m.counters.total_cycles() as f64;
        t2.row(vec![
            cyc_ns(target, cfg.clock_ghz),
            scav.yields_inserted.to_string(),
            scav.max_interval_after
                .map(|v| v.to_string())
                .unwrap_or_else(|| "unbounded".into()),
            percentile(&rep.intervals, 0.95).to_string(),
            reach_bench::pct(overhead),
        ]);
    }
    t2.print();
    println!(
        "shape: halving the target roughly doubles the conditional yields\n\
         and their overhead — the §3.3 tension between timely yielding and\n\
         CPU efficiency, now quantified."
    );
}

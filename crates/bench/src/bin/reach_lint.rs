//! `reach-lint` — static verification of micro-IR binaries from the
//! command line.
//!
//! Runs the PGO pipeline on named workloads and lints the shipped
//! binaries (or, with `--original` / `--sfi`, the uninstrumented and
//! SFI-sandboxed variants), printing PC-anchored diagnostics with stable
//! codes.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin reach_lint -- [WORKLOAD ...] [options]
//! ```
//!
//! Workloads: `chase multi hash zipf tiered` (default: all).
//!
//! Options:
//!
//! * `--original` — lint the uninstrumented binary instead of running
//!   the pipeline (no origin map, so RL0007 is skipped).
//! * `--sfi` — apply the SFI sandboxing pass to the original binary and
//!   lint with the RL0005 escape checks enabled (implies no pipeline:
//!   SFI must run before yield instrumentation).
//! * `--deny CODE`, `--warn CODE`, `--allow CODE` — override a lint's
//!   level; `CODE` is a stable code (`RL0003`) or name
//!   (`redundant-prefetch`).
//! * `--list` — print the lint catalog and exit.
//!
//! Exit status: 0 when no deny-level finding fired, 1 otherwise, 2 on
//! usage errors.

use reach_bench::{fresh, pgo_build, workload_builder, WORKLOAD_NAMES};
use reach_core::PipelineOptions;
use reach_instrument::{instrument_sfi, lint_program, Level, Lint, LintOptions, LintReport};
use reach_sim::MachineConfig;

fn usage() -> ! {
    eprintln!(
        "usage: reach_lint [WORKLOAD ...] [--original | --sfi] \
         [--deny CODE] [--warn CODE] [--allow CODE] [--list]\n\
         workloads: {}",
        WORKLOAD_NAMES.join(" ")
    );
    std::process::exit(2);
}

fn parse_lint_or_die(arg: Option<String>) -> Lint {
    let Some(s) = arg else { usage() };
    match Lint::parse(&s) {
        Some(l) => l,
        None => {
            eprintln!("unknown lint '{s}'; known lints:");
            for l in Lint::ALL {
                eprintln!("  {} {}", l.code(), l.name());
            }
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut names: Vec<String> = Vec::new();
    let mut original = false;
    let mut sfi = false;
    let mut opts = LintOptions::default();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--original" => original = true,
            "--sfi" => sfi = true,
            "--deny" => opts
                .levels
                .push((parse_lint_or_die(args.next()), Level::Deny)),
            "--warn" => opts
                .levels
                .push((parse_lint_or_die(args.next()), Level::Warn)),
            "--allow" => opts
                .levels
                .push((parse_lint_or_die(args.next()), Level::Allow)),
            "--list" => {
                println!("{:<8} {:<32} default", "code", "name");
                for l in Lint::ALL {
                    println!("{:<8} {:<32} {}", l.code(), l.name(), l.default_level());
                }
                return;
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with('-') => usage(),
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        names = WORKLOAD_NAMES.iter().map(|s| s.to_string()).collect();
    }
    opts.sfi = sfi;

    let cfg = MachineConfig::default();
    let mut any_deny = false;
    for name in &names {
        let Some(build) = workload_builder(name) else {
            eprintln!(
                "unknown workload '{name}'; use: {}",
                WORKLOAD_NAMES.join(" ")
            );
            std::process::exit(2);
        };
        let (variant, report): (&str, LintReport) = if sfi {
            let (_, w) = fresh(&cfg, &*build);
            let (sandboxed, rep) = instrument_sfi(&w.prog).expect("SFI pass failed");
            (
                "sfi",
                lint_program(&sandboxed, Some(&rep.pc_map.origin), &opts),
            )
        } else if original {
            let (_, w) = fresh(&cfg, &*build);
            ("original", lint_program(&w.prog, None, &opts))
        } else {
            let built = pgo_build(&cfg, &*build, 1, &PipelineOptions::default());
            (
                "instrumented",
                lint_program(&built.prog, Some(&built.origin), &opts),
            )
        };
        println!("== reach-lint: {name} ({variant}) ==");
        print!("{report}");
        any_deny |= report.has_deny();
    }
    if any_deny {
        std::process::exit(1);
    }
}

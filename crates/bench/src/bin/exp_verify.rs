//! VERIFY: translation-validation proof wall-time and mutation-kill
//! rate across the workload suite (see
//! [`reach_bench::experiments::verify`]).

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::verify::Verify);
}

//! Convenience runner: executes every `exp_*` harness in order and
//! streams their output — one command to regenerate every table in
//! EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_all
//! ```

use std::process::Command;

/// The experiments, in EXPERIMENTS.md order.
pub const EXPERIMENTS: &[&str] = &[
    "exp_f1_spectrum",
    "exp_t2_stall_fraction",
    "exp_t3_switch_cost",
    "exp_t4_concurrency",
    "exp_t5_latency",
    "exp_f6_manual_vs_pgo",
    "exp_t7_policy",
    "exp_t8_ablation",
    "exp_f9_interyield",
    "exp_f10_dualmode",
    "exp_t11_sampling",
    "exp_t12_whatif",
    "exp_t13_scheduler",
    "exp_t14_hw_prefetcher",
    "exp_t15_profiling_methods",
    "exp_t16_sfi",
    "exp_t17_drift",
];

fn main() {
    // Sibling binaries live next to this one.
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("binary directory");
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("──────────────────────────────────────────────────── {exp}");
        let status = Command::new(dir.join(exp))
            .status()
            .unwrap_or_else(|e| panic!("could not launch {exp}: {e} (build all bins first)"));
        if !status.success() {
            failures.push(*exp);
        }
        println!();
    }
    if failures.is_empty() {
        println!("all {} experiments completed.", EXPERIMENTS.len());
    } else {
        eprintln!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}

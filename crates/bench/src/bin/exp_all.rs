//! In-process parallel suite runner: every experiment in the registry
//! over one shared worker pool — one command to regenerate every table
//! in EXPERIMENTS.md *and* every `BENCH_<experiment>.json`.
//!
//! ```sh
//! cargo run --release -p reach-bench --bin exp_all -- --smoke --jobs 4
//! ```
//!
//! Flags (shared with every `exp_*` binary): `--smoke` runs the CI-sized
//! cell subset, `--jobs N` sizes the pool (0 = all cores), `--out-dir D`
//! places the BENCH files (`--no-out` disables), `--only a,b` restricts
//! to named experiments. A failing cell is recorded in its report and
//! the rest of the suite keeps running; the exit code is non-zero if any
//! cell failed or any experiment-level bound was violated.

fn main() {
    let all = reach_bench::experiments::all();
    let refs: Vec<&dyn reach_bench::Experiment> = all.iter().map(|b| b.as_ref()).collect();
    reach_bench::driver::suite_main(&refs);
}

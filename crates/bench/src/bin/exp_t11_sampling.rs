//! Thin wrapper: runs the [`t11_sampling`] experiment through the shared parallel
//! driver (`--smoke --jobs N --out-dir DIR`; see `reach_bench::driver`).
//!
//! [`t11_sampling`]: reach_bench::experiments::t11_sampling

fn main() {
    reach_bench::driver::single_main(&reach_bench::experiments::t11_sampling::T11Sampling);
}

//! T11 (§3.2): sampling-parameter trade-offs.
//!
//! "Higher sampling frequency expedites profile collections at the cost
//! of higher run time overhead" — and precision (skid) and buffer sizing
//! matter too. The simulator maintains exact ground truth, so profile
//! fidelity is directly scoreable: precision/recall of the predicted
//! miss-PC set (at the 0.5-likelihood threshold) plus the mean absolute
//! error of likelihood estimates, against the run-time cost of sampling.

use reach_bench::{f, fresh, pct, Table};
use reach_profile::{collect, score, CollectorConfig, Periods};
use reach_sim::MachineConfig;
use reach_workloads::{build_tiered, TieredParams};

fn main() {
    let cfg = MachineConfig::default();
    let params = TieredParams {
        iters: 16_384,
        ..TieredParams::default()
    };
    let build = |mem: &mut _, alloc: &mut _| build_tiered(mem, alloc, &params, 1);

    let mut t = Table::new(
        "T11: profile fidelity vs sampling cost (tiered workload)",
        &[
            "periods (x base)",
            "skid",
            "buffer",
            "overhead",
            "dropped",
            "precision",
            "recall",
            "MAE",
        ],
    );

    let base = Periods::default();
    let run = |scale: u64, skid: u32, buffer: usize, t: &mut Table| {
        let (mut m, w) = fresh(&cfg, build);
        let mut ctxs = w.make_contexts();
        let ccfg = CollectorConfig {
            periods: Periods {
                l2_miss: base.l2_miss * scale,
                l3_miss: base.l3_miss * scale,
                stall: base.stall * scale,
                retired: base.retired * scale,
            },
            skid,
            buffer_capacity: buffer,
            ..CollectorConfig::default()
        };
        let (mut profile, cost) = collect(&mut m, &w.prog, &mut ctxs, &ccfg).unwrap();
        // Score with block smoothing, exactly as the instrumenter will
        // consume it.
        profile = reach_instrument::smooth_profile(&profile, &w.prog);
        let acc = score(&profile, &m.counters, 0.5);
        t.row(vec![
            format!("{scale}x"),
            skid.to_string(),
            buffer.to_string(),
            pct(cost.overhead()),
            cost.dropped_samples.to_string(),
            f(acc.precision, 2),
            f(acc.recall, 2),
            f(acc.likelihood_mae, 3),
        ]);
    };

    for &scale in &[1u64, 4, 16, 64, 256] {
        run(scale, 0, 4096, &mut t);
    }
    run(1, 4, 4096, &mut t); // skid: samples land a few instructions late
    run(1, 16, 4096, &mut t);
    run(1, 0, 32, &mut t); // tiny buffer: drops under bursts
    t.print();
    println!(
        "shape: fidelity degrades gracefully with coarser periods while\n\
         overhead falls; skid smears attribution across neighbouring PCs;\n\
         undersized buffers drop samples."
    );
}

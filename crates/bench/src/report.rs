//! The `BENCH_<experiment>.json` schema: machine-readable, diffable
//! results for every experiment run.
//!
//! The build environment has no registry access, so (de)serialization
//! goes through the workspace's explicit [`Json`] tree
//! (`reach_profile::json`) instead of serde; the schema round-trips
//! losslessly, including exact `u64` counters and NaN metrics (written
//! as `null`).
//!
//! Schema (stable; bump [`SCHEMA_VERSION`] on incompatible change):
//!
//! ```json
//! {
//!   "experiment": "t4_concurrency",
//!   "schema_version": 1,
//!   "git_sha": "1cd3354abcde",
//!   "tier": "smoke",
//!   "wall_ms": 1234.5,
//!   "violations": [],
//!   "cells": [
//!     {"workload": "multi4", "config": "n=8", "status": "ok",
//!      "wall_ms": 88.1, "metrics": {"eff_smt": 0.61, "eff_coro": 0.93}},
//!     {"workload": "multi4", "config": "n=64", "status": "failed",
//!      "error": "...", "wall_ms": 0.2, "metrics": {}}
//!   ]
//! }
//! ```
//!
//! `wall_ms` fields are observability only — excluded from
//! determinism comparisons and from [`crate::diff`].

use crate::experiment::{Cell, CellMetrics, MetricValue, Tier};
use reach_profile::{Json, JsonError};
use std::path::{Path, PathBuf};

/// Version of the BENCH JSON schema this crate writes.
pub const SCHEMA_VERSION: u64 = 1;

/// Outcome of one cell.
#[derive(Clone, Debug, PartialEq)]
pub enum CellStatus {
    /// Metrics are valid.
    Ok,
    /// The cell panicked or errored; the message is recorded and the
    /// rest of the matrix kept running.
    Failed(String),
}

/// One cell's recorded result.
#[derive(Clone, Debug, PartialEq)]
pub struct CellResult {
    /// Which matrix point this is.
    pub cell: Cell,
    /// Ok or failed-with-message.
    pub status: CellStatus,
    /// The metrics (empty for failed cells).
    pub metrics: CellMetrics,
    /// Wall-clock time the cell took (observability only).
    pub wall_ms: f64,
}

/// One experiment's full machine-readable result.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Experiment name (`BENCH_<experiment>.json`).
    pub experiment: String,
    /// Schema version written.
    pub schema_version: u64,
    /// `git rev-parse --short=12 HEAD` at run time, or "unknown".
    pub git_sha: String,
    /// Which tier produced these cells.
    pub tier: Tier,
    /// Per-cell results, matrix order.
    pub cells: Vec<CellResult>,
    /// Wall-clock time for the whole experiment (observability only).
    pub wall_ms: f64,
    /// Experiment-level bound violations from [`crate::experiment::Experiment::finish`];
    /// non-empty means the generating run exited non-zero.
    pub violations: Vec<String>,
}

fn metric_to_json(v: &MetricValue) -> Json {
    match v {
        MetricValue::UInt(n) => Json::UInt(*n),
        MetricValue::Float(x) if x.is_nan() => Json::Null,
        MetricValue::Float(x) => Json::Float(*x),
        MetricValue::Str(s) => Json::Str(s.clone()),
    }
}

fn metric_from_json(v: &Json) -> Result<MetricValue, JsonError> {
    match v {
        Json::UInt(n) => Ok(MetricValue::UInt(*n)),
        Json::Float(x) => Ok(MetricValue::Float(*x)),
        Json::Null => Ok(MetricValue::Float(f64::NAN)),
        Json::Str(s) => Ok(MetricValue::Str(s.clone())),
        other => Err(JsonError::shape(format!(
            "metric value must be int/float/null/string, got {other:?}"
        ))),
    }
}

impl BenchReport {
    /// The canonical file name for this report.
    pub fn filename(&self) -> String {
        format!("BENCH_{}.json", self.experiment)
    }

    /// Serializes to the schema above.
    pub fn to_json(&self) -> Json {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                let mut fields = vec![
                    ("workload".into(), Json::Str(c.cell.workload.clone())),
                    ("config".into(), Json::Str(c.cell.config.clone())),
                ];
                match &c.status {
                    CellStatus::Ok => {
                        fields.push(("status".into(), Json::Str("ok".into())));
                    }
                    CellStatus::Failed(msg) => {
                        fields.push(("status".into(), Json::Str("failed".into())));
                        fields.push(("error".into(), Json::Str(msg.clone())));
                    }
                }
                fields.push(("wall_ms".into(), Json::Float(c.wall_ms)));
                fields.push((
                    "metrics".into(),
                    Json::Object(
                        c.metrics
                            .iter()
                            .map(|(k, v)| (k.to_string(), metric_to_json(v)))
                            .collect(),
                    ),
                ));
                Json::Object(fields)
            })
            .collect();
        Json::Object(vec![
            ("experiment".into(), Json::Str(self.experiment.clone())),
            ("schema_version".into(), Json::UInt(self.schema_version)),
            ("git_sha".into(), Json::Str(self.git_sha.clone())),
            ("tier".into(), Json::Str(self.tier.as_str().into())),
            ("wall_ms".into(), Json::Float(self.wall_ms)),
            (
                "violations".into(),
                Json::Array(
                    self.violations
                        .iter()
                        .map(|v| Json::Str(v.clone()))
                        .collect(),
                ),
            ),
            ("cells".into(), Json::Array(cells)),
        ])
    }

    /// Parses a report; inverse of [`BenchReport::to_json`].
    ///
    /// # Errors
    ///
    /// Any missing key, wrong type, unknown tier/status or unsupported
    /// schema version is a typed [`JsonError`].
    pub fn from_json(v: &Json) -> Result<BenchReport, JsonError> {
        let schema_version = v.get("schema_version")?.as_u64()?;
        if schema_version > SCHEMA_VERSION {
            return Err(JsonError::shape(format!(
                "schema_version {schema_version} is newer than supported {SCHEMA_VERSION}"
            )));
        }
        let tier_s = v.get("tier")?.as_str()?;
        let tier = Tier::parse(tier_s)
            .ok_or_else(|| JsonError::shape(format!("unknown tier {tier_s:?}")))?;
        let mut cells = Vec::new();
        for cj in v.get("cells")?.as_array()? {
            let status = match cj.get("status")?.as_str()? {
                "ok" => CellStatus::Ok,
                "failed" => CellStatus::Failed(cj.get("error")?.as_str()?.to_string()),
                other => {
                    return Err(JsonError::shape(format!("unknown cell status {other:?}")));
                }
            };
            let mut metrics = CellMetrics::new();
            match cj.get("metrics")? {
                Json::Object(fields) => {
                    for (k, mv) in fields {
                        metrics.put(k.clone(), metric_from_json(mv)?);
                    }
                }
                other => {
                    return Err(JsonError::shape(format!(
                        "metrics must be an object, got {other:?}"
                    )));
                }
            }
            cells.push(CellResult {
                cell: Cell::new(
                    cj.get("workload")?.as_str()?.to_string(),
                    cj.get("config")?.as_str()?.to_string(),
                ),
                status,
                metrics,
                wall_ms: cj.get("wall_ms")?.as_f64()?,
            });
        }
        let mut violations = Vec::new();
        for vj in v.get("violations")?.as_array()? {
            violations.push(vj.as_str()?.to_string());
        }
        Ok(BenchReport {
            experiment: v.get("experiment")?.as_str()?.to_string(),
            schema_version,
            git_sha: v.get("git_sha")?.as_str()?.to_string(),
            tier,
            cells,
            wall_ms: v.get("wall_ms")?.as_f64()?,
            violations,
        })
    }

    /// Writes `BENCH_<experiment>.json` under `dir` (created if absent)
    /// and returns the path.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory or writing the file.
    pub fn write_to_dir(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.filename());
        std::fs::write(&path, format!("{}\n", self.to_json()))?;
        Ok(path)
    }

    /// Reads and parses a BENCH file.
    ///
    /// # Errors
    ///
    /// I/O errors, malformed JSON, or schema mismatches (stringified).
    pub fn read_from_file(path: &Path) -> Result<BenchReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        BenchReport::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Looks a cell up by (workload, config).
    pub fn cell(&self, workload: &str, config: &str) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.cell.workload == workload && c.cell.config == config)
    }

    /// Mutable variant of [`BenchReport::cell`].
    pub fn cell_mut(&mut self, workload: &str, config: &str) -> Option<&mut CellResult> {
        self.cells
            .iter_mut()
            .find(|c| c.cell.workload == workload && c.cell.config == config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut m1 = CellMetrics::new();
        m1.put_f64("eff", 0.9375)
            .put_u64("cycles", u64::MAX - 1)
            .put_str("rung", "full-pgo")
            .put_f64("lat_vs_healthy", f64::NAN);
        BenchReport {
            experiment: "demo".into(),
            schema_version: SCHEMA_VERSION,
            git_sha: "abc123".into(),
            tier: Tier::Smoke,
            cells: vec![
                CellResult {
                    cell: Cell::new("chase", "n=8"),
                    status: CellStatus::Ok,
                    metrics: m1,
                    wall_ms: 12.5,
                },
                CellResult {
                    cell: Cell::new("chase", "n=64"),
                    status: CellStatus::Failed("launch error".into()),
                    metrics: CellMetrics::new(),
                    wall_ms: 0.25,
                },
            ],
            wall_ms: 100.0,
            violations: vec!["bound breached".into()],
        }
    }

    #[test]
    fn schema_round_trips() {
        let r = sample();
        let text = r.to_json().to_string();
        let back = BenchReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        // NaN breaks derived PartialEq, so compare through the
        // serialization (null <-> NaN is stable) plus spot checks.
        assert_eq!(back.to_json().to_string(), text);
        assert_eq!(back.experiment, "demo");
        assert_eq!(back.tier, Tier::Smoke);
        let c = back.cell("chase", "n=8").unwrap();
        assert_eq!(
            c.metrics.get("cycles"),
            Some(&MetricValue::UInt(u64::MAX - 1))
        );
        assert_eq!(c.metrics.get_f64("eff"), Some(0.9375));
        assert!(c.metrics.get_f64("lat_vs_healthy").unwrap().is_nan());
        assert_eq!(
            back.cell("chase", "n=64").unwrap().status,
            CellStatus::Failed("launch error".into())
        );
        assert_eq!(back.violations, vec!["bound breached".to_string()]);
    }

    #[test]
    fn newer_schema_version_is_rejected() {
        let mut r = sample();
        r.schema_version = SCHEMA_VERSION + 1;
        let text = r.to_json().to_string();
        assert!(BenchReport::from_json(&Json::parse(&text).unwrap()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("reach_bench_report_{}", std::process::id()));
        let r = sample();
        let path = r.write_to_dir(&dir).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "BENCH_demo.json"
        );
        let back = BenchReport::read_from_file(&path).unwrap();
        assert_eq!(back.to_json().to_string(), r.to_json().to_string());
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! The named-workload registry shared by developer tools
//! (`show_instrumented`, `reach_lint`): one deterministic
//! [`WorkloadBuilder`] per workload in the suite.

use crate::harness::WorkloadBuilder;
use reach_workloads::{
    build_chase, build_hash, build_multi_chase, build_tiered, build_zipf_kv, ChaseParams,
    HashParams, MultiChaseParams, TieredParams, ZipfKvParams,
};

/// Every named workload, in canonical order.
pub const WORKLOAD_NAMES: [&str; 5] = ["chase", "multi", "hash", "zipf", "tiered"];

/// Returns the deterministic builder for a named workload, or `None`
/// for an unknown name. Parameters match the developer tools' canonical
/// configurations (small enough to build fast, large enough to miss in
/// cache).
pub fn workload_builder(name: &str) -> Option<WorkloadBuilder> {
    Some(match name {
        "chase" => Box::new(|mem, alloc| {
            build_chase(
                mem,
                alloc,
                ChaseParams {
                    nodes: 1024,
                    hops: 1024,
                    node_stride: 4096,
                    work_per_hop: 20,
                    work_insts: 1,
                    seed: 1,
                },
                2,
            )
        }),
        "multi" => {
            Box::new(|mem, alloc| build_multi_chase(mem, alloc, MultiChaseParams::default(), 2))
        }
        "hash" => Box::new(|mem, alloc| {
            build_hash(
                mem,
                alloc,
                HashParams {
                    capacity: 1 << 18,
                    occupied: 120_000,
                    lookups: 2048,
                    hit_fraction: 0.8,
                    seed: 1,
                },
                2,
            )
        }),
        "zipf" => Box::new(|mem, alloc| build_zipf_kv(mem, alloc, ZipfKvParams::default(), 2)),
        "tiered" => Box::new(|mem, alloc| {
            build_tiered(
                mem,
                alloc,
                &TieredParams {
                    iters: 8192,
                    ..TieredParams::default()
                },
                2,
            )
        }),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::fresh;
    use reach_sim::MachineConfig;

    #[test]
    fn every_named_workload_builds() {
        let cfg = MachineConfig::default();
        for name in WORKLOAD_NAMES {
            let build = workload_builder(name).expect("known name");
            let (_, w) = fresh(&cfg, &*build);
            assert!(!w.prog.is_empty(), "{name} built an empty program");
        }
        assert!(workload_builder("nope").is_none());
    }
}

//! Host-hardware proof of the mechanism: prefetch-interleaved coroutines
//! against sequential execution on *real* memory.
//!
//! Two kernels, each far larger than a typical last-level cache:
//!
//! * `chase/*` — a 128 MiB pointer chase: sequential vs 8/16/32-way
//!   coroutine interleaving (group size = software MLP);
//! * `probe/*` — batched lookups against a 128 MiB open-addressing hash
//!   table, sequential vs interleaved.
//!
//! The absolute speedup depends on the host's memory subsystem; the shape
//! (interleaved ≫ sequential, saturating around the machine's MLP) is the
//! claim under test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reach_coro::chase::Arena;
use reach_coro::probe::{make_keys, Table};
use std::hint::black_box;

/// 2^21 nodes x 64 B = 128 MiB.
const CHASE_NODES: usize = 1 << 21;
const CHASE_HOPS: usize = 1 << 14;

fn bench_chase(c: &mut Criterion) {
    let arena = Arena::build(CHASE_NODES, 0xc0ffee);
    let mut g = c.benchmark_group("chase");
    g.throughput(Throughput::Elements((CHASE_HOPS * 8) as u64));

    g.bench_function("sequential", |b| {
        let starts = arena.spread_starts(8);
        b.iter(|| {
            let mut sum = 0u64;
            for &s in &starts {
                sum = sum.wrapping_add(arena.walk_sequential(s, CHASE_HOPS));
            }
            black_box(sum)
        })
    });
    for group in [8usize, 16, 32] {
        g.bench_with_input(
            BenchmarkId::new("interleaved", group),
            &group,
            |b, &group| {
                let starts = arena.spread_starts(group);
                // Same total hops as the sequential case.
                let hops = CHASE_HOPS * 8 / group;
                b.iter(|| black_box(arena.walk_interleaved(&starts, hops)))
            },
        );
    }
    g.finish();
}

/// 2^23 slots x 16 B = 128 MiB.
const TABLE_SLOTS: usize = 1 << 23;
const TABLE_OCCUPIED: usize = 4_000_000;
const LOOKUPS: usize = 1 << 14;

fn bench_probe(c: &mut Criterion) {
    let (table, present) = Table::build(TABLE_SLOTS, TABLE_OCCUPIED, 0x7ab1e);
    let keys = make_keys(&present, LOOKUPS, 0.8, 0x5eed);
    let mut g = c.benchmark_group("probe");
    g.throughput(Throughput::Elements(LOOKUPS as u64));

    g.bench_function("sequential", |b| {
        b.iter(|| black_box(table.lookup_batch_sequential(&keys)))
    });
    for group in [8usize, 16, 32] {
        g.bench_with_input(
            BenchmarkId::new("interleaved", group),
            &group,
            |b, &group| b.iter(|| black_box(table.lookup_batch_interleaved(&keys, group))),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_chase, bench_probe
}
criterion_main!(benches);

//! Host-hardware companion to experiment T3: what do suspend/resume and
//! thread hand-off actually cost on *this* machine?
//!
//! * `coro_resume` — one resume of a stackless coroutine (the class of
//!   switch the paper's <10 ns claim is about; a resume is an indirect
//!   call plus a state transition).
//! * `coro_pingpong` — two coroutines alternating, i.e. a full
//!   switch-out/switch-in round trip.
//! * `thread_pingpong` — two OS threads handing a token back and forth
//!   over a channel: the per-hand-off cost the paper cites as hundreds of
//!   ns to µs.

use criterion::{criterion_group, criterion_main, Criterion};
use reach_coro::{Coro, CoroState};
use std::hint::black_box;

/// A coroutine that yields forever, counting resumes.
struct Spinner {
    n: u64,
}

impl Coro for Spinner {
    #[inline]
    fn resume(&mut self) -> CoroState {
        self.n = self.n.wrapping_add(1);
        CoroState::Yielded
    }
}

fn bench_coro_resume(c: &mut Criterion) {
    let mut s = Spinner { n: 0 };
    c.bench_function("coro_resume", |b| {
        b.iter(|| {
            black_box(s.resume());
        })
    });
    black_box(s.n);
}

fn bench_coro_pingpong(c: &mut Criterion) {
    let mut a = Spinner { n: 0 };
    let mut bb = Spinner { n: 0 };
    c.bench_function("coro_pingpong", |b| {
        b.iter(|| {
            black_box(a.resume());
            black_box(bb.resume());
        })
    });
}

fn bench_thread_pingpong(c: &mut Criterion) {
    use std::sync::mpsc;
    // One long-lived partner thread; each iteration is a send+recv round
    // trip (two OS-level hand-offs).
    let (to_worker, from_main) = mpsc::channel::<u64>();
    let (to_main, from_worker) = mpsc::channel::<u64>();
    let worker = std::thread::spawn(move || {
        while let Ok(v) = from_main.recv() {
            if v == u64::MAX {
                break;
            }
            let _ = to_main.send(v + 1);
        }
    });
    c.bench_function("thread_pingpong", |b| {
        b.iter(|| {
            to_worker.send(1).expect("worker alive");
            black_box(from_worker.recv().expect("worker alive"));
        })
    });
    let _ = to_worker.send(u64::MAX);
    let _ = worker.join();
}

criterion_group!(
    benches,
    bench_coro_resume,
    bench_coro_pingpong,
    bench_thread_pingpong
);
criterion_main!(benches);

//! Criterion benches over the simulator: wall-clock throughput of the
//! mechanisms and of the instrumentation pipeline itself.
//!
//! These complement the `exp_*` harnesses (which report *simulated*
//! cycles): here Criterion measures how fast the simulator + passes run on
//! the host, guarding against regressions in the substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use reach_core::{pgo_pipeline, run_interleaved, InterleaveOptions, PipelineOptions};
use reach_sim::{run_smt, Machine, MachineConfig};
use reach_workloads::{build_chase, AddrAlloc, ChaseParams};
use std::hint::black_box;

fn params() -> ChaseParams {
    ChaseParams {
        nodes: 512,
        hops: 512,
        node_stride: 4096,
        work_per_hop: 20,
        work_insts: 1,
        seed: 0xbe7c,
    }
}

fn bench_sequential_sim(c: &mut Criterion) {
    c.bench_function("sim/sequential_chase", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::default());
            let mut alloc = AddrAlloc::new(0x10_0000);
            let w = build_chase(&mut m.mem, &mut alloc, params(), 1);
            let ctx = w.run_solo(&mut m, 0, 1 << 22);
            black_box(ctx.regs[7])
        })
    });
}

fn bench_smt_sim(c: &mut Criterion) {
    c.bench_function("sim/smt8_chase", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::default());
            let mut alloc = AddrAlloc::new(0x10_0000);
            let w = build_chase(&mut m.mem, &mut alloc, params(), 8);
            let mut ctxs: Vec<_> = (0..8).map(|i| w.instances[i].make_context(i)).collect();
            black_box(run_smt(&mut m, &w.prog, &mut ctxs, 1 << 22).unwrap().cycles)
        })
    });
}

fn bench_pipeline(c: &mut Criterion) {
    c.bench_function("sim/pgo_pipeline_chase", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::default());
            let mut alloc = AddrAlloc::new(0x10_0000);
            let w = build_chase(&mut m.mem, &mut alloc, params(), 1);
            let mut prof = vec![w.instances[0].make_context(0)];
            let built =
                pgo_pipeline(&mut m, &w.prog, &mut prof, &PipelineOptions::default()).unwrap();
            black_box(built.prog.len())
        })
    });
}

fn bench_interleaved_sim(c: &mut Criterion) {
    // Instrument once outside the timed loop.
    let mut m = Machine::new(MachineConfig::default());
    let mut alloc = AddrAlloc::new(0x10_0000);
    let w = build_chase(&mut m.mem, &mut alloc, params(), 1);
    let mut prof = vec![w.instances[0].make_context(0)];
    let built = pgo_pipeline(&mut m, &w.prog, &mut prof, &PipelineOptions::default()).unwrap();

    c.bench_function("sim/interleave16_chase", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::default());
            let mut alloc = AddrAlloc::new(0x10_0000);
            let w = build_chase(&mut m.mem, &mut alloc, params(), 16);
            let mut ctxs: Vec<_> = (0..16).map(|i| w.instances[i].make_context(i)).collect();
            black_box(
                run_interleaved(
                    &mut m,
                    &built.prog,
                    &mut ctxs,
                    &InterleaveOptions::default(),
                )
                .unwrap()
                .cycles,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sequential_sim, bench_smt_sim, bench_pipeline, bench_interleaved_sim
}
criterion_main!(benches);

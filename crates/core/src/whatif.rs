//! §4.1 hardware what-if: conditional yields on a cache-presence probe.
//!
//! The paper's proposed minimal hardware support is an instruction that
//! reveals whether a line is already in L1/L2, letting yields fire *only
//! when the targeted event actually happens*. Statically-placed primary
//! yields pay the prefetch+switch cost even when the load would have hit;
//! with the probe, the hit path costs only the (cheap) condition check.
//!
//! [`make_conditional`] rewrites an instrumented binary accordingly:
//! every unconditional [`YieldKind::Primary`] becomes a
//! [`YieldKind::IfAbsent`] gated on the preceding prefetch's observed
//! level — the simulator's stand-in for the probe instruction.

use reach_sim::isa::{Inst, Program, YieldKind};

/// Rewrites primary yields into presence-probe-conditional yields.
///
/// Scavenger, manual and already-conditional yields are left untouched.
/// No PCs move, so profiles and PC maps remain valid.
pub fn make_conditional(prog: &Program) -> Program {
    let mut out = prog.clone();
    for inst in &mut out.insts {
        if let Inst::Yield {
            kind: kind @ YieldKind::Primary,
            ..
        } = inst
        {
            *kind = YieldKind::IfAbsent;
        }
    }
    out
}

/// Counts yields of each kind — handy for reports.
pub fn yield_census(prog: &Program) -> YieldCensus {
    let mut c = YieldCensus::default();
    for inst in &prog.insts {
        if let Inst::Yield { kind, .. } = inst {
            match kind {
                YieldKind::Primary => c.primary += 1,
                YieldKind::Scavenger => c.scavenger += 1,
                YieldKind::Manual => c.manual += 1,
                YieldKind::IfAbsent => c.if_absent += 1,
            }
        }
    }
    c
}

/// Static yield counts by kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct YieldCensus {
    /// Unconditional primary yields.
    pub primary: usize,
    /// Conditional scavenger yields.
    pub scavenger: usize,
    /// Developer-written yields.
    pub manual: usize,
    /// Presence-probe-conditional yields.
    pub if_absent: usize,
}

impl YieldCensus {
    /// Total yield instructions.
    pub fn total(&self) -> usize {
        self.primary + self.scavenger + self.manual + self.if_absent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::isa::ProgramBuilder;

    fn prog_with_yields() -> Program {
        let mut b = ProgramBuilder::new("y");
        b.push(Inst::Yield {
            kind: YieldKind::Primary,
            save_regs: Some(0b101),
        });
        b.push(Inst::Yield {
            kind: YieldKind::Scavenger,
            save_regs: Some(0b11),
        });
        b.yield_manual();
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn primary_yields_become_if_absent() {
        let p = prog_with_yields();
        let q = make_conditional(&p);
        let census = yield_census(&q);
        assert_eq!(census.primary, 0);
        assert_eq!(census.if_absent, 1);
        assert_eq!(census.scavenger, 1, "scavenger yields untouched");
        assert_eq!(census.manual, 1, "manual yields untouched");
        // Save masks survive the rewrite.
        assert!(matches!(
            q.insts[0],
            Inst::Yield {
                kind: YieldKind::IfAbsent,
                save_regs: Some(0b101)
            }
        ));
        assert_eq!(q.len(), p.len(), "no PCs move");
    }

    #[test]
    fn census_counts() {
        let c = yield_census(&prog_with_yields());
        assert_eq!(c.primary, 1);
        assert_eq!(c.total(), 3);
    }
}

//! Cooperative executors: interleave contexts over one program image,
//! charging the appropriate switch costs.
//!
//! [`run_interleaved`] is the symmetric round-robin executor: every
//! fired yield rotates to the next runnable context. It powers the
//! coroutine mechanism itself, the OS-thread baseline (same logic, 1 µs
//! switches), and — with poisoning enabled — the soundness check for
//! liveness-derived save sets: registers *not* in a yield's save set are
//! deliberately clobbered across the switch, so an under-approximated
//! save set breaks the workload checksum instead of silently costing
//! nothing.

use reach_sim::{Context, ExecError, Exit, Machine, Program, Status, SwitchKind};

/// The value poisoning writes into unsaved registers.
pub const POISON: u64 = 0xDEAD_BEEF_DEAD_BEEF;

/// What kind of context switch the executor performs on a yield.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchMode {
    /// Light-weight coroutine switch (cost scales with the save set).
    Coroutine,
    /// OS thread switch (fixed, expensive).
    Thread,
}

/// Options for [`run_interleaved`].
#[derive(Clone, Copy, Debug)]
pub struct InterleaveOptions {
    /// Switch cost model.
    pub switch: SwitchMode,
    /// Clobber unsaved registers across switches (liveness soundness
    /// checking). Only meaningful for [`SwitchMode::Coroutine`] yields
    /// carrying a save mask.
    pub poison_unsaved: bool,
    /// Record inter-yield intervals (cycles between consecutive fired
    /// yields of the same context).
    pub record_intervals: bool,
    /// Per-context instruction budget.
    pub max_steps_per_ctx: u64,
    /// Trap isolation: an [`ExecError`] in one context retires that
    /// context (recorded in [`InterleaveReport::faults`]) instead of
    /// aborting the whole run.
    pub isolate_faults: bool,
}

impl Default for InterleaveOptions {
    fn default() -> Self {
        InterleaveOptions {
            switch: SwitchMode::Coroutine,
            poison_unsaved: false,
            record_intervals: false,
            max_steps_per_ctx: u64::MAX,
            isolate_faults: false,
        }
    }
}

/// Result of an interleaved run.
#[derive(Clone, Debug, Default)]
pub struct InterleaveReport {
    /// Cycles from entry to the last context finishing.
    pub cycles: u64,
    /// Contexts that completed.
    pub completed: usize,
    /// Switches performed.
    pub switches: u64,
    /// Yields that fired with no other runnable context to switch to
    /// (self-resumed at zero cost).
    pub empty_yields: u64,
    /// Per-context wall-clock latency, where finished.
    pub latencies: Vec<Option<u64>>,
    /// Observed CPU bursts in cycles (time a context held the core
    /// between being scheduled and its next fired yield; all contexts
    /// pooled), when recording was enabled. This is the §3.3 inter-yield
    /// interval as experienced by the *other* coroutines waiting for the
    /// CPU.
    pub intervals: Vec<u64>,
    /// True if some context exhausted its step budget.
    pub step_limited: bool,
    /// Contexts retired by trap isolation: `(context id, error)`, in
    /// fault order. Empty unless
    /// [`InterleaveOptions::isolate_faults`] is set.
    pub faults: Vec<(usize, ExecError)>,
}

/// Runs `contexts` over `prog`, rotating on every fired yield.
///
/// # Errors
///
/// Propagates workload execution errors — unless
/// [`InterleaveOptions::isolate_faults`] is set, in which case the
/// faulting context is retired and recorded and the run continues.
pub fn run_interleaved(
    machine: &mut Machine,
    prog: &Program,
    contexts: &mut [Context],
    opts: &InterleaveOptions,
) -> Result<InterleaveReport, ExecError> {
    let n = contexts.len();
    let started_at = machine.now;
    let mut report = InterleaveReport {
        latencies: vec![None; n],
        ..InterleaveReport::default()
    };
    if n == 0 {
        return Ok(report);
    }

    // Per-context bookkeeping.
    let mut steps_left = vec![opts.max_steps_per_ctx; n];
    // Poison mask to apply when the context next resumes (registers NOT
    // saved at its last yield).
    let mut pending_poison: Vec<Option<u32>> = vec![None; n];
    let mut cur = 0usize;

    // Find a runnable context starting at `cur`; stop when none remain.
    while let Some(i) = (0..n)
        .map(|off| (cur + off) % n)
        .find(|&i| contexts[i].status == Status::Runnable && steps_left[i] > 0)
    {
        cur = i;

        if let Some(mask) = pending_poison[i].take() {
            // SAFETY of the model: only registers outside the save set are
            // clobbered; a sound save set keeps semantics intact.
            for r in 0..reach_sim::isa::NUM_REGS {
                if mask & (1 << r) != 0 {
                    contexts[i].regs[r] = POISON;
                }
            }
        }

        let before = contexts[i].stats.instructions;
        let burst_start = machine.now;
        let exit = match machine.run(prog, &mut contexts[i], steps_left[i]) {
            Ok(exit) => exit,
            Err(e) if opts.isolate_faults => {
                // The machine marks some faults (call-depth, injected
                // traps) itself; make retirement unconditional so e.g. a
                // memory fault cannot leave the context schedulable.
                contexts[i].status = Status::Faulted;
                report.faults.push((contexts[i].id, e));
                cur = (i + 1) % n;
                continue;
            }
            Err(e) => return Err(e),
        };
        let used = contexts[i].stats.instructions - before;
        steps_left[i] = steps_left[i].saturating_sub(used);

        match exit {
            Exit::Yielded { save_regs, .. } => {
                if opts.record_intervals {
                    report.intervals.push(machine.now - burst_start);
                }
                // Is there anybody else to run?
                let someone_else = (0..n)
                    .any(|j| j != i && contexts[j].status == Status::Runnable && steps_left[j] > 0);
                if someone_else {
                    let kind = match opts.switch {
                        SwitchMode::Coroutine => SwitchKind::Coroutine(save_regs),
                        SwitchMode::Thread => SwitchKind::Thread,
                    };
                    machine.charge_switch(kind);
                    report.switches += 1;
                    if opts.poison_unsaved && opts.switch == SwitchMode::Coroutine {
                        if let Some(mask) = save_regs {
                            pending_poison[i] = Some(!mask);
                        }
                    }
                    cur = (i + 1) % n;
                } else {
                    report.empty_yields += 1;
                }
            }
            Exit::Done => {
                report.completed += 1;
                report.latencies[i] = contexts[i].stats.latency();
                cur = (i + 1) % n;
            }
            Exit::StepLimit => {
                report.step_limited = true;
                // Leave the context runnable but budget-exhausted; the
                // outer find skips it.
            }
            Exit::Stalled { .. } => {
                unreachable!("interleaved executor never enables switch_on_stall")
            }
        }
    }

    report.cycles = machine.now - started_at;
    Ok(report)
}

/// One coroutine of a heterogeneous batch: its own binary and context.
#[derive(Debug)]
pub struct Job<'p> {
    /// The program this coroutine executes.
    pub prog: &'p Program,
    /// Its architectural state.
    pub ctx: Context,
}

/// Like [`run_interleaved`], but every coroutine may run a *different*
/// program — the common production shape (a latency-critical request
/// handler interleaving with batch jobs compiled separately).
///
/// # Errors
///
/// Propagates workload execution errors.
pub fn run_interleaved_multi(
    machine: &mut Machine,
    jobs: &mut [Job<'_>],
    opts: &InterleaveOptions,
) -> Result<InterleaveReport, ExecError> {
    let n = jobs.len();
    let started_at = machine.now;
    let mut report = InterleaveReport {
        latencies: vec![None; n],
        ..InterleaveReport::default()
    };
    if n == 0 {
        return Ok(report);
    }

    let mut steps_left = vec![opts.max_steps_per_ctx; n];
    let mut pending_poison: Vec<Option<u32>> = vec![None; n];
    let mut cur = 0usize;

    while let Some(i) = (0..n)
        .map(|off| (cur + off) % n)
        .find(|&i| jobs[i].ctx.status == Status::Runnable && steps_left[i] > 0)
    {
        cur = i;
        if let Some(mask) = pending_poison[i].take() {
            for r in 0..reach_sim::isa::NUM_REGS {
                if mask & (1 << r) != 0 {
                    jobs[i].ctx.regs[r] = POISON;
                }
            }
        }

        let before = jobs[i].ctx.stats.instructions;
        let burst_start = machine.now;
        let prog = jobs[i].prog;
        let exit = match machine.run(prog, &mut jobs[i].ctx, steps_left[i]) {
            Ok(exit) => exit,
            Err(e) if opts.isolate_faults => {
                jobs[i].ctx.status = Status::Faulted;
                report.faults.push((jobs[i].ctx.id, e));
                cur = (i + 1) % n;
                continue;
            }
            Err(e) => return Err(e),
        };
        let used = jobs[i].ctx.stats.instructions - before;
        steps_left[i] = steps_left[i].saturating_sub(used);

        match exit {
            Exit::Yielded { save_regs, .. } => {
                if opts.record_intervals {
                    report.intervals.push(machine.now - burst_start);
                }
                let someone_else = (0..n)
                    .any(|j| j != i && jobs[j].ctx.status == Status::Runnable && steps_left[j] > 0);
                if someone_else {
                    let kind = match opts.switch {
                        SwitchMode::Coroutine => SwitchKind::Coroutine(save_regs),
                        SwitchMode::Thread => SwitchKind::Thread,
                    };
                    machine.charge_switch(kind);
                    report.switches += 1;
                    if opts.poison_unsaved && opts.switch == SwitchMode::Coroutine {
                        if let Some(mask) = save_regs {
                            pending_poison[i] = Some(!mask);
                        }
                    }
                    cur = (i + 1) % n;
                } else {
                    report.empty_yields += 1;
                }
            }
            Exit::Done => {
                report.completed += 1;
                report.latencies[i] = jobs[i].ctx.stats.latency();
                cur = (i + 1) % n;
            }
            Exit::StepLimit => report.step_limited = true,
            Exit::Stalled { .. } => {
                unreachable!("interleaved executor never enables switch_on_stall")
            }
        }
    }

    report.cycles = machine.now - started_at;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::isa::{AluOp, Cond, Inst, ProgramBuilder, Reg};
    use reach_sim::MachineConfig;

    /// Program: chase `r1` nodes from `r0`, checksum into r7, with a
    /// manual prefetch+yield before the load (pre-instrumented shape).
    fn instrumented_chase() -> Program {
        let mut b = ProgramBuilder::new("ichase");
        let top = b.label();
        b.bind(top);
        b.prefetch(Reg(0), 0);
        b.push(Inst::Yield {
            kind: reach_sim::YieldKind::Primary,
            save_regs: Some((1 << 0) | (1 << 1) | (1 << 6) | (1 << 7)),
        });
        b.load(Reg(4), Reg(0), 0);
        b.load(Reg(3), Reg(0), 8);
        b.alu(AluOp::Add, Reg(7), Reg(7), Reg(3), 1);
        b.alu(AluOp::Or, Reg(0), Reg(4), Reg(4), 1);
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(6), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        b.finish().unwrap()
    }

    /// Lays out `k` chains of `n` nodes; returns (heads, expected sums).
    fn lay_chains(m: &mut Machine, k: usize, n: u64) -> (Vec<u64>, Vec<u64>) {
        let mut heads = Vec::new();
        let mut sums = Vec::new();
        for c in 0..k {
            let base = 0x100_0000u64 * (c as u64 + 1);
            let mut sum = 0u64;
            for i in 0..n {
                let addr = base + i * 4096;
                let next = if i + 1 == n { 0 } else { base + (i + 1) * 4096 };
                let payload = addr ^ 0x1234;
                m.mem.write(addr, next).unwrap();
                m.mem.write(addr + 8, payload).unwrap();
                sum = sum.wrapping_add(payload);
            }
            heads.push(base);
            sums.push(sum);
        }
        (heads, sums)
    }

    fn contexts_for(heads: &[u64], n: u64) -> Vec<Context> {
        heads
            .iter()
            .enumerate()
            .map(|(i, &h)| {
                let mut c = Context::new(i);
                c.set_reg(Reg(0), h);
                c.set_reg(Reg(1), n);
                c.set_reg(Reg(6), 1);
                c
            })
            .collect()
    }

    #[test]
    fn interleaving_hides_stalls_and_preserves_results() {
        let prog = instrumented_chase();
        let hops = 32u64;

        // Solo: every miss exposed.
        let mut m1 = Machine::new(MachineConfig::default());
        let (heads, sums) = lay_chains(&mut m1, 1, hops);
        let mut solo = contexts_for(&heads, hops);
        let r1 = run_interleaved(&mut m1, &prog, &mut solo, &InterleaveOptions::default()).unwrap();
        assert_eq!(r1.completed, 1);
        assert_eq!(solo[0].reg(Reg(7)), sums[0]);
        assert!(r1.empty_yields > 0, "nothing to switch to");

        // Eight coroutines: misses overlap.
        let mut m8 = Machine::new(MachineConfig::default());
        let (heads, sums) = lay_chains(&mut m8, 8, hops);
        let mut ctxs = contexts_for(&heads, hops);
        let r8 = run_interleaved(&mut m8, &prog, &mut ctxs, &InterleaveOptions::default()).unwrap();
        assert_eq!(r8.completed, 8);
        for (c, s) in ctxs.iter().zip(&sums) {
            assert_eq!(c.reg(Reg(7)), *s);
        }
        // 8x the work in far less than 8x solo time.
        assert!(
            m8.counters.stall_cycles < m1.counters.stall_cycles * 2,
            "8-way interleave should hide most stalls: {} vs solo {}",
            m8.counters.stall_cycles,
            m1.counters.stall_cycles
        );
        assert!(r8.switches > 0);
    }

    #[test]
    fn thread_switch_mode_is_far_more_expensive() {
        let prog = instrumented_chase();
        let hops = 32u64;
        let run = |mode: SwitchMode| {
            let mut m = Machine::new(MachineConfig::default());
            let (heads, _) = lay_chains(&mut m, 4, hops);
            let mut ctxs = contexts_for(&heads, hops);
            let opts = InterleaveOptions {
                switch: mode,
                ..InterleaveOptions::default()
            };
            run_interleaved(&mut m, &prog, &mut ctxs, &opts).unwrap();
            m.counters.switch_cycles
        };
        let coro = run(SwitchMode::Coroutine);
        let thread = run(SwitchMode::Thread);
        assert!(
            thread > coro * 20,
            "1 us thread switches dwarf 9 ns coroutine switches: {thread} vs {coro}"
        );
    }

    #[test]
    fn poisoning_with_sound_save_sets_preserves_checksums() {
        let prog = instrumented_chase();
        let hops = 16u64;
        let mut m = Machine::new(MachineConfig::default());
        let (heads, sums) = lay_chains(&mut m, 4, hops);
        let mut ctxs = contexts_for(&heads, hops);
        let opts = InterleaveOptions {
            poison_unsaved: true,
            ..InterleaveOptions::default()
        };
        run_interleaved(&mut m, &prog, &mut ctxs, &opts).unwrap();
        for (c, s) in ctxs.iter().zip(&sums) {
            assert_eq!(c.reg(Reg(7)), *s, "sound save set survives poisoning");
        }
        // The poison did land in unsaved registers.
        assert!(ctxs.iter().any(|c| c.regs.contains(&POISON)));
    }

    #[test]
    fn poisoning_catches_unsound_save_sets() {
        // Deliberately omit r7 (the checksum) from the save set.
        let mut b = ProgramBuilder::new("bad");
        let top = b.label();
        b.bind(top);
        b.push(Inst::Yield {
            kind: reach_sim::YieldKind::Primary,
            save_regs: Some((1 << 0) | (1 << 1) | (1 << 6)), // r7 missing!
        });
        b.load(Reg(4), Reg(0), 0);
        b.load(Reg(3), Reg(0), 8);
        b.alu(AluOp::Add, Reg(7), Reg(7), Reg(3), 1);
        b.alu(AluOp::Or, Reg(0), Reg(4), Reg(4), 1);
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(6), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        let prog = b.finish().unwrap();

        let hops = 8u64;
        let mut m = Machine::new(MachineConfig::default());
        let (heads, sums) = lay_chains(&mut m, 2, hops);
        let mut ctxs = contexts_for(&heads, hops);
        let opts = InterleaveOptions {
            poison_unsaved: true,
            ..InterleaveOptions::default()
        };
        run_interleaved(&mut m, &prog, &mut ctxs, &opts).unwrap();
        assert_ne!(
            ctxs[0].reg(Reg(7)),
            sums[0],
            "an unsound save set must corrupt the checksum under poisoning"
        );
    }

    #[test]
    fn interval_recording_measures_gaps() {
        let prog = instrumented_chase();
        let hops = 16u64;
        let mut m = Machine::new(MachineConfig::default());
        let (heads, _) = lay_chains(&mut m, 2, hops);
        let mut ctxs = contexts_for(&heads, hops);
        let opts = InterleaveOptions {
            record_intervals: true,
            ..InterleaveOptions::default()
        };
        let r = run_interleaved(&mut m, &prog, &mut ctxs, &opts).unwrap();
        // One burst recorded per fired yield.
        assert_eq!(r.intervals.len() as u64, 2 * hops);
        assert!(r.intervals.iter().all(|&i| i > 0));
        // A burst is one loop body's worth of cycles, nowhere near the
        // whole run.
        let max = *r.intervals.iter().max().unwrap();
        assert!(max < 500, "burst {max} looks like wall time, not a burst");
    }

    #[test]
    fn empty_context_list_is_a_noop() {
        let prog = instrumented_chase();
        let mut m = Machine::new(MachineConfig::default());
        let r = run_interleaved(&mut m, &prog, &mut [], &InterleaveOptions::default()).unwrap();
        assert_eq!(r.completed, 0);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn step_budget_is_respected() {
        let mut b = ProgramBuilder::new("inf");
        let top = b.label();
        b.bind(top);
        b.jump(top);
        let prog = b.finish().unwrap();
        let mut m = Machine::new(MachineConfig::default());
        let mut ctxs = vec![Context::new(0)];
        let opts = InterleaveOptions {
            max_steps_per_ctx: 100,
            ..InterleaveOptions::default()
        };
        let r = run_interleaved(&mut m, &prog, &mut ctxs, &opts).unwrap();
        assert!(r.step_limited);
        assert_eq!(r.completed, 0);
    }

    #[test]
    fn isolated_fault_retires_one_context_not_the_run() {
        // Shared program: one load through r0, halt. Context 0 points r0
        // at an unaligned address (memory fault); context 1 is healthy.
        let mut b = ProgramBuilder::new("iso");
        b.load(Reg(1), Reg(0), 0);
        b.halt();
        let prog = b.finish().unwrap();

        let make_ctxs = || {
            let mut bad = Context::new(0);
            bad.set_reg(Reg(0), 0x1001);
            let mut good = Context::new(1);
            good.set_reg(Reg(0), 0x1000);
            vec![bad, good]
        };

        // Default semantics: the fault aborts the run.
        let mut m = Machine::new(MachineConfig::default());
        let mut ctxs = make_ctxs();
        assert!(run_interleaved(&mut m, &prog, &mut ctxs, &InterleaveOptions::default()).is_err());

        // Isolated: the faulting context is retired and recorded, the
        // healthy one completes.
        let mut m = Machine::new(MachineConfig::default());
        let mut ctxs = make_ctxs();
        let opts = InterleaveOptions {
            isolate_faults: true,
            ..InterleaveOptions::default()
        };
        let r = run_interleaved(&mut m, &prog, &mut ctxs, &opts).unwrap();
        assert_eq!(r.completed, 1);
        assert_eq!(r.faults.len(), 1);
        assert_eq!(r.faults[0].0, 0);
        assert!(matches!(r.faults[0].1, ExecError::Mem(_)));
        assert_eq!(ctxs[0].status, Status::Faulted);
        assert_eq!(ctxs[1].status, Status::Done);
    }

    #[test]
    fn multi_program_interleave_mixes_binaries() {
        use super::{run_interleaved_multi, Job};
        // Job 0: instrumented chase. Job 1: a pure-compute counter with
        // manual yields — a different binary entirely.
        let chase = instrumented_chase();
        let mut b = ProgramBuilder::new("counter");
        let top = b.label();
        b.bind(top);
        b.alu(AluOp::Add, Reg(7), Reg(7), Reg(6), 5);
        b.yield_manual();
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(6), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        let counter = b.finish().unwrap();

        let mut m = Machine::new(MachineConfig::default());
        let (heads, sums) = lay_chains(&mut m, 1, 16);
        let mut chase_ctx = contexts_for(&heads, 16).remove(0);
        chase_ctx.id = 0;
        let mut counter_ctx = Context::new(1);
        counter_ctx.set_reg(Reg(1), 50);
        counter_ctx.set_reg(Reg(6), 1);

        let mut jobs = vec![
            Job {
                prog: &chase,
                ctx: chase_ctx,
            },
            Job {
                prog: &counter,
                ctx: counter_ctx,
            },
        ];
        let rep = run_interleaved_multi(&mut m, &mut jobs, &InterleaveOptions::default()).unwrap();
        assert_eq!(rep.completed, 2);
        assert_eq!(jobs[0].ctx.reg(Reg(7)), sums[0]);
        assert_eq!(jobs[1].ctx.reg(Reg(7)), 50); // 50 adds of the constant 1
        assert!(rep.switches > 0, "the two binaries interleaved");
        // The counter really absorbed chase stalls: far fewer stall
        // cycles than a solo chase would expose.
        assert!(m.counters.stall_cycles < 16 * 270);
    }
}

//! The end-to-end PGO pipeline (§3.2's three logical steps):
//!
//! 1. run the original coroutine code "in production" under sample-based
//!    profiling ([`reach_profile::collect`]);
//! 2. instrument the binary — primary `prefetch+yield` insertion guided by
//!    the profile, then the scavenger pass bounding inter-yield intervals;
//! 3. hand the finalized binary to an executor
//!    ([`crate::executor`] / [`crate::dualmode`]) to interleave at run
//!    time.
//!
//! The pipeline also composes the PC maps across both rewriting passes so
//! the final binary's instructions can always be traced back to the
//! profiled image.

use reach_instrument::{
    instrument_primary, instrument_scavenger, lint_program, smooth_profile, validate_rewrite,
    verify_rewrite, verify_rewrite_map, LintOptions, LintReport, PcMap, PrimaryOptions,
    PrimaryReport, RewriteError, ScavReport, ScavengerOptions, ValidationError, VerifyReport,
};
use reach_profile::{
    collect, validate_profile, CollectionCost, CollectorConfig, Profile, ProfileInvalid,
    ProfileValidationOptions,
};
use reach_sim::{Context, ExecError, Machine, MachineConfig, Program};

/// Options for the full pipeline.
#[derive(Clone, Debug)]
pub struct PipelineOptions {
    /// Profiling-run configuration.
    pub collector: CollectorConfig,
    /// Primary-pass options.
    pub primary: PrimaryOptions,
    /// Scavenger-pass options; `None` skips the pass (primary-only
    /// instrumentation, as in §3.2 alone).
    pub scavenger: Option<ScavengerOptions>,
    /// `reach-lint` configuration for the final-binary gate. Deny-level
    /// findings abort the pipeline ([`PipelineError::Lint`]); warnings
    /// ride along in [`InstrumentedBinary::lint_report`].
    pub lint: LintOptions,
    /// Run the symbolic equivalence checker ([`reach_instrument::equiv`])
    /// on every rewriting pass and on the composed end-to-end pc map,
    /// refusing unprovable rewrites ([`PipelineError::Verify`]). On by
    /// default — opt out only for experiments that deliberately ship
    /// corrupted builds.
    pub verify: bool,
    /// Profile admission control: provenance (binary fingerprint) and
    /// sample-coverage checks on the smoothed profile before it steers
    /// instrumentation. `None` (the default) skips the check — opt in
    /// when profiles cross a trust boundary (serialized, cached, or
    /// collected by another process). The degradation ladder
    /// ([`crate::degrade`]) turns these refusals into re-profiles and
    /// rung descents instead of hard failures.
    pub validation: Option<ProfileValidationOptions>,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            collector: CollectorConfig::default(),
            primary: PrimaryOptions::default(),
            scavenger: Some(ScavengerOptions::default()),
            lint: LintOptions::default(),
            verify: true,
            validation: None,
        }
    }
}

/// Pipeline errors.
#[derive(Debug)]
pub enum PipelineError {
    /// The profiling run failed.
    Exec(ExecError),
    /// A rewriting pass failed.
    Rewrite(RewriteError),
    /// A rewriting pass produced a binary that failed translation
    /// validation (an instrumenter bug, caught before it ships).
    Validation(ValidationError),
    /// The final binary failed a deny-level `reach-lint` check — the
    /// defense-in-depth gate next to translation validation. The report
    /// carries every finding.
    Lint(LintReport),
    /// The symbolic equivalence checker could not prove a rewrite
    /// observationally equivalent to its input (RL0008–RL0010). The
    /// report carries the proof obligations that failed.
    Verify(Box<VerifyReport>),
    /// The profile failed admission control (wrong provenance or too
    /// little coverage to steer instrumentation safely).
    Profile(ProfileInvalid),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Exec(e) => write!(f, "profiling run failed: {e}"),
            PipelineError::Rewrite(e) => write!(f, "rewriting failed: {e}"),
            PipelineError::Validation(e) => write!(f, "translation validation failed: {e}"),
            PipelineError::Lint(report) => {
                write!(
                    f,
                    "reach-lint refused the binary ({} deny-level finding(s)):\n{report}",
                    report.deny_count()
                )
            }
            PipelineError::Verify(report) => {
                write!(
                    f,
                    "equivalence verification refused the rewrite ({} deny-level finding(s)):\n{report}",
                    report.lint.deny_count()
                )
            }
            PipelineError::Profile(e) => write!(f, "profile rejected: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ExecError> for PipelineError {
    fn from(e: ExecError) -> Self {
        PipelineError::Exec(e)
    }
}

impl From<RewriteError> for PipelineError {
    fn from(e: RewriteError) -> Self {
        PipelineError::Rewrite(e)
    }
}

impl From<ValidationError> for PipelineError {
    fn from(e: ValidationError) -> Self {
        PipelineError::Validation(e)
    }
}

impl From<ProfileInvalid> for PipelineError {
    fn from(e: ProfileInvalid) -> Self {
        PipelineError::Profile(e)
    }
}

/// The finalized, instrumented binary plus everything learned on the way.
#[derive(Clone, Debug)]
pub struct InstrumentedBinary {
    /// The final program (primary + scavenger instrumentation applied).
    pub prog: Program,
    /// `origin[pc]` = PC in the *original* program, `None` for inserted
    /// instructions.
    pub origin: Vec<Option<usize>>,
    /// The collected profile.
    pub profile: Profile,
    /// What profiling cost.
    pub collection_cost: CollectionCost,
    /// Primary-pass report.
    pub primary_report: PrimaryReport,
    /// Scavenger-pass report (when the pass ran).
    pub scavenger_report: Option<ScavReport>,
    /// `reach-lint` findings on the final binary (warn-level only — a
    /// deny-level finding aborts the pipeline instead).
    pub lint_report: LintReport,
}

/// The `reach-lint` shipping gate: lints `prog` and refuses it
/// ([`PipelineError::Lint`]) if any deny-level finding fires. Returns
/// the (warn-only) report otherwise.
pub fn lint_gate(
    prog: &Program,
    origin: &[Option<usize>],
    opts: &LintOptions,
) -> Result<LintReport, PipelineError> {
    let report = lint_program(prog, Some(origin), opts);
    if report.has_deny() {
        Err(PipelineError::Lint(report))
    } else {
        Ok(report)
    }
}

/// The translation-validation shipping gate: proves `rewritten`
/// observationally equivalent to `original` (modulo inserted
/// yields/prefetches) under the rewrite's origin map, refusing
/// ([`PipelineError::Verify`]) when any obligation cannot be
/// discharged. Returns the (clean) proof report otherwise.
pub fn verify_gate(
    original: &Program,
    rewritten: &Program,
    origin: &[Option<usize>],
    opts: &LintOptions,
) -> Result<VerifyReport, PipelineError> {
    let report = verify_rewrite(original, rewritten, origin, opts);
    if report.ok() {
        Ok(report)
    } else {
        Err(PipelineError::Verify(Box::new(report)))
    }
}

/// [`verify_gate`] over a full [`PcMap`] (adds the `new_of`↔`origin`
/// consistency obligation, RL0010).
fn verify_map_gate(
    original: &Program,
    rewritten: &Program,
    map: &PcMap,
    opts: &LintOptions,
) -> Result<VerifyReport, PipelineError> {
    let report = verify_rewrite_map(original, rewritten, map, opts);
    if report.ok() {
        Ok(report)
    } else {
        Err(PipelineError::Verify(Box::new(report)))
    }
}

/// Runs the full pipeline: profile `prog` by executing
/// `profiling_contexts` on `machine`, then instrument.
///
/// The machine is left warm (caches and counters reflect the profiling
/// run); evaluation runs should use a fresh machine with the same memory
/// layout, exactly as production deploys the instrumented binary on fresh
/// processes.
pub fn pgo_pipeline(
    machine: &mut Machine,
    prog: &Program,
    profiling_contexts: &mut [Context],
    opts: &PipelineOptions,
) -> Result<InstrumentedBinary, PipelineError> {
    // Step (i): profile the original code.
    let (raw_profile, collection_cost) =
        collect(machine, prog, profiling_contexts, &opts.collector)?;
    // Block-smooth execution estimates so per-PC likelihoods are usable
    // even for short loops (AutoFDO-style aggregation).
    let profile = smooth_profile(&raw_profile, prog);

    // Admission control: refuse a profile with the wrong provenance or
    // too little coverage before it steers any rewriting.
    if let Some(v) = &opts.validation {
        validate_profile(&profile, prog, v)?;
    }

    let mcfg = machine.cfg.clone();
    let (final_prog, origin, primary_report, scavenger_report, lint_report) =
        instrument_with_profile(prog, &profile, &mcfg, opts)?;

    Ok(InstrumentedBinary {
        prog: final_prog,
        origin,
        profile,
        collection_cost,
        primary_report,
        scavenger_report,
        lint_report,
    })
}

/// Step (ii) in isolation: instrument `prog` under an already-collected,
/// already-smoothed (and, if configured, already-validated) `profile`.
/// Shared by [`pgo_pipeline`] and the degradation ladder
/// ([`crate::degrade`]), which re-enters here after re-profiling.
#[allow(clippy::type_complexity)]
pub(crate) fn instrument_with_profile(
    prog: &Program,
    profile: &Profile,
    mcfg: &MachineConfig,
    opts: &PipelineOptions,
) -> Result<
    (
        Program,
        Vec<Option<usize>>,
        PrimaryReport,
        Option<ScavReport>,
        LintReport,
    ),
    PipelineError,
> {
    // Step (ii a): primary instrumentation, translation-validated
    // syntactically and (unless opted out) proven equivalent.
    let (primary_prog, primary_report) = instrument_primary(prog, profile, mcfg, &opts.primary)?;
    validate_rewrite(prog, &primary_prog, &primary_report.pc_map.origin, false)?;
    if opts.verify {
        verify_map_gate(prog, &primary_prog, &primary_report.pc_map, &opts.lint)?;
    }

    // Step (ii b): scavenger instrumentation, carrying profile PCs across
    // the first rewrite via the origin map.
    let (final_prog, origin, scavenger_report) = match &opts.scavenger {
        Some(sopts) => {
            let origin1 = primary_report.pc_map.origin.clone();
            let (scav_prog, scav_report) =
                instrument_scavenger(&primary_prog, Some((profile, &origin1)), mcfg, sopts)?;
            validate_rewrite(&primary_prog, &scav_prog, &scav_report.pc_map.origin, false)?;
            if opts.verify {
                // Each pass proves out on its own, and the composed
                // end-to-end map must tell a consistent story too.
                verify_map_gate(&primary_prog, &scav_prog, &scav_report.pc_map, &opts.lint)?;
                let composed_map = primary_report.pc_map.then(&scav_report.pc_map);
                verify_map_gate(prog, &scav_prog, &composed_map, &opts.lint)?;
            }
            let composed: Vec<Option<usize>> = scav_report
                .pc_map
                .origin
                .iter()
                .map(|&o| o.and_then(|p| origin1[p]))
                .collect();
            (scav_prog, composed, Some(scav_report))
        }
        None => (primary_prog, primary_report.pc_map.origin.clone(), None),
    };

    // Step (ii c): static verification of the shipped binary —
    // defense-in-depth next to the per-pass translation validation.
    let lint_report = lint_gate(&final_prog, &origin, &opts.lint)?;

    Ok((
        final_prog,
        origin,
        primary_report,
        scavenger_report,
        lint_report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{run_interleaved, InterleaveOptions};
    use reach_sim::isa::Inst;
    use reach_sim::{MachineConfig, YieldKind};
    use reach_workloads::{build_chase, AddrAlloc, ChaseParams};

    fn chase_params() -> ChaseParams {
        ChaseParams {
            nodes: 1024,
            hops: 1024,
            node_stride: 4096,
            work_per_hop: 20,
            work_insts: 1,
            seed: 3,
        }
    }

    #[test]
    fn pipeline_produces_instrumented_binary_with_both_yield_kinds() {
        let mut m = Machine::new(MachineConfig::default());
        let mut alloc = AddrAlloc::new(0x10_0000);
        // Extra instance for profiling so evaluation instances stay
        // untouched.
        let w = build_chase(&mut m.mem, &mut alloc, chase_params(), 2);
        let mut prof_ctx = vec![w.instances[1].make_context(99)];
        let built =
            pgo_pipeline(&mut m, &w.prog, &mut prof_ctx, &PipelineOptions::default()).unwrap();

        assert!(built.primary_report.sites_selected() >= 1);
        let kinds: Vec<YieldKind> = built
            .prog
            .insts
            .iter()
            .filter_map(|i| match i {
                Inst::Yield { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        assert!(kinds.contains(&YieldKind::Primary));
        // The chase body is short; with the ALU work=20 the loop stays
        // under 300 cycles once the miss is hidden, so scavenger yields
        // may or may not be needed — but the report must exist and the
        // final static interval must be bounded.
        let scav = built.scavenger_report.as_ref().unwrap();
        assert!(scav.max_interval_after.is_some());
        // Origins point back into the original program.
        assert_eq!(built.origin.len(), built.prog.len());
        let max_origin = built.origin.iter().flatten().max().unwrap();
        assert!(*max_origin < w.prog.len());
        // The shipped binary linted clean (deny would have aborted; the
        // pipeline's own output must not even warn).
        assert!(
            built.lint_report.is_clean(),
            "pipeline output should lint clean:\n{}",
            built.lint_report
        );
    }

    #[test]
    fn lint_gate_refuses_deny_level_binaries() {
        use reach_instrument::{Level, Lint};
        use reach_sim::isa::{ProgramBuilder, Reg};

        // A binary whose yield saves nothing while r2/r3 are live: the
        // RL0001 deny must turn into a pipeline refusal.
        let mut b = ProgramBuilder::new("bad");
        b.imm(Reg(2), 7);
        b.push(Inst::Yield {
            kind: YieldKind::Manual,
            save_regs: Some(0),
        });
        b.store(Reg(2), Reg(3), 0);
        b.halt();
        let bad = b.finish().unwrap();
        let origin: Vec<Option<usize>> = (0..bad.len()).map(Some).collect();
        let err = lint_gate(&bad, &origin, &LintOptions::default()).unwrap_err();
        match &err {
            PipelineError::Lint(report) => {
                assert!(report.has_deny());
                assert_eq!(report.fired_codes(), vec!["RL0001"]);
            }
            other => panic!("expected lint refusal, got {other}"),
        }
        assert!(err.to_string().contains("RL0001"));

        // Demoting the lint to warn lets the same binary through, with
        // the finding preserved in the report.
        let relaxed = LintOptions {
            sfi: false,
            levels: vec![(Lint::ClobberedLiveAtYield, Level::Warn)],
        };
        let report = lint_gate(&bad, &origin, &relaxed).unwrap();
        assert_eq!(report.warn_count(), 1);
    }

    #[test]
    fn validation_accepts_own_profile_and_refuses_forged_provenance() {
        use reach_profile::ProfileInvalid;

        let mut m = Machine::new(MachineConfig::default());
        let mut alloc = AddrAlloc::new(0x10_0000);
        let w = build_chase(&mut m.mem, &mut alloc, chase_params(), 2);

        // Validation on: the pipeline's own freshly collected profile
        // passes admission control.
        let opts = PipelineOptions {
            validation: Some(reach_profile::ProfileValidationOptions {
                require_fingerprint: true,
                ..reach_profile::ProfileValidationOptions::default()
            }),
            ..PipelineOptions::default()
        };
        let mut prof_ctx = vec![w.instances[1].make_context(99)];
        let built = pgo_pipeline(&mut m, &w.prog, &mut prof_ctx, &opts).unwrap();
        assert_eq!(built.profile.fingerprint, w.prog.fingerprint());

        // A profile collected against a *different* binary is refused
        // before it can steer instrumentation.
        let other = {
            let mut b = reach_sim::isa::ProgramBuilder::new("other");
            b.halt();
            b.finish().unwrap()
        };
        let verdict =
            reach_profile::validate_profile(&built.profile, &other, &opts.validation.unwrap());
        assert!(matches!(
            verdict,
            Err(ProfileInvalid::FingerprintMismatch { .. })
        ));

        // And an impossible coverage bar makes the pipeline itself refuse
        // with a typed error rather than instrumenting blind.
        let strict = PipelineOptions {
            validation: Some(reach_profile::ProfileValidationOptions {
                min_total_samples: u64::MAX,
                ..reach_profile::ProfileValidationOptions::default()
            }),
            ..PipelineOptions::default()
        };
        let mut m2 = Machine::new(MachineConfig::default());
        let mut alloc2 = AddrAlloc::new(0x10_0000);
        let w2 = build_chase(&mut m2.mem, &mut alloc2, chase_params(), 2);
        let mut prof_ctx2 = vec![w2.instances[1].make_context(99)];
        let err = pgo_pipeline(&mut m2, &w2.prog, &mut prof_ctx2, &strict).unwrap_err();
        assert!(matches!(
            err,
            PipelineError::Profile(ProfileInvalid::TooFewSamples { .. })
        ));
    }

    #[test]
    fn instrumented_binary_preserves_checksums_under_interleaving() {
        let mut m = Machine::new(MachineConfig::default());
        let mut alloc = AddrAlloc::new(0x10_0000);
        let w = build_chase(&mut m.mem, &mut alloc, chase_params(), 5);
        let mut prof_ctx = vec![w.instances[4].make_context(99)];
        let built =
            pgo_pipeline(&mut m, &w.prog, &mut prof_ctx, &PipelineOptions::default()).unwrap();

        // Fresh machine, same memory: rebuild deterministically.
        let mut m2 = Machine::new(MachineConfig::default());
        let mut alloc2 = AddrAlloc::new(0x10_0000);
        let w2 = build_chase(&mut m2.mem, &mut alloc2, chase_params(), 5);
        let mut ctxs: Vec<_> = (0..4).map(|i| w2.instances[i].make_context(i)).collect();
        let opts = InterleaveOptions {
            poison_unsaved: true, // prove the liveness save sets are sound
            ..InterleaveOptions::default()
        };
        let rep = run_interleaved(&mut m2, &built.prog, &mut ctxs, &opts).unwrap();
        assert_eq!(rep.completed, 4);
        for (i, c) in ctxs.iter().enumerate() {
            w2.instances[i].assert_checksum(c);
        }
    }

    #[test]
    fn instrumentation_improves_cpu_efficiency_on_chase() {
        // Baseline: 4 instances run back to back, uninstrumented.
        let mut mb = Machine::new(MachineConfig::default());
        let mut ab = AddrAlloc::new(0x10_0000);
        let wb = build_chase(&mut mb.mem, &mut ab, chase_params(), 4);
        for i in 0..4 {
            wb.run_solo(&mut mb, i, 10_000_000);
        }
        let base_eff = mb.counters.cpu_efficiency();

        // Pipeline + interleaved execution of the same work.
        let mut mp = Machine::new(MachineConfig::default());
        let mut ap = AddrAlloc::new(0x10_0000);
        let wp = build_chase(&mut mp.mem, &mut ap, chase_params(), 5);
        let mut prof_ctx = vec![wp.instances[4].make_context(99)];
        let built = pgo_pipeline(
            &mut mp,
            &wp.prog,
            &mut prof_ctx,
            &PipelineOptions::default(),
        )
        .unwrap();

        let mut m2 = Machine::new(MachineConfig::default());
        let mut a2 = AddrAlloc::new(0x10_0000);
        let w2 = build_chase(&mut m2.mem, &mut a2, chase_params(), 5);
        let mut ctxs: Vec<_> = (0..4).map(|i| w2.instances[i].make_context(i)).collect();
        run_interleaved(
            &mut m2,
            &built.prog,
            &mut ctxs,
            &InterleaveOptions::default(),
        )
        .unwrap();
        let inst_eff = m2.counters.cpu_efficiency();

        assert!(
            inst_eff > base_eff * 2.0,
            "hiding should at least double efficiency on a DRAM-bound \
             chase: {inst_eff:.3} vs {base_eff:.3}"
        );
    }
}

//! Dual-mode execution: the run-time half of asymmetric concurrency
//! (§3.3).
//!
//! One latency-sensitive *primary* coroutine co-runs with a pool of
//! *scavenger* coroutines:
//!
//! * the primary yields only at primary-instrumented sites (likely cache
//!   misses, prefetch already issued);
//! * a scavenger runs until it hits a scavenger-phase conditional yield —
//!   placed ≈ one hide-interval apart — and then yields straight back to
//!   the primary;
//! * a scavenger that hits one of its *own* primary yields too early
//!   instead hands off to **another** scavenger ("scale up the number of
//!   scavenger coroutines on demand"), because its own prefetch is now in
//!   flight and somebody has to consume cycles.
//!
//! The result: the primary's misses are hidden behind scavenger work, and
//! the primary regains the CPU after ≈ the hide target, bounding its
//! latency inflation — the property neither SMT nor symmetric round-robin
//! provides.

use reach_sim::{Context, ExecError, Exit, Machine, Mode, Program, Status, SwitchKind, YieldKind};

/// Scavenger watchdog configuration: the runtime containment for
/// scavengers whose conditional yields never fire (elided by a bad
/// rewrite, optimized out, or simply third-party code that does not
/// cooperate). The static reach-lint gate catches the first case before
/// shipping; the watchdog bounds the damage when a runaway slips through
/// anyway.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogOptions {
    /// Instruction budget per scavenger slice; a scavenger still running
    /// after this many instructions is forcibly preempted (the fill ends
    /// and the primary gets the CPU back).
    pub slice_steps: u64,
    /// A slice longer than this many cycles counts as an overrun against
    /// the scavenger that ran it.
    pub overrun_cycles: u64,
    /// Overruns after which a scavenger is quarantined: excluded from
    /// serving fills and recorded in [`DualModeReport::quarantined`].
    /// Without probation (below) the exclusion lasts the rest of the
    /// run; the post-primary drain, where latency is no longer at stake,
    /// still completes it either way.
    pub max_overruns: u32,
    /// Probation window: a quarantined scavenger is re-admitted to the
    /// fill rotation after this many cycles, with a fresh overrun
    /// allowance. The window doubles deterministically on every repeat
    /// quarantine (exponential backoff), so a transiently-faulty
    /// scavenger gets back to work while a repeat offender spends most
    /// of the run excluded. `None` (the default) keeps the pre-probation
    /// behaviour: quarantine is permanent.
    pub probation_cycles: Option<u64>,
    /// Quarantine events after which probation stops and the exclusion
    /// becomes permanent — a persistently-faulty scavenger must not get
    /// unbounded chances to tax the primary. Irrelevant when
    /// `probation_cycles` is `None`.
    pub max_quarantines: u32,
}

/// Per-slice instruction budget for scavengers when **no** watchdog is
/// armed. Historically an unwatched scavenger inherited the whole
/// per-context budget (`u64::MAX` by default) as its slice budget, so a
/// single runaway scavenger could hang the entire dual-mode run during
/// one fill. Large enough that no legitimate scavenger slice ever hits
/// it (the watchdog default is 50 k steps; this is 80×), small enough
/// that a runaway faults out in bounded time.
pub const DEFAULT_UNWATCHED_SLICE_STEPS: u64 = 4_000_000;

impl Default for WatchdogOptions {
    fn default() -> Self {
        WatchdogOptions {
            slice_steps: 50_000,
            overrun_cycles: 1_200,
            max_overruns: 3,
            probation_cycles: None,
            max_quarantines: 3,
        }
    }
}

/// Options for a dual-mode run.
#[derive(Clone, Copy, Debug)]
pub struct DualModeOptions {
    /// Cycles of scavenger work that suffice to hide a primary miss
    /// (defaults to the DRAM latency).
    pub hide_target: u64,
    /// Per-context instruction budget.
    pub max_steps_per_ctx: u64,
    /// After the primary completes, run remaining scavengers to
    /// completion (symmetrically interleaved).
    pub drain_scavengers: bool,
    /// Scavenger watchdog (None = no overrun containment, the
    /// pre-hardening behaviour).
    pub watchdog: Option<WatchdogOptions>,
    /// Trap isolation: an [`ExecError`] in any context retires that
    /// context with a record in [`DualModeReport::context_faults`]
    /// instead of aborting the run.
    pub isolate_faults: bool,
}

impl Default for DualModeOptions {
    fn default() -> Self {
        DualModeOptions {
            hide_target: 300,
            max_steps_per_ctx: u64::MAX,
            drain_scavengers: true,
            watchdog: None,
            isolate_faults: false,
        }
    }
}

/// Result of a dual-mode run.
#[derive(Clone, Debug, Default)]
pub struct DualModeReport {
    /// Primary wall-clock latency in cycles (start to halt).
    pub primary_latency: Option<u64>,
    /// Total cycles for the whole run (including scavenger drain).
    pub total_cycles: u64,
    /// Most scavengers consumed for a single primary miss (the on-demand
    /// scale-up depth).
    pub max_scavengers_per_fill: usize,
    /// Scavenger contexts that ran at least once.
    pub scavengers_used: usize,
    /// Scavenger contexts that ran to completion.
    pub scavengers_completed: usize,
    /// Cycles the primary spent away from the CPU per fill — one entry
    /// per primary yield, **including starved fills** (which record the
    /// switch overhead they still paid). Keeping starved fills in the
    /// sample is what keeps [`DualModeReport::mean_fill`] an unbiased
    /// mean over *all* fills rather than only the hidden ones.
    pub fill_times: Vec<u64>,
    /// Primary yields with no runnable scavenger available (the fill ran
    /// on nothing and the miss was *not* hidden).
    pub starved_fills: u64,
    /// Scavenger slices the watchdog counted as overruns.
    pub overruns: u64,
    /// Context ids of scavengers quarantined by the watchdog (repeat
    /// overrun offenders, excluded from serving further fills). With
    /// probation enabled an id appears once per quarantine *event*, so
    /// repeat offenders show up multiple times.
    pub quarantined: Vec<usize>,
    /// Scavengers re-admitted to the fill rotation after serving out a
    /// probation window (0 unless [`WatchdogOptions::probation_cycles`]
    /// is set).
    pub readmitted: u64,
    /// Contexts retired by trap isolation: `(context id, error)` in
    /// fault order. Empty unless [`DualModeOptions::isolate_faults`].
    pub context_faults: Vec<(usize, ExecError)>,
}

impl DualModeReport {
    /// Mean fill time in cycles (0 when no fills happened).
    pub fn mean_fill(&self) -> f64 {
        if self.fill_times.is_empty() {
            0.0
        } else {
            self.fill_times.iter().sum::<u64>() as f64 / self.fill_times.len() as f64
        }
    }
}

/// Runs `primary` over `primary_prog` co-scheduled with `scavengers` over
/// `scav_prog` under the dual-mode discipline.
///
/// The primary context is forced into [`Mode::Primary`] and scavengers
/// into [`Mode::Scavenger`] (so the conditional scavenger yields fire only
/// in the pool).
///
/// # Errors
///
/// Propagates workload execution errors.
pub fn run_dual_mode(
    machine: &mut Machine,
    primary_prog: &Program,
    primary: &mut Context,
    scav_prog: &Program,
    scavengers: &mut [Context],
    opts: &DualModeOptions,
) -> Result<DualModeReport, ExecError> {
    let started_at = machine.now;
    primary.mode = Mode::Primary;
    for s in scavengers.iter_mut() {
        s.mode = Mode::Scavenger;
    }

    let mut report = DualModeReport::default();
    let mut used = vec![false; scavengers.len()];
    let mut overruns = vec![0u32; scavengers.len()];
    let mut quarantined = vec![false; scavengers.len()];
    // Probation bookkeeping: how many times each scavenger has been
    // quarantined, and (when on probation) the cycle at which it may
    // serve fills again.
    let mut quarantines = vec![0u32; scavengers.len()];
    let mut release_at: Vec<Option<u64>> = vec![None; scavengers.len()];
    let mut next_scav = 0usize;
    // Per-slice instruction budget: the watchdog preempts long before
    // the overall per-context budget would. Unwatched runs still get a
    // large-but-finite slice ceiling — without it a runaway scavenger
    // inherits `max_steps_per_ctx` (`u64::MAX` by default) and hangs the
    // run inside a single fill; with it the runaway hits `StepLimit`,
    // faults out, and the primary proceeds.
    let slice_budget = match &opts.watchdog {
        Some(w) => w.slice_steps.min(opts.max_steps_per_ctx),
        None => DEFAULT_UNWATCHED_SLICE_STEPS.min(opts.max_steps_per_ctx),
    };

    'primary: loop {
        let exit = match machine.run(primary_prog, primary, opts.max_steps_per_ctx) {
            Ok(exit) => exit,
            Err(e) if opts.isolate_faults => {
                primary.status = Status::Faulted;
                report.context_faults.push((primary.id, e));
                break 'primary;
            }
            Err(e) => return Err(e),
        };
        match exit {
            Exit::Done => break 'primary,
            Exit::StepLimit => break 'primary,
            Exit::Stalled { .. } => unreachable!("switch_on_stall is disabled here"),
            Exit::Yielded { save_regs, .. } => {
                // The primary just prefetched and yielded: fill the gap
                // with scavenger work.
                let fill_start = machine.now;
                machine.charge_switch(SwitchKind::Coroutine(save_regs));

                let mut scavs_this_fill = 0usize;
                'fill: loop {
                    // Pick the next runnable, non-quarantined scavenger
                    // (round robin). A scavenger on probation counts as
                    // quarantined until its release cycle arrives.
                    let now = machine.now;
                    let pick = (0..scavengers.len())
                        .map(|off| (next_scav + off) % scavengers.len().max(1))
                        .find(|&i| {
                            scavengers[i].status == Status::Runnable
                                && !quarantined[i]
                                && release_at[i].is_none_or(|t| now >= t)
                        });
                    let Some(i) = pick else {
                        if scavs_this_fill == 0 {
                            report.starved_fills += 1;
                        }
                        break 'fill;
                    };
                    next_scav = i;
                    if release_at[i].take().is_some() {
                        // Probation served: back in the rotation with a
                        // fresh overrun allowance.
                        overruns[i] = 0;
                        report.readmitted += 1;
                    }
                    if !used[i] {
                        used[i] = true;
                        report.scavengers_used += 1;
                    }
                    scavs_this_fill += 1;

                    let slice_start = machine.now;
                    let exit = match machine.run(scav_prog, &mut scavengers[i], slice_budget) {
                        Ok(exit) => exit,
                        Err(e) if opts.isolate_faults => {
                            // Trap isolation: retire this scavenger only;
                            // the fill keeps going with the next one.
                            scavengers[i].status = Status::Faulted;
                            report.context_faults.push((scavengers[i].id, e));
                            continue 'fill;
                        }
                        Err(e) => return Err(e),
                    };
                    let elapsed = machine.now - fill_start;
                    // Watchdog overrun accounting, per slice: repeat
                    // offenders are quarantined (retired from scheduling
                    // for the rest of the run).
                    let mut quarantine_now = false;
                    if let Some(w) = &opts.watchdog {
                        let slice = machine.now - slice_start;
                        if slice > w.overrun_cycles || exit == Exit::StepLimit {
                            overruns[i] += 1;
                            report.overruns += 1;
                            if overruns[i] >= w.max_overruns {
                                quarantines[i] += 1;
                                report.quarantined.push(scavengers[i].id);
                                quarantine_now = true;
                                match w.probation_cycles {
                                    // Probation: sit out a deterministic,
                                    // per-offense-doubling window, then
                                    // rejoin the rotation.
                                    Some(p) if quarantines[i] <= w.max_quarantines => {
                                        let shift = (quarantines[i] - 1).min(31);
                                        let window = p.saturating_mul(1u64 << shift);
                                        release_at[i] = Some(machine.now.saturating_add(window));
                                    }
                                    // No probation configured, or chances
                                    // exhausted: permanent.
                                    _ => quarantined[i] = true,
                                }
                            }
                        }
                    }
                    match exit {
                        Exit::Done => {
                            report.scavengers_completed += 1;
                            if elapsed >= opts.hide_target {
                                break 'fill;
                            }
                            // Otherwise keep filling with another one.
                        }
                        Exit::StepLimit if opts.watchdog.is_some() => {
                            // Watchdog preemption, not a fault: the
                            // scavenger stays runnable (unless just
                            // quarantined) but the primary gets the CPU
                            // back now.
                            break 'fill;
                        }
                        Exit::StepLimit => {
                            scavengers[i].status = Status::Faulted;
                        }
                        Exit::Stalled { .. } => unreachable!(),
                        Exit::Yielded {
                            kind, save_regs, ..
                        } => {
                            machine.charge_switch(SwitchKind::Coroutine(save_regs));
                            match kind {
                                // Ran long enough (scavenger-phase yield)
                                // or the target elapsed anyway: the CPU
                                // goes back to the primary.
                                YieldKind::Scavenger | YieldKind::Manual => break 'fill,
                                _ if elapsed >= opts.hide_target => break 'fill,
                                _ if quarantine_now => break 'fill,
                                // Its own likely-miss: hand off to another
                                // scavenger to consume more cycles.
                                YieldKind::Primary | YieldKind::IfAbsent => {
                                    next_scav = (i + 1) % scavengers.len();
                                }
                                #[allow(unreachable_patterns)]
                                _ => break 'fill,
                            }
                        }
                    }
                }
                report.max_scavengers_per_fill =
                    report.max_scavengers_per_fill.max(scavs_this_fill);
                // Unconditional: starved fills record their (switch-only)
                // fill time too, keeping mean_fill unbiased.
                report.fill_times.push(machine.now - fill_start);
            }
        }
    }
    report.primary_latency = primary.stats.latency();

    if opts.drain_scavengers {
        let iopts = crate::executor::InterleaveOptions {
            max_steps_per_ctx: opts.max_steps_per_ctx,
            isolate_faults: opts.isolate_faults,
            ..crate::executor::InterleaveOptions::default()
        };
        let drain = crate::executor::run_interleaved(machine, scav_prog, scavengers, &iopts)?;
        report.scavengers_completed += drain.completed;
        report.context_faults.extend(drain.faults);
    }

    report.total_cycles = machine.now - started_at;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::isa::{AluOp, Cond, Inst, ProgramBuilder, Reg};
    use reach_sim::MachineConfig;

    /// Primary-instrumented chase program with scavenger yields after the
    /// compute (the shape the full pipeline produces).
    fn dual_instrumented_chase(with_scav_yields: bool) -> Program {
        let mut b = ProgramBuilder::new("dchase");
        let top = b.label();
        b.bind(top);
        b.prefetch(Reg(0), 0);
        b.push(Inst::Yield {
            kind: YieldKind::Primary,
            save_regs: Some((1 << 0) | (1 << 1) | (1 << 6) | (1 << 7)),
        });
        b.load(Reg(4), Reg(0), 0);
        b.load(Reg(3), Reg(0), 8);
        b.alu(AluOp::Add, Reg(7), Reg(7), Reg(3), 1);
        // Some per-hop compute so scavengers actually consume cycles.
        b.alu(AluOp::Add, Reg(2), Reg(2), Reg(6), 60);
        if with_scav_yields {
            b.push(Inst::Yield {
                kind: YieldKind::Scavenger,
                save_regs: Some((1 << 0) | (1 << 1) | (1 << 2) | (1 << 6) | (1 << 7)),
            });
        }
        b.alu(AluOp::Or, Reg(0), Reg(4), Reg(4), 1);
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(6), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        b.finish().unwrap()
    }

    fn lay_chain(m: &mut Machine, base: u64, n: u64) -> u64 {
        for i in 0..n {
            let addr = base + i * 4096;
            let next = if i + 1 == n { 0 } else { base + (i + 1) * 4096 };
            m.mem.write(addr, next).unwrap();
            m.mem.write(addr + 8, addr ^ 0x9999).unwrap();
        }
        base
    }

    fn ctx_for(id: usize, head: u64, hops: u64) -> Context {
        let mut c = Context::new(id);
        c.set_reg(Reg(0), head);
        c.set_reg(Reg(1), hops);
        c.set_reg(Reg(6), 1);
        c
    }

    #[test]
    fn primary_latency_stays_near_solo_while_scavengers_add_work() {
        let prog = dual_instrumented_chase(true);
        let hops = 64u64;

        // Solo primary (no scavengers): baseline latency.
        let mut m0 = Machine::new(MachineConfig::default());
        let h = lay_chain(&mut m0, 0x100_0000, hops);
        let mut p0 = ctx_for(0, h, hops);
        let r0 = run_dual_mode(
            &mut m0,
            &prog,
            &mut p0,
            &prog,
            &mut [],
            &DualModeOptions::default(),
        )
        .unwrap();
        let solo_latency = r0.primary_latency.unwrap();
        assert_eq!(r0.starved_fills as usize, r0.fill_times.len());

        // With 4 scavengers.
        let mut m = Machine::new(MachineConfig::default());
        let hp = lay_chain(&mut m, 0x100_0000, hops);
        let mut primary = ctx_for(0, hp, hops);
        let mut scavs: Vec<Context> = (0..4)
            .map(|i| {
                let h = lay_chain(&mut m, 0x800_0000 + 0x100_0000 * i as u64, hops);
                ctx_for(i + 1, h, hops)
            })
            .collect();
        let r = run_dual_mode(
            &mut m,
            &prog,
            &mut primary,
            &prog,
            &mut scavs,
            &DualModeOptions::default(),
        )
        .unwrap();
        let dual_latency = r.primary_latency.unwrap();
        assert!(r.scavengers_used >= 1);
        assert_eq!(r.scavengers_completed, 4, "drain finishes the pool");

        // The primary runs a little slower than solo (switch overhead +
        // fill granularity) but nowhere near the 5x of fair sharing with
        // 4 co-runners.
        assert!(
            dual_latency < solo_latency * 2,
            "dual {dual_latency} vs solo {solo_latency}"
        );
        // And the machine did far more useful work per cycle than solo.
        assert!(m.counters.cpu_efficiency() > m0.counters.cpu_efficiency());
    }

    #[test]
    fn scavenger_primary_yield_scales_up_pool() {
        // Scavengers run the *same* chase program: they hit their own
        // primary yields immediately (prefetch+yield is the first thing in
        // the loop), forcing on-demand scale-up past one scavenger.
        let prog = dual_instrumented_chase(false); // no scavenger yields
        let hops = 16u64;
        let mut m = Machine::new(MachineConfig::default());
        let hp = lay_chain(&mut m, 0x100_0000, hops);
        let mut primary = ctx_for(0, hp, hops);
        let mut scavs: Vec<Context> = (0..6)
            .map(|i| {
                let h = lay_chain(&mut m, 0x800_0000 + 0x100_0000 * i as u64, hops);
                ctx_for(i + 1, h, hops)
            })
            .collect();
        let r = run_dual_mode(
            &mut m,
            &prog,
            &mut primary,
            &prog,
            &mut scavs,
            &DualModeOptions::default(),
        )
        .unwrap();
        assert!(
            r.max_scavengers_per_fill > 1,
            "pointer-chasing scavengers must chain: {}",
            r.max_scavengers_per_fill
        );
    }

    #[test]
    fn scavenger_yield_returns_promptly() {
        let prog = dual_instrumented_chase(true);
        let hops = 32u64;
        let mut m = Machine::new(MachineConfig::default());
        let hp = lay_chain(&mut m, 0x100_0000, hops);
        let mut primary = ctx_for(0, hp, hops);
        let mut scavs = vec![{
            let h = lay_chain(&mut m, 0x800_0000, hops * 4);
            ctx_for(1, h, hops * 4)
        }];
        let r = run_dual_mode(
            &mut m,
            &prog,
            &mut primary,
            &prog,
            &mut scavs,
            &DualModeOptions {
                drain_scavengers: false,
                ..DualModeOptions::default()
            },
        )
        .unwrap();
        // Fill times stay bounded: the scavenger's conditional yields
        // bring control back around the hide target, not arbitrarily late.
        let max_fill = r.fill_times.iter().max().copied().unwrap_or(0);
        assert!(
            max_fill < 4 * 300,
            "a fill ran {max_fill} cycles; scavenger yields are not returning"
        );
        assert_eq!(r.starved_fills, 0);
    }

    #[test]
    fn no_scavengers_counts_starved_fills() {
        let prog = dual_instrumented_chase(true);
        let hops = 8u64;
        let mut m = Machine::new(MachineConfig::default());
        let hp = lay_chain(&mut m, 0x100_0000, hops);
        let mut primary = ctx_for(0, hp, hops);
        let r = run_dual_mode(
            &mut m,
            &prog,
            &mut primary,
            &prog,
            &mut [],
            &DualModeOptions::default(),
        )
        .unwrap();
        assert_eq!(r.starved_fills, hops);
        assert_eq!(r.scavengers_used, 0);
    }

    /// A scavenger whose yields were all elided: pure compute, never
    /// hands the core back.
    fn runaway_prog(iters: u64) -> Program {
        let mut b = ProgramBuilder::new("runaway");
        b.imm(Reg(1), iters);
        b.imm(Reg(2), 1);
        let top = b.label();
        b.bind(top);
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(2), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn watchdog_quarantines_runaway_and_bounds_primary_latency() {
        let prog = dual_instrumented_chase(true);
        let scav = runaway_prog(20_000);
        let hops = 32u64;

        let run = |watchdog: Option<WatchdogOptions>| {
            let mut m = Machine::new(MachineConfig::default());
            let hp = lay_chain(&mut m, 0x100_0000, hops);
            let mut primary = ctx_for(0, hp, hops);
            let mut scavs = vec![Context::new(1)];
            let r = run_dual_mode(
                &mut m,
                &prog,
                &mut primary,
                &scav,
                &mut scavs,
                &DualModeOptions {
                    watchdog,
                    ..DualModeOptions::default()
                },
            )
            .unwrap();
            assert_eq!(primary.status, Status::Done);
            r
        };

        // Unprotected: the runaway consumes its entire program inside one
        // fill and the primary eats all of it.
        let loose = run(None);
        assert_eq!(loose.quarantined, Vec::<usize>::new());

        // Watchdog: slices are preempted, repeat offenses quarantine the
        // scavenger, and the primary's latency stays bounded.
        let w = WatchdogOptions {
            slice_steps: 200,
            overrun_cycles: 1_000,
            max_overruns: 3,
            ..WatchdogOptions::default()
        };
        let tight = run(Some(w));
        assert_eq!(tight.quarantined, vec![1]);
        assert!(tight.overruns >= u64::from(w.max_overruns));
        let (lw, ln) = (
            tight.primary_latency.unwrap(),
            loose.primary_latency.unwrap(),
        );
        assert!(
            lw * 2 < ln,
            "watchdog latency {lw} should be far below unprotected {ln}"
        );
        // The quarantined scavenger is preempted, not faulted: the drain
        // still ran it to completion.
        assert_eq!(tight.scavengers_completed, 1);
        assert!(tight.context_faults.is_empty());
    }

    #[test]
    fn unwatched_runaway_faults_out_instead_of_hanging_the_run() {
        // Regression test for the unwatched-slice footgun: with no
        // watchdog armed, the scavenger slice budget used to inherit
        // `max_steps_per_ctx` (`u64::MAX` by default), so an *infinite*
        // runaway scavenger would hang the whole run inside one fill.
        // With the finite default the runaway hits its slice ceiling,
        // faults out, and the primary completes.
        let mut b = ProgramBuilder::new("runaway_forever");
        b.imm(Reg(2), 1);
        let top = b.label();
        b.bind(top);
        b.alu(AluOp::Add, Reg(1), Reg(1), Reg(2), 1);
        b.branch(Cond::Nez, Reg(2), top); // Reg(2) == 1: always taken
        b.halt(); // unreachable
        let scav = b.finish().unwrap();

        let prog = dual_instrumented_chase(true);
        let hops = 8u64;
        let mut m = Machine::new(MachineConfig::default());
        let hp = lay_chain(&mut m, 0x100_0000, hops);
        let mut primary = ctx_for(0, hp, hops);
        let mut scavs = vec![Context::new(1)];
        let r = run_dual_mode(
            &mut m,
            &prog,
            &mut primary,
            &scav,
            &mut scavs,
            &DualModeOptions {
                watchdog: None,
                drain_scavengers: false,
                ..DualModeOptions::default()
            },
        )
        .unwrap();
        assert_eq!(primary.status, Status::Done);
        // A `StepLimit` without a watchdog armed is a fault, not a
        // preemption: the runaway is retired after exactly one slice.
        assert_eq!(scavs[0].status, Status::Faulted);
        assert!(
            scavs[0].stats.instructions <= DEFAULT_UNWATCHED_SLICE_STEPS + 2,
            "runaway ran {} instructions; slice ceiling did not engage",
            scavs[0].stats.instructions
        );
        assert!(r.quarantined.is_empty());
    }

    /// A phased scavenger: `r1` iterations of hostile non-yielding
    /// compute, then `r3` cooperative iterations with a scavenger-phase
    /// yield each (~60 cycles apart).
    fn phased_scav_prog() -> Program {
        let mut b = ProgramBuilder::new("phased");
        b.imm(Reg(2), 1);
        let hostile = b.label();
        b.bind(hostile);
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(2), 1);
        b.branch(Cond::Nez, Reg(1), hostile);
        let coop = b.label();
        b.bind(coop);
        b.alu(AluOp::Add, Reg(4), Reg(4), Reg(2), 60);
        b.push(Inst::Yield {
            kind: YieldKind::Scavenger,
            save_regs: Some((1 << 2) | (1 << 3) | (1 << 4)),
        });
        b.alu(AluOp::Sub, Reg(3), Reg(3), Reg(2), 1);
        b.branch(Cond::Nez, Reg(3), coop);
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn probation_readmits_transient_offender_but_not_persistent_one() {
        let prog = dual_instrumented_chase(true);
        let scav = phased_scav_prog();
        let hops = 300u64;
        let mut m = Machine::new(MachineConfig::default());
        let hp = lay_chain(&mut m, 0x100_0000, hops);
        let mut primary = ctx_for(0, hp, hops);

        // Transient: 260 hostile iterations (enough for one quarantine),
        // then cooperative. Persistent: hostile forever.
        let mut transient = Context::new(1);
        transient.set_reg(Reg(1), 260);
        transient.set_reg(Reg(3), 40);
        let mut persistent = Context::new(2);
        persistent.set_reg(Reg(1), 1_000_000);
        persistent.set_reg(Reg(3), 1);
        let mut scavs = vec![transient, persistent];

        let w = WatchdogOptions {
            slice_steps: 200,
            overrun_cycles: 100,
            max_overruns: 2,
            probation_cycles: Some(2_000),
            max_quarantines: 2,
        };
        let r = run_dual_mode(
            &mut m,
            &prog,
            &mut primary,
            &scav,
            &mut scavs,
            &DualModeOptions {
                watchdog: Some(w),
                drain_scavengers: false,
                ..DualModeOptions::default()
            },
        )
        .unwrap();
        assert_eq!(primary.status, Status::Done);

        // The transient offender was quarantined once, served its
        // probation, and finished its work inside the fill rotation.
        let count = |id: usize| r.quarantined.iter().filter(|&&q| q == id).count();
        assert_eq!(count(1), 1, "quarantine events: {:?}", r.quarantined);
        assert_eq!(scavs[0].status, Status::Done, "transient not re-admitted");

        // The persistent offender burned through its probation chances
        // (initial + max_quarantines re-admissions) and ended permanently
        // excluded, still unfinished.
        assert_eq!(
            count(2),
            1 + w.max_quarantines as usize,
            "quarantine events: {:?}",
            r.quarantined
        );
        assert_eq!(scavs[1].status, Status::Runnable);
        assert!(
            r.readmitted >= 2,
            "expected probation re-admissions, got {}",
            r.readmitted
        );
    }

    #[test]
    fn isolated_trap_retires_scavenger_and_primary_completes() {
        let prog = dual_instrumented_chase(true);
        // A scavenger that traps immediately: `ret` with an empty call
        // stack.
        let trap = {
            let mut b = ProgramBuilder::new("trap");
            b.ret();
            b.finish().unwrap()
        };
        let hops = 8u64;

        // Without isolation the whole run aborts.
        let mut m = Machine::new(MachineConfig::default());
        let hp = lay_chain(&mut m, 0x100_0000, hops);
        let mut primary = ctx_for(0, hp, hops);
        let mut scavs = vec![Context::new(1)];
        let err = run_dual_mode(
            &mut m,
            &prog,
            &mut primary,
            &trap,
            &mut scavs,
            &DualModeOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, ExecError::RetEmptyStack { pc: 0 });

        // With isolation only the trapping context retires.
        let mut m = Machine::new(MachineConfig::default());
        let hp = lay_chain(&mut m, 0x100_0000, hops);
        let mut primary = ctx_for(0, hp, hops);
        let mut scavs = vec![Context::new(1)];
        let r = run_dual_mode(
            &mut m,
            &prog,
            &mut primary,
            &trap,
            &mut scavs,
            &DualModeOptions {
                isolate_faults: true,
                ..DualModeOptions::default()
            },
        )
        .unwrap();
        assert_eq!(primary.status, Status::Done);
        assert!(r.primary_latency.is_some());
        assert_eq!(scavs[0].status, Status::Faulted);
        assert_eq!(
            r.context_faults,
            vec![(1, ExecError::RetEmptyStack { pc: 0 })]
        );
    }

    /// Regression: starved fills must still contribute a `fill_times`
    /// entry (the switch overhead they paid), so `mean_fill` averages
    /// over every fill rather than only the hidden ones.
    #[test]
    fn starved_fills_record_fill_time_entries() {
        let prog = dual_instrumented_chase(true);
        let hops = 8u64;
        let mut m = Machine::new(MachineConfig::default());
        let hp = lay_chain(&mut m, 0x100_0000, hops);
        let mut primary = ctx_for(0, hp, hops);
        let r = run_dual_mode(
            &mut m,
            &prog,
            &mut primary,
            &prog,
            &mut [],
            &DualModeOptions::default(),
        )
        .unwrap();
        assert_eq!(r.starved_fills, hops);
        assert_eq!(
            r.fill_times.len(),
            hops as usize,
            "every starved fill records an entry"
        );
        assert!(
            r.fill_times.iter().all(|&t| t > 0),
            "starved fills still paid the switch overhead"
        );
        assert!(r.mean_fill() > 0.0);
    }

    #[test]
    fn modes_are_forced() {
        let prog = dual_instrumented_chase(true);
        let mut m = Machine::new(MachineConfig::default());
        let hp = lay_chain(&mut m, 0x100_0000, 4);
        let mut primary = ctx_for(0, hp, 4);
        primary.mode = Mode::Scavenger; // wrong on purpose
        let hs = lay_chain(&mut m, 0x800_0000, 4);
        let mut scavs = vec![ctx_for(1, hs, 4)];
        scavs[0].mode = Mode::Primary; // wrong on purpose
        run_dual_mode(
            &mut m,
            &prog,
            &mut primary,
            &prog,
            &mut scavs,
            &DualModeOptions::default(),
        )
        .unwrap();
        assert_eq!(primary.mode, Mode::Primary);
        assert_eq!(scavs[0].mode, Mode::Scavenger);
    }
}

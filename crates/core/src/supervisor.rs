//! The self-healing runtime supervisor: monitor → diagnose → re-profile
//! → hot-swap → verify, as a deterministic epoch loop.
//!
//! The §3 mechanism is not a one-shot build. Dual-mode execution keeps
//! hiding 10–100 ns stalls only while the deployed yield placement still
//! matches the workload; when traffic drifts, the shipped
//! instrumentation quietly decays into pure overhead. The build-time
//! half of resilience already exists ([`pgo_pipeline_degrading`] runs
//! once, before execution); this module closes the loop *while serving
//! work*:
//!
//! * **Monitor** — an [`OnlineStalenessEstimator`] fed from a
//!   permanently-armed in-situ L2-miss sampler (samples folded back to
//!   original PC space through the deployed build's origin map), a
//!   primary-latency SLO guard over a sliding window, and the watchdog's
//!   scavenger-overrun count.
//! * **Diagnose** — per-epoch trigger evaluation: staleness distance
//!   over threshold, SLO p99 violated, overrun trend tripped, admission
//!   queue overflowing.
//! * **Repair** — re-profile + re-instrument through the existing
//!   degradation ladder, then **hot-swap between epochs**: jobs already
//!   served this epoch finished on the old build, the next epoch's
//!   admissions start on the new one. A swap-time [`lint_gate`] re-checks
//!   the rebuilt binary, and the symbolic equivalence checker
//!   ([`verify_gate`]) re-proves it equivalent to the original (the
//!   build may have been produced concurrently with serving; the gates
//!   are the last line before deployment).
//! * **Contain** — when repair itself keeps failing, a circuit breaker
//!   with SplitMix64-jittered exponential backoff stops hammering the
//!   profiler and finally *opens*: it deploys the best rung the ladder
//!   can still reach ([`Rung::ScavengerOnly`] or
//!   [`Rung::Uninstrumented`]) and gives up on full PGO for the rest of
//!   the run. Overload is contained separately: a bounded admission
//!   queue sheds excess arrivals, SLO violations halve the scavenger
//!   pool (down to a floor), and a clean probation streak restores it
//!   one scavenger at a time.
//!
//! Every transition is recorded as an [`Incident`] — trigger, evidence
//! metrics, action, outcome — and the whole log serializes to canonical
//! JSON ([`SupervisorReport::incident_log_json`]) with an FNV-1a digest
//! for byte-identity gating. The loop touches no wall clock and draws
//! randomness only from a seeded [`SplitMix64`], so a replay with the
//! same seed, fault plan, and drift schedule reproduces the log
//! bit-for-bit.

use crate::degrade::{
    pgo_pipeline_degrading, scavenger_only_build, DegradeOptions, DegradedBuild, Rung,
};
use crate::dualmode::{run_dual_mode, DualModeOptions};
use crate::journal::{project, Journal, JournalRecord, StoredBuild};
use crate::metrics::percentile;
use crate::pipeline::{lint_gate, verify_gate};
use reach_profile::{Json, OnlineEstimatorOptions, OnlineStalenessEstimator, Profile};
use reach_sim::{Context, HwEvent, Machine, PebsConfig, Program, SplitMix64};
use std::collections::VecDeque;

/// The binary currently serving traffic, with the metadata the
/// supervisor needs to judge and replace it.
#[derive(Clone, Debug)]
pub struct DeployedBuild {
    /// The (possibly instrumented) program being executed.
    pub prog: Program,
    /// `origin[pc]` = PC in the original program (`None` for inserted
    /// instructions) — how in-situ samples fold back to the profile's PC
    /// space.
    pub origin: Vec<Option<usize>>,
    /// The ladder rung this build represents.
    pub rung: Rung,
    /// The profile the build was made from ([`Rung::FullPgo`] only);
    /// the staleness reference.
    pub profile: Option<Profile>,
}

impl From<DegradedBuild> for DeployedBuild {
    fn from(b: DegradedBuild) -> Self {
        DeployedBuild {
            prog: b.prog,
            origin: b.origin,
            rung: b.rung,
            profile: b.profile,
        }
    }
}

/// The service the supervisor runs: a stream of primary jobs, a
/// scavenger pool to fill their stalls, and fresh contexts for
/// re-profiling. All methods take `&mut self` so implementations can
/// drive deterministic internal RNGs.
pub trait ServiceWorkload {
    /// Jobs arriving at the start of `epoch`.
    fn arrivals(&mut self, epoch: u64) -> usize;
    /// The primary context for global job number `job`.
    fn primary_context(&mut self, job: u64) -> Context;
    /// The scavenger-pool context for `slot` while serving `job` in
    /// `epoch`.
    fn scavenger_context(&mut self, epoch: u64, job: u64, slot: usize) -> Context;
    /// Optional replacement program for the scavenger pool during
    /// `epoch` (`None` = scavengers run the deployed build). The
    /// overload scenarios inject runaway fillers here.
    fn scavenger_program(&mut self, _epoch: u64) -> Option<Program> {
        None
    }
    /// Fresh profiling contexts for rebuild attempt `attempt` (passed
    /// straight to [`pgo_pipeline_degrading`]).
    fn profiling_contexts(&mut self, attempt: u32) -> Vec<Context>;
}

/// Configuration for [`supervise`].
#[derive(Clone, Debug)]
pub struct SupervisorOptions {
    /// Scheduler quanta to run. Swaps happen only on epoch boundaries.
    pub epochs: u64,
    /// Jobs served per epoch (the service rate).
    pub service_per_epoch: usize,
    /// Admission-queue bound (supervised only): arrivals beyond this
    /// backlog are shed and recorded. Unsupervised runs queue unboundedly.
    pub queue_bound: usize,
    /// Scavenger-pool size per job (the healthy budget).
    pub scavengers: usize,
    /// Shedding floor: SLO shedding never reduces the pool below this.
    pub min_scavengers: usize,
    /// Primary-latency SLO: p99 over the sliding window above this trips
    /// the shedder. `u64::MAX` disables the guard.
    pub slo_p99_cycles: u64,
    /// Sliding-window length (jobs) for the SLO p99; the guard stays
    /// quiet until the window is full.
    pub slo_window: usize,
    /// Staleness distance (total variation, 0–1) at which the deployed
    /// profile is declared stale and a rebuild triggers.
    pub staleness_threshold: f64,
    /// Online estimator window/warm-up configuration.
    pub estimator: OnlineEstimatorOptions,
    /// Sampling period of the permanently-armed in-situ L2-miss sampler.
    pub insitu_period: u64,
    /// Watchdog overruns in a single epoch at which a rebuild triggers
    /// (the overrun-trend guard). `u64::MAX` disables it.
    pub overrun_trip: u64,
    /// Clean epochs (no SLO violation, no overruns) required before one
    /// shed scavenger is restored to the pool.
    pub probation_epochs: u64,
    /// Base backoff delay (epochs) after a failed rebuild; doubles per
    /// consecutive failure.
    pub backoff_base_epochs: u64,
    /// Backoff delay cap (epochs), before jitter.
    pub backoff_max_epochs: u64,
    /// Consecutive rebuild failures at which the circuit breaker opens
    /// and the supervisor deploys the best degraded rung instead.
    pub max_rebuild_failures: u32,
    /// Epochs after a swap during which rebuild triggers are suppressed
    /// (the estimator needs time to re-warm against the new reference).
    pub cooldown_epochs: u64,
    /// Rebuild-engine configuration (ladder, validation, fault hooks).
    pub degrade: DegradeOptions,
    /// Dual-mode execution options for serving jobs.
    pub dual: DualModeOptions,
    /// `false` = passive baseline: same serving loop and the same
    /// estimator bookkeeping, but no triggers, no swaps, no shedding,
    /// unbounded queue. The experiment's "unsupervised" arm.
    pub supervise: bool,
    /// Seed for the backoff jitter (and nothing else).
    pub seed: u64,
    /// Fault-injection hook: applied to every rebuilt [`Rung::FullPgo`]
    /// binary *before* the swap-time lint gate, so tests can exercise
    /// the gate rejecting a corrupted rebuild.
    pub build_mutator: Option<fn(&mut Program)>,
}

impl Default for SupervisorOptions {
    fn default() -> Self {
        SupervisorOptions {
            epochs: 16,
            service_per_epoch: 2,
            queue_bound: 8,
            scavengers: 4,
            min_scavengers: 0,
            slo_p99_cycles: u64::MAX,
            slo_window: 8,
            staleness_threshold: 0.5,
            estimator: OnlineEstimatorOptions::default(),
            insitu_period: 127,
            overrun_trip: u64::MAX,
            probation_epochs: 2,
            backoff_base_epochs: 1,
            backoff_max_epochs: 8,
            max_rebuild_failures: 3,
            cooldown_epochs: 2,
            degrade: DegradeOptions::default(),
            dual: DualModeOptions {
                drain_scavengers: false,
                isolate_faults: true,
                ..DualModeOptions::default()
            },
            supervise: true,
            seed: 0,
            build_mutator: None,
        }
    }
}

/// What tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Online staleness distance crossed the threshold.
    Staleness,
    /// Sliding-window primary p99 exceeded the SLO.
    SloViolation,
    /// Watchdog overruns in one epoch crossed the trip level.
    OverrunTrend,
    /// Admission backlog exceeded the queue bound.
    QueueOverflow,
    /// A clean probation streak completed.
    ProbationElapsed,
    /// The process restarted after a crash and [`recover`] ran.
    CrashRecovery,
    /// A fleet-level rolling re-instrumentation deploy reached this
    /// shard (the build was pushed by the fleet supervisor, not pulled
    /// by a local trigger).
    Rollout,
}

impl Trigger {
    fn as_str(self) -> &'static str {
        match self {
            Trigger::Staleness => "staleness",
            Trigger::SloViolation => "slo-violation",
            Trigger::OverrunTrend => "overrun-trend",
            Trigger::QueueOverflow => "queue-overflow",
            Trigger::ProbationElapsed => "probation-elapsed",
            Trigger::CrashRecovery => "crash-recovery",
            Trigger::Rollout => "rollout",
        }
    }
}

/// A degenerate [`SupervisorOptions`] configuration, rejected at
/// [`supervise`]/[`recover`] entry instead of producing silently odd
/// behavior mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SupervisorConfigError {
    /// `max_rebuild_failures == 0`: the breaker would open on the first
    /// trigger without ever attempting a rebuild.
    ZeroMaxRebuildFailures,
    /// `slo_window == 0` while the SLO guard is armed: a zero-width p99
    /// window would trip on every served job.
    ZeroSloWindow,
    /// `estimator.window == 0`: a zero-width staleness window can never
    /// retain a sample, so the estimator would be permanently blind.
    ZeroEstimatorWindow,
    /// `min_scavengers > scavengers`: the shedding floor exceeds the
    /// pool, so the first shed would *grow* the pool.
    MinScavengersAbovePool,
}

impl std::fmt::Display for SupervisorConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SupervisorConfigError::ZeroMaxRebuildFailures => {
                write!(f, "max_rebuild_failures must be >= 1")
            }
            SupervisorConfigError::ZeroSloWindow => {
                write!(f, "slo_window must be >= 1 while the SLO guard is armed")
            }
            SupervisorConfigError::ZeroEstimatorWindow => {
                write!(f, "estimator.window must be >= 1")
            }
            SupervisorConfigError::MinScavengersAbovePool => {
                write!(f, "min_scavengers must not exceed scavengers")
            }
        }
    }
}

impl std::error::Error for SupervisorConfigError {}

/// Rejects degenerate configurations (see [`SupervisorConfigError`]).
pub(crate) fn validate_options(opts: &SupervisorOptions) -> Result<(), SupervisorConfigError> {
    if opts.max_rebuild_failures == 0 {
        return Err(SupervisorConfigError::ZeroMaxRebuildFailures);
    }
    if opts.slo_p99_cycles != u64::MAX && opts.slo_window == 0 {
        return Err(SupervisorConfigError::ZeroSloWindow);
    }
    if opts.estimator.window == 0 {
        return Err(SupervisorConfigError::ZeroEstimatorWindow);
    }
    if opts.min_scavengers > opts.scavengers {
        return Err(SupervisorConfigError::MinScavengersAbovePool);
    }
    Ok(())
}

/// What the supervisor did about it.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Hot-swapped a rebuilt binary in at the epoch boundary.
    Swap {
        /// Rung of the deployed rebuild.
        rung: Rung,
    },
    /// Rebuild failed; backing off before the next attempt.
    Backoff {
        /// Consecutive failures so far.
        failures: u32,
        /// First epoch at which a rebuild may be attempted again.
        until_epoch: u64,
    },
    /// Breaker opened: rebuilds abandoned, degraded rung deployed.
    BreakerOpen {
        /// Rung of the fallback deployment.
        rung: Rung,
    },
    /// Scavenger pool halved in response to an SLO violation.
    ShedScavengers {
        /// Pool size before.
        from: usize,
        /// Pool size after.
        to: usize,
    },
    /// One shed scavenger restored after a clean probation streak.
    RestoreScavenger {
        /// Pool size after restoration.
        to: usize,
    },
    /// Excess arrivals dropped at admission.
    ShedAdmissions {
        /// Jobs dropped this epoch.
        dropped: u64,
    },
    /// Crash recovery replayed the journal and re-validated the
    /// recovered build; it serves again on its recorded rung.
    Recovered {
        /// Rung of the recovered deployment.
        rung: Rung,
        /// Journal records replayed.
        replayed: u64,
        /// True when a torn tail was detected and truncated.
        truncated: bool,
    },
    /// Crash recovery could not trust the recorded deployment (artifact
    /// missing, or it failed the recovery-time lint/verify gates) and
    /// fell down the degradation ladder instead.
    RecoveryDegraded {
        /// Rung of the fallback deployment.
        rung: Rung,
    },
}

impl Action {
    fn to_json(&self) -> Json {
        let kv = |k: &str, v: Json| (k.to_string(), v);
        let fields = match self {
            Action::Swap { rung } => vec![
                kv("kind", Json::Str("swap".into())),
                kv("rung", Json::Str(rung.to_string())),
            ],
            Action::Backoff {
                failures,
                until_epoch,
            } => vec![
                kv("kind", Json::Str("backoff".into())),
                kv("failures", Json::UInt(u64::from(*failures))),
                kv("until_epoch", Json::UInt(*until_epoch)),
            ],
            Action::BreakerOpen { rung } => vec![
                kv("kind", Json::Str("breaker-open".into())),
                kv("rung", Json::Str(rung.to_string())),
            ],
            Action::ShedScavengers { from, to } => vec![
                kv("kind", Json::Str("shed-scavengers".into())),
                kv("from", Json::UInt(*from as u64)),
                kv("to", Json::UInt(*to as u64)),
            ],
            Action::RestoreScavenger { to } => vec![
                kv("kind", Json::Str("restore-scavenger".into())),
                kv("to", Json::UInt(*to as u64)),
            ],
            Action::ShedAdmissions { dropped } => vec![
                kv("kind", Json::Str("shed-admissions".into())),
                kv("dropped", Json::UInt(*dropped)),
            ],
            Action::Recovered {
                rung,
                replayed,
                truncated,
            } => vec![
                kv("kind", Json::Str("recovered".into())),
                kv("rung", Json::Str(rung.to_string())),
                kv("replayed", Json::UInt(*replayed)),
                kv("truncated", Json::UInt(u64::from(*truncated))),
            ],
            Action::RecoveryDegraded { rung } => vec![
                kv("kind", Json::Str("recovery-degraded".into())),
                kv("rung", Json::Str(rung.to_string())),
            ],
        };
        Json::Object(fields)
    }
}

/// How it ended.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// A binary was (re)deployed on the stated rung.
    Deployed {
        /// The deployed rung.
        rung: Rung,
    },
    /// The rebuild was rejected; nothing was deployed.
    RebuildFailed {
        /// Human-readable rejection reason (ladder rung or lint).
        reason: String,
    },
    /// The condition was contained without touching the deployment
    /// (shedding, restoration).
    Contained,
}

impl Outcome {
    fn to_json(&self) -> Json {
        let kv = |k: &str, v: Json| (k.to_string(), v);
        let fields = match self {
            Outcome::Deployed { rung } => vec![
                kv("kind", Json::Str("deployed".into())),
                kv("rung", Json::Str(rung.to_string())),
            ],
            Outcome::RebuildFailed { reason } => vec![
                kv("kind", Json::Str("rebuild-failed".into())),
                kv("reason", Json::Str(reason.clone())),
            ],
            Outcome::Contained => vec![kv("kind", Json::Str("contained".into()))],
        };
        Json::Object(fields)
    }
}

/// One numeric evidence value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Ev {
    /// An exact counter.
    U(u64),
    /// A derived metric.
    F(f64),
}

/// One structured incident-log entry: what tripped, the numbers that
/// prove it, what was done, and how it ended.
#[derive(Clone, Debug, PartialEq)]
pub struct Incident {
    /// Epoch at which the transition happened.
    pub epoch: u64,
    /// The tripped trigger.
    pub trigger: Trigger,
    /// Named evidence metrics, in a fixed order.
    pub evidence: Vec<(&'static str, Ev)>,
    /// The supervisor's response.
    pub action: Action,
    /// The result of that response.
    pub outcome: Outcome,
}

impl Incident {
    /// Canonical JSON form (field order fixed, floats shortest
    /// round-trip) — the unit of the replay-determinism contract.
    pub fn to_json(&self) -> Json {
        let ev = self
            .evidence
            .iter()
            .map(|(k, v)| {
                let j = match v {
                    Ev::U(n) => Json::UInt(*n),
                    Ev::F(x) => Json::Float(*x),
                };
                ((*k).to_string(), j)
            })
            .collect();
        Json::Object(vec![
            ("epoch".to_string(), Json::UInt(self.epoch)),
            (
                "trigger".to_string(),
                Json::Str(self.trigger.as_str().into()),
            ),
            ("evidence".to_string(), Json::Object(ev)),
            ("action".to_string(), self.action.to_json()),
            ("outcome".to_string(), self.outcome.to_json()),
        ])
    }
}

/// Circuit-breaker state at the end of the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Rebuilds allowed.
    Closed,
    /// Rebuilds suppressed until the stated epoch (half-open after).
    Backoff {
        /// First epoch at which a rebuild may be retried.
        until_epoch: u64,
    },
    /// Rebuilds abandoned for the rest of the run.
    Open,
}

/// Everything the supervised run did and measured.
#[derive(Clone, Debug)]
pub struct SupervisorReport {
    /// The full incident log, in order.
    pub incidents: Vec<Incident>,
    /// `(epoch, primary latency in cycles)` per served job, in service
    /// order.
    pub latencies: Vec<(u64, u64)>,
    /// Jobs served to completion.
    pub served: u64,
    /// Jobs dropped at admission (supervised overload shedding).
    pub shed_jobs: u64,
    /// Jobs whose primary faulted under trap isolation.
    pub job_faults: u64,
    /// Successful hot swaps (including a breaker-open fallback
    /// deployment).
    pub swaps: u64,
    /// Rebuild attempts (ladder invocations).
    pub rebuilds: u64,
    /// Consecutive rebuild failures at end of run.
    pub rebuild_failures: u32,
    /// Rung of the binary serving traffic when the run ended.
    pub final_rung: Rung,
    /// Circuit-breaker state when the run ended.
    pub breaker: BreakerState,
    /// Highest finite staleness estimate observed.
    pub staleness_peak: f64,
    /// Last finite staleness estimate observed.
    pub staleness_last: f64,
    /// Watchdog overruns across all served jobs.
    pub overruns: u64,
    /// Watchdog quarantine events across all served jobs.
    pub quarantine_events: u64,
    /// Watchdog probation re-admissions across all served jobs.
    pub readmissions: u64,
    /// Scavenger-pool budget at end of run.
    pub scav_budget_final: usize,
    /// Epoch of the last deployment change, if any.
    pub last_swap_epoch: Option<u64>,
}

impl SupervisorReport {
    /// p99 primary latency over jobs served at `epoch` or later (0 when
    /// none were).
    pub fn p99_after(&self, epoch: u64) -> u64 {
        let v: Vec<u64> = self
            .latencies
            .iter()
            .filter(|(e, _)| *e >= epoch)
            .map(|(_, l)| *l)
            .collect();
        percentile(&v, 0.99)
    }

    /// The incident log as canonical JSON text.
    pub fn incident_log_json(&self) -> String {
        incidents_json(&self.incidents)
    }

    /// FNV-1a digest of [`SupervisorReport::incident_log_json`] — a
    /// compact byte-identity check for replay gating.
    pub fn incident_log_hash(&self) -> u64 {
        incidents_hash(&self.incidents)
    }
}

/// Canonical JSON text of any incident sequence — also usable on a log
/// *concatenated across crash segments and recoveries*, which is how the
/// chaos engine extends the replay-determinism contract across restarts.
pub fn incidents_json(incidents: &[Incident]) -> String {
    Json::Array(incidents.iter().map(Incident::to_json).collect()).to_string()
}

/// FNV-1a digest of [`incidents_json`].
pub fn incidents_hash(incidents: &[Incident]) -> u64 {
    fnv1a(incidents_json(incidents).as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// How one rebuild attempt resolved.
enum Rebuild {
    /// A lint-clean full-PGO binary ready to deploy.
    Swapped(Box<DeployedBuild>),
    Failed {
        reason: String,
        /// The ladder's own degraded output when it did not reach
        /// [`Rung::FullPgo`] — the breaker deploys this on open. `None`
        /// when the full-PGO build existed but failed the swap-time
        /// gate (it cannot be trusted; the breaker falls back to a
        /// fresh scavenger-only build of the original).
        fallback: Option<Box<DeployedBuild>>,
    },
    /// The crash channel fired between the lint and verify gates
    /// (journaled mode only).
    Crashed,
}

/// Where in the supervisor loop a crash landed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// Inside a journal append: at most a torn prefix of the record
    /// reached the durable image.
    MidJournalAppend,
    /// After a rebuild trigger accepted, before/while the ladder ran.
    MidRebuild,
    /// Inside a rebuild attempt, between the swap-time lint gate and
    /// the symbolic-equivalence verify gate.
    BetweenGates,
    /// After the deploy record went durable, before the in-memory swap.
    MidSwap,
}

impl CrashPoint {
    /// Stable label, used in repro output.
    pub fn as_str(self) -> &'static str {
        match self {
            CrashPoint::MidJournalAppend => "mid-journal-append",
            CrashPoint::MidRebuild => "mid-rebuild",
            CrashPoint::BetweenGates => "between-gates",
            CrashPoint::MidSwap => "mid-swap",
        }
    }
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

const CP_MID_APPEND: u64 = 1;
const CP_MID_REBUILD: u64 = 2;
const CP_BETWEEN_GATES: u64 = 3;
const CP_MID_SWAP: u64 = 4;

/// The durable state [`recover`] hands back for the restarted loop to
/// resume from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResumeState {
    /// First epoch the restarted loop serves.
    pub epoch: u64,
    /// Next global job number to admit.
    pub next_job: u64,
    /// Breaker state as of the last durable transition.
    pub breaker: BreakerState,
    /// Consecutive rebuild failures at that transition.
    pub failures: u32,
    /// Scavenger budget as of the last durable change. The clean
    /// probation streak deliberately restarts at zero: a shed pool must
    /// serve its probation *after* the restart, never be silently
    /// re-admitted by recovery.
    pub scav_budget: usize,
}

/// How a journaled supervision segment ended.
#[derive(Clone, Debug)]
pub enum SuperviseExit {
    /// The loop served all its epochs and flushed the journal.
    Completed(SupervisorReport),
    /// An injected crash killed the process mid-loop. The report covers
    /// the segment up to the crash (volatile — a real crash would lose
    /// it; the chaos engine keeps it for its oracles).
    Crashed {
        /// Which loop stage the crash landed in.
        point: CrashPoint,
        /// Epoch being served when it landed.
        epoch: u64,
        /// The segment's partial report.
        report: SupervisorReport,
    },
}

impl SuperviseExit {
    /// The segment report, however the segment ended.
    pub fn report(&self) -> &SupervisorReport {
        match self {
            SuperviseExit::Completed(r) => r,
            SuperviseExit::Crashed { report, .. } => report,
        }
    }
}

/// Runs the self-healing control loop for `opts.epochs` scheduler
/// quanta, serving `workload` over `initial` and returning the full
/// report. Infallible once the configuration is validated: job faults
/// are isolated, rebuild failures feed the circuit breaker, and the
/// terminal ladder rung (the original binary) always exists.
pub fn supervise(
    machine: &mut Machine,
    workload: &mut dyn ServiceWorkload,
    original: &Program,
    initial: DeployedBuild,
    opts: &SupervisorOptions,
) -> Result<SupervisorReport, SupervisorConfigError> {
    validate_options(opts)?;
    match run_loop(machine, workload, original, initial, opts, None, None) {
        SuperviseExit::Completed(r) => Ok(r),
        SuperviseExit::Crashed { .. } => unreachable!("crash points are journaled-mode only"),
    }
}

/// [`supervise`] with a durable [`Journal`]: every decision that must
/// survive a restart is written ahead of the in-memory transition, and
/// the fault injector's crash channel is consulted at every loop stage.
/// Pass `resume` from [`recover`] to continue a crashed run.
pub fn supervise_journaled(
    machine: &mut Machine,
    workload: &mut dyn ServiceWorkload,
    original: &Program,
    initial: DeployedBuild,
    opts: &SupervisorOptions,
    journal: &mut Journal,
    resume: Option<ResumeState>,
) -> Result<SuperviseExit, SupervisorConfigError> {
    validate_options(opts)?;
    Ok(run_loop(
        machine,
        workload,
        original,
        initial,
        opts,
        Some(journal),
        resume,
    ))
}

fn run_loop(
    machine: &mut Machine,
    workload: &mut dyn ServiceWorkload,
    original: &Program,
    initial: DeployedBuild,
    opts: &SupervisorOptions,
    mut journal: Option<&mut Journal>,
    resume: Option<ResumeState>,
) -> SuperviseExit {
    let mut el = EpochLoop::new(initial, opts, resume);
    // Fresh journaled runs persist the initial deployment before the
    // first epoch: the artifact atomically, then the deploy record.
    if journal.is_some() && resume.is_none() {
        if let Err(point) = el.persist_initial(machine, &mut journal) {
            let epoch = el.start_epoch();
            return SuperviseExit::Crashed {
                point,
                epoch,
                report: el.seal(),
            };
        }
    }
    for epoch in el.start_epoch()..opts.epochs {
        if let Err(point) = el.step_epoch(machine, workload, original, &mut journal, epoch) {
            return SuperviseExit::Crashed {
                point,
                epoch,
                report: el.seal(),
            };
        }
    }
    // Clean shutdown: anything the partial-flush channel held back
    // reaches the durable image, so a clean journal projects exactly the
    // live final state (the chaos engine's state-equality oracle).
    if let Some(j) = journal {
        j.flush();
    }
    SuperviseExit::Completed(el.seal())
}

/// Write-ahead append: consults the crash channel *inside* the append,
/// so a firing crash leaves at most a torn prefix of this record.
fn jappend(
    machine: &mut Machine,
    journal: &mut Option<&mut Journal>,
    rec: JournalRecord,
) -> Result<(), CrashPoint> {
    if let Some(j) = journal.as_deref_mut() {
        if machine
            .faults
            .as_mut()
            .is_some_and(|f| f.crash_point(CP_MID_APPEND))
        {
            j.crash_during_append(&rec, machine.faults.as_mut());
            return Err(CrashPoint::MidJournalAppend);
        }
        j.append(&rec, machine.faults.as_mut());
    }
    Ok(())
}

/// Consults the crash channel at a non-append loop stage (journaled mode
/// only) and, when it fires, applies crash semantics to the store.
fn crash_gate(
    machine: &mut Machine,
    journal: &mut Option<&mut Journal>,
    code: u64,
    point: CrashPoint,
) -> Result<(), CrashPoint> {
    if journal.is_some() && machine.faults.as_mut().is_some_and(|f| f.crash_point(code)) {
        if let Some(j) = journal.as_deref_mut() {
            j.crash(machine.faults.as_mut());
        }
        return Err(point);
    }
    Ok(())
}

/// The supervisor's per-epoch state machine, factored out of
/// [`supervise`] so the fleet layer can interleave N shard loops on N
/// cores under one fleet clock. [`run_loop`] drives it for the
/// single-shard entry points; the fleet supervisor steps one instance
/// per shard and adds routing, rollouts and work-stealing on top.
///
/// An `Err(CrashPoint)` from any stepping method means the injected
/// crash channel fired: the process is dead, the journal has already
/// been given its crash semantics, and the caller must stop stepping and
/// go through [`recover`].
pub(crate) struct EpochLoop {
    cur: DeployedBuild,
    estimator: OnlineStalenessEstimator,
    rng: SplitMix64,
    report: SupervisorReport,
    pending: VecDeque<u64>,
    window: VecDeque<u64>,
    // Volatile loop state; durable pieces come back through `resume`.
    // The clean-probation streak is *always* fresh: recovery never
    // credits pre-crash clean epochs toward re-admission.
    start_epoch: u64,
    next_job: u64,
    scav_budget: usize,
    clean_streak: u64,
    failures: u32,
    breaker: BreakerState,
    last_swap: Option<u64>,
    opts: SupervisorOptions,
    /// Extra scavenger slots donated by the fleet's work-stealing (idle
    /// capacity from drained/down shards). Volatile and never journaled:
    /// a restart resets it, and the single-shard entry points leave it 0.
    scav_bonus: usize,
}

impl EpochLoop {
    pub(crate) fn new(
        initial: DeployedBuild,
        opts: &SupervisorOptions,
        resume: Option<ResumeState>,
    ) -> Self {
        let scav_budget = resume.map_or(opts.scavengers, |r| r.scav_budget);
        let report = SupervisorReport {
            incidents: Vec::new(),
            latencies: Vec::new(),
            served: 0,
            shed_jobs: 0,
            job_faults: 0,
            swaps: 0,
            rebuilds: 0,
            rebuild_failures: 0,
            final_rung: initial.rung,
            breaker: BreakerState::Closed,
            staleness_peak: f64::NAN,
            staleness_last: f64::NAN,
            overruns: 0,
            quarantine_events: 0,
            readmissions: 0,
            scav_budget_final: scav_budget,
            last_swap_epoch: None,
        };
        EpochLoop {
            cur: initial,
            estimator: OnlineStalenessEstimator::new(opts.estimator),
            rng: SplitMix64::new(opts.seed ^ 0x5e1f_4ea1),
            report,
            pending: VecDeque::new(),
            window: VecDeque::new(),
            start_epoch: resume.map_or(0, |r| r.epoch),
            next_job: resume.map_or(0, |r| r.next_job),
            scav_budget,
            clean_streak: 0,
            failures: resume.map_or(0, |r| r.failures),
            breaker: resume.map_or(BreakerState::Closed, |r| r.breaker),
            last_swap: None,
            opts: opts.clone(),
            scav_bonus: 0,
        }
    }

    /// First epoch this loop serves (0, or the resume point).
    pub(crate) fn start_epoch(&self) -> u64 {
        self.start_epoch
    }

    /// The build currently serving traffic.
    pub(crate) fn deployed(&self) -> &DeployedBuild {
        &self.cur
    }

    /// Current circuit-breaker state.
    pub(crate) fn breaker(&self) -> BreakerState {
        self.breaker
    }

    /// Jobs admitted but not yet served.
    pub(crate) fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Next global job number this loop would admit.
    pub(crate) fn next_job(&self) -> u64 {
        self.next_job
    }

    /// Current (possibly shed) scavenger budget, excluding any bonus.
    pub(crate) fn scav_budget(&self) -> usize {
        self.scav_budget
    }

    /// The in-flight report (counters are live; the sealed fields —
    /// final rung, breaker, failures — are only valid after [`seal`]).
    pub(crate) fn report(&self) -> &SupervisorReport {
        &self.report
    }

    /// Sets the work-stealing bonus applied to the next epoch's
    /// scavenger pool.
    pub(crate) fn set_scav_bonus(&mut self, bonus: usize) {
        self.scav_bonus = bonus;
    }

    /// Persists the initial deployment (artifact atomically, then the
    /// write-ahead deploy record) — fresh journaled runs only.
    pub(crate) fn persist_initial(
        &mut self,
        machine: &mut Machine,
        journal: &mut Option<&mut Journal>,
    ) -> Result<(), CrashPoint> {
        let fp = self.cur.prog.fingerprint();
        if let Some(j) = journal.as_deref_mut() {
            j.store_build(
                fp,
                StoredBuild {
                    prog: self.cur.prog.clone(),
                    origin: self.cur.origin.clone(),
                    rung: self.cur.rung,
                    profile: self.cur.profile.clone(),
                },
            );
        }
        jappend(
            machine,
            journal,
            JournalRecord::Deploy {
                epoch: self.start_epoch,
                rung: self.cur.rung,
                fingerprint: fp,
            },
        )
    }

    /// Deploys a fleet-pushed build at this epoch boundary: journals the
    /// artifact and deploy record, swaps, drops the superblock cache,
    /// and resets the estimator exactly like a locally-triggered swap.
    /// The breaker closes — a successful rollout is fresh evidence the
    /// build pipeline works.
    pub(crate) fn deploy_rollout(
        &mut self,
        machine: &mut Machine,
        journal: &mut Option<&mut Journal>,
        build: DeployedBuild,
        epoch: u64,
    ) -> Result<(), CrashPoint> {
        let fp = build.prog.fingerprint();
        if let Some(j) = journal.as_deref_mut() {
            j.store_build(
                fp,
                StoredBuild {
                    prog: build.prog.clone(),
                    origin: build.origin.clone(),
                    rung: build.rung,
                    profile: build.profile.clone(),
                },
            );
        }
        jappend(
            machine,
            journal,
            JournalRecord::Deploy {
                epoch,
                rung: build.rung,
                fingerprint: fp,
            },
        )?;
        crash_gate(machine, journal, CP_MID_SWAP, CrashPoint::MidSwap)?;
        self.cur = build;
        // Same rule as every deploy site: the superblock cache is keyed
        // by program identity and must not survive a code-map change.
        machine.invalidate_blocks();
        self.failures = 0;
        self.breaker = BreakerState::Closed;
        jappend(
            machine,
            journal,
            JournalRecord::Breaker {
                epoch,
                state: self.breaker,
                failures: self.failures,
            },
        )?;
        self.last_swap = Some(epoch);
        self.report.swaps += 1;
        self.estimator.reset();
        self.window.clear();
        self.report.incidents.push(Incident {
            epoch,
            trigger: Trigger::Rollout,
            evidence: vec![("epoch", Ev::U(epoch))],
            action: Action::Swap {
                rung: self.cur.rung,
            },
            outcome: Outcome::Deployed {
                rung: self.cur.rung,
            },
        });
        Ok(())
    }

    /// Seals the final-state fields into the report and returns it.
    pub(crate) fn seal(mut self) -> SupervisorReport {
        self.report.final_rung = self.cur.rung;
        self.report.breaker = self.breaker;
        self.report.rebuild_failures = self.failures;
        self.report.scav_budget_final = self.scav_budget;
        self.report.last_swap_epoch = self.last_swap;
        self.report
    }

    /// Serves one epoch: admission/shed → dual-mode batch with the
    /// in-situ sampler armed → staleness diagnosis → rebuild / backoff /
    /// breaker → SLO shedding and probation.
    pub(crate) fn step_epoch(
        &mut self,
        machine: &mut Machine,
        workload: &mut dyn ServiceWorkload,
        original: &Program,
        journal: &mut Option<&mut Journal>,
        epoch: u64,
    ) -> Result<(), CrashPoint> {
        jappend(
            machine,
            journal,
            JournalRecord::EpochAdvance {
                epoch,
                next_job: self.next_job,
            },
        )?;
        // --- Admission: arrivals enqueue; supervised runs shed the
        // backlog beyond the queue bound (newest first — they would wait
        // longest anyway).
        for _ in 0..workload.arrivals(epoch) {
            self.pending.push_back(self.next_job);
            self.next_job += 1;
        }
        if self.opts.supervise && self.pending.len() > self.opts.queue_bound {
            let dropped = (self.pending.len() - self.opts.queue_bound) as u64;
            self.pending.truncate(self.opts.queue_bound);
            self.report.shed_jobs += dropped;
            self.report.incidents.push(Incident {
                epoch,
                trigger: Trigger::QueueOverflow,
                evidence: vec![
                    ("queue_len", Ev::U(self.opts.queue_bound as u64 + dropped)),
                    ("queue_bound", Ev::U(self.opts.queue_bound as u64)),
                ],
                action: Action::ShedAdmissions { dropped },
                outcome: Outcome::Contained,
            });
        }

        // --- Serve this epoch's batch with the in-situ sampler armed.
        // Both policies feed the estimator identically; only the
        // *actions* differ, so the experiment compares decisions, not
        // measurement quality.
        let scav_override = workload.scavenger_program(epoch);
        let batch = self.pending.len().min(self.opts.service_per_epoch);
        let samplers_before = machine.samplers.len();
        let sampler = machine.add_sampler(PebsConfig {
            event: HwEvent::LoadL2Miss,
            period: self.opts.insitu_period.max(1),
            skid: 0,
            buffer_capacity: 65_536,
        });
        let mut epoch_overruns: u64 = 0;
        for _ in 0..batch {
            let job = self.pending.pop_front().expect("batch <= pending");
            let mut primary = workload.primary_context(job);
            let mut scavs: Vec<Context> = (0..self.scav_budget + self.scav_bonus)
                .map(|slot| workload.scavenger_context(epoch, job, slot))
                .collect();
            let scav_prog = scav_override.as_ref().unwrap_or(&self.cur.prog);
            match run_dual_mode(
                machine,
                &self.cur.prog,
                &mut primary,
                scav_prog,
                &mut scavs,
                &self.opts.dual,
            ) {
                Ok(r) => {
                    self.report.served += 1;
                    self.report.overruns += r.overruns;
                    self.report.quarantine_events += r.quarantined.len() as u64;
                    self.report.readmissions += r.readmitted;
                    epoch_overruns += r.overruns;
                    if let Some(lat) = r.primary_latency {
                        self.report.latencies.push((epoch, lat));
                        self.window.push_back(lat);
                        while self.window.len() > self.opts.slo_window {
                            self.window.pop_front();
                        }
                    } else {
                        self.report.job_faults += 1;
                    }
                }
                Err(_) => self.report.job_faults += 1,
            }
        }
        let samples = machine.take_samples(sampler);
        machine.samplers.truncate(samplers_before);
        for s in &samples {
            if let Some(&Some(opc)) = self.cur.origin.get(s.pc) {
                self.estimator.observe(opc);
            }
        }

        // --- Diagnose.
        let staleness = match &self.cur.profile {
            Some(p) => self.estimator.staleness_vs(p),
            None => f64::NAN,
        };
        if staleness.is_finite() {
            self.report.staleness_last = staleness;
            if self.report.staleness_peak.is_nan() || staleness > self.report.staleness_peak {
                self.report.staleness_peak = staleness;
            }
        }
        if !self.opts.supervise {
            return Ok(());
        }

        let window_p99 = if self.window.len() >= self.opts.slo_window.max(1) {
            let v: Vec<u64> = self.window.iter().copied().collect();
            Some(percentile(&v, 0.99))
        } else {
            None
        };
        let slo_violated = window_p99.is_some_and(|p| p > self.opts.slo_p99_cycles);

        // Rebuild triggers (staleness first: repairing the build beats
        // shedding capacity when both fire).
        let stale_trip = staleness.is_finite() && staleness >= self.opts.staleness_threshold;
        let overrun_trip = epoch_overruns >= self.opts.overrun_trip;
        let rebuild_allowed = match self.breaker {
            BreakerState::Open => false,
            BreakerState::Backoff { until_epoch } => epoch >= until_epoch,
            BreakerState::Closed => true,
        } && self
            .last_swap
            .is_none_or(|s| epoch.saturating_sub(s) >= self.opts.cooldown_epochs);
        if rebuild_allowed && (stale_trip || overrun_trip) {
            let trigger = if stale_trip {
                Trigger::Staleness
            } else {
                Trigger::OverrunTrend
            };
            let evidence = vec![
                ("staleness", Ev::F(staleness)),
                ("epoch_overruns", Ev::U(epoch_overruns)),
                ("retained_samples", Ev::U(self.estimator.retained())),
            ];
            self.report.rebuilds += 1;
            crash_gate(machine, journal, CP_MID_REBUILD, CrashPoint::MidRebuild)?;
            match attempt_rebuild(machine, workload, original, &self.opts, journal.is_some()) {
                Rebuild::Crashed => {
                    if let Some(j) = journal.as_deref_mut() {
                        j.crash(machine.faults.as_mut());
                    }
                    return Err(CrashPoint::BetweenGates);
                }
                Rebuild::Swapped(b) => {
                    let b = *b;
                    let fp = b.prog.fingerprint();
                    if let Some(j) = journal.as_deref_mut() {
                        j.store_build(
                            fp,
                            StoredBuild {
                                prog: b.prog.clone(),
                                origin: b.origin.clone(),
                                rung: b.rung,
                                profile: b.profile.clone(),
                            },
                        );
                    }
                    jappend(
                        machine,
                        journal,
                        JournalRecord::Deploy {
                            epoch,
                            rung: b.rung,
                            fingerprint: fp,
                        },
                    )?;
                    crash_gate(machine, journal, CP_MID_SWAP, CrashPoint::MidSwap)?;
                    self.cur = b;
                    // The superblock cache is keyed by program identity,
                    // not content: every deployment change must drop it
                    // or the engine could keep serving blocks compiled
                    // from the retired build.
                    machine.invalidate_blocks();
                    self.failures = 0;
                    self.breaker = BreakerState::Closed;
                    jappend(
                        machine,
                        journal,
                        JournalRecord::Breaker {
                            epoch,
                            state: self.breaker,
                            failures: self.failures,
                        },
                    )?;
                    self.last_swap = Some(epoch);
                    self.report.swaps += 1;
                    self.estimator.reset();
                    self.window.clear();
                    self.report.incidents.push(Incident {
                        epoch,
                        trigger,
                        evidence,
                        action: Action::Swap {
                            rung: self.cur.rung,
                        },
                        outcome: Outcome::Deployed {
                            rung: self.cur.rung,
                        },
                    });
                }
                Rebuild::Failed { reason, fallback } => {
                    self.failures += 1;
                    if self.failures >= self.opts.max_rebuild_failures {
                        let fb = fallback
                            .map(|b| *b)
                            .unwrap_or_else(|| fallback_build(original, machine, &self.opts));
                        let fp = fb.prog.fingerprint();
                        if let Some(j) = journal.as_deref_mut() {
                            j.store_build(
                                fp,
                                StoredBuild {
                                    prog: fb.prog.clone(),
                                    origin: fb.origin.clone(),
                                    rung: fb.rung,
                                    profile: fb.profile.clone(),
                                },
                            );
                        }
                        jappend(
                            machine,
                            journal,
                            JournalRecord::Deploy {
                                epoch,
                                rung: fb.rung,
                                fingerprint: fp,
                            },
                        )?;
                        crash_gate(machine, journal, CP_MID_SWAP, CrashPoint::MidSwap)?;
                        self.breaker = BreakerState::Open;
                        self.cur = fb;
                        // Same rule as the swap path above: a fallback
                        // deployment is still a code-map change.
                        machine.invalidate_blocks();
                        jappend(
                            machine,
                            journal,
                            JournalRecord::Breaker {
                                epoch,
                                state: self.breaker,
                                failures: self.failures,
                            },
                        )?;
                        self.last_swap = Some(epoch);
                        self.report.swaps += 1;
                        self.estimator.reset();
                        self.window.clear();
                        self.report.incidents.push(Incident {
                            epoch,
                            trigger,
                            evidence,
                            action: Action::BreakerOpen {
                                rung: self.cur.rung,
                            },
                            outcome: Outcome::Deployed {
                                rung: self.cur.rung,
                            },
                        });
                    } else {
                        let shift = (self.failures - 1).min(31);
                        let delay = self
                            .opts
                            .backoff_base_epochs
                            .saturating_mul(1u64 << shift)
                            .min(self.opts.backoff_max_epochs);
                        let jitter = self.rng.next_below(self.opts.backoff_base_epochs + 1);
                        let until_epoch = epoch + 1 + delay + jitter;
                        self.breaker = BreakerState::Backoff { until_epoch };
                        jappend(
                            machine,
                            journal,
                            JournalRecord::Breaker {
                                epoch,
                                state: self.breaker,
                                failures: self.failures,
                            },
                        )?;
                        self.report.incidents.push(Incident {
                            epoch,
                            trigger,
                            evidence,
                            action: Action::Backoff {
                                failures: self.failures,
                                until_epoch,
                            },
                            outcome: Outcome::RebuildFailed { reason },
                        });
                    }
                }
            }
        } else if slo_violated && self.scav_budget > self.opts.min_scavengers {
            // Overload containment: halve the scavenger pool toward the
            // floor. Evidence is the window p99 that tripped.
            let from = self.scav_budget;
            let to = (self.scav_budget / 2).max(self.opts.min_scavengers);
            self.scav_budget = to;
            self.clean_streak = 0;
            self.window.clear();
            jappend(
                machine,
                journal,
                JournalRecord::ScavBudget {
                    epoch,
                    budget: self.scav_budget as u64,
                    clean_streak: self.clean_streak,
                },
            )?;
            self.report.incidents.push(Incident {
                epoch,
                trigger: Trigger::SloViolation,
                evidence: vec![
                    ("window_p99", Ev::U(window_p99.unwrap_or(0))),
                    ("slo_p99", Ev::U(self.opts.slo_p99_cycles)),
                    ("epoch_overruns", Ev::U(epoch_overruns)),
                ],
                action: Action::ShedScavengers { from, to },
                outcome: Outcome::Contained,
            });
        } else if self.scav_budget < self.opts.scavengers && !slo_violated && epoch_overruns == 0 {
            // Probation: a clean streak earns one scavenger back.
            self.clean_streak += 1;
            if self.clean_streak >= self.opts.probation_epochs {
                self.scav_budget += 1;
                self.clean_streak = 0;
                jappend(
                    machine,
                    journal,
                    JournalRecord::ScavBudget {
                        epoch,
                        budget: self.scav_budget as u64,
                        clean_streak: self.clean_streak,
                    },
                )?;
                self.report.incidents.push(Incident {
                    epoch,
                    trigger: Trigger::ProbationElapsed,
                    evidence: vec![
                        ("clean_epochs", Ev::U(self.opts.probation_epochs)),
                        ("window_p99", Ev::U(window_p99.unwrap_or(0))),
                    ],
                    action: Action::RestoreScavenger {
                        to: self.scav_budget,
                    },
                    outcome: Outcome::Contained,
                });
            }
        } else if slo_violated || epoch_overruns > 0 {
            self.clean_streak = 0;
        }
        Ok(())
    }
}

/// One rebuild attempt: ladder, fault hook, swap-time lint gate.
fn attempt_rebuild(
    machine: &mut Machine,
    workload: &mut dyn ServiceWorkload,
    original: &Program,
    opts: &SupervisorOptions,
    journaled: bool,
) -> Rebuild {
    let b = pgo_pipeline_degrading(
        machine,
        original,
        |attempt| workload.profiling_contexts(attempt),
        &opts.degrade,
    );
    if b.rung != Rung::FullPgo {
        let reason = format!("rebuild degraded to {}", b.rung);
        return Rebuild::Failed {
            reason,
            fallback: Some(Box::new(DeployedBuild::from(b))),
        };
    }
    let mut deployed = DeployedBuild::from(b);
    if let Some(mutate) = opts.build_mutator {
        mutate(&mut deployed.prog);
    }
    if let Err(e) = lint_gate(
        &deployed.prog,
        &deployed.origin,
        &opts.degrade.pipeline.lint,
    ) {
        return Rebuild::Failed {
            reason: format!("swap-time lint gate: {e}"),
            fallback: None,
        };
    }
    if journaled
        && machine
            .faults
            .as_mut()
            .is_some_and(|f| f.crash_point(CP_BETWEEN_GATES))
    {
        return Rebuild::Crashed;
    }
    // Beyond the lint gate: prove the deployed image equivalent to the
    // original it claims to instrument before the epoch-boundary swap.
    if opts.degrade.pipeline.verify {
        if let Err(e) = verify_gate(
            original,
            &deployed.prog,
            &deployed.origin,
            &opts.degrade.pipeline.lint,
        ) {
            return Rebuild::Failed {
                reason: format!("swap-time verify gate: {e}"),
                fallback: None,
            };
        }
    }
    Rebuild::Swapped(Box::new(deployed))
}

/// The breaker's open-state deployment when no usable degraded build
/// exists: a fresh scavenger-only build of the original, or the
/// original itself.
fn fallback_build(
    original: &Program,
    machine: &Machine,
    opts: &SupervisorOptions,
) -> DeployedBuild {
    match scavenger_only_build(original, &machine.cfg, &opts.degrade.pipeline) {
        Some(Ok((prog, origin, _lint))) => DeployedBuild {
            prog,
            origin,
            rung: Rung::ScavengerOnly,
            profile: None,
        },
        _ => DeployedBuild {
            prog: original.clone(),
            origin: (0..original.len()).map(Some).collect(),
            rung: Rung::Uninstrumented,
            profile: None,
        },
    }
}

/// Configuration for [`recover`].
#[derive(Clone, Copy, Debug)]
pub struct RecoverOptions {
    /// Re-run the lint + symbolic-equivalence gates on the recovered
    /// build before it serves a single request. `false` is a **test
    /// hook** that models a buggy recovery path — the chaos campaign
    /// engine exists to prove such a recovery gets caught.
    pub revalidate: bool,
}

impl Default for RecoverOptions {
    fn default() -> Self {
        RecoverOptions { revalidate: true }
    }
}

/// What [`recover`] reconstructed.
#[derive(Clone, Debug)]
pub struct Recovery {
    /// The build to serve with (re-validated, or the ladder fallback).
    pub build: DeployedBuild,
    /// The durable state to resume the loop from.
    pub resume: ResumeState,
    /// Recovery decisions, as incidents — concatenate with the segment
    /// reports' logs so the replay-determinism hash spans restarts.
    pub incidents: Vec<Incident>,
    /// Journal records replayed.
    pub replayed: u64,
    /// True when a torn tail was detected and truncated.
    pub truncated: bool,
    /// True when the recorded deployment could not be trusted and the
    /// fallback rung was deployed instead.
    pub degraded: bool,
}

/// Crash recovery: repairs and replays the journal, reconstructs
/// breaker/epoch/rung state, re-validates the recovered build through
/// the same lint + symbolic-equivalence gates a hot swap passes, and
/// falls down the degradation ladder when that re-validation fails.
/// Never serves an unverified build — that is the contract the chaos
/// oracles check.
pub fn recover(
    journal: &mut Journal,
    original: &Program,
    machine: &mut Machine,
    opts: &SupervisorOptions,
    ropts: &RecoverOptions,
) -> Result<Recovery, SupervisorConfigError> {
    validate_options(opts)?;
    // A restart is a deployment boundary like any other: the dead
    // process's JIT state is gone, and the recovered (possibly fallback)
    // build must never be served through superblocks compiled from
    // whatever was running before the crash. The cache is keyed by
    // program identity, so stale entries would otherwise survive here —
    // the one deploy site the hot-swap paths don't cover.
    machine.invalidate_blocks();
    let rep = journal.repair();
    let st = project(&rep.records);
    let resume = ResumeState {
        epoch: st.epoch.map_or(0, |e| e + 1),
        next_job: st.next_job,
        breaker: st.breaker,
        failures: st.failures,
        scav_budget: st
            .scav_budget
            .map_or(opts.scavengers, |b| (b as usize).min(opts.scavengers)),
    };
    let replayed = rep.records.len() as u64;
    let truncated = rep.torn_tail;

    // Resolve the recorded deployment to a concrete build, then earn
    // back trust in it: the artifact must match its fingerprint and
    // re-pass the swap-time gates. Anything less falls down the ladder.
    let mut gate_failed = false;
    let recovered: Option<DeployedBuild> = match st.deploy {
        None => None,
        Some((fp, rung, _epoch)) => match journal.get_build(fp) {
            None => None,
            Some(sb) => {
                let build = DeployedBuild {
                    prog: sb.prog.clone(),
                    origin: sb.origin.clone(),
                    rung: sb.rung,
                    profile: sb.profile.clone(),
                };
                if !ropts.revalidate {
                    Some(build)
                } else if build.rung != rung || build.prog.fingerprint() != fp {
                    gate_failed = true;
                    None
                } else if build.rung == Rung::Uninstrumented {
                    // Nothing was rewritten; the artifact must *be* the
                    // original.
                    if build.prog.fingerprint() == original.fingerprint() {
                        Some(build)
                    } else {
                        gate_failed = true;
                        None
                    }
                } else {
                    let lint_ok =
                        lint_gate(&build.prog, &build.origin, &opts.degrade.pipeline.lint).is_ok();
                    let verify_ok = !opts.degrade.pipeline.verify
                        || verify_gate(
                            original,
                            &build.prog,
                            &build.origin,
                            &opts.degrade.pipeline.lint,
                        )
                        .is_ok();
                    if lint_ok && verify_ok {
                        Some(build)
                    } else {
                        gate_failed = true;
                        None
                    }
                }
            }
        },
    };

    let degraded = recovered.is_none();
    let build = recovered.unwrap_or_else(|| fallback_build(original, machine, opts));
    if degraded {
        // A degraded recovery is itself a deployment decision: persist
        // the fallback (artifact first, then the write-ahead record) so
        // the durable image never keeps pointing at a build that failed
        // re-validation. Recovery runs before serving, so the append is
        // synchronous (no fault injector).
        let fp = build.prog.fingerprint();
        journal.store_build(
            fp,
            StoredBuild {
                prog: build.prog.clone(),
                origin: build.origin.clone(),
                rung: build.rung,
                profile: build.profile.clone(),
            },
        );
        journal.append(
            &JournalRecord::Deploy {
                epoch: resume.epoch,
                rung: build.rung,
                fingerprint: fp,
            },
            None,
        );
    }
    let action = if degraded {
        Action::RecoveryDegraded { rung: build.rung }
    } else {
        Action::Recovered {
            rung: build.rung,
            replayed,
            truncated,
        }
    };
    let incidents = vec![Incident {
        epoch: resume.epoch,
        trigger: Trigger::CrashRecovery,
        evidence: vec![
            ("replayed", Ev::U(replayed)),
            ("truncated", Ev::U(u64::from(truncated))),
            ("artifact_found", Ev::U(u64::from(!degraded || gate_failed))),
            ("gate_failed", Ev::U(u64::from(gate_failed))),
            ("failures", Ev::U(u64::from(resume.failures))),
        ],
        action,
        outcome: Outcome::Deployed { rung: build.rung },
    }];
    Ok(Recovery {
        build,
        resume,
        incidents,
        replayed,
        truncated,
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dualmode::WatchdogOptions;
    use crate::journal::Journal;
    use reach_profile::Periods;
    use reach_sim::{AluOp, Cond, Inst, MachineConfig, ProgramBuilder, Reg};
    use reach_workloads::{build_zipf_kv, AddrAlloc, ZipfKvParams};

    const LOOKUPS: u64 = 1024;

    /// A zipf-KV service with independently skewed *profiled* and *live*
    /// traffic: the instrumentation was built against the stale pool's
    /// skew, live jobs arrive with `live_theta`'s. `(0.0, 3.0)` is the
    /// drift scenario — the deployed profile expects the value table to
    /// miss on every lookup, while live traffic hits its hot head and
    /// misses only on the request stream.
    ///
    /// Every job and every profiling attempt draws a *fresh* instance
    /// (disjoint table + request stream) so misses are compulsory and
    /// the sample stream is not silenced by cache residency from earlier
    /// epochs.
    struct ZipfService {
        prog: Program,
        live: Vec<reach_workloads::InstanceSetup>,
        cursor: usize,
        prof_stale: Vec<reach_workloads::InstanceSetup>,
        prof_live: Vec<reach_workloads::InstanceSetup>,
        prof_cursor: usize,
        /// Runaway program injected into the scavenger pool during the
        /// given epoch range (the overload scenario).
        runaway: Option<(Program, std::ops::Range<u64>)>,
    }

    impl ZipfService {
        fn new(m: &mut Machine, stale_theta: f64, live_theta: f64) -> ZipfService {
            let mut alloc = AddrAlloc::new(0x800_0000);
            let params = |theta: f64, seed: u64| ZipfKvParams {
                table_entries: 1 << 15,
                lookups: LOOKUPS,
                theta,
                seed,
            };
            let live = build_zipf_kv(&mut m.mem, &mut alloc, params(live_theta, 13), 56);
            let stale = build_zipf_kv(&mut m.mem, &mut alloc, params(stale_theta, 11), 8);
            let prof = build_zipf_kv(&mut m.mem, &mut alloc, params(live_theta, 17), 12);
            ZipfService {
                prog: live.prog,
                live: live.instances,
                cursor: 0,
                prof_stale: stale.instances,
                prof_live: prof.instances,
                prof_cursor: 0,
                runaway: None,
            }
        }

        fn next_live(&mut self) -> Context {
            let i = self.cursor;
            self.cursor += 1;
            self.live[i % self.live.len()].make_context(1_000 + i)
        }

        /// Profiling contexts drawn from the *stale* distribution — what
        /// the initial deployment was built against.
        fn stale_profiling_contexts(&self, attempt: u32) -> Vec<Context> {
            let n = self.prof_stale.len();
            (0..2)
                .map(|k| {
                    self.prof_stale[(2 * attempt as usize + k) % n]
                        .make_context(9_500 + 2 * attempt as usize + k)
                })
                .collect()
        }
    }

    impl ServiceWorkload for ZipfService {
        fn arrivals(&mut self, _epoch: u64) -> usize {
            1
        }
        fn primary_context(&mut self, _job: u64) -> Context {
            self.next_live()
        }
        fn scavenger_context(&mut self, _epoch: u64, _job: u64, _slot: usize) -> Context {
            self.next_live()
        }
        fn scavenger_program(&mut self, epoch: u64) -> Option<Program> {
            let (prog, range) = self.runaway.as_ref()?;
            range.contains(&epoch).then(|| prog.clone())
        }
        /// Rebuilds profile what is *actually* arriving: live traffic.
        fn profiling_contexts(&mut self, _attempt: u32) -> Vec<Context> {
            let n = self.prof_live.len();
            (0..2)
                .map(|_| {
                    let i = self.prof_cursor;
                    self.prof_cursor += 1;
                    self.prof_live[i % n].make_context(9_000 + i)
                })
                .collect()
        }
    }

    /// A cooperative-free infinite loop for the scavenger pool.
    fn runaway_prog() -> Program {
        let mut b = ProgramBuilder::new("runaway");
        b.imm(Reg(1), 1);
        let top = b.label();
        b.bind(top);
        b.alu(AluOp::Add, Reg(2), Reg(2), Reg(1), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        b.finish().unwrap()
    }

    /// Degrade options whose profiling periods suit the small test
    /// workload (1024 lookups would yield too few samples at the
    /// default period).
    fn fast_degrade() -> DegradeOptions {
        let mut d = DegradeOptions::default();
        d.pipeline.collector.periods = Periods {
            l2_miss: 13,
            l3_miss: 13,
            stall: 13,
            retired: 13,
        };
        d
    }

    /// Initial deployment: full-PGO build against the service's
    /// *profiled* (possibly stale) distribution.
    fn initial_build(m: &mut Machine, svc: &ZipfService, orig: &Program) -> DeployedBuild {
        let b = pgo_pipeline_degrading(
            m,
            orig,
            |a| svc.stale_profiling_contexts(a),
            &fast_degrade(),
        );
        assert_eq!(b.rung, Rung::FullPgo, "{:?}", b.reasons);
        DeployedBuild::from(b)
    }

    fn drift_opts() -> SupervisorOptions {
        SupervisorOptions {
            epochs: 10,
            service_per_epoch: 1,
            scavengers: 2,
            insitu_period: 31,
            estimator: OnlineEstimatorOptions {
                window: 2048,
                min_samples: 8,
            },
            staleness_threshold: 0.6,
            seed: 42,
            degrade: fast_degrade(),
            ..SupervisorOptions::default()
        }
    }

    #[test]
    fn drift_triggers_rebuild_and_hot_swap() {
        let mut m = Machine::new(MachineConfig::default());
        let mut svc = ZipfService::new(&mut m, 0.0, 3.0);
        let orig = svc.prog.clone();
        let init = initial_build(&mut m, &svc, &orig);

        let r = supervise(&mut m, &mut svc, &orig, init, &drift_opts()).unwrap();
        assert_eq!(r.swaps, 1, "{}", r.incident_log_json());
        assert_eq!(r.final_rung, Rung::FullPgo);
        assert_eq!(r.breaker, BreakerState::Closed);
        assert!(r.incidents.iter().any(|i| i.trigger == Trigger::Staleness
            && i.action
                == Action::Swap {
                    rung: Rung::FullPgo
                }));
        // The stale profile read as drifted; the rebuilt one matches
        // live traffic again.
        assert!(r.staleness_peak > 0.5, "{}", r.staleness_peak);
        assert!(r.staleness_last < 0.3, "{}", r.staleness_last);
        assert_eq!(r.served, 10);
        assert!(m.samplers.is_empty(), "in-situ sampler left armed");
        // Recovery: post-swap jobs are faster than the stale-build ones.
        let swap_epoch = r.last_swap_epoch.unwrap();
        // The swap lands at the end of `swap_epoch`, so that epoch's job
        // still ran on the stale build.
        let pre = r
            .latencies
            .iter()
            .filter(|(e, _)| *e <= swap_epoch)
            .map(|(_, l)| *l)
            .max()
            .unwrap();
        assert!(
            r.p99_after(swap_epoch + 1) < pre,
            "post-swap p99 {} !< pre-swap max {pre}",
            r.p99_after(swap_epoch + 1)
        );
    }

    #[test]
    fn hot_swap_invalidates_superblock_cache() {
        // The superblock engine caches pre-decoded blocks keyed by
        // program *identity*; a hot swap changes the code map under the
        // serving loop, so every deployment change must invalidate the
        // cache — blocks compiled from any earlier traffic (warmup,
        // off-epoch uninstrumented jobs) must not survive a deploy.
        let mut m = Machine::new(MachineConfig::default());
        let mut svc = ZipfService::new(&mut m, 0.0, 3.0);
        let orig = svc.prog.clone();
        let init = initial_build(&mut m, &svc, &orig);

        // Warm the superblock cache with uninstrumented traffic (the
        // supervisor's own serving loop keeps the in-situ sampler armed,
        // which routes around the block engine — warmup models the
        // direct/uninstrumented callers that do reach it).
        let mut wb = ProgramBuilder::new("warmup");
        wb.imm(Reg(1), 64).imm(Reg(2), 1);
        let top = wb.label();
        wb.bind(top);
        wb.alu(AluOp::Sub, Reg(1), Reg(1), Reg(2), 1);
        wb.branch(Cond::Nez, Reg(1), top);
        wb.halt();
        let warm_prog = wb.finish().unwrap();
        let mut warm = Context::new(7_000);
        m.run_to_completion(&warm_prog, &mut warm, 1 << 20).unwrap();
        assert!(m.block_cache.stats.compiled > 0, "warmup compiled nothing");
        assert!(m.block_cache.cached_blocks() > 0);

        let r = supervise(&mut m, &mut svc, &orig, init, &drift_opts()).unwrap();
        assert_eq!(r.swaps, 1, "{}", r.incident_log_json());
        assert_eq!(
            m.block_cache.stats.invalidations, r.swaps,
            "every hot swap must invalidate the superblock cache"
        );
        // The pre-swap blocks are gone, not merely shadowed.
        assert_eq!(m.block_cache.cached_blocks(), 0);
    }

    #[test]
    fn unsupervised_measures_but_never_acts() {
        let mut m = Machine::new(MachineConfig::default());
        let mut svc = ZipfService::new(&mut m, 0.0, 3.0);
        let orig = svc.prog.clone();
        let init = initial_build(&mut m, &svc, &orig);

        let opts = SupervisorOptions {
            supervise: false,
            ..drift_opts()
        };
        let r = supervise(&mut m, &mut svc, &orig, init, &opts).unwrap();
        assert!(r.incidents.is_empty());
        assert_eq!(r.swaps, 0);
        assert_eq!(r.rebuilds, 0);
        assert_eq!(r.final_rung, Rung::FullPgo);
        // Monitoring parity: the estimator still saw the drift.
        assert!(r.staleness_peak > 0.5, "{}", r.staleness_peak);
        assert_eq!(r.scav_budget_final, opts.scavengers);
    }

    #[test]
    fn failing_rebuilds_back_off_then_open_breaker_on_recorded_rung() {
        fn wipe(p: &mut Profile) {
            p.total_samples = 0;
        }
        let mut m = Machine::new(MachineConfig::default());
        let mut svc = ZipfService::new(&mut m, 0.0, 3.0);
        let orig = svc.prog.clone();
        let init = initial_build(&mut m, &svc, &orig);

        let opts = SupervisorOptions {
            epochs: 12,
            max_rebuild_failures: 2,
            backoff_base_epochs: 1,
            backoff_max_epochs: 4,
            degrade: DegradeOptions {
                max_reprofiles: 0,
                profile_mutator: Some(wipe),
                ..fast_degrade()
            },
            ..drift_opts()
        };
        let r = supervise(&mut m, &mut svc, &orig, init, &opts).unwrap();
        assert_eq!(r.breaker, BreakerState::Open, "{}", r.incident_log_json());
        assert_eq!(r.final_rung, Rung::ScavengerOnly);
        assert_eq!(r.rebuilds, 2);
        assert!(r.incidents.iter().any(|i| matches!(
            i.action,
            Action::Backoff { failures: 1, .. }
        ) && matches!(&i.outcome, Outcome::RebuildFailed { reason }
                    if reason.contains("scavenger-only"))));
        assert!(r.incidents.iter().any(|i| i.action
            == Action::BreakerOpen {
                rung: Rung::ScavengerOnly
            }
            && i.outcome
                == Outcome::Deployed {
                    rung: Rung::ScavengerOnly
                }));
    }

    #[test]
    fn corrupted_rebuild_is_rejected_by_swap_time_lint_gate() {
        fn clobber_yield_saves(p: &mut Program) {
            for inst in &mut p.insts {
                if let Inst::Yield { save_regs, .. } = inst {
                    *save_regs = Some(0);
                }
            }
        }
        let mut m = Machine::new(MachineConfig::default());
        let mut svc = ZipfService::new(&mut m, 0.0, 3.0);
        let orig = svc.prog.clone();
        let init = initial_build(&mut m, &svc, &orig);

        let opts = SupervisorOptions {
            epochs: 12,
            max_rebuild_failures: 2,
            backoff_base_epochs: 1,
            build_mutator: Some(clobber_yield_saves),
            ..drift_opts()
        };
        let r = supervise(&mut m, &mut svc, &orig, init, &opts).unwrap();
        // Every rebuild reaches FullPgo but the corrupted binary fails
        // the swap-time gate; the breaker ends up deploying a *fresh*
        // scavenger-only build of the original.
        assert!(
            r.incidents
                .iter()
                .any(|i| matches!(&i.outcome, Outcome::RebuildFailed { reason }
                    if reason.contains("lint"))),
            "{}",
            r.incident_log_json()
        );
        assert_eq!(r.breaker, BreakerState::Open);
        assert_eq!(r.final_rung, Rung::ScavengerOnly);
    }

    #[test]
    fn semantically_corrupted_rebuild_is_rejected_by_swap_time_verify_gate() {
        // Skew the load that consumes the first inserted prefetch. The
        // lint gate only *warns* about the orphaned prefetch (RL0002),
        // so on its own it would swap this wrong-address binary in; the
        // equivalence checker proves the load diverges from the
        // original and refuses the swap.
        fn skew_prefetched_load(p: &mut Program) {
            let Some(ppc) = p
                .insts
                .iter()
                .position(|i| matches!(i, Inst::Prefetch { .. }))
            else {
                return;
            };
            for inst in &mut p.insts[ppc..] {
                if let Inst::Load { offset, .. } = inst {
                    *offset += 8;
                    return;
                }
            }
        }
        let mut m = Machine::new(MachineConfig::default());
        let mut svc = ZipfService::new(&mut m, 0.0, 3.0);
        let orig = svc.prog.clone();
        let init = initial_build(&mut m, &svc, &orig);

        let opts = SupervisorOptions {
            epochs: 12,
            max_rebuild_failures: 2,
            backoff_base_epochs: 1,
            build_mutator: Some(skew_prefetched_load),
            ..drift_opts()
        };
        let r = supervise(&mut m, &mut svc, &orig, init, &opts).unwrap();
        assert!(
            r.incidents
                .iter()
                .any(|i| matches!(&i.outcome, Outcome::RebuildFailed { reason }
                    if reason.contains("verify gate") && reason.contains("RL0008"))),
            "{}",
            r.incident_log_json()
        );
        assert_eq!(r.breaker, BreakerState::Open);
        assert_eq!(r.final_rung, Rung::ScavengerOnly);
    }

    #[test]
    fn overload_sheds_scavengers_then_restores_after_probation() {
        let overload_opts = || SupervisorOptions {
            epochs: 16,
            service_per_epoch: 1,
            scavengers: 2,
            slo_p99_cycles: 800_000,
            slo_window: 2,
            probation_epochs: 4,
            insitu_period: 31,
            staleness_threshold: 2.0,
            degrade: fast_degrade(),
            dual: DualModeOptions {
                drain_scavengers: false,
                isolate_faults: true,
                watchdog: Some(WatchdogOptions {
                    slice_steps: 2_000,
                    overrun_cycles: 500,
                    max_overruns: u32::MAX, // containment left to the supervisor
                    ..WatchdogOptions::default()
                }),
                ..DualModeOptions::default()
            },
            seed: 7,
            ..SupervisorOptions::default()
        };
        // Healthy match (profiled == live) so the only disturbance is
        // the runaway scavenger program during the burst.
        let mut m = Machine::new(MachineConfig::default());
        let mut svc = ZipfService::new(&mut m, 0.0, 0.0);
        svc.runaway = Some((runaway_prog(), 2..10));
        let orig = svc.prog.clone();
        let init = initial_build(&mut m, &svc, &orig);

        let opts = overload_opts();
        let r = supervise(&mut m, &mut svc, &orig, init, &opts).unwrap();
        let sheds = r
            .incidents
            .iter()
            .filter(|i| matches!(i.action, Action::ShedScavengers { .. }))
            .count();
        let restores = r
            .incidents
            .iter()
            .filter(|i| matches!(i.action, Action::RestoreScavenger { .. }))
            .count();
        assert!(sheds >= 2, "{}", r.incident_log_json());
        assert!(restores >= 1, "{}", r.incident_log_json());
        assert!(r.scav_budget_final >= 1, "{}", r.scav_budget_final);
        // After shedding bottoms out and the burst ends, the tail meets
        // the SLO again.
        assert!(
            r.p99_after(12) <= opts.slo_p99_cycles,
            "tail p99 {} > SLO",
            r.p99_after(12)
        );

        // The passive arm pays the runaway tax with no incidents.
        let mut m2 = Machine::new(MachineConfig::default());
        let mut svc2 = ZipfService::new(&mut m2, 0.0, 0.0);
        svc2.runaway = Some((runaway_prog(), 2..10));
        let orig2 = svc2.prog.clone();
        let init2 = initial_build(&mut m2, &svc2, &orig2);
        let base = supervise(
            &mut m2,
            &mut svc2,
            &orig2,
            init2,
            &SupervisorOptions {
                supervise: false,
                ..overload_opts()
            },
        )
        .unwrap();
        assert!(base.incidents.is_empty());
        assert_eq!(base.scav_budget_final, opts.scavengers);
        // Across the burst the supervised pool sheds the runaways (and
        // may probe one back in via probation — that oscillation is the
        // design), so its mean latency beats the passive arm, which pays
        // the runaway tax every epoch.
        let burst_mean = |rep: &SupervisorReport| {
            let v: Vec<u64> = rep
                .latencies
                .iter()
                .filter(|(e, _)| (2..10).contains(e))
                .map(|(_, l)| *l)
                .collect();
            v.iter().sum::<u64>() / v.len() as u64
        };
        assert!(
            burst_mean(&r) < burst_mean(&base),
            "supervised burst mean {} !< unsupervised {}",
            burst_mean(&r),
            burst_mean(&base)
        );
    }

    #[test]
    fn degenerate_configs_are_rejected_with_typed_errors() {
        let mut m = Machine::new(MachineConfig::default());
        let mut svc = ZipfService::new(&mut m, 0.0, 3.0);
        let orig = svc.prog.clone();
        let init = initial_build(&mut m, &svc, &orig);
        let mut check = |opts: SupervisorOptions, want: SupervisorConfigError| {
            let got = supervise(&mut m, &mut svc, &orig, init.clone(), &opts)
                .expect_err("degenerate config accepted");
            assert_eq!(got, want);
            // recover() applies the same validation.
            let mut j = Journal::new();
            let got = recover(&mut j, &orig, &mut m, &opts, &RecoverOptions::default())
                .expect_err("degenerate config accepted by recover");
            assert_eq!(got, want);
        };
        check(
            SupervisorOptions {
                max_rebuild_failures: 0,
                ..drift_opts()
            },
            SupervisorConfigError::ZeroMaxRebuildFailures,
        );
        check(
            SupervisorOptions {
                slo_p99_cycles: 1_000,
                slo_window: 0,
                ..drift_opts()
            },
            SupervisorConfigError::ZeroSloWindow,
        );
        check(
            SupervisorOptions {
                estimator: OnlineEstimatorOptions {
                    window: 0,
                    min_samples: 1,
                },
                ..drift_opts()
            },
            SupervisorConfigError::ZeroEstimatorWindow,
        );
        check(
            SupervisorOptions {
                scavengers: 1,
                min_scavengers: 2,
                ..drift_opts()
            },
            SupervisorConfigError::MinScavengersAbovePool,
        );
        // A disarmed SLO guard tolerates the zero-width window (it is
        // never consulted).
        let opts = SupervisorOptions {
            slo_p99_cycles: u64::MAX,
            slo_window: 0,
            epochs: 1,
            ..drift_opts()
        };
        supervise(&mut m, &mut svc, &orig, init.clone(), &opts).unwrap();
    }

    #[test]
    fn recovery_invalidates_warmed_superblock_cache() {
        use reach_sim::{FaultInjector, FaultPlan};
        let mut m = Machine::new(MachineConfig::default());
        let mut svc = ZipfService::new(&mut m, 0.0, 3.0);
        let orig = svc.prog.clone();
        let init = initial_build(&mut m, &svc, &orig);
        let opts = drift_opts();

        let mut journal = Journal::new();
        m.faults = Some(FaultInjector::new(FaultPlan::none(1).with_crash_at(5)));
        let exit = supervise_journaled(
            &mut m,
            &mut svc,
            &orig,
            init.clone(),
            &opts,
            &mut journal,
            None,
        )
        .unwrap();
        assert!(matches!(exit, SuperviseExit::Crashed { .. }));
        m.faults = None;

        // Superblocks compiled before the restart: in the simulation the
        // Machine persists across the crash, so without an explicit
        // invalidation at the recovery deploy site these entries — keyed
        // by the identity of whatever program warmed them — would
        // survive into the recovered segment.
        let mut wb = ProgramBuilder::new("warmup");
        wb.imm(Reg(1), 64).imm(Reg(2), 1);
        let top = wb.label();
        wb.bind(top);
        wb.alu(AluOp::Sub, Reg(1), Reg(1), Reg(2), 1);
        wb.branch(Cond::Nez, Reg(1), top);
        wb.halt();
        let warm_prog = wb.finish().unwrap();
        let mut warm = Context::new(7_000);
        m.run_to_completion(&warm_prog, &mut warm, 1 << 20).unwrap();
        assert!(m.block_cache.cached_blocks() > 0, "warmup compiled nothing");
        let inv_before = m.block_cache.stats.invalidations;

        let rec = recover(
            &mut journal,
            &orig,
            &mut m,
            &opts,
            &RecoverOptions::default(),
        )
        .unwrap();
        assert!(!rec.degraded, "{:?}", rec.incidents);
        assert_eq!(
            m.block_cache.stats.invalidations,
            inv_before + 1,
            "recovery is a deploy site and must invalidate the superblock cache"
        );
        assert_eq!(
            m.block_cache.cached_blocks(),
            0,
            "pre-crash blocks survived recovery"
        );
    }

    #[test]
    fn journaled_run_crashes_then_recovers_and_resumes_to_completion() {
        use reach_sim::{FaultInjector, FaultPlan};
        let mut m = Machine::new(MachineConfig::default());
        let mut svc = ZipfService::new(&mut m, 0.0, 3.0);
        let orig = svc.prog.clone();
        let init = initial_build(&mut m, &svc, &orig);
        let opts = drift_opts();

        let mut journal = Journal::new();
        // Crash at the 5th crash-point consultation (an epoch-advance
        // append, a few epochs in).
        m.faults = Some(FaultInjector::new(FaultPlan::none(1).with_crash_at(5)));
        let exit = supervise_journaled(
            &mut m,
            &mut svc,
            &orig,
            init.clone(),
            &opts,
            &mut journal,
            None,
        )
        .unwrap();
        let SuperviseExit::Crashed { epoch, .. } = exit else {
            panic!("crash channel did not fire");
        };

        let rec = recover(
            &mut journal,
            &orig,
            &mut m,
            &opts,
            &RecoverOptions::default(),
        )
        .unwrap();
        assert!(!rec.degraded, "{:?}", rec.incidents);
        assert_eq!(rec.build.rung, Rung::FullPgo);
        assert!(rec.resume.epoch <= epoch + 1);
        assert!(matches!(rec.incidents[0].action, Action::Recovered { .. }));

        m.faults = None;
        let exit = supervise_journaled(
            &mut m,
            &mut svc,
            &orig,
            rec.build,
            &opts,
            &mut journal,
            Some(rec.resume),
        )
        .unwrap();
        let SuperviseExit::Completed(r) = exit else {
            panic!("resumed segment crashed without a fault plan");
        };
        // The journal's projection agrees with the live final state.
        let st = crate::journal::project(&journal.replay().records);
        assert_eq!(st.epoch, Some(opts.epochs - 1));
        let (fp, rung, _) = st.deploy.unwrap();
        assert_eq!(rung, r.final_rung);
        assert!(journal.get_build(fp).is_some());
        assert_eq!(st.breaker, r.breaker);
    }

    #[test]
    fn recovery_degrades_when_the_recovered_artifact_fails_the_gates() {
        let mut m = Machine::new(MachineConfig::default());
        let mut svc = ZipfService::new(&mut m, 0.0, 3.0);
        let orig = svc.prog.clone();
        let init = initial_build(&mut m, &svc, &orig);
        let opts = drift_opts();

        let mut journal = Journal::new();
        use reach_sim::{FaultInjector, FaultPlan};
        m.faults = Some(FaultInjector::new(FaultPlan::none(1).with_crash_at(4)));
        let exit =
            supervise_journaled(&mut m, &mut svc, &orig, init, &opts, &mut journal, None).unwrap();
        assert!(matches!(exit, SuperviseExit::Crashed { .. }));
        m.faults = None;

        // Bit-rot the deployed artifact: recovery's gates must refuse it
        // and fall down the ladder.
        let st = crate::journal::project(&journal.replay().records);
        let (fp, _, _) = st.deploy.expect("initial deploy journaled");
        assert!(journal.mutate_build(fp, |b| {
            for inst in &mut b.prog.insts {
                if let Inst::Yield { save_regs, .. } = inst {
                    *save_regs = Some(0);
                }
            }
        }));
        // Snapshot before recovering: a degraded recovery re-points the
        // journal at its fallback deployment.
        let mut j2 = journal.clone();
        let rec = recover(
            &mut journal,
            &orig,
            &mut m,
            &opts,
            &RecoverOptions::default(),
        )
        .unwrap();
        assert!(rec.degraded);
        assert_ne!(rec.build.rung, Rung::FullPgo);
        assert!(matches!(
            rec.incidents[0].action,
            Action::RecoveryDegraded { .. }
        ));
        // A degraded recovery is durable: the journal now points at the
        // fallback, and that record survives its own replay.
        let st2 = crate::journal::project(&journal.replay().records);
        let (fp2, rung2, _) = st2.deploy.expect("fallback deploy journaled");
        assert_eq!(rung2, rec.build.rung);
        assert!(journal.get_build(fp2).is_some());
        // The test hook that skips re-validation would have served it.
        let broken = recover(
            &mut j2,
            &orig,
            &mut m,
            &opts,
            &RecoverOptions { revalidate: false },
        )
        .unwrap();
        assert!(!broken.degraded);
        assert_eq!(broken.build.rung, Rung::FullPgo);
    }

    #[test]
    fn replay_produces_byte_identical_incident_log() {
        let run = || {
            let mut m = Machine::new(MachineConfig::default());
            let mut svc = ZipfService::new(&mut m, 0.0, 3.0);
            let orig = svc.prog.clone();
            let init = initial_build(&mut m, &svc, &orig);
            let opts = SupervisorOptions {
                epochs: 12,
                max_rebuild_failures: 3,
                degrade: DegradeOptions {
                    max_reprofiles: 0,
                    profile_mutator: Some(|p: &mut Profile| p.total_samples = 0),
                    ..fast_degrade()
                },
                ..drift_opts()
            };
            supervise(&mut m, &mut svc, &orig, init, &opts).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.incident_log_json(), b.incident_log_json());
        assert_eq!(a.incident_log_hash(), b.incident_log_hash());
        assert_eq!(a.latencies, b.latencies);
        assert_eq!(a.served, b.served);
        assert_eq!(a.breaker, b.breaker);
        assert_eq!(a.staleness_last.to_bits(), b.staleness_last.to_bits());
        assert!(!a.incidents.is_empty(), "scenario produced no incidents");
    }
}

//! Reporting helpers: percentiles and cycle-accounting summaries shared by
//! the experiment harnesses.

use reach_sim::{MachineConfig, PerfCounters};

/// Returns the `p`-th percentile (0.0–1.0) of `values` using
/// nearest-rank on a sorted copy. Returns 0 for an empty slice.
///
/// This is the *single* nearest-rank implementation in the workspace;
/// every other percentile accessor (scheduler sojourn/service helpers,
/// the bench harnesses) delegates here so results can never diverge.
pub fn percentile(values: &[u64], p: f64) -> u64 {
    percentiles(values, &[p])[0]
}

/// Batch form of [`percentile`]: sorts `values` once and reads every
/// requested rank off the same sorted copy. Identical results to calling
/// [`percentile`] per `p` (a differential test enforces this), at one
/// sort instead of `ps.len()`.
pub fn percentiles(values: &[u64], ps: &[f64]) -> Vec<u64> {
    if values.is_empty() {
        return vec![0; ps.len()];
    }
    let mut v = values.to_vec();
    v.sort_unstable();
    ps.iter()
        .map(|p| {
            // Nearest-rank: the ceil(p*n)-th smallest value (1-indexed).
            let rank = (p.clamp(0.0, 1.0) * v.len() as f64).ceil() as usize;
            v[rank.saturating_sub(1).min(v.len() - 1)]
        })
        .collect()
}

/// `num / den` as `f64`; `f64::NAN` when the denominator is zero.
///
/// The degradation-matrix tables divide a faulted run's latency by a
/// healthy baseline; an earlier version returned `0.0` for an empty
/// baseline, which read as a *perfect* (0.00x) degradation ratio in
/// exactly the runs that were most broken. NaN forces callers to render
/// the cell as unavailable ("n/a" in tables, `null` in BENCH JSON)
/// instead of silently scoring it best-possible.
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        f64::NAN
    } else {
        num as f64 / den as f64
    }
}

/// A compact where-did-the-cycles-go summary.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CycleSummary {
    /// Useful-work fraction (the paper's CPU efficiency).
    pub efficiency: f64,
    /// Memory-stall fraction.
    pub stall: f64,
    /// Context-switch fraction.
    pub switching: f64,
    /// Conditional-check fraction.
    pub checks: f64,
    /// Sampling-overhead fraction.
    pub sampling: f64,
    /// Idle fraction.
    pub idle: f64,
    /// Total cycles accounted.
    pub total_cycles: u64,
    /// Total wall-clock time in nanoseconds.
    pub total_ns: f64,
}

impl CycleSummary {
    /// Builds the summary from counters and the clock config.
    pub fn from_counters(c: &PerfCounters, cfg: &MachineConfig) -> CycleSummary {
        let total = c.total_cycles();
        let frac = |x: u64| {
            if total == 0 {
                0.0
            } else {
                x as f64 / total as f64
            }
        };
        CycleSummary {
            efficiency: frac(c.busy_cycles),
            stall: frac(c.stall_cycles),
            switching: frac(c.switch_cycles),
            checks: frac(c.check_cycles),
            sampling: frac(c.sampling_cycles),
            idle: frac(c.idle_cycles),
            total_cycles: total,
            total_ns: cfg.cycles_to_ns(total),
        }
    }
}

impl std::fmt::Display for CycleSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "eff {:5.1}% | stall {:5.1}% | switch {:4.1}% | check {:4.1}% | \
             sample {:4.1}% | idle {:4.1}% | {:.1} us",
            self.efficiency * 100.0,
            self.stall * 100.0,
            self.switching * 100.0,
            self.checks * 100.0,
            self.sampling * 100.0,
            self.idle * 100.0,
            self.total_ns / 1000.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 0.5), 50);
        assert_eq!(percentile(&v, 0.95), 95);
        assert_eq!(percentile(&v, 1.0), 100);
    }

    #[test]
    fn percentile_unsorted_input_and_edges() {
        assert_eq!(percentile(&[5, 1, 9], 0.5), 5);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
        // Out-of-range p clamps.
        assert_eq!(percentile(&[1, 2, 3], 2.0), 3);
    }

    #[test]
    fn batch_percentiles_match_single_calls() {
        // Differential: percentiles() must agree with per-p percentile()
        // on shared inputs, including edge ranks and unsorted data.
        let inputs: &[&[u64]] = &[
            &[],
            &[7],
            &[5, 1, 9],
            &[3, 3, 3, 3],
            &[10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
            &[u64::MAX, 0, 1, u64::MAX - 1],
        ];
        let ps = [0.0, 0.01, 0.25, 0.5, 0.95, 0.99, 1.0, 2.0, -1.0];
        for values in inputs {
            let batch = percentiles(values, &ps);
            for (i, &p) in ps.iter().enumerate() {
                assert_eq!(
                    batch[i],
                    percentile(values, p),
                    "diverged at p={p} on {values:?}"
                );
            }
        }
    }

    #[test]
    fn ratio_zero_denominator_is_nan_not_perfect() {
        // Regression: a faulted run with zero baseline cycles must not
        // read as a perfect 0.00x degradation ratio.
        assert!(ratio(5, 0).is_nan());
        assert!(ratio(0, 0).is_nan());
        assert_eq!(ratio(6, 3), 2.0);
        assert_eq!(ratio(0, 4), 0.0);
    }

    #[test]
    fn summary_fractions_sum_to_one() {
        let mut c = PerfCounters::new();
        c.busy_cycles = 50;
        c.stall_cycles = 30;
        c.switch_cycles = 10;
        c.idle_cycles = 10;
        let s = CycleSummary::from_counters(&c, &MachineConfig::default());
        let sum = s.efficiency + s.stall + s.switching + s.checks + s.sampling + s.idle;
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(s.total_cycles, 100);
        assert!((s.total_ns - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_counters_summary() {
        let s = CycleSummary::from_counters(&PerfCounters::new(), &MachineConfig::default());
        assert_eq!(s.efficiency, 0.0);
        assert_eq!(s.total_cycles, 0);
    }

    #[test]
    fn display_is_one_line() {
        let mut c = PerfCounters::new();
        c.busy_cycles = 1;
        let s = CycleSummary::from_counters(&c, &MachineConfig::default());
        let out = format!("{s}");
        assert!(out.contains("eff"));
        assert_eq!(out.lines().count(), 1);
    }
}

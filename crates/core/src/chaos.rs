//! Deterministic chaos campaigns over supervised serving: randomized
//! crash × torn-write × fault-class schedules, safety-invariant
//! oracles, and a shrinker that bisects a violating schedule down to a
//! minimal copy-pasteable repro.
//!
//! The discipline is FoundationDB-style deterministic simulation
//! testing. A [`ChaosSchedule`] is a pure value: a [`FaultPlan`]
//! (channel intensities plus the seed every decision stream derives
//! from) plus a list of crash instants (one per crash segment, counted
//! in crash-point consultations) plus two workload-level fault classes
//! (stale rebuild profiles, runaway scavengers). [`run_schedule`]
//! executes it — serve under
//! [`supervise_journaled`], crash, [`recover`], resume, repeat — and
//! checks five oracles:
//!
//! 1. **Never serve an unverified build.** Before every segment the
//!    engine independently re-derives trust in the build about to
//!    serve: fingerprint identity with the original for uninstrumented
//!    builds, the lint + symbolic-equivalence gates otherwise. It
//!    deliberately does not believe anything recovery concluded — which
//!    is exactly how a recovery path that skips re-validation gets
//!    caught.
//! 2. **Epochs monotone across restarts.** Served epochs never go
//!    backwards within a segment, recovery resume points never go
//!    backwards across restarts, and the repaired journal's
//!    epoch-advance records are strictly increasing.
//! 3. **Bounded unavailability.** Every injected crash costs at most
//!    one recovery segment, and the run still journals its final epoch.
//! 4. **Journal-replay state equals live state.** At a clean shutdown,
//!    projecting the durable journal reproduces the live final rung,
//!    breaker state, failure count, and scavenger budget.
//! 5. **Breaker-open implies scavenger-only-or-lower.** An open breaker
//!    never leaves a full-PGO build serving, live or journaled.
//!
//! Everything is seed-derived, so a violating schedule replays
//! bit-for-bit; [`minimize`] then greedily drops crashes, zeroes
//! channels, and bisects crash instants — keeping each transformation
//! only if the violation survives — and [`ChaosSchedule::repro`] prints
//! the survivor as a copy-pasteable constructor chain.

use crate::degrade::Rung;
use crate::journal::{project, Journal, JournalRecord, JournalState, StoredBuild};
use crate::pipeline::{lint_gate, verify_gate};
use crate::supervisor::{
    incidents_hash, recover, supervise_journaled, BreakerState, DeployedBuild, Incident,
    RecoverOptions, ResumeState, ServiceWorkload, SuperviseExit, SupervisorConfigError,
    SupervisorOptions, SupervisorReport,
};
use reach_profile::Profile;
use reach_sim::{FaultInjector, FaultPlan, Machine, Program, SplitMix64};

/// A chaos configuration the engine refuses to run, caught at
/// [`run_schedule`] entry instead of hanging or corrupting mid-campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosConfigError {
    /// The underlying supervisor configuration is degenerate.
    Supervisor(SupervisorConfigError),
    /// The schedule arms the runaway-scavenger burst but
    /// `sup.dual.watchdog` is `None`: a cooperative-free scavenger with
    /// no watchdog never yields the slice back, so the epoch would spin
    /// until the unwatched-slice step cap — in practice, a hang.
    RunawayWithoutWatchdog,
}

impl From<SupervisorConfigError> for ChaosConfigError {
    fn from(e: SupervisorConfigError) -> Self {
        ChaosConfigError::Supervisor(e)
    }
}

impl std::fmt::Display for ChaosConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosConfigError::Supervisor(e) => e.fmt(f),
            ChaosConfigError::RunawayWithoutWatchdog => write!(
                f,
                "schedule arms a runaway scavenger but sup.dual.watchdog is None \
                 (the burst would pin every slice; arm WatchdogOptions)"
            ),
        }
    }
}

impl std::error::Error for ChaosConfigError {}

/// One randomized fault schedule: which channels are armed and where
/// the crashes land. A pure value — running it twice produces
/// byte-identical fault streams and incident logs.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosSchedule {
    /// Channel intensities and the seed the per-segment injectors
    /// derive from. `plan.crash_at` is ignored here — per-segment crash
    /// instants come from `crashes`.
    pub plan: FaultPlan,
    /// Crash instants: segment `k` crashes at its `crashes[k]`-th
    /// crash-point consultation (1-based); segments beyond the list run
    /// crash-free, so the run then completes.
    pub crashes: Vec<u64>,
    /// Feed every rebuild a drifted profile (the stale-profile fault
    /// class), injected through the ladder's profile-mutator hook.
    pub stale_rebuilds: bool,
    /// Ask the world factory to arm its runaway-scavenger burst (the
    /// overload fault class — the factory decides what that means for
    /// its workload).
    pub runaway: bool,
}

impl ChaosSchedule {
    /// A schedule with nothing armed.
    pub fn quiet(seed: u64) -> Self {
        ChaosSchedule {
            plan: FaultPlan::none(seed),
            crashes: Vec::new(),
            stale_rebuilds: false,
            runaway: false,
        }
    }

    /// How many distinct fault events the schedule arms: one per crash,
    /// one per armed plan channel, one per armed workload class. The
    /// minimizer's target metric.
    pub fn event_count(&self) -> usize {
        let p = &self.plan;
        self.crashes.len()
            + usize::from(p.pebs_drop > 0.0)
            + usize::from(p.pebs_extra_skid > 0)
            + usize::from(p.pebs_pc_corrupt > 0.0)
            + usize::from(p.lbr_drop > 0.0)
            + usize::from(p.prefetch_corrupt > 0.0)
            + usize::from(p.trap_every.is_some())
            + usize::from(p.torn_write > 0.0)
            + usize::from(p.partial_flush > 0.0)
            + usize::from(self.stale_rebuilds)
            + usize::from(self.runaway)
    }

    /// The exact constructor chain that rebuilds this schedule — what a
    /// violation report prints so the repro is copy-pasteable.
    pub fn repro(&self) -> String {
        let p = &self.plan;
        let mut plan = format!("FaultPlan::none(0x{:x})", p.seed);
        if p.pebs_drop > 0.0 {
            plan += &format!(".with_pebs_drop({:?})", p.pebs_drop);
        }
        if p.pebs_extra_skid > 0 {
            plan += &format!(".with_pebs_extra_skid({})", p.pebs_extra_skid);
        }
        if p.pebs_pc_corrupt > 0.0 {
            plan += &format!(
                ".with_pebs_pc_corrupt({:?}, {})",
                p.pebs_pc_corrupt, p.pebs_pc_corrupt_range
            );
        }
        if p.lbr_drop > 0.0 {
            plan += &format!(".with_lbr_drop({:?})", p.lbr_drop);
        }
        if p.prefetch_corrupt > 0.0 {
            plan += &format!(
                ".with_prefetch_corrupt({:?}, {})",
                p.prefetch_corrupt, p.prefetch_corrupt_lines
            );
        }
        if let Some(n) = p.trap_every {
            plan += &format!(".with_trap_every({n})");
        }
        if p.torn_write > 0.0 {
            plan += &format!(".with_torn_write({:?})", p.torn_write);
        }
        if p.partial_flush > 0.0 {
            plan += &format!(".with_partial_flush({:?})", p.partial_flush);
        }
        format!(
            "ChaosSchedule {{ plan: {plan}, crashes: vec!{:?}, stale_rebuilds: {}, runaway: {} }}",
            self.crashes, self.stale_rebuilds, self.runaway
        )
    }
}

/// One freshly-built serving world: the machine (whose memory is the
/// data store — it survives simulated process crashes), the service,
/// the original program, and the initial verified deployment. A factory
/// closure builds one per schedule run so every trial starts from an
/// identical state.
pub struct ChaosWorld {
    /// The simulated machine.
    pub machine: Machine,
    /// The service being supervised.
    pub workload: Box<dyn ServiceWorkload>,
    /// The uninstrumented original program.
    pub original: Program,
    /// The initial verified deployment.
    pub initial: DeployedBuild,
}

/// Engine configuration.
#[derive(Clone)]
pub struct ChaosOptions {
    /// Supervisor configuration for every segment (`sup.epochs` is the
    /// whole run's length; crash segments resume inside it).
    pub sup: SupervisorOptions,
    /// Recovery configuration. `revalidate: false` is the
    /// deliberately-broken-recovery test hook the campaign engine
    /// exists to catch.
    pub recover: RecoverOptions,
    /// Test hook: bit-rot applied to the currently-deployed artifact
    /// before every recovery, modeling storage corruption between crash
    /// and restart.
    pub corrupt_artifacts: Option<fn(&mut StoredBuild)>,
    /// Safety stop on recovery loops. A correct engine never gets near
    /// it: segments are bounded by `crashes.len() + 1`.
    pub max_segments: u64,
}

impl ChaosOptions {
    /// Engine defaults around the given supervisor configuration.
    pub fn new(sup: SupervisorOptions) -> Self {
        ChaosOptions {
            sup,
            recover: RecoverOptions::default(),
            corrupt_artifacts: None,
            max_segments: 64,
        }
    }
}

/// Everything one schedule run did, and every invariant it broke.
#[derive(Clone, Debug, Default)]
pub struct ScheduleRun {
    /// Oracle violations, empty on a healthy run.
    pub violations: Vec<String>,
    /// Supervision segments executed (`crashes + 1` on a bounded run).
    pub segments: u64,
    /// Crashes injected.
    pub crashes: u64,
    /// Recoveries that fell down the degradation ladder.
    pub recoveries_degraded: u64,
    /// Recoveries that detected and truncated a torn journal tail.
    pub torn_tails: u64,
    /// Jobs served across all segments.
    pub served: u64,
    /// Jobs shed at admission across all segments.
    pub shed_jobs: u64,
    /// Hot swaps across all segments.
    pub swaps: u64,
    /// Rebuild attempts across all segments.
    pub rebuilds: u64,
    /// Jobs whose primary faulted across all segments.
    pub job_faults: u64,
    /// Records in the final durable journal image.
    pub journal_records: u64,
    /// Bytes in the final durable journal image.
    pub journal_bytes: u64,
    /// Host wall-clock nanoseconds spent inside [`recover`] calls.
    /// Measurement only — it is the one field outside the determinism
    /// contract, so reports must treat it as informational.
    pub recovery_host_ns: u64,
    /// Projection of the final (repaired) durable journal — what a
    /// restart at this instant would resume from.
    pub final_state: Option<JournalState>,
    /// The full cross-restart incident log: segment and recovery
    /// incidents concatenated in order.
    pub incidents: Vec<Incident>,
    /// FNV-1a hash of the cross-restart incident log — the
    /// replay-determinism contract extended over restarts.
    pub incident_hash: u64,
    /// The last segment's report, when the run completed cleanly.
    pub final_report: Option<SupervisorReport>,
}

/// The stale-profile fault class: drift injected into every rebuild's
/// profile. Seeded from the profile itself (a plain `fn` pointer cannot
/// capture), so the mutation is still a pure function of the run.
fn stale_profile_mutator(p: &mut Profile) {
    let mut rng = SplitMix64::new(0x00C0_FFEE ^ p.total_samples);
    p.inject_drift(0.8, 64, &mut rng);
}

/// Independent re-derivation of trust in a build about to serve:
/// uninstrumented builds must *be* the original, anything else must
/// re-pass the lint and (when enabled) symbolic-equivalence gates. The
/// oracle deliberately re-checks from scratch rather than trusting what
/// recovery or the swap path concluded.
pub(crate) fn build_is_trusted(
    original: &Program,
    build: &DeployedBuild,
    sup: &SupervisorOptions,
) -> bool {
    match build.rung {
        Rung::Uninstrumented => build.prog.fingerprint() == original.fingerprint(),
        Rung::FullPgo | Rung::ScavengerOnly => {
            lint_gate(&build.prog, &build.origin, &sup.degrade.pipeline.lint).is_ok()
                && (!sup.degrade.pipeline.verify
                    || verify_gate(
                        original,
                        &build.prog,
                        &build.origin,
                        &sup.degrade.pipeline.lint,
                    )
                    .is_ok())
        }
    }
}

fn mix(seed: u64, k: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(k.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs one schedule to completion (or first violation): serve, crash,
/// recover, resume, then audit the durable image. Deterministic in
/// `(factory, schedule, opts)`.
pub fn run_schedule(
    factory: &mut dyn FnMut(&ChaosSchedule) -> ChaosWorld,
    schedule: &ChaosSchedule,
    opts: &ChaosOptions,
) -> Result<ScheduleRun, ChaosConfigError> {
    if schedule.runaway && opts.sup.dual.watchdog.is_none() {
        return Err(ChaosConfigError::RunawayWithoutWatchdog);
    }
    let mut world = factory(schedule);
    let mut sup = opts.sup.clone();
    if schedule.stale_rebuilds {
        sup.degrade.profile_mutator = Some(stale_profile_mutator);
    }

    let mut run = ScheduleRun::default();
    let mut journal = Journal::new();
    let mut build = world.initial.clone();
    let mut resume: Option<ResumeState> = None;
    let mut last_resume_epoch = 0u64;

    loop {
        // Oracle 1: never serve an unverified build.
        if !build_is_trusted(&world.original, &build, &sup) {
            run.violations.push(format!(
                "oracle1/unverified-build: segment {} is about to serve an untrusted {} build",
                run.segments, build.rung
            ));
            break;
        }
        if run.segments >= opts.max_segments {
            run.violations.push(format!(
                "oracle3/bounded-unavailability: {} segments without completing",
                run.segments
            ));
            break;
        }
        // Each segment gets its own injector: same channel intensities,
        // a segment-mixed seed, and that segment's crash instant.
        let mut plan = schedule.plan;
        plan.seed = mix(schedule.plan.seed, run.segments);
        plan.crash_at = schedule.crashes.get(run.segments as usize).copied();
        world.machine.faults = Some(FaultInjector::new(plan));
        run.segments += 1;

        let exit = supervise_journaled(
            &mut world.machine,
            world.workload.as_mut(),
            &world.original,
            build.clone(),
            &sup,
            &mut journal,
            resume,
        )?;

        {
            let rep = exit.report();
            // Oracle 2 (live half): within a segment, served epochs
            // never go backwards.
            let mut seg_last: Option<u64> = None;
            for (e, _) in &rep.latencies {
                if seg_last.is_some_and(|last| *e < last) {
                    run.violations.push(format!(
                        "oracle2/epoch-monotonicity: served epoch {e} after epoch {}",
                        seg_last.unwrap()
                    ));
                }
                seg_last = Some(*e);
            }
            run.served += rep.served;
            run.shed_jobs += rep.shed_jobs;
            run.swaps += rep.swaps;
            run.rebuilds += rep.rebuilds;
            run.job_faults += rep.job_faults;
        }

        match exit {
            SuperviseExit::Completed(rep) => {
                run.incidents.extend(rep.incidents.iter().cloned());
                run.final_report = Some(rep);
                break;
            }
            SuperviseExit::Crashed { report, .. } => {
                run.crashes += 1;
                run.incidents.extend(report.incidents);
                if let Some(corrupt) = opts.corrupt_artifacts {
                    let st = project(&journal.replay().records);
                    if let Some((fp, _, _)) = st.deploy {
                        journal.mutate_build(fp, corrupt);
                    }
                }
                // The crashed process's injector dies with it; recovery
                // and the next segment's injector start fresh.
                world.machine.faults = None;
                let t0 = std::time::Instant::now();
                let rec = recover(
                    &mut journal,
                    &world.original,
                    &mut world.machine,
                    &sup,
                    &opts.recover,
                )?;
                run.recovery_host_ns += t0.elapsed().as_nanos() as u64;
                // Oracle 2 (restart half): recovery resume points never
                // go backwards — durable state only grows.
                if rec.resume.epoch < last_resume_epoch {
                    run.violations.push(format!(
                        "oracle2/epoch-monotonicity: resume epoch {} after resume epoch {}",
                        rec.resume.epoch, last_resume_epoch
                    ));
                }
                last_resume_epoch = rec.resume.epoch;
                run.recoveries_degraded += u64::from(rec.degraded);
                run.torn_tails += u64::from(rec.truncated);
                run.incidents.extend(rec.incidents);
                build = rec.build;
                resume = Some(rec.resume);
            }
        }
    }

    // Post-run oracles over the durable image and the final live state.
    let replay = journal.replay();
    run.journal_records = replay.records.len() as u64;
    run.journal_bytes = journal.durable_len() as u64;
    run.final_state = Some(project(&replay.records));
    if let Some(rep) = &run.final_report {
        // Oracle 2 (durable half): epoch advances strictly increase.
        let mut prev: Option<u64> = None;
        for r in &replay.records {
            if let JournalRecord::EpochAdvance { epoch, .. } = r {
                if prev.is_some_and(|p| *epoch <= p) {
                    run.violations.push(format!(
                        "oracle2/journal-epochs: advance to {epoch} after {}",
                        prev.unwrap()
                    ));
                }
                prev = Some(*epoch);
            }
        }
        // Oracle 3: bounded unavailability — each crash costs at most
        // one extra segment, and the final epoch was journaled.
        if run.segments > run.crashes + 1 {
            run.violations.push(format!(
                "oracle3/bounded-unavailability: {} segments for {} crashes",
                run.segments, run.crashes
            ));
        }
        if sup.epochs > 0 && prev != Some(sup.epochs - 1) {
            run.violations.push(format!(
                "oracle3/bounded-unavailability: last journaled epoch {prev:?}, expected {}",
                sup.epochs - 1
            ));
        }
        // Oracle 4: at a clean shutdown the journal projection *is* the
        // live state.
        let st = project(&replay.records);
        if replay.torn_tail {
            run.violations
                .push("oracle4/state-equality: torn tail after clean shutdown".into());
        }
        match st.deploy {
            Some((fp, rung, _)) => {
                if rung != rep.final_rung {
                    run.violations.push(format!(
                        "oracle4/state-equality: journal rung {rung}, live {}",
                        rep.final_rung
                    ));
                }
                match journal.get_build(fp) {
                    // The corrupt-artifacts hook deliberately desyncs
                    // stored artifacts from their fingerprints; skip the
                    // identity check under it.
                    Some(sb) if opts.corrupt_artifacts.is_none() => {
                        if sb.prog.fingerprint() != fp {
                            run.violations.push(
                                "oracle4/state-equality: deployed artifact does not match its fingerprint"
                                    .into(),
                            );
                        }
                    }
                    Some(_) => {}
                    None => run.violations.push(
                        "oracle4/state-equality: journal points at a missing artifact".into(),
                    ),
                }
            }
            None => run
                .violations
                .push("oracle4/state-equality: no durable deploy record".into()),
        }
        if st.breaker != rep.breaker {
            run.violations.push(format!(
                "oracle4/state-equality: journal breaker {:?}, live {:?}",
                st.breaker, rep.breaker
            ));
        }
        if st.failures != rep.rebuild_failures {
            run.violations.push(format!(
                "oracle4/state-equality: journal failures {}, live {}",
                st.failures, rep.rebuild_failures
            ));
        }
        let journal_budget = st
            .scav_budget
            .map_or(sup.scavengers, |b| (b as usize).min(sup.scavengers));
        if journal_budget != rep.scav_budget_final {
            run.violations.push(format!(
                "oracle4/state-equality: journal scavenger budget {journal_budget}, live {}",
                rep.scav_budget_final
            ));
        }
        // Oracle 5: breaker-open implies scavenger-only-or-lower.
        if rep.breaker == BreakerState::Open && rep.final_rung == Rung::FullPgo {
            run.violations
                .push("oracle5/breaker-rung: breaker open with a full-PGO build serving".into());
        }
        if st.breaker == BreakerState::Open {
            if let Some((_, rung, _)) = st.deploy {
                if rung == Rung::FullPgo {
                    run.violations.push(
                        "oracle5/breaker-rung: journal records breaker open over full-PGO".into(),
                    );
                }
            }
        }
    }

    run.incident_hash = incidents_hash(&run.incidents);
    Ok(run)
}

/// Draws one randomized schedule. Arming probabilities are tuned so
/// most schedules mix a crash with one or two fault classes — the
/// regime the recovery path must survive.
pub fn random_schedule(rng: &mut SplitMix64) -> ChaosSchedule {
    let mut plan = FaultPlan::none(rng.next_u64());
    if rng.next_f64() < 0.30 {
        plan = plan.with_pebs_drop(0.1 + 0.4 * rng.next_f64());
    }
    if rng.next_f64() < 0.20 {
        plan = plan.with_pebs_extra_skid(1 + rng.next_below(8) as u32);
    }
    if rng.next_f64() < 0.20 {
        plan = plan.with_pebs_pc_corrupt(0.1 + 0.3 * rng.next_f64(), 2 + rng.next_below(8) as u32);
    }
    if rng.next_f64() < 0.20 {
        plan = plan.with_lbr_drop(0.2 + 0.5 * rng.next_f64());
    }
    if rng.next_f64() < 0.20 {
        plan =
            plan.with_prefetch_corrupt(0.2 + 0.5 * rng.next_f64(), 4 + rng.next_below(12) as u32);
    }
    if rng.next_f64() < 0.15 {
        plan = plan.with_trap_every(20_000 + rng.next_below(80_000));
    }
    if rng.next_f64() < 0.50 {
        plan = plan.with_torn_write(0.3 + 0.7 * rng.next_f64());
    }
    if rng.next_f64() < 0.35 {
        plan = plan.with_partial_flush(0.2 + 0.5 * rng.next_f64());
    }
    let n_crashes = match rng.next_below(8) {
        0 => 0,
        1..=4 => 1,
        5 | 6 => 2,
        _ => 3,
    } as usize;
    let crashes = (0..n_crashes).map(|_| 1 + rng.next_below(24)).collect();
    ChaosSchedule {
        plan,
        crashes,
        stale_rebuilds: rng.next_f64() < 0.25,
        runaway: rng.next_f64() < 0.25,
    }
}

/// Aggregate outcome of a campaign batch.
#[derive(Clone, Debug, Default)]
pub struct CampaignReport {
    /// Schedules executed.
    pub campaigns: u64,
    /// Schedules with at least one oracle violation.
    pub violating: u64,
    /// Every violating schedule with its violations, in campaign order.
    pub violations: Vec<(ChaosSchedule, Vec<String>)>,
    /// Crashes injected across all campaigns.
    pub crashes: u64,
    /// Supervision segments across all campaigns.
    pub segments: u64,
    /// Degraded recoveries across all campaigns.
    pub recoveries_degraded: u64,
    /// Torn journal tails detected across all campaigns.
    pub torn_tails: u64,
    /// Jobs served across all campaigns.
    pub served: u64,
    /// Jobs shed across all campaigns.
    pub shed_jobs: u64,
    /// Hot swaps across all campaigns.
    pub swaps: u64,
    /// Rebuild attempts across all campaigns.
    pub rebuilds: u64,
    /// Records in the final durable journals, summed.
    pub journal_records: u64,
    /// Host wall-clock nanoseconds spent recovering, summed
    /// (informational; see [`ScheduleRun::recovery_host_ns`]).
    pub recovery_host_ns: u64,
    /// Order-sensitive fold of every campaign's cross-restart incident
    /// hash — one number that certifies the whole batch replayed
    /// bit-for-bit.
    pub xr_hash: u64,
}

/// Runs `n` seed-derived random schedules and aggregates. Campaign `i`
/// of seed `s` is identical across processes and reruns.
pub fn run_campaigns(
    factory: &mut dyn FnMut(&ChaosSchedule) -> ChaosWorld,
    n: u64,
    seed: u64,
    opts: &ChaosOptions,
) -> Result<CampaignReport, ChaosConfigError> {
    let mut rng = SplitMix64::new(seed ^ 0xC4A0_5EED);
    let mut rep = CampaignReport::default();
    for _ in 0..n {
        let schedule = random_schedule(&mut rng);
        let run = run_schedule(factory, &schedule, opts)?;
        rep.campaigns += 1;
        rep.crashes += run.crashes;
        rep.segments += run.segments;
        rep.recoveries_degraded += run.recoveries_degraded;
        rep.torn_tails += run.torn_tails;
        rep.served += run.served;
        rep.shed_jobs += run.shed_jobs;
        rep.swaps += run.swaps;
        rep.rebuilds += run.rebuilds;
        rep.journal_records += run.journal_records;
        rep.recovery_host_ns += run.recovery_host_ns;
        rep.xr_hash = mix(rep.xr_hash, run.incident_hash);
        if !run.violations.is_empty() {
            rep.violating += 1;
            rep.violations.push((schedule, run.violations));
        }
    }
    Ok(rep)
}

/// Greedily shrinks a violating schedule: drop crashes, zero channels,
/// clear workload classes, bisect crash instants toward 1 — keeping
/// each transformation only if the schedule still violates — until a
/// fixpoint or the trial `budget` is exhausted. Returns the minimal
/// schedule and the trials spent.
pub fn minimize(
    factory: &mut dyn FnMut(&ChaosSchedule) -> ChaosWorld,
    schedule: &ChaosSchedule,
    opts: &ChaosOptions,
    budget: u64,
) -> Result<(ChaosSchedule, u64), ChaosConfigError> {
    if schedule.runaway && opts.sup.dual.watchdog.is_none() {
        return Err(ChaosConfigError::RunawayWithoutWatchdog);
    }
    let mut best = schedule.clone();
    let mut trials = 0u64;
    let clears: [fn(&mut ChaosSchedule); 10] = [
        |s| s.stale_rebuilds = false,
        |s| s.runaway = false,
        |s| s.plan.pebs_drop = 0.0,
        |s| s.plan.pebs_extra_skid = 0,
        |s| s.plan.pebs_pc_corrupt = 0.0,
        |s| s.plan.lbr_drop = 0.0,
        |s| s.plan.prefetch_corrupt = 0.0,
        |s| s.plan.trap_every = None,
        |s| s.plan.torn_write = 0.0,
        |s| s.plan.partial_flush = 0.0,
    ];
    loop {
        let mut improved = false;
        // Drop whole crashes, last first (later crashes are most often
        // irrelevant to an early violation).
        let mut i = best.crashes.len();
        while i > 0 {
            i -= 1;
            if trials >= budget {
                return Ok((best, trials));
            }
            let mut cand = best.clone();
            cand.crashes.remove(i);
            trials += 1;
            if !run_schedule(&mut *factory, &cand, opts)?
                .violations
                .is_empty()
            {
                best = cand;
                improved = true;
            }
        }
        // Zero each armed channel / workload class.
        for clear in clears {
            let mut cand = best.clone();
            clear(&mut cand);
            if cand == best {
                continue;
            }
            if trials >= budget {
                return Ok((best, trials));
            }
            trials += 1;
            if !run_schedule(&mut *factory, &cand, opts)?
                .violations
                .is_empty()
            {
                best = cand;
                improved = true;
            }
        }
        // Bisect each surviving crash instant toward 1.
        for i in 0..best.crashes.len() {
            while best.crashes[i] > 1 {
                if trials >= budget {
                    return Ok((best, trials));
                }
                let mut cand = best.clone();
                cand.crashes[i] /= 2;
                trials += 1;
                if !run_schedule(&mut *factory, &cand, opts)?
                    .violations
                    .is_empty()
                {
                    best = cand;
                    improved = true;
                } else {
                    break;
                }
            }
        }
        if !improved {
            return Ok((best, trials));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degrade::{pgo_pipeline_degrading, DegradeOptions};
    use reach_profile::{OnlineEstimatorOptions, Periods};
    use reach_sim::{AluOp, Cond, Context, Inst, MachineConfig, ProgramBuilder, Reg};
    use reach_workloads::{build_zipf_kv, AddrAlloc, InstanceSetup, ZipfKvParams};

    const LOOKUPS: u64 = 1024;

    /// The same drift-prone zipf-KV service the supervisor tests run:
    /// the deployed profile was built against a uniform distribution,
    /// live traffic is heavily skewed, so staleness trips a rebuild a
    /// few epochs in — giving crash points plenty of loop stages to
    /// land in.
    struct ChaosService {
        live: Vec<InstanceSetup>,
        cursor: usize,
        prof_live: Vec<InstanceSetup>,
        prof_cursor: usize,
        runaway: Option<Program>,
    }

    impl ServiceWorkload for ChaosService {
        fn arrivals(&mut self, _epoch: u64) -> usize {
            1
        }
        fn primary_context(&mut self, _job: u64) -> Context {
            let i = self.cursor;
            self.cursor += 1;
            self.live[i % self.live.len()].make_context(1_000 + i)
        }
        fn scavenger_context(&mut self, _epoch: u64, _job: u64, _slot: usize) -> Context {
            let i = self.cursor;
            self.cursor += 1;
            self.live[i % self.live.len()].make_context(1_000 + i)
        }
        fn scavenger_program(&mut self, epoch: u64) -> Option<Program> {
            let prog = self.runaway.as_ref()?;
            (2..5).contains(&epoch).then(|| prog.clone())
        }
        fn profiling_contexts(&mut self, _attempt: u32) -> Vec<Context> {
            let n = self.prof_live.len();
            (0..2)
                .map(|_| {
                    let i = self.prof_cursor;
                    self.prof_cursor += 1;
                    self.prof_live[i % n].make_context(9_000 + i)
                })
                .collect()
        }
    }

    fn runaway_prog() -> Program {
        let mut b = ProgramBuilder::new("runaway");
        b.imm(Reg(1), 1);
        let top = b.label();
        b.bind(top);
        b.alu(AluOp::Add, Reg(2), Reg(2), Reg(1), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        b.finish().unwrap()
    }

    fn fast_degrade() -> DegradeOptions {
        let mut d = DegradeOptions::default();
        d.pipeline.collector.periods = Periods {
            l2_miss: 13,
            l3_miss: 13,
            stall: 13,
            retired: 13,
        };
        d
    }

    fn drift_world(schedule: &ChaosSchedule) -> ChaosWorld {
        let mut m = Machine::new(MachineConfig::default());
        let mut alloc = AddrAlloc::new(0x800_0000);
        let params = |theta: f64, seed: u64| ZipfKvParams {
            table_entries: 1 << 15,
            lookups: LOOKUPS,
            theta,
            seed,
        };
        let live = build_zipf_kv(&mut m.mem, &mut alloc, params(3.0, 13), 56);
        let stale = build_zipf_kv(&mut m.mem, &mut alloc, params(0.0, 11), 8);
        let prof = build_zipf_kv(&mut m.mem, &mut alloc, params(3.0, 17), 12);
        let orig = live.prog.clone();
        let svc = ChaosService {
            live: live.instances,
            cursor: 0,
            prof_live: prof.instances,
            prof_cursor: 0,
            runaway: schedule.runaway.then(runaway_prog),
        };
        // Initial deployment is built against the *stale* distribution,
        // so live traffic reads as drifted and rebuilds actually fire.
        let built = pgo_pipeline_degrading(
            &mut m,
            &orig,
            |a| {
                let n = stale.instances.len();
                (0..2)
                    .map(|k| {
                        let i = 2 * a as usize + k;
                        stale.instances[i % n].make_context(9_500 + i)
                    })
                    .collect()
            },
            &fast_degrade(),
        );
        assert_eq!(built.rung, Rung::FullPgo, "{:?}", built.reasons);
        ChaosWorld {
            machine: m,
            workload: Box::new(svc),
            original: orig,
            initial: DeployedBuild::from(built),
        }
    }

    fn chaos_opts() -> ChaosOptions {
        ChaosOptions::new(SupervisorOptions {
            epochs: 10,
            service_per_epoch: 1,
            scavengers: 2,
            insitu_period: 31,
            estimator: OnlineEstimatorOptions {
                window: 2048,
                min_samples: 8,
            },
            staleness_threshold: 0.6,
            seed: 42,
            degrade: fast_degrade(),
            // A runaway scavenger without a watchdog gets an unbounded
            // slice: random schedules arm the runaway class, so the
            // slices must be bounded for campaigns to terminate.
            dual: crate::dualmode::DualModeOptions {
                drain_scavengers: false,
                isolate_faults: true,
                watchdog: Some(crate::dualmode::WatchdogOptions {
                    slice_steps: 2_000,
                    overrun_cycles: 500,
                    max_overruns: u32::MAX,
                    ..crate::dualmode::WatchdogOptions::default()
                }),
                ..crate::dualmode::DualModeOptions::default()
            },
            ..SupervisorOptions::default()
        })
    }

    #[test]
    fn crash_heavy_schedule_survives_with_zero_violations() {
        let schedule = ChaosSchedule {
            plan: FaultPlan::none(0xBEEF)
                .with_torn_write(0.6)
                .with_partial_flush(0.4),
            crashes: vec![4, 3],
            stale_rebuilds: false,
            runaway: false,
        };
        let run = run_schedule(&mut drift_world, &schedule, &chaos_opts()).unwrap();
        assert_eq!(run.violations, Vec::<String>::new());
        assert_eq!(run.crashes, 2);
        assert_eq!(run.segments, 3);
        assert!(run.final_report.is_some());
        assert!(run.journal_records > 0);
        // Same schedule, fresh world: the cross-restart incident log
        // replays bit-for-bit.
        let again = run_schedule(&mut drift_world, &schedule, &chaos_opts()).unwrap();
        assert_eq!(run.incident_hash, again.incident_hash);
        assert_eq!(run.served, again.served);
        assert_eq!(run.journal_records, again.journal_records);
    }

    #[test]
    fn random_campaigns_find_no_violations_in_correct_recovery() {
        let rep = run_campaigns(&mut drift_world, 4, 7, &chaos_opts()).unwrap();
        assert_eq!(rep.campaigns, 4);
        assert_eq!(rep.violating, 0, "{:?}", rep.violations);
        assert!(rep.served > 0);
    }

    /// The acceptance demo: a recovery path that skips re-validation
    /// (the `revalidate: false` hook) serves a bit-rotted artifact, the
    /// campaign oracles catch it, and the shrinker reduces the schedule
    /// to a ≤3-event repro.
    #[test]
    fn broken_recovery_is_caught_and_minimized_to_a_tiny_repro() {
        let mut opts = chaos_opts();
        opts.recover.revalidate = false;
        // Clobber every yield's save set: the liveness-derived register
        // saves are what the symbolic-equivalence gate certifies, so
        // this is real bit-rot the gates must refuse.
        opts.corrupt_artifacts = Some(|b: &mut StoredBuild| {
            for inst in &mut b.prog.insts {
                if let Inst::Yield { save_regs, .. } = inst {
                    *save_regs = Some(0);
                }
            }
        });
        let noisy = ChaosSchedule {
            plan: FaultPlan::none(0x51AB)
                .with_torn_write(0.5)
                .with_lbr_drop(0.4),
            crashes: vec![6],
            stale_rebuilds: true,
            runaway: false,
        };
        assert_eq!(noisy.event_count(), 4);
        let run = run_schedule(&mut drift_world, &noisy, &opts).unwrap();
        assert!(
            run.violations.iter().any(|v| v.contains("oracle1")),
            "broken recovery not caught: {:?}",
            run.violations
        );
        let (minimal, trials) = minimize(&mut drift_world, &noisy, &opts, 64).unwrap();
        assert!(trials > 0);
        assert!(
            minimal.event_count() <= 3,
            "not minimal: {} events, {}",
            minimal.event_count(),
            minimal.repro()
        );
        assert!(!minimal.crashes.is_empty(), "a crash is load-bearing here");
        // The minimal schedule still reproduces, and its repro string is
        // the real constructor chain.
        let rerun = run_schedule(&mut drift_world, &minimal, &opts).unwrap();
        assert!(rerun.violations.iter().any(|v| v.contains("oracle1")));
        assert!(
            minimal.repro().starts_with("ChaosSchedule {"),
            "{}",
            minimal.repro()
        );
        // With re-validation restored, the very same corruption is
        // degraded around instead of served.
        let fixed = ChaosOptions {
            recover: RecoverOptions { revalidate: true },
            ..opts
        };
        let healed = run_schedule(&mut drift_world, &minimal, &fixed).unwrap();
        assert_eq!(healed.violations, Vec::<String>::new());
        assert!(healed.recoveries_degraded >= 1);
    }

    #[test]
    fn runaway_schedule_without_watchdog_is_a_typed_error() {
        // The documented footgun: a runaway arm with no watchdog pins
        // every scavenger slice until the unwatched-step cap — an
        // effective hang. The engine must refuse the configuration
        // up front instead of spinning.
        let mut opts = chaos_opts();
        opts.sup.dual.watchdog = None;
        let schedule = ChaosSchedule {
            runaway: true,
            ..ChaosSchedule::quiet(3)
        };
        let err = run_schedule(&mut drift_world, &schedule, &opts).unwrap_err();
        assert_eq!(err, ChaosConfigError::RunawayWithoutWatchdog);
        // The same guard protects the shrinker's re-runs.
        let err = minimize(&mut drift_world, &schedule, &opts, 8).unwrap_err();
        assert_eq!(err, ChaosConfigError::RunawayWithoutWatchdog);
        // With the watchdog armed the identical schedule is accepted.
        let run = run_schedule(&mut drift_world, &schedule, &chaos_opts()).unwrap();
        assert_eq!(run.violations, Vec::<String>::new());
        // Supervisor-level validation still surfaces, wrapped.
        let mut bad = chaos_opts();
        bad.sup.max_rebuild_failures = 0;
        let err = run_schedule(&mut drift_world, &ChaosSchedule::quiet(1), &bad).unwrap_err();
        assert!(matches!(err, ChaosConfigError::Supervisor(_)));
    }

    #[test]
    fn event_count_and_repro_track_armed_channels() {
        let mut s = ChaosSchedule::quiet(9);
        assert_eq!(s.event_count(), 0);
        assert_eq!(
            s.repro(),
            "ChaosSchedule { plan: FaultPlan::none(0x9), crashes: vec![], \
             stale_rebuilds: false, runaway: false }"
        );
        s.plan = s.plan.with_torn_write(0.5).with_trap_every(100);
        s.crashes = vec![3, 9];
        s.stale_rebuilds = true;
        assert_eq!(s.event_count(), 5);
        let r = s.repro();
        assert!(r.contains(".with_torn_write(0.5)"), "{r}");
        assert!(r.contains(".with_trap_every(100)"), "{r}");
        assert!(r.contains("crashes: vec![3, 9]"), "{r}");
        assert!(!r.contains("with_lbr_drop"), "{r}");
    }
}

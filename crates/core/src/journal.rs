//! The supervisor's simulated durable store: a write-ahead journal plus
//! an atomic build-artifact store, with crash semantics the fault
//! harness can corrupt.
//!
//! The self-healing loop ([`crate::supervisor`]) is only as trustworthy
//! as its memory of what it deployed. This module gives it one: every
//! decision that must survive a restart — epoch advances, deploys (build
//! fingerprint + ladder rung), circuit-breaker transitions, shed /
//! probation budget — is appended as a checksummed [`JournalRecord`]
//! *before* the corresponding in-memory transition takes effect
//! (write-ahead ordering). Deployable binaries themselves go through the
//! content-addressed artifact store, which models an atomically-renamed
//! file: present in full or absent, never torn.
//!
//! The journal byte image, by contrast, fails the way real WALs fail,
//! driven by the [`FaultInjector`]'s journal channels:
//!
//! * **partial flush** — an append may stay in the volatile write buffer
//!   ([`Journal::append`] consults [`FaultInjector::partial_flush`]);
//!   a later flushed append or a clean [`Journal::flush`] lands it, a
//!   [`Journal::crash`] loses it.
//! * **torn write** — at crash time the *tail* record of the durable
//!   image may be cut mid-record ([`FaultInjector::torn_cut`]), the
//!   classic lying-`fsync`. A crash that lands mid-append
//!   ([`Journal::crash_during_append`]) always leaves at most a torn
//!   prefix of the record being written.
//!
//! Recovery reads the image back with [`Journal::replay`]: records are
//! length-prefixed and FNV-1a-checksummed, so a torn tail is *detected*
//! (checksum or framing failure) and everything before it is trusted;
//! [`Journal::repair`] then truncates the image back to the last valid
//! record boundary, exactly like WAL repair on restart. [`project`]
//! folds a replayed record sequence into the [`JournalState`] the
//! supervisor resumes from — and, at a clean shutdown, the same fold is
//! the oracle the chaos engine compares against live state.

use crate::degrade::Rung;
use crate::supervisor::BreakerState;
use reach_profile::Profile;
use reach_sim::{FaultInjector, Program};

/// One durable supervisor decision, in write-ahead order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JournalRecord {
    /// The supervisor is about to serve `epoch`; `next_job` is the next
    /// global job number to admit.
    EpochAdvance {
        /// Epoch about to be served.
        epoch: u64,
        /// Next global job number at that instant.
        next_job: u64,
    },
    /// A build is about to start serving traffic.
    Deploy {
        /// Epoch of the deployment decision.
        epoch: u64,
        /// Ladder rung of the deployed build.
        rung: Rung,
        /// [`Program::fingerprint`] of the deployed binary — the key
        /// into the artifact store.
        fingerprint: u64,
    },
    /// The circuit breaker changed state.
    Breaker {
        /// Epoch of the transition.
        epoch: u64,
        /// New breaker state.
        state: BreakerState,
        /// Consecutive rebuild failures at that instant.
        failures: u32,
    },
    /// The scavenger budget changed (shed or probation restore).
    ScavBudget {
        /// Epoch of the change.
        epoch: u64,
        /// New pool budget.
        budget: u64,
        /// Clean-probation streak at that instant.
        clean_streak: u64,
    },
}

const TAG_EPOCH: u8 = 1;
const TAG_DEPLOY: u8 = 2;
const TAG_BREAKER: u8 = 3;
const TAG_SCAV: u8 = 4;

fn rung_code(r: Rung) -> u64 {
    match r {
        Rung::FullPgo => 0,
        Rung::ScavengerOnly => 1,
        Rung::Uninstrumented => 2,
    }
}

fn rung_decode(c: u64) -> Option<Rung> {
    match c {
        0 => Some(Rung::FullPgo),
        1 => Some(Rung::ScavengerOnly),
        2 => Some(Rung::Uninstrumented),
        _ => None,
    }
}

fn breaker_code(b: BreakerState) -> (u64, u64) {
    match b {
        BreakerState::Closed => (0, 0),
        BreakerState::Backoff { until_epoch } => (1, until_epoch),
        BreakerState::Open => (2, 0),
    }
}

fn breaker_decode(code: u64, until: u64) -> Option<BreakerState> {
    match code {
        0 => Some(BreakerState::Closed),
        1 => Some(BreakerState::Backoff { until_epoch: until }),
        2 => Some(BreakerState::Open),
        _ => None,
    }
}

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl JournalRecord {
    /// Wire form: `len:u16 | tag:u8 | fields:u64×n | fnv1a(tag..fields):u64`,
    /// all little-endian. `len` covers `tag..fields`.
    fn encode(&self) -> Vec<u8> {
        let (tag, fields): (u8, Vec<u64>) = match *self {
            JournalRecord::EpochAdvance { epoch, next_job } => (TAG_EPOCH, vec![epoch, next_job]),
            JournalRecord::Deploy {
                epoch,
                rung,
                fingerprint,
            } => (TAG_DEPLOY, vec![epoch, rung_code(rung), fingerprint]),
            JournalRecord::Breaker {
                epoch,
                state,
                failures,
            } => {
                let (code, until) = breaker_code(state);
                (TAG_BREAKER, vec![epoch, code, until, u64::from(failures)])
            }
            JournalRecord::ScavBudget {
                epoch,
                budget,
                clean_streak,
            } => (TAG_SCAV, vec![epoch, budget, clean_streak]),
        };
        let mut body = vec![tag];
        for f in &fields {
            body.extend_from_slice(&f.to_le_bytes());
        }
        let mut out = Vec::with_capacity(2 + body.len() + 8);
        out.extend_from_slice(&(body.len() as u16).to_le_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&fnv1a(&body).to_le_bytes());
        out
    }

    /// Decodes one checksum-verified body (`tag..fields`).
    fn decode(body: &[u8]) -> Option<JournalRecord> {
        let (&tag, mut rest) = body.split_first()?;
        if rest.len() % 8 != 0 {
            return None;
        }
        let mut fields = Vec::with_capacity(rest.len() / 8);
        while !rest.is_empty() {
            let (word, tail) = rest.split_at(8);
            fields.push(u64::from_le_bytes(word.try_into().ok()?));
            rest = tail;
        }
        match (tag, fields.as_slice()) {
            (TAG_EPOCH, &[epoch, next_job]) => {
                Some(JournalRecord::EpochAdvance { epoch, next_job })
            }
            (TAG_DEPLOY, &[epoch, rung, fingerprint]) => Some(JournalRecord::Deploy {
                epoch,
                rung: rung_decode(rung)?,
                fingerprint,
            }),
            (TAG_BREAKER, &[epoch, code, until, failures]) => Some(JournalRecord::Breaker {
                epoch,
                state: breaker_decode(code, until)?,
                failures: u32::try_from(failures).ok()?,
            }),
            (TAG_SCAV, &[epoch, budget, clean_streak]) => Some(JournalRecord::ScavBudget {
                epoch,
                budget,
                clean_streak,
            }),
            _ => None,
        }
    }
}

/// A deployable binary in the artifact store — everything
/// [`crate::supervisor::DeployedBuild`] carries.
#[derive(Clone, Debug)]
pub struct StoredBuild {
    /// The (possibly instrumented) program.
    pub prog: Program,
    /// Its origin map back to original PC space.
    pub origin: Vec<Option<usize>>,
    /// The ladder rung it represents.
    pub rung: Rung,
    /// The profile it was built from, when full-PGO.
    pub profile: Option<Profile>,
}

/// Counters for what the store did and lost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended (durable or buffered).
    pub appends: u64,
    /// Appends held back in the volatile buffer by the partial-flush
    /// fault channel.
    pub deferred_flushes: u64,
    /// Buffered records dropped by crashes.
    pub records_lost_at_crash: u64,
    /// Crashes that tore the durable tail record.
    pub torn_at_crash: u64,
    /// Bytes cut off by [`Journal::repair`].
    pub repair_truncated_bytes: u64,
}

/// What [`Journal::replay`] read back.
#[derive(Clone, Debug)]
pub struct Replay {
    /// Every valid record, in append order.
    pub records: Vec<JournalRecord>,
    /// Byte length of the valid prefix of the durable image.
    pub valid_bytes: usize,
    /// True when trailing garbage (a torn record) follows the valid
    /// prefix.
    pub torn_tail: bool,
}

/// The supervisor state a replayed journal projects to — what recovery
/// resumes from, and what the chaos oracles compare against live state
/// at a clean shutdown.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalState {
    /// Last journaled epoch advance, if any.
    pub epoch: Option<u64>,
    /// Next global job number as of that advance.
    pub next_job: u64,
    /// Last journaled deployment: `(fingerprint, rung, epoch)`.
    pub deploy: Option<(u64, Rung, u64)>,
    /// Breaker state as of the last journaled transition.
    pub breaker: BreakerState,
    /// Consecutive rebuild failures at that transition.
    pub failures: u32,
    /// Scavenger budget as of the last journaled change (`None` = never
    /// changed from the configured pool size).
    pub scav_budget: Option<u64>,
    /// Clean-probation streak at that change.
    pub clean_streak: u64,
}

/// Folds a replayed record sequence into the state it describes.
pub fn project(records: &[JournalRecord]) -> JournalState {
    let mut st = JournalState {
        epoch: None,
        next_job: 0,
        deploy: None,
        breaker: BreakerState::Closed,
        failures: 0,
        scav_budget: None,
        clean_streak: 0,
    };
    for r in records {
        match *r {
            JournalRecord::EpochAdvance { epoch, next_job } => {
                st.epoch = Some(epoch);
                st.next_job = next_job;
            }
            JournalRecord::Deploy {
                epoch,
                rung,
                fingerprint,
            } => st.deploy = Some((fingerprint, rung, epoch)),
            JournalRecord::Breaker {
                state, failures, ..
            } => {
                st.breaker = state;
                st.failures = failures;
            }
            JournalRecord::ScavBudget {
                budget,
                clean_streak,
                ..
            } => {
                st.scav_budget = Some(budget);
                st.clean_streak = clean_streak;
            }
        }
    }
    st
}

/// The simulated durable store: journal byte image + write buffer +
/// artifact store. Survives [`crate::supervisor`] restarts by living
/// outside them (the chaos engine owns it across crash segments).
#[derive(Clone, Debug, Default)]
pub struct Journal {
    durable: Vec<u8>,
    /// Byte offset where the last durably-written record starts — the
    /// only record a torn write can damage.
    last_start: usize,
    buffered: Vec<Vec<u8>>,
    builds: Vec<(u64, StoredBuild)>,
    /// Counters for appends, deferrals, and crash losses.
    pub stats: JournalStats,
}

impl Journal {
    /// An empty store.
    pub fn new() -> Self {
        Journal::default()
    }

    /// True when nothing has ever been durably written.
    pub fn is_empty(&self) -> bool {
        self.durable.is_empty() && self.buffered.is_empty()
    }

    /// Byte length of the durable journal image.
    pub fn durable_len(&self) -> usize {
        self.durable.len()
    }

    /// Appends one record. Without faults the append is write-through;
    /// the partial-flush channel may instead hold it (and nothing after
    /// it) in the volatile buffer until the next flushed append, a clean
    /// [`Journal::flush`], or a crash.
    pub fn append(&mut self, rec: &JournalRecord, faults: Option<&mut FaultInjector>) {
        self.stats.appends += 1;
        let bytes = rec.encode();
        if faults.is_some_and(|f| f.partial_flush()) {
            self.stats.deferred_flushes += 1;
            self.buffered.push(bytes);
            return;
        }
        self.buffered.push(bytes);
        self.flush();
    }

    /// Flushes the volatile buffer to the durable image (clean-shutdown
    /// and write-through path).
    pub fn flush(&mut self) {
        for rec in self.buffered.drain(..) {
            self.last_start = self.durable.len();
            self.durable.extend_from_slice(&rec);
        }
    }

    /// A crash between appends: buffered records are lost, and the
    /// torn-write channel may cut the durable tail record mid-bytes.
    pub fn crash(&mut self, faults: Option<&mut FaultInjector>) {
        self.stats.records_lost_at_crash += self.buffered.len() as u64;
        self.buffered.clear();
        let tail = self.durable.len() - self.last_start;
        if let Some(cut) = faults.and_then(|f| f.torn_cut(tail)) {
            self.durable.truncate(self.last_start + cut);
            self.stats.torn_at_crash += 1;
        }
    }

    /// A crash landing *inside* the append of `rec`: buffered records
    /// are lost and at most a torn prefix of `rec` reaches the durable
    /// image (nothing at all when the torn-write channel stays quiet).
    pub fn crash_during_append(&mut self, rec: &JournalRecord, faults: Option<&mut FaultInjector>) {
        self.stats.appends += 1;
        self.stats.records_lost_at_crash += 1 + self.buffered.len() as u64;
        self.buffered.clear();
        let bytes = rec.encode();
        if let Some(mut cut) = faults.and_then(|f| f.torn_cut(bytes.len())) {
            // A full-length "tear" would be a completed write; clamp to
            // a strict prefix.
            cut = cut.min(bytes.len() - 1);
            self.durable.extend_from_slice(&bytes[..cut]);
            self.stats.torn_at_crash += 1;
        }
    }

    /// Reads the durable image back, stopping at the first framing or
    /// checksum failure. Does not modify the image.
    pub fn replay(&self) -> Replay {
        let mut records = Vec::new();
        let mut off = 0usize;
        while let Some(len_bytes) = self.durable.get(off..off + 2) {
            let len = u16::from_le_bytes(len_bytes.try_into().unwrap()) as usize;
            if len == 0 {
                break;
            }
            let Some(body) = self.durable.get(off + 2..off + 2 + len) else {
                break;
            };
            let Some(sum) = self.durable.get(off + 2 + len..off + 2 + len + 8) else {
                break;
            };
            if u64::from_le_bytes(sum.try_into().unwrap()) != fnv1a(body) {
                break;
            }
            let Some(rec) = JournalRecord::decode(body) else {
                break;
            };
            records.push(rec);
            off += 2 + len + 8;
        }
        Replay {
            records,
            valid_bytes: off,
            torn_tail: off < self.durable.len(),
        }
    }

    /// WAL repair on restart: truncates the durable image to its valid
    /// prefix, discards the volatile buffer, and returns the replay.
    pub fn repair(&mut self) -> Replay {
        let rep = self.replay();
        self.stats.repair_truncated_bytes += (self.durable.len() - rep.valid_bytes) as u64;
        self.durable.truncate(rep.valid_bytes);
        // Re-derive the last record start so a later crash tears at a
        // record boundary, not at the repair point.
        let mut off = 0usize;
        self.last_start = 0;
        for r in &rep.records {
            self.last_start = off;
            off += r.encode().len();
        }
        self.buffered.clear();
        rep
    }

    /// Stores a build artifact under its fingerprint — atomic
    /// (rename-into-place): never torn, replaces any previous artifact
    /// with the same fingerprint.
    pub fn store_build(&mut self, fingerprint: u64, build: StoredBuild) {
        if let Some(slot) = self.builds.iter_mut().find(|(fp, _)| *fp == fingerprint) {
            slot.1 = build;
        } else {
            self.builds.push((fingerprint, build));
        }
    }

    /// Looks an artifact up by fingerprint.
    pub fn get_build(&self, fingerprint: u64) -> Option<&StoredBuild> {
        self.builds
            .iter()
            .find(|(fp, _)| *fp == fingerprint)
            .map(|(_, b)| b)
    }

    /// Test hook: bit-rots a stored artifact in place (the chaos
    /// engine's broken-recovery scenarios corrupt the artifact the
    /// journal points at, then check the recovery gates catch it).
    pub fn mutate_build(&mut self, fingerprint: u64, f: impl FnOnce(&mut StoredBuild)) -> bool {
        if let Some(slot) = self.builds.iter_mut().find(|(fp, _)| *fp == fingerprint) {
            f(&mut slot.1);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::FaultPlan;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Deploy {
                epoch: 0,
                rung: Rung::FullPgo,
                fingerprint: 0xDEAD_BEEF,
            },
            JournalRecord::EpochAdvance {
                epoch: 0,
                next_job: 0,
            },
            JournalRecord::Breaker {
                epoch: 3,
                state: BreakerState::Backoff { until_epoch: 7 },
                failures: 2,
            },
            JournalRecord::ScavBudget {
                epoch: 4,
                budget: 1,
                clean_streak: 0,
            },
            JournalRecord::EpochAdvance {
                epoch: 5,
                next_job: 6,
            },
        ]
    }

    #[test]
    fn append_replay_roundtrips_every_record_kind() {
        let mut j = Journal::new();
        for r in sample_records() {
            j.append(&r, None);
        }
        let rep = j.replay();
        assert!(!rep.torn_tail);
        assert_eq!(rep.valid_bytes, j.durable_len());
        assert_eq!(rep.records, sample_records());
        let st = project(&rep.records);
        assert_eq!(st.epoch, Some(5));
        assert_eq!(st.next_job, 6);
        assert_eq!(st.deploy, Some((0xDEAD_BEEF, Rung::FullPgo, 0)));
        assert_eq!(st.breaker, BreakerState::Backoff { until_epoch: 7 });
        assert_eq!(st.failures, 2);
        assert_eq!(st.scav_budget, Some(1));
    }

    #[test]
    fn torn_tail_is_detected_and_repaired_to_last_valid_record() {
        let mut j = Journal::new();
        for r in sample_records() {
            j.append(&r, None);
        }
        let mut fi = FaultInjector::new(FaultPlan::none(3).with_torn_write(1.0));
        j.crash(Some(&mut fi));
        assert_eq!(j.stats.torn_at_crash, 1);
        let rep = j.replay();
        assert!(rep.torn_tail);
        assert_eq!(rep.records, sample_records()[..4].to_vec());
        let repaired = j.repair();
        assert_eq!(repaired.records.len(), 4);
        assert_eq!(j.durable_len(), repaired.valid_bytes);
        assert!(!j.replay().torn_tail, "repair leaves a clean image");
        // The store keeps working after repair.
        j.append(
            &JournalRecord::EpochAdvance {
                epoch: 9,
                next_job: 9,
            },
            None,
        );
        assert_eq!(j.replay().records.len(), 5);
    }

    #[test]
    fn buffered_appends_are_lost_at_crash_but_flushed_cleanly() {
        let plan = FaultPlan::none(5).with_partial_flush(1.0);
        // Crash path: everything beyond the write-through prefix is gone.
        let mut j = Journal::new();
        j.append(&sample_records()[0], None);
        let mut fi = FaultInjector::new(plan);
        j.append(&sample_records()[1], Some(&mut fi));
        j.append(&sample_records()[2], Some(&mut fi));
        assert_eq!(j.stats.deferred_flushes, 2);
        j.crash(Some(&mut fi));
        assert_eq!(j.stats.records_lost_at_crash, 2);
        assert_eq!(j.replay().records, sample_records()[..1].to_vec());
        // Clean path: flush() lands the same appends.
        let mut j = Journal::new();
        let mut fi = FaultInjector::new(plan);
        j.append(&sample_records()[0], Some(&mut fi));
        j.append(&sample_records()[1], Some(&mut fi));
        j.flush();
        assert_eq!(j.replay().records, sample_records()[..2].to_vec());
    }

    #[test]
    fn a_later_write_through_append_flushes_the_buffer_in_order() {
        let mut j = Journal::new();
        let mut fi = FaultInjector::new(FaultPlan::none(5).with_partial_flush(1.0));
        j.append(&sample_records()[0], Some(&mut fi));
        j.append(&sample_records()[1], None); // write-through
        assert_eq!(j.replay().records, sample_records()[..2].to_vec());
    }

    #[test]
    fn crash_during_append_leaves_at_most_a_torn_prefix() {
        // Quiet torn channel: the record is simply absent.
        let mut j = Journal::new();
        j.append(&sample_records()[0], None);
        let before = j.durable_len();
        let mut fi = FaultInjector::new(FaultPlan::none(1));
        j.crash_during_append(&sample_records()[1], Some(&mut fi));
        assert_eq!(j.durable_len(), before);
        // Armed torn channel: a strict prefix lands and replay rejects it.
        let mut fi = FaultInjector::new(FaultPlan::none(1).with_torn_write(1.0));
        j.crash_during_append(&sample_records()[2], Some(&mut fi));
        assert!(j.durable_len() > before);
        let rep = j.replay();
        assert!(rep.torn_tail);
        assert_eq!(rep.records, sample_records()[..1].to_vec());
    }

    #[test]
    fn corrupted_checksum_stops_replay() {
        let mut j = Journal::new();
        for r in sample_records() {
            j.append(&r, None);
        }
        let last = j.durable.len() - 1;
        j.durable[last] ^= 0xFF;
        let rep = j.replay();
        assert!(rep.torn_tail);
        assert_eq!(rep.records.len(), sample_records().len() - 1);
    }

    #[test]
    fn artifact_store_is_atomic_and_content_addressed() {
        let mut j = Journal::new();
        let prog = Program {
            name: "p".into(),
            insts: Vec::new(),
        };
        j.store_build(
            7,
            StoredBuild {
                prog: prog.clone(),
                origin: vec![Some(0)],
                rung: Rung::FullPgo,
                profile: None,
            },
        );
        assert!(j.get_build(7).is_some());
        assert!(j.get_build(8).is_none());
        assert!(j.mutate_build(7, |b| b.rung = Rung::ScavengerOnly));
        assert_eq!(j.get_build(7).unwrap().rung, Rung::ScavengerOnly);
        // Same fingerprint replaces in place.
        j.store_build(
            7,
            StoredBuild {
                prog,
                origin: vec![Some(0)],
                rung: Rung::Uninstrumented,
                profile: None,
            },
        );
        assert_eq!(j.get_build(7).unwrap().rung, Rung::Uninstrumented);
        assert_eq!(j.builds.len(), 1);
    }
}

//! §4.2 runtime-scheduling integration: event hiding in a task scheduler
//! for µs-scale tasks.
//!
//! A stream of short tasks (each a coroutine instance with an arrival
//! time) is served by one core under three disciplines:
//!
//! * [`SchedPolicy::Fifo`] — an event-*agnostic* scheduler: each task runs
//!   to completion; misses stall the core.
//! * [`SchedPolicy::SideCar`] — the paper's first integration option: the
//!   scheduler "exposes the set of coroutines in its ready queue" and the
//!   hiding mechanism switches among *ready* tasks at instrumented yields.
//!   Utilization improves, but every task is stretched equally.
//! * [`SchedPolicy::EventAware`] — the second option: the scheduler
//!   explicitly distinguishes event classes, running the *oldest* ready
//!   task in primary mode and filling its misses with younger tasks in
//!   scavenger mode (asymmetric concurrency applied to the queue), so the
//!   head-of-line task finishes almost as fast as it would alone.

use crate::metrics::percentile;
use reach_sim::{Context, ExecError, Exit, Machine, Mode, Program, Status, SwitchKind, YieldKind};

/// Scheduling discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Run-to-completion, arrival order, no hiding.
    Fifo,
    /// Symmetric interleaving across the ready queue at every yield.
    SideCar,
    /// Oldest task primary, younger tasks scavenge its stalls.
    EventAware,
}

/// One task: a context plus its arrival time (cycles).
#[derive(Clone, Debug)]
pub struct Task {
    /// The coroutine instance.
    pub ctx: Context,
    /// Arrival time in absolute cycles.
    pub arrival: u64,
}

/// Result of serving the task queue.
#[derive(Clone, Debug, Default)]
pub struct SchedReport {
    /// Per-task sojourn times (completion − arrival), task order.
    pub sojourns: Vec<u64>,
    /// Per-task service times (completion − first run), task order.
    pub service_times: Vec<u64>,
    /// Completion time of the last task (relative to entry).
    pub makespan: u64,
    /// Tasks completed.
    pub completed: usize,
    /// Tasks retired for exceeding their step budget (runaways).
    pub budget_exceeded: usize,
    /// Tasks retired by an execution fault: `(queue position, error)` in
    /// fault order.
    pub faults: Vec<(usize, ExecError)>,
}

impl SchedReport {
    /// The `p`-th percentile of sojourn time. 0 when no task finished —
    /// callers (the supervisor's SLO guard included) must treat an empty
    /// report as "no evidence", not panic.
    pub fn sojourn_percentile(&self, p: f64) -> u64 {
        percentile(&self.sojourns, p)
    }

    /// The `p`-th percentile of service time. 0 when no task finished.
    pub fn service_percentile(&self, p: f64) -> u64 {
        percentile(&self.service_times, p)
    }
}

/// Serves `tasks` (sorted by arrival internally) over `prog` under
/// `policy`.
///
/// A task that faults or exceeds `max_steps_per_task` is retired
/// (recorded in [`SchedReport::faults`] / [`SchedReport::budget_exceeded`])
/// and the queue keeps draining — one bad task cannot take the scheduler
/// down.
///
/// # Errors
///
/// Per-task failures are contained, not propagated; the `Result` is kept
/// for machine-level errors and API stability.
pub fn run_task_queue(
    machine: &mut Machine,
    prog: &Program,
    tasks: &mut [Task],
    policy: SchedPolicy,
    max_steps_per_task: u64,
) -> Result<SchedReport, ExecError> {
    let started_at = machine.now;
    tasks.sort_by_key(|t| t.arrival);
    let n = tasks.len();
    let mut first_run: Vec<Option<u64>> = vec![None; n];
    let mut done_at: Vec<Option<u64>> = vec![None; n];
    let mut budget_exceeded = 0usize;
    let mut faults: Vec<(usize, ExecError)> = Vec::new();

    match policy {
        SchedPolicy::Fifo => {
            for (i, t) in tasks.iter_mut().enumerate() {
                let arrival = started_at + t.arrival;
                if machine.now < arrival {
                    machine.advance_idle(arrival - machine.now);
                }
                first_run[i] = Some(machine.now);
                match machine.run_to_completion(prog, &mut t.ctx, max_steps_per_task) {
                    Ok(Exit::Done) => done_at[i] = Some(machine.now),
                    Ok(_) => {
                        t.ctx.status = Status::Faulted;
                        budget_exceeded += 1;
                    }
                    Err(e) => {
                        t.ctx.status = Status::Faulted;
                        faults.push((i, e));
                    }
                }
            }
        }
        SchedPolicy::SideCar | SchedPolicy::EventAware => {
            let aware = policy == SchedPolicy::EventAware;
            let mut cur = 0usize;
            loop {
                // Ready = arrived, not finished.
                let ready: Vec<usize> = (0..n)
                    .filter(|&i| {
                        done_at[i].is_none()
                            && started_at + tasks[i].arrival <= machine.now
                            && tasks[i].ctx.status == Status::Runnable
                    })
                    .collect();
                if ready.is_empty() {
                    // Idle until the next arrival, or finish.
                    let next = (0..n)
                        .filter(|&i| {
                            done_at[i].is_none() && tasks[i].ctx.status == Status::Runnable
                        })
                        .map(|i| started_at + tasks[i].arrival)
                        .min();
                    match next {
                        Some(t) if t > machine.now => {
                            machine.advance_idle(t - machine.now);
                            continue;
                        }
                        Some(_) => continue,
                        None => break,
                    }
                }

                // Pick who runs: event-aware pins the oldest ready task as
                // primary; side-car round-robins.
                let i = if aware {
                    ready[0] // tasks are arrival-sorted
                } else {
                    *ready.iter().find(|&&i| i >= cur).unwrap_or(&ready[0])
                };
                // The currently scheduled task always runs in primary mode
                // (its conditional scavenger yields stay off); under
                // event-aware scheduling, the fillers below are demoted.
                tasks[i].ctx.mode = Mode::Primary;
                if first_run[i].is_none() {
                    first_run[i] = Some(machine.now);
                }

                let exit = match machine.run(prog, &mut tasks[i].ctx, max_steps_per_task) {
                    Ok(exit) => exit,
                    Err(e) => {
                        // Trap isolation: retire this task, keep draining.
                        tasks[i].ctx.status = Status::Faulted;
                        faults.push((i, e));
                        cur = i + 1;
                        continue;
                    }
                };
                match exit {
                    Exit::Done => {
                        done_at[i] = Some(machine.now);
                        cur = i + 1;
                    }
                    Exit::StepLimit => {
                        // Runaway containment: the queue must keep making
                        // progress past a task that blew its budget.
                        tasks[i].ctx.status = Status::Faulted;
                        budget_exceeded += 1;
                        cur = i + 1;
                    }
                    Exit::Stalled { .. } => unreachable!(),
                    Exit::Yielded { save_regs, .. } => {
                        if aware {
                            // Fill with the youngest... with *other* ready
                            // tasks in scavenger mode until one of them
                            // yields back.
                            let others: Vec<usize> =
                                ready.iter().copied().filter(|&j| j != i).collect();
                            if others.is_empty() {
                                continue; // nothing to fill with
                            }
                            machine.charge_switch(SwitchKind::Coroutine(save_regs));
                            // Fill until the head task's miss is hidden
                            // (one memory latency), then hand the CPU
                            // straight back — the event-aware scheduler
                            // knows how long the event lasts.
                            let fill_start = machine.now;
                            let hide_target = machine.cfg.mem_latency;
                            'fill: for &j in &others {
                                tasks[j].ctx.mode = Mode::Scavenger;
                                if first_run[j].is_none() {
                                    first_run[j] = Some(machine.now);
                                }
                                let e = match machine.run(
                                    prog,
                                    &mut tasks[j].ctx,
                                    max_steps_per_task,
                                ) {
                                    Ok(e) => e,
                                    Err(err) => {
                                        tasks[j].ctx.status = Status::Faulted;
                                        faults.push((j, err));
                                        continue 'fill;
                                    }
                                };
                                let elapsed = machine.now - fill_start;
                                match e {
                                    Exit::Done => {
                                        done_at[j] = Some(machine.now);
                                        if elapsed >= hide_target {
                                            break 'fill;
                                        }
                                    }
                                    Exit::Yielded {
                                        kind, save_regs, ..
                                    } => {
                                        machine.charge_switch(SwitchKind::Coroutine(save_regs));
                                        match kind {
                                            YieldKind::Scavenger | YieldKind::Manual => {
                                                break 'fill;
                                            }
                                            _ if elapsed >= hide_target => break 'fill,
                                            // A filler's own miss, target
                                            // not yet reached: chain to
                                            // the next filler.
                                            _ => continue 'fill,
                                        }
                                    }
                                    Exit::StepLimit => {
                                        tasks[j].ctx.status = Status::Faulted;
                                        budget_exceeded += 1;
                                        continue 'fill;
                                    }
                                    Exit::Stalled { .. } => unreachable!(),
                                }
                            }
                        } else {
                            // Side-car: rotate among ready tasks.
                            let more = ready.iter().any(|&j| j != i && done_at[j].is_none());
                            if more {
                                machine.charge_switch(SwitchKind::Coroutine(save_regs));
                                cur = i + 1;
                            }
                        }
                    }
                }
            }
        }
    }

    let mut report = SchedReport {
        budget_exceeded,
        faults,
        ..SchedReport::default()
    };
    for i in 0..n {
        if let (Some(f), Some(d)) = (first_run[i], done_at[i]) {
            report.completed += 1;
            report.sojourns.push(d - (started_at + tasks[i].arrival));
            report.service_times.push(d - f);
            report.makespan = report.makespan.max(d - started_at);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::isa::{AluOp, Cond, Inst, ProgramBuilder, Reg};
    use reach_sim::MachineConfig;

    /// A µs-scale task: chase 12 nodes with prefetch+primary-yield
    /// instrumentation and scavenger yields after the compute.
    fn task_prog() -> Program {
        let mut b = ProgramBuilder::new("task");
        let top = b.label();
        b.bind(top);
        b.prefetch(Reg(0), 0);
        b.push(Inst::Yield {
            kind: YieldKind::Primary,
            save_regs: Some((1 << 0) | (1 << 1) | (1 << 6) | (1 << 7)),
        });
        b.load(Reg(4), Reg(0), 0);
        b.load(Reg(3), Reg(0), 8);
        b.alu(AluOp::Add, Reg(7), Reg(7), Reg(3), 1);
        b.alu(AluOp::Add, Reg(2), Reg(2), Reg(6), 80);
        b.push(Inst::Yield {
            kind: YieldKind::Scavenger,
            save_regs: Some(0xFF),
        });
        b.alu(AluOp::Or, Reg(0), Reg(4), Reg(4), 1);
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(6), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        b.finish().unwrap()
    }

    fn make_tasks(m: &mut Machine, count: usize, hops: u64, gap: u64) -> Vec<Task> {
        (0..count)
            .map(|i| {
                let base = 0x100_0000 * (i as u64 + 1);
                for k in 0..hops {
                    let addr = base + k * 4096;
                    let next = if k + 1 == hops {
                        0
                    } else {
                        base + (k + 1) * 4096
                    };
                    m.mem.write(addr, next).unwrap();
                    m.mem.write(addr + 8, addr).unwrap();
                }
                let mut ctx = Context::new(i);
                ctx.set_reg(Reg(0), base);
                ctx.set_reg(Reg(1), hops);
                ctx.set_reg(Reg(6), 1);
                Task {
                    ctx,
                    arrival: i as u64 * gap,
                }
            })
            .collect()
    }

    fn run(policy: SchedPolicy) -> (SchedReport, f64) {
        let prog = task_prog();
        let mut m = Machine::new(MachineConfig::default());
        let mut tasks = make_tasks(&mut m, 8, 12, 200);
        let r = run_task_queue(&mut m, &prog, &mut tasks, policy, 1_000_000).unwrap();
        let eff = m.counters.cpu_efficiency();
        (r, eff)
    }

    #[test]
    fn all_policies_complete_all_tasks() {
        for p in [
            SchedPolicy::Fifo,
            SchedPolicy::SideCar,
            SchedPolicy::EventAware,
        ] {
            let (r, _) = run(p);
            assert_eq!(r.completed, 8, "{p:?}");
            assert_eq!(r.sojourns.len(), 8);
        }
    }

    #[test]
    fn hiding_policies_beat_fifo_on_makespan() {
        let (fifo, fifo_eff) = run(SchedPolicy::Fifo);
        let (side, side_eff) = run(SchedPolicy::SideCar);
        let (aware, aware_eff) = run(SchedPolicy::EventAware);
        assert!(
            side.makespan < fifo.makespan,
            "side-car {} !< fifo {}",
            side.makespan,
            fifo.makespan
        );
        assert!(
            aware.makespan < fifo.makespan,
            "event-aware {} !< fifo {}",
            aware.makespan,
            fifo.makespan
        );
        assert!(side_eff > fifo_eff);
        assert!(aware_eff > fifo_eff);
    }

    #[test]
    fn event_aware_compresses_service_time_vs_side_car() {
        let (side, _) = run(SchedPolicy::SideCar);
        let (aware, _) = run(SchedPolicy::EventAware);
        // Side-car stretches every task (fair round robin); event-aware
        // serializes service (head task monopolizes, fillers only absorb
        // its stalls), so per-task service time is much shorter.
        assert!(
            aware.service_percentile(0.5) < side.service_percentile(0.5),
            "aware p50 {} !< side-car p50 {}",
            aware.service_percentile(0.5),
            side.service_percentile(0.5)
        );
    }

    #[test]
    fn faulting_task_is_retired_not_fatal() {
        for p in [
            SchedPolicy::Fifo,
            SchedPolicy::SideCar,
            SchedPolicy::EventAware,
        ] {
            let prog = task_prog();
            let mut m = Machine::new(MachineConfig::default());
            let mut tasks = make_tasks(&mut m, 6, 12, 200);
            // Task 1: misaligned chase head — faults on its first load.
            tasks[1].ctx.set_reg(Reg(0), 0x1001);
            let r = run_task_queue(&mut m, &prog, &mut tasks, p, 1_000_000).unwrap();
            assert_eq!(r.completed, 5, "{p:?}: healthy tasks all finish");
            assert_eq!(r.faults.len(), 1, "{p:?}");
            assert_eq!(r.faults[0].0, 1, "{p:?}: the sabotaged task");
            assert!(matches!(r.faults[0].1, ExecError::Mem(_)), "{p:?}");
            assert_eq!(tasks[1].ctx.status, Status::Faulted);
        }
    }

    #[test]
    fn runaway_task_blows_budget_but_queue_drains() {
        // Pure compute, no yields: the runaway's first slice eats the
        // whole step budget under every policy.
        let prog = {
            let mut b = ProgramBuilder::new("spin");
            let top = b.label();
            b.bind(top);
            b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(6), 1);
            b.branch(Cond::Nez, Reg(1), top);
            b.halt();
            b.finish().unwrap()
        };
        for p in [
            SchedPolicy::Fifo,
            SchedPolicy::SideCar,
            SchedPolicy::EventAware,
        ] {
            let mut m = Machine::new(MachineConfig::default());
            let mut tasks: Vec<Task> = (0..3)
                .map(|i| {
                    let mut ctx = Context::new(i);
                    ctx.set_reg(Reg(1), if i == 1 { 1 << 40 } else { 100 });
                    ctx.set_reg(Reg(6), 1);
                    Task {
                        ctx,
                        arrival: i as u64 * 10,
                    }
                })
                .collect();
            let r = run_task_queue(&mut m, &prog, &mut tasks, p, 20_000).unwrap();
            assert_eq!(r.completed, 2, "{p:?}");
            assert_eq!(r.budget_exceeded, 1, "{p:?}");
            assert!(r.faults.is_empty(), "{p:?}");
            assert_eq!(tasks[1].ctx.status, Status::Faulted, "{p:?}");
        }
    }

    #[test]
    fn percentile_helpers() {
        let r = SchedReport {
            sojourns: vec![10, 20, 30, 40],
            service_times: vec![1, 2, 3, 4],
            makespan: 40,
            completed: 4,
            ..SchedReport::default()
        };
        assert_eq!(r.sojourn_percentile(1.0), 40);
        assert_eq!(r.service_percentile(0.0), 1);
        // Differential: the report helpers are thin wrappers over the one
        // canonical nearest-rank implementation — identical on shared
        // inputs, every rank.
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(r.sojourn_percentile(p), percentile(&r.sojourns, p));
            assert_eq!(r.service_percentile(p), percentile(&r.service_times, p));
            assert_eq!(
                crate::metrics::percentiles(&r.sojourns, &[p])[0],
                r.sojourn_percentile(p)
            );
        }
    }

    #[test]
    fn empty_report_percentiles_are_zero_not_panic() {
        // A run where nothing completed (all faulted, all shed, or the
        // queue never admitted anyone) yields empty sample vectors; every
        // percentile entry point must degrade to 0 per the `percentiles()`
        // contract, because the supervisor reads these on *every* epoch —
        // including epochs where admission shed the whole batch.
        let r = SchedReport::default();
        for p in [0.0, 0.5, 0.99, 1.0, f64::NAN, -1.0, 2.0] {
            assert_eq!(r.sojourn_percentile(p), 0);
            assert_eq!(r.service_percentile(p), 0);
            assert_eq!(percentile(&[], p), 0);
        }
        assert_eq!(crate::metrics::percentiles(&[], &[0.5, 0.99]), vec![0, 0]);
    }
}

//! # reach-core — hiding 10–100 ns events in software, end to end
//!
//! The paper's mechanism assembled from the substrate crates:
//!
//! * [`pipeline`] — the three-step PGO flow: profile the original
//!   coroutine code under sampling, apply primary `prefetch+yield`
//!   instrumentation guided by the profile, then the scavenger pass that
//!   bounds inter-yield intervals.
//! * [`executor`] — the symmetric interleaving executor (coroutine or
//!   OS-thread switch costs), with optional register poisoning that
//!   *proves* liveness-derived save sets sound at run time.
//! * [`dualmode`] — asymmetric concurrency: a latency-sensitive primary
//!   coroutine whose misses are filled by scavenger-mode coroutines,
//!   scaled on demand.
//! * [`scheduler`] — §4.2 integration with a µs-task scheduler (FIFO vs
//!   ready-queue side-car vs event-aware).
//! * [`degrade`] — the graceful-degradation ladder: an infallible
//!   pipeline front end that retries profiling and steps down
//!   full-PGO → scavenger-only → uninstrumented, recording why.
//! * [`supervisor`] — the self-healing runtime loop: online staleness
//!   detection, background re-profile + epoch-boundary hot swap, a
//!   circuit breaker over the degradation ladder, and overload
//!   shedding, all recorded in a replay-deterministic incident log.
//! * [`whatif`] — §4.1 hardware what-if: presence-probe-conditional
//!   yields.
//! * [`metrics`] — percentiles and cycle-accounting summaries.
//!
//! # Examples
//!
//! ```
//! use reach_core::{pgo_pipeline, run_interleaved, InterleaveOptions, PipelineOptions};
//! use reach_sim::{Machine, MachineConfig};
//! use reach_workloads::{build_chase, AddrAlloc, ChaseParams};
//!
//! // Lay out a pointer-chase workload with one profiling instance and
//! // two execution instances.
//! let mut m = Machine::new(MachineConfig::default());
//! let mut alloc = AddrAlloc::new(0x10_0000);
//! let params = ChaseParams { nodes: 256, hops: 256, ..ChaseParams::default() };
//! let w = build_chase(&mut m.mem, &mut alloc, params, 3);
//!
//! // Profile + instrument.
//! let mut prof = vec![w.instances[2].make_context(9)];
//! let built = pgo_pipeline(&mut m, &w.prog, &mut prof, &PipelineOptions::default()).unwrap();
//!
//! // Interleave the two remaining instances over the instrumented binary.
//! let mut ctxs = vec![w.instances[0].make_context(0), w.instances[1].make_context(1)];
//! let rep = run_interleaved(&mut m, &built.prog, &mut ctxs, &InterleaveOptions::default()).unwrap();
//! assert_eq!(rep.completed, 2);
//! w.instances[0].assert_checksum(&ctxs[0]);
//! ```

pub mod chaos;
pub mod degrade;
pub mod dualmode;
pub mod executor;
pub mod fleet;
pub mod fleet_chaos;
pub mod journal;
pub mod metrics;
pub mod pipeline;
pub mod scheduler;
pub mod supervisor;
pub mod whatif;

pub use chaos::{
    minimize, random_schedule, run_campaigns, run_schedule, CampaignReport, ChaosConfigError,
    ChaosOptions, ChaosSchedule, ChaosWorld, ScheduleRun,
};
pub use degrade::{
    pgo_pipeline_degrading, scavenger_only_build, DegradeOptions, DegradeReason, DegradedBuild,
    Rung,
};
pub use dualmode::{run_dual_mode, DualModeOptions, DualModeReport, WatchdogOptions};
pub use executor::{
    run_interleaved, run_interleaved_multi, InterleaveOptions, InterleaveReport, Job, SwitchMode,
    POISON,
};
pub use fleet::{
    fleet_events_hash, fleet_events_json, run_fleet, shard_seed, Arrival, FleetConfigError,
    FleetEvent, FleetOptions, FleetReport, FleetWorkload, RolloutOptions, ShardSummary,
};
pub use fleet_chaos::{
    random_fleet_schedule, run_fleet_campaigns, run_fleet_schedule, FleetCampaignReport,
    FleetChaosError, FleetChaosOptions, FleetChaosSchedule, FleetChaosWorld, FleetScheduleRun,
};
pub use journal::{project, Journal, JournalRecord, JournalState, Replay, StoredBuild};
pub use metrics::{percentile, percentiles, ratio, CycleSummary};
pub use pipeline::{
    lint_gate, pgo_pipeline, verify_gate, InstrumentedBinary, PipelineError, PipelineOptions,
};
pub use scheduler::{run_task_queue, SchedPolicy, SchedReport, Task};
pub use supervisor::{
    incidents_hash, incidents_json, recover, supervise, supervise_journaled, Action, BreakerState,
    CrashPoint, DeployedBuild, Ev, Incident, Outcome, RecoverOptions, Recovery, ResumeState,
    ServiceWorkload, SuperviseExit, SupervisorConfigError, SupervisorOptions, SupervisorReport,
    Trigger,
};
pub use whatif::{make_conditional, yield_census, YieldCensus};

//! The graceful-degradation ladder: an infallible front end to the PGO
//! pipeline.
//!
//! The §3.2 pipeline is built from fallible stages — the profiling run
//! can fault, the profile can be stale or under-sampled, the rewriters
//! can refuse a binary. Production deployment cannot afford "no binary":
//! something must always ship. [`pgo_pipeline_degrading`] therefore walks
//! a ladder of rungs, each strictly less dependent on the failed
//! machinery than the one above:
//!
//! 1. [`Rung::FullPgo`] — profile (with bounded re-profile retries on
//!    failure or rejection), validate, instrument both passes.
//! 2. [`Rung::ScavengerOnly`] — skip the profile entirely; the scavenger
//!    pass's static worst-case interval bound needs no samples, so
//!    cooperative yielding (and thus bounded primary latency when the
//!    binary is used as a filler) is preserved even with zero profile
//!    signal. No prefetch+yield hiding, though.
//! 3. [`Rung::Uninstrumented`] — ship the original binary unchanged.
//!    Always succeeds; performance degrades, correctness never.
//!
//! Every descent is recorded as a [`DegradeReason`], so a deployment that
//! lands on a lower rung is *diagnosable*, not silent.

use crate::pipeline::{
    instrument_with_profile, lint_gate, verify_gate, PipelineError, PipelineOptions,
};
use reach_instrument::{instrument_scavenger, smooth_profile, validate_rewrite, LintReport};
use reach_profile::{collect, validate_profile, Profile, ProfileInvalid};
use reach_sim::{Context, ExecError, Machine, MachineConfig, Program};

/// Which rung of the ladder the build landed on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rung {
    /// Full profile-guided instrumentation (primary + scavenger passes).
    FullPgo,
    /// Static scavenger instrumentation only; no profile was trusted.
    ScavengerOnly,
    /// The original binary, unchanged.
    Uninstrumented,
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rung::FullPgo => write!(f, "full-pgo"),
            Rung::ScavengerOnly => write!(f, "scavenger-only"),
            Rung::Uninstrumented => write!(f, "uninstrumented"),
        }
    }
}

/// Why the ladder moved down (or retried) — one entry per event, in
/// order.
#[derive(Debug)]
pub enum DegradeReason {
    /// A profiling run failed with an execution error.
    ProfilingFailed(ExecError),
    /// A collected profile failed admission control.
    ProfileRejected(ProfileInvalid),
    /// All `1 + max_reprofiles` profiling attempts were consumed without
    /// an admissible profile.
    ReprofileExhausted {
        /// Total profiling attempts made.
        attempts: u32,
    },
    /// The full pipeline refused the build for a non-profile reason
    /// (rewrite, translation validation, or lint); re-profiling cannot
    /// fix these, so the ladder descends immediately.
    PipelineRefused(PipelineError),
    /// The scavenger-only rung itself failed; only the uninstrumented
    /// rung remains.
    ScavengerOnlyFailed(PipelineError),
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeReason::ProfilingFailed(e) => write!(f, "profiling run failed: {e}"),
            DegradeReason::ProfileRejected(e) => write!(f, "profile rejected: {e}"),
            DegradeReason::ReprofileExhausted { attempts } => {
                write!(f, "no admissible profile after {attempts} attempt(s)")
            }
            DegradeReason::PipelineRefused(e) => write!(f, "pipeline refused: {e}"),
            DegradeReason::ScavengerOnlyFailed(e) => {
                write!(f, "scavenger-only instrumentation failed: {e}")
            }
        }
    }
}

/// Options for the degrading pipeline.
#[derive(Clone, Debug)]
pub struct DegradeOptions {
    /// The underlying pipeline configuration. Unlike [`pgo_pipeline`],
    /// the ladder *always* runs profile admission control:
    /// `pipeline.validation` of `None` means
    /// [`reach_profile::ProfileValidationOptions::default`].
    ///
    /// [`pgo_pipeline`]: crate::pipeline::pgo_pipeline
    pub pipeline: PipelineOptions,
    /// Extra profiling attempts after the first failure/rejection before
    /// giving up on [`Rung::FullPgo`].
    pub max_reprofiles: u32,
    /// Test/fault-injection hook: applied to each smoothed profile before
    /// validation (e.g. to simulate a stale or drifted profile). A plain
    /// `fn` pointer so the options stay `Clone`.
    pub profile_mutator: Option<fn(&mut Profile)>,
}

impl Default for DegradeOptions {
    fn default() -> Self {
        DegradeOptions {
            pipeline: PipelineOptions::default(),
            max_reprofiles: 1,
            profile_mutator: None,
        }
    }
}

/// What the ladder shipped.
#[derive(Debug)]
pub struct DegradedBuild {
    /// The binary to deploy — always present, whatever happened.
    pub prog: Program,
    /// `origin[pc]` = PC in the original program (`None` for inserted
    /// instructions). Identity for [`Rung::Uninstrumented`].
    pub origin: Vec<Option<usize>>,
    /// The rung the build landed on.
    pub rung: Rung,
    /// Every failure/descent event, in order. Empty exactly when the
    /// first profiling attempt produced a clean [`Rung::FullPgo`] build.
    pub reasons: Vec<DegradeReason>,
    /// Profiling attempts beyond the first.
    pub reprofiles: u32,
    /// The admitted profile ([`Rung::FullPgo`] only).
    pub profile: Option<Profile>,
    /// Lint report for the shipped binary (absent for
    /// [`Rung::Uninstrumented`], which never passed through the gate).
    pub lint_report: Option<LintReport>,
}

/// Runs the PGO pipeline with graceful degradation: always returns a
/// deployable binary, descending the rung ladder instead of failing.
///
/// `make_profiling_contexts(attempt)` supplies fresh profiling contexts
/// for each attempt (attempt numbers start at 0), so retries re-profile
/// real work rather than re-running finished coroutines.
pub fn pgo_pipeline_degrading(
    machine: &mut Machine,
    prog: &Program,
    mut make_profiling_contexts: impl FnMut(u32) -> Vec<Context>,
    opts: &DegradeOptions,
) -> DegradedBuild {
    let mut reasons = Vec::new();
    let mut reprofiles = 0u32;
    let vopts = opts.pipeline.validation.unwrap_or_default();
    let mcfg = machine.cfg.clone();

    // Rung 1: full PGO, with bounded re-profile retries.
    let attempts = 1 + opts.max_reprofiles;
    let mut descend_now = false;
    for attempt in 0..attempts {
        if attempt > 0 {
            reprofiles += 1;
        }
        let mut contexts = make_profiling_contexts(attempt);
        // `collect` arms its own samplers; disarm them afterwards so a
        // retry does not stack sampling overhead on top of the last
        // attempt's.
        let samplers_before = machine.samplers.len();
        let collected = collect(machine, prog, &mut contexts, &opts.pipeline.collector);
        machine.samplers.truncate(samplers_before);
        let raw = match collected {
            Ok((raw, _cost)) => raw,
            Err(e) => {
                reasons.push(DegradeReason::ProfilingFailed(e));
                continue;
            }
        };
        let mut profile = smooth_profile(&raw, prog);
        if let Some(mutate) = opts.profile_mutator {
            mutate(&mut profile);
        }
        if let Err(e) = validate_profile(&profile, prog, &vopts) {
            reasons.push(DegradeReason::ProfileRejected(e));
            continue;
        }
        match instrument_with_profile(prog, &profile, &mcfg, &opts.pipeline) {
            Ok((final_prog, origin, _primary, _scav, lint_report)) => {
                return DegradedBuild {
                    prog: final_prog,
                    origin,
                    rung: Rung::FullPgo,
                    reasons,
                    reprofiles,
                    profile: Some(profile),
                    lint_report: Some(lint_report),
                };
            }
            Err(e) => {
                // Deterministic instrumenter refusal: another profile
                // will not change the outcome.
                reasons.push(DegradeReason::PipelineRefused(e));
                descend_now = true;
                break;
            }
        }
    }
    if !descend_now {
        reasons.push(DegradeReason::ReprofileExhausted { attempts });
    }

    // Rung 2: profile-free scavenger instrumentation — keeps the binary
    // cooperative (bounded inter-yield intervals) without trusting any
    // sample.
    if let Some(result) = scavenger_only_build(prog, &mcfg, &opts.pipeline) {
        match result {
            Ok((scav_prog, origin, lint_report)) => {
                return DegradedBuild {
                    prog: scav_prog,
                    origin,
                    rung: Rung::ScavengerOnly,
                    reasons,
                    reprofiles,
                    profile: None,
                    lint_report: Some(lint_report),
                };
            }
            Err(e) => reasons.push(DegradeReason::ScavengerOnlyFailed(e)),
        }
    }

    // Rung 3: the original binary. Cannot fail.
    uninstrumented_build(prog, reasons, reprofiles)
}

/// The [`Rung::ScavengerOnly`] build step in isolation: static scavenger
/// instrumentation, rewrite validation, and the lint gate — no profile
/// involved. Returns `None` when the pipeline has no scavenger pass
/// configured. Shared by the ladder's rung 2 and the runtime
/// supervisor's circuit breaker, which deploys this build directly when
/// consecutive full-PGO rebuilds keep failing.
#[allow(clippy::type_complexity)]
pub fn scavenger_only_build(
    prog: &Program,
    mcfg: &MachineConfig,
    pipeline: &PipelineOptions,
) -> Option<Result<(Program, Vec<Option<usize>>, LintReport), PipelineError>> {
    let sopts = pipeline.scavenger.as_ref()?;
    Some(
        instrument_scavenger(prog, None, mcfg, sopts)
            .map_err(PipelineError::from)
            .and_then(|(scav_prog, report)| {
                validate_rewrite(prog, &scav_prog, &report.pc_map.origin, false)?;
                if pipeline.verify {
                    verify_gate(prog, &scav_prog, &report.pc_map.origin, &pipeline.lint)?;
                }
                let lint = lint_gate(&scav_prog, &report.pc_map.origin, &pipeline.lint)?;
                Ok((scav_prog, report.pc_map.origin, lint))
            }),
    )
}

/// The always-succeeding [`Rung::Uninstrumented`] terminal rung as a
/// [`DegradedBuild`].
fn uninstrumented_build(
    prog: &Program,
    reasons: Vec<DegradeReason>,
    reprofiles: u32,
) -> DegradedBuild {
    DegradedBuild {
        origin: (0..prog.len()).map(Some).collect(),
        prog: prog.clone(),
        rung: Rung::Uninstrumented,
        reasons,
        reprofiles,
        profile: None,
        lint_report: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::isa::{Inst, Reg};
    use reach_sim::{MachineConfig, YieldKind};
    use reach_workloads::{build_chase, AddrAlloc, ChaseParams};

    fn chase_params() -> ChaseParams {
        ChaseParams {
            nodes: 1024,
            hops: 1024,
            node_stride: 4096,
            work_per_hop: 20,
            work_insts: 1,
            seed: 3,
        }
    }

    fn yield_kinds(prog: &Program) -> Vec<YieldKind> {
        prog.insts
            .iter()
            .filter_map(|i| match i {
                Inst::Yield { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn healthy_pipeline_lands_on_full_pgo_with_no_reasons() {
        let mut m = Machine::new(MachineConfig::default());
        let mut alloc = AddrAlloc::new(0x10_0000);
        let w = build_chase(&mut m.mem, &mut alloc, chase_params(), 2);
        let b = pgo_pipeline_degrading(
            &mut m,
            &w.prog,
            |_| vec![w.instances[1].make_context(99)],
            &DegradeOptions::default(),
        );
        assert_eq!(b.rung, Rung::FullPgo);
        assert!(b.reasons.is_empty(), "{:?}", b.reasons);
        assert_eq!(b.reprofiles, 0);
        assert!(b.profile.is_some());
        assert!(yield_kinds(&b.prog).contains(&YieldKind::Primary));
        assert!(m.samplers.is_empty(), "samplers disarmed after collect");
    }

    #[test]
    fn stale_profile_retries_then_degrades_to_scavenger_only() {
        fn wipe(p: &mut Profile) {
            p.total_samples = 0; // simulate a profile with no signal
        }
        let mut m = Machine::new(MachineConfig::default());
        let mut alloc = AddrAlloc::new(0x10_0000);
        let w = build_chase(&mut m.mem, &mut alloc, chase_params(), 2);
        let opts = DegradeOptions {
            max_reprofiles: 2,
            profile_mutator: Some(wipe),
            ..DegradeOptions::default()
        };
        let b = pgo_pipeline_degrading(
            &mut m,
            &w.prog,
            |_| vec![w.instances[1].make_context(99)],
            &opts,
        );
        assert_eq!(b.rung, Rung::ScavengerOnly);
        assert_eq!(b.reprofiles, 2);
        // 3 rejections + the exhaustion marker, in order.
        assert_eq!(b.reasons.len(), 4, "{:?}", b.reasons);
        assert!(matches!(
            b.reasons[0],
            DegradeReason::ProfileRejected(ProfileInvalid::TooFewSamples { .. })
        ));
        assert!(matches!(
            b.reasons[3],
            DegradeReason::ReprofileExhausted { attempts: 3 }
        ));
        // Still cooperative: conditional scavenger yields, no primary
        // (profile-guided) ones.
        let kinds = yield_kinds(&b.prog);
        assert!(kinds.contains(&YieldKind::Scavenger));
        assert!(!kinds.contains(&YieldKind::Primary));
        assert!(b.profile.is_none());
        assert!(b.lint_report.is_some());
    }

    #[test]
    fn profiling_faults_descend_to_uninstrumented_when_no_scavenger_pass() {
        let mut m = Machine::new(MachineConfig::default());
        let mut alloc = AddrAlloc::new(0x10_0000);
        let w = build_chase(&mut m.mem, &mut alloc, chase_params(), 2);
        let opts = DegradeOptions {
            pipeline: PipelineOptions {
                scavenger: None,
                ..PipelineOptions::default()
            },
            max_reprofiles: 1,
            ..DegradeOptions::default()
        };
        let b = pgo_pipeline_degrading(
            &mut m,
            &w.prog,
            |_| {
                // Misaligned chase head: every profiling run faults.
                let mut c = w.instances[1].make_context(99);
                c.set_reg(Reg(0), 0x1001);
                vec![c]
            },
            &opts,
        );
        assert_eq!(b.rung, Rung::Uninstrumented);
        assert_eq!(b.prog.insts, w.prog.insts, "original binary shipped");
        assert_eq!(b.origin.len(), w.prog.len());
        assert!(b.origin.iter().enumerate().all(|(i, o)| *o == Some(i)));
        assert!(matches!(
            b.reasons[0],
            DegradeReason::ProfilingFailed(ExecError::Mem(_))
        ));
        assert!(b
            .reasons
            .iter()
            .any(|r| matches!(r, DegradeReason::ReprofileExhausted { attempts: 2 })));
        assert!(b.lint_report.is_none());
    }
}

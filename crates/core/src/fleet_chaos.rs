//! Fleet-level chaos: randomized shard-crash × torn-journal × runaway ×
//! poisoned-rollout schedules over [`run_fleet`], with oracles for the
//! properties only a fleet can violate.
//!
//! The single-shard chaos engine ([`crate::chaos`]) proves one
//! supervisor survives crash/restart storms. This module aims the same
//! FoundationDB-style discipline at the *fleet* failure surface: a
//! shard killed mid-rollout, a torn journal on one shard while another
//! hosts a runaway scavenger, a poisoned build pushed through the
//! rolling-deploy pipeline. A [`FleetChaosSchedule`] is a pure value;
//! running it twice produces byte-identical fleet event logs and
//! per-shard incident logs, folded into one `xr_hash` that gates the
//! whole batch.
//!
//! Oracles (beyond the per-shard invariants, which keep holding because
//! each shard still runs the same journaled epoch loop):
//!
//! 1. **Capacity under rolling deploys** — every crash-free epoch keeps
//!    at least (N−1)/N shards serving (audited inside [`run_fleet`]).
//! 2. **Poison containment** — a rollout build corrupted after its
//!    build-time gates never reaches a second shard: the per-shard
//!    re-validation or the health window stops it (audited inside
//!    [`run_fleet`]).
//! 3. **Projected journals equal live fleet state** — each shard's
//!    journal, projected, matches that shard's live deployment, breaker
//!    and job cursor at the end of the run (audited inside
//!    [`run_fleet`]).
//! 4. **Bounded shard unavailability** — every injected shard crash
//!    that does not land in the final epoch is followed by a recovery
//!    for that shard, and the fleet never loses more shards than
//!    crashes were injected.

use crate::fleet::{
    fleet_mix, run_fleet, FleetConfigError, FleetEvent, FleetOptions, FleetReport, FleetWorkload,
    RolloutOptions,
};
use crate::supervisor::DeployedBuild;
use reach_sim::{FaultInjector, FaultPlan, Inst, MultiCore, Program, SplitMix64};

/// A fleet chaos configuration the engine refuses to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetChaosError {
    /// The underlying fleet configuration is degenerate.
    Fleet(FleetConfigError),
    /// The schedule arms a runaway scavenger but `sup.dual.watchdog` is
    /// `None` — same hang class as
    /// [`crate::chaos::ChaosConfigError::RunawayWithoutWatchdog`].
    RunawayWithoutWatchdog,
    /// A crash is scheduled on a shard index the fleet does not have.
    CrashShardOutOfRange,
}

impl From<FleetConfigError> for FleetChaosError {
    fn from(e: FleetConfigError) -> Self {
        FleetChaosError::Fleet(e)
    }
}

impl std::fmt::Display for FleetChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetChaosError::Fleet(e) => e.fmt(f),
            FleetChaosError::RunawayWithoutWatchdog => write!(
                f,
                "schedule arms a runaway scavenger but sup.dual.watchdog is None \
                 (the burst would pin every slice; arm WatchdogOptions)"
            ),
            FleetChaosError::CrashShardOutOfRange => {
                write!(f, "schedule crashes a shard index outside the fleet")
            }
        }
    }
}

impl std::error::Error for FleetChaosError {}

/// One randomized fleet fault schedule — a pure value.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetChaosSchedule {
    /// Channel intensities and the seed each shard's injector derives
    /// from (`plan.seed` mixed with the shard index). `plan.crash_at` is
    /// ignored — crash instants come from `crashes`. The torn-write and
    /// partial-flush channels apply only to `torn_shard`.
    pub plan: FaultPlan,
    /// `(shard, crash-point consultation)` pairs, at most one per shard:
    /// shard `s` crashes at its `n`-th crash-point consultation and
    /// recovers at the top of the next fleet epoch (the dead injector
    /// dies with the process, so each shard crashes at most once).
    pub crashes: Vec<(usize, u64)>,
    /// Shard whose journal suffers the torn-write / partial-flush
    /// channels (`None` disarms both fleet-wide).
    pub torn_shard: Option<usize>,
    /// Shard whose scavenger pool hosts the runaway burst (the workload
    /// factory decides what the burst looks like).
    pub runaway_shard: Option<usize>,
    /// Run a rolling re-instrumentation deploy during the chaos.
    pub rollout: bool,
    /// Poison the rollout build after its build-time gates (implies
    /// `rollout`; ignored without it).
    pub poisoned: bool,
}

impl FleetChaosSchedule {
    /// A schedule with nothing armed.
    pub fn quiet(seed: u64) -> Self {
        FleetChaosSchedule {
            plan: FaultPlan::none(seed),
            crashes: Vec::new(),
            torn_shard: None,
            runaway_shard: None,
            rollout: false,
            poisoned: false,
        }
    }

    /// The constructor chain that rebuilds this schedule — printed with
    /// violations so the repro is copy-pasteable.
    pub fn repro(&self) -> String {
        let p = &self.plan;
        let mut plan = format!("FaultPlan::none(0x{:x})", p.seed);
        if p.torn_write > 0.0 {
            plan += &format!(".with_torn_write({:?})", p.torn_write);
        }
        if p.partial_flush > 0.0 {
            plan += &format!(".with_partial_flush({:?})", p.partial_flush);
        }
        if let Some(n) = p.trap_every {
            plan += &format!(".with_trap_every({n})");
        }
        format!(
            "FleetChaosSchedule {{ plan: {plan}, crashes: vec!{:?}, torn_shard: {:?}, \
             runaway_shard: {:?}, rollout: {}, poisoned: {} }}",
            self.crashes, self.torn_shard, self.runaway_shard, self.rollout, self.poisoned
        )
    }
}

/// One freshly-built fleet world: the N-core machine (whose per-core
/// memories are the shards' data stores), the sharded workload, the
/// shared original program and the shared initial deployment. The
/// factory receives the schedule so it can arm the runaway shard.
pub struct FleetChaosWorld {
    /// The N-core machine.
    pub mc: MultiCore,
    /// The sharded service.
    pub workload: Box<dyn FleetWorkload>,
    /// The uninstrumented original program.
    pub original: Program,
    /// The initial verified deployment, shared by every shard.
    pub initial: DeployedBuild,
}

/// Engine configuration.
#[derive(Clone)]
pub struct FleetChaosOptions {
    /// Fleet configuration for every run. `fleet.rollout` is overridden
    /// per schedule (from `rollout_template` when the schedule arms a
    /// rollout, `None` otherwise).
    pub fleet: FleetOptions,
    /// Rolling-deploy shape used when a schedule arms `rollout`; its
    /// `poison` field is overridden by the schedule's `poisoned` arm.
    pub rollout_template: RolloutOptions,
}

impl FleetChaosOptions {
    /// Engine defaults around the given fleet configuration.
    pub fn new(fleet: FleetOptions) -> Self {
        FleetChaosOptions {
            fleet,
            rollout_template: RolloutOptions::default(),
        }
    }
}

/// The poisoned-rollout fault class: clobber every yield's save set
/// after the build-time gates pass, so the artifact is live-corrupt but
/// fingerprint-consistent — exactly what per-shard re-validation and the
/// health window must catch.
fn poison_yield_saves(b: &mut DeployedBuild) {
    for inst in &mut b.prog.insts {
        if let Inst::Yield { save_regs, .. } = inst {
            *save_regs = Some(0);
        }
    }
}

/// Everything one fleet schedule run did, and every invariant it broke.
#[derive(Clone, Debug, Default)]
pub struct FleetScheduleRun {
    /// Oracle violations (fleet-internal + engine-level), empty on a
    /// healthy run.
    pub violations: Vec<String>,
    /// Shard crashes injected.
    pub crashes: u64,
    /// Shard recoveries performed.
    pub recoveries: u64,
    /// Jobs served fleet-wide.
    pub served: u64,
    /// Requests shed (admission queues + forwarding queue + timeouts).
    pub shed: u64,
    /// Forward-queue retry attempts.
    pub retries: u64,
    /// Shards the rollout build reached.
    pub rollout_deploys: u64,
    /// True when the rollout froze.
    pub rollout_frozen: bool,
    /// Scavenger slice-epochs moved by work-stealing.
    pub steals: u64,
    /// Fleet event-log length.
    pub events: u64,
    /// The fleet determinism digest ([`FleetReport::fleet_hash`]).
    pub fleet_hash: u64,
}

/// Runs one fleet schedule: arms per-shard injectors, runs the fleet
/// (which crashes/recovers shards inline), then audits the engine-level
/// oracles on top of the fleet's own. Deterministic in
/// `(factory, schedule, opts)`.
pub fn run_fleet_schedule(
    factory: &mut dyn FnMut(&FleetChaosSchedule) -> FleetChaosWorld,
    schedule: &FleetChaosSchedule,
    opts: &FleetChaosOptions,
) -> Result<FleetScheduleRun, FleetChaosError> {
    if schedule.runaway_shard.is_some() && opts.fleet.sup.dual.watchdog.is_none() {
        return Err(FleetChaosError::RunawayWithoutWatchdog);
    }
    if schedule
        .crashes
        .iter()
        .any(|&(s, _)| s >= opts.fleet.shards)
    {
        return Err(FleetChaosError::CrashShardOutOfRange);
    }
    let mut world = factory(schedule);
    let mut fleet_opts = opts.fleet.clone();
    fleet_opts.rollout = schedule.rollout.then(|| RolloutOptions {
        poison: schedule
            .poisoned
            .then_some(poison_yield_saves as fn(&mut DeployedBuild)),
        ..opts.rollout_template
    });

    // Arm each shard's injector: shard-mixed seed, torn channels only on
    // the torn shard, that shard's crash instant (if any).
    for s in 0..opts.fleet.shards {
        let mut plan = schedule.plan;
        plan.seed = fleet_mix(schedule.plan.seed, s as u64);
        if schedule.torn_shard != Some(s) {
            plan.torn_write = 0.0;
            plan.partial_flush = 0.0;
        }
        plan.crash_at = schedule
            .crashes
            .iter()
            .find(|&&(cs, _)| cs == s)
            .map(|&(_, at)| at);
        let armed = plan.crash_at.is_some()
            || plan.torn_write > 0.0
            || plan.partial_flush > 0.0
            || plan.trap_every.is_some();
        world.mc.cores[s].faults = armed.then(|| FaultInjector::new(plan));
    }

    let rep = run_fleet(
        &mut world.mc,
        world.workload.as_mut(),
        &world.original,
        world.initial.clone(),
        &fleet_opts,
    )?;

    let mut run = FleetScheduleRun {
        violations: rep.violations.clone(),
        crashes: rep.crashes,
        recoveries: rep.recoveries,
        served: rep.served(),
        shed: rep.forward_shed + rep.timeouts + rep.shards.iter().map(|s| s.shed_jobs).sum::<u64>(),
        retries: rep.retries,
        rollout_deploys: rep.rollout_deploys,
        rollout_frozen: rep.rollout_frozen,
        steals: rep.steals,
        events: rep.events.len() as u64,
        fleet_hash: rep.fleet_hash(),
    };

    audit_bounded_unavailability(&rep, schedule, fleet_opts.epochs, &mut run.violations);
    Ok(run)
}

/// Oracle 4: every injected crash is bounded — at most one per armed
/// shard, and each crash not in the final epoch has a matching recovery.
fn audit_bounded_unavailability(
    rep: &FleetReport,
    schedule: &FleetChaosSchedule,
    epochs: u64,
    violations: &mut Vec<String>,
) {
    if rep.crashes > schedule.crashes.len() as u64 {
        violations.push(format!(
            "oracle/bounded-unavailability: {} crashes observed for {} scheduled",
            rep.crashes,
            schedule.crashes.len()
        ));
    }
    for e in &rep.events {
        if let FleetEvent::ShardCrashed {
            epoch,
            shard,
            point,
        } = e
        {
            if *epoch + 1 >= epochs {
                continue; // crashed in the final epoch: no epoch left to recover in
            }
            // `>=`: a crash during initial-deploy persistence is
            // labeled epoch 0 and recovers at the top of epoch 0; with
            // at most one crash per shard the match is unambiguous.
            let recovered = rep.events.iter().any(|r| {
                matches!(r, FleetEvent::ShardRecovered { epoch: re, shard: rs, .. }
                    if rs == shard && *re >= *epoch)
            });
            if !recovered {
                violations.push(format!(
                    "oracle/bounded-unavailability: shard {shard} crashed at epoch {epoch} \
                     ({point}) and never recovered"
                ));
            }
        }
    }
}

/// Draws one randomized fleet schedule over `shards` shards. Tuned so
/// most schedules combine a rollout with one or two fault arms — the
/// regime the rolling-deploy gates must survive.
pub fn random_fleet_schedule(rng: &mut SplitMix64, shards: usize) -> FleetChaosSchedule {
    let mut plan = FaultPlan::none(rng.next_u64());
    if rng.next_f64() < 0.50 {
        plan = plan.with_torn_write(0.3 + 0.7 * rng.next_f64());
    }
    if rng.next_f64() < 0.35 {
        plan = plan.with_partial_flush(0.2 + 0.5 * rng.next_f64());
    }
    let n_crashes = match rng.next_below(8) {
        0 | 1 => 0,
        2..=5 => 1,
        _ => 2,
    } as usize;
    let mut crashed: Vec<usize> = Vec::new();
    let mut crashes = Vec::new();
    for _ in 0..n_crashes.min(shards) {
        let s = rng.next_below(shards as u64) as usize;
        if crashed.contains(&s) {
            continue; // at most one crash per shard
        }
        crashed.push(s);
        crashes.push((s, 1 + rng.next_below(24)));
    }
    let torn_shard = (rng.next_f64() < 0.50).then(|| rng.next_below(shards as u64) as usize);
    let runaway_shard = (rng.next_f64() < 0.25).then(|| rng.next_below(shards as u64) as usize);
    let rollout = rng.next_f64() < 0.60;
    FleetChaosSchedule {
        plan,
        crashes,
        torn_shard,
        runaway_shard,
        rollout,
        poisoned: rollout && rng.next_f64() < 0.25,
    }
}

/// Aggregate outcome of a fleet campaign batch.
#[derive(Clone, Debug, Default)]
pub struct FleetCampaignReport {
    /// Schedules executed.
    pub campaigns: u64,
    /// Schedules with at least one oracle violation.
    pub violating: u64,
    /// Every violating schedule with its violations, in campaign order.
    pub violations: Vec<(FleetChaosSchedule, Vec<String>)>,
    /// Shard crashes injected across all campaigns.
    pub crashes: u64,
    /// Shard recoveries across all campaigns.
    pub recoveries: u64,
    /// Jobs served across all campaigns.
    pub served: u64,
    /// Requests shed across all campaigns.
    pub shed: u64,
    /// Rollout deploys across all campaigns.
    pub rollout_deploys: u64,
    /// Rollouts frozen across all campaigns.
    pub rollouts_frozen: u64,
    /// Scavenger slice-epochs stolen across all campaigns.
    pub steals: u64,
    /// Order-sensitive fold of every campaign's fleet hash — one number
    /// certifying the whole batch replayed bit-for-bit.
    pub xr_hash: u64,
}

/// Runs `n` seed-derived random fleet schedules and aggregates.
/// Campaign `i` of seed `s` is identical across processes and reruns.
pub fn run_fleet_campaigns(
    factory: &mut dyn FnMut(&FleetChaosSchedule) -> FleetChaosWorld,
    n: u64,
    seed: u64,
    opts: &FleetChaosOptions,
) -> Result<FleetCampaignReport, FleetChaosError> {
    let mut rng = SplitMix64::new(seed ^ 0xF1EE_7C40);
    let mut rep = FleetCampaignReport::default();
    for _ in 0..n {
        let schedule = random_fleet_schedule(&mut rng, opts.fleet.shards);
        let run = run_fleet_schedule(factory, &schedule, opts)?;
        rep.campaigns += 1;
        rep.crashes += run.crashes;
        rep.recoveries += run.recoveries;
        rep.served += run.served;
        rep.shed += run.shed;
        rep.rollout_deploys += run.rollout_deploys;
        rep.rollouts_frozen += u64::from(run.rollout_frozen);
        rep.steals += run.steals;
        rep.xr_hash = fleet_mix(rep.xr_hash, run.fleet_hash);
        if !run.violations.is_empty() {
            rep.violating += 1;
            rep.violations.push((schedule, run.violations));
        }
    }
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degrade::{DegradeOptions, Rung};
    use crate::dualmode::{DualModeOptions, WatchdogOptions};
    use crate::fleet::{Arrival, FleetOptions};
    use crate::pgo_pipeline_degrading;
    use crate::pipeline::{lint_gate, verify_gate};
    use crate::supervisor::SupervisorOptions;
    use reach_profile::{OnlineEstimatorOptions, Periods};
    use reach_sim::{AluOp, Cond, Context, MultiCoreConfig, ProgramBuilder, Reg};
    use reach_workloads::{build_zipf_kv, AddrAlloc, InstanceSetup, ZipfKvParams};

    const LOOKUPS: u64 = 1024;

    struct ShardStreams {
        live: Vec<InstanceSetup>,
        cursor: usize,
        prof: Vec<InstanceSetup>,
        prof_cursor: usize,
    }

    /// The fleet test service with the runaway arm: the schedule's
    /// runaway shard swaps its scavenger pool to a spin loop for a
    /// burst of mid-run epochs.
    struct ChaosFleetService {
        per: Vec<ShardStreams>,
        shards: usize,
        per_epoch: usize,
        runaway_shard: Option<usize>,
        runaway: Program,
    }

    impl FleetWorkload for ChaosFleetService {
        fn arrivals(&mut self, epoch: u64) -> Vec<Arrival> {
            (0..self.per_epoch)
                .map(|i| {
                    let owner = (epoch as usize + i) % self.shards;
                    Arrival {
                        ingress: (owner + 1) % self.shards,
                        owner,
                    }
                })
                .collect()
        }
        fn primary_context(&mut self, shard: usize, _job: u64) -> Context {
            let p = &mut self.per[shard];
            let i = p.cursor;
            p.cursor += 1;
            p.live[i % p.live.len()].make_context(1_000 + i)
        }
        fn scavenger_context(
            &mut self,
            shard: usize,
            _epoch: u64,
            _job: u64,
            _slot: usize,
        ) -> Context {
            let p = &mut self.per[shard];
            let i = p.cursor;
            p.cursor += 1;
            p.live[i % p.live.len()].make_context(1_000 + i)
        }
        fn scavenger_program(&mut self, shard: usize, epoch: u64) -> Option<Program> {
            (self.runaway_shard == Some(shard) && (3..6).contains(&epoch))
                .then(|| self.runaway.clone())
        }
        fn profiling_contexts(&mut self, shard: usize, _attempt: u32) -> Vec<Context> {
            let p = &mut self.per[shard];
            let n = p.prof.len();
            (0..2)
                .map(|_| {
                    let i = p.prof_cursor;
                    p.prof_cursor += 1;
                    p.prof[i % n].make_context(9_000 + i)
                })
                .collect()
        }
    }

    fn runaway_prog() -> Program {
        let mut b = ProgramBuilder::new("runaway");
        b.imm(Reg(1), 1);
        let top = b.label();
        b.bind(top);
        b.alu(AluOp::Add, Reg(2), Reg(2), Reg(1), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        b.finish().unwrap()
    }

    fn fast_degrade() -> DegradeOptions {
        let mut d = DegradeOptions::default();
        d.pipeline.collector.periods = Periods {
            l2_miss: 13,
            l3_miss: 13,
            stall: 13,
            retired: 13,
        };
        d
    }

    fn chaos_sup() -> SupervisorOptions {
        SupervisorOptions {
            epochs: 10,
            service_per_epoch: 1,
            scavengers: 2,
            insitu_period: 31,
            estimator: OnlineEstimatorOptions {
                window: 2048,
                min_samples: 8,
            },
            staleness_threshold: 0.6,
            seed: 42,
            degrade: fast_degrade(),
            dual: DualModeOptions {
                drain_scavengers: false,
                isolate_faults: true,
                watchdog: Some(WatchdogOptions {
                    slice_steps: 2_000,
                    overrun_cycles: 500,
                    max_overruns: u32::MAX,
                    ..WatchdogOptions::default()
                }),
                ..DualModeOptions::default()
            },
            ..SupervisorOptions::default()
        }
    }

    fn chaos_fleet_opts(shards: usize) -> FleetChaosOptions {
        let mut o = FleetChaosOptions::new(FleetOptions {
            shards,
            epochs: 10,
            sup: chaos_sup(),
            seed: 7,
            ..FleetOptions::default()
        });
        o.rollout_template = RolloutOptions {
            start_epoch: 2,
            health_epochs: 1,
            p99_factor: 100.0,
            poison: None,
        };
        o
    }

    /// Builds one fresh fleet world for a schedule: identical per-core
    /// zipf tables (one shared program + initial build), runaway arm
    /// wired to the schedule's runaway shard.
    fn fleet_factory(shards: usize) -> impl FnMut(&FleetChaosSchedule) -> FleetChaosWorld {
        move |schedule: &FleetChaosSchedule| {
            let mut mc = MultiCore::new(MultiCoreConfig::new(shards));
            let mut per = Vec::new();
            let mut orig: Option<Program> = None;
            for s in 0..shards {
                let m = &mut mc.cores[s];
                let mut alloc = AddrAlloc::new(0x800_0000);
                let params = |theta: f64, seed: u64| ZipfKvParams {
                    table_entries: 1 << 15,
                    lookups: LOOKUPS,
                    theta,
                    seed,
                };
                let live = build_zipf_kv(&mut m.mem, &mut alloc, params(3.0, 13), 56);
                let prof = build_zipf_kv(&mut m.mem, &mut alloc, params(3.0, 17), 12);
                match &orig {
                    None => orig = Some(live.prog.clone()),
                    Some(o) => assert_eq!(o.fingerprint(), live.prog.fingerprint()),
                }
                per.push(ShardStreams {
                    live: live.instances,
                    cursor: 0,
                    prof: prof.instances,
                    prof_cursor: 0,
                });
            }
            let orig = orig.unwrap();
            let mut svc = ChaosFleetService {
                per,
                shards,
                per_epoch: 2,
                runaway_shard: schedule.runaway_shard,
                runaway: runaway_prog(),
            };
            let built = {
                let mc0 = &mut mc.cores[0];
                pgo_pipeline_degrading(
                    mc0,
                    &orig,
                    |a| svc.profiling_contexts(0, a),
                    &fast_degrade(),
                )
            };
            assert_eq!(built.rung, Rung::FullPgo, "{:?}", built.reasons);
            FleetChaosWorld {
                mc,
                workload: Box::new(svc),
                original: orig,
                initial: DeployedBuild::from(built),
            }
        }
    }

    #[test]
    fn quiet_schedule_replays_bit_for_bit() {
        let opts = chaos_fleet_opts(2);
        let mut factory = fleet_factory(2);
        let schedule = FleetChaosSchedule {
            rollout: true,
            ..FleetChaosSchedule::quiet(3)
        };
        let a = run_fleet_schedule(&mut factory, &schedule, &opts).unwrap();
        let b = run_fleet_schedule(&mut factory, &schedule, &opts).unwrap();
        assert_eq!(a.violations, Vec::<String>::new());
        assert!(a.served > 0);
        assert_eq!(a.crashes, 0);
        assert!(a.rollout_deploys >= 1, "quiet rollout should deploy");
        assert_eq!(
            a.fleet_hash, b.fleet_hash,
            "fleet chaos replay must be byte-identical"
        );
    }

    #[test]
    fn crashed_shard_recovers_and_oracles_hold() {
        let opts = chaos_fleet_opts(2);
        let mut factory = fleet_factory(2);
        let schedule = FleetChaosSchedule {
            plan: FaultPlan::none(0xD1E).with_torn_write(0.8),
            crashes: vec![(0, 3)],
            torn_shard: Some(0),
            rollout: true,
            ..FleetChaosSchedule::quiet(0xD1E)
        };
        let run = run_fleet_schedule(&mut factory, &schedule, &opts).unwrap();
        assert_eq!(
            run.violations,
            Vec::<String>::new(),
            "repro: {}",
            schedule.repro()
        );
        assert_eq!(run.crashes, 1, "the scheduled crash must fire");
        assert_eq!(run.recoveries, 1, "the crashed shard must recover");
    }

    #[test]
    fn poisoned_rollout_is_contained_under_crash_chaos() {
        let opts = chaos_fleet_opts(2);
        let mut factory = fleet_factory(2);
        let schedule = FleetChaosSchedule {
            crashes: vec![(0, 6)],
            rollout: true,
            poisoned: true,
            ..FleetChaosSchedule::quiet(0xBAD)
        };
        let run = run_fleet_schedule(&mut factory, &schedule, &opts).unwrap();
        assert_eq!(
            run.violations,
            Vec::<String>::new(),
            "repro: {}",
            schedule.repro()
        );
        assert!(
            run.rollout_deploys <= 1,
            "poison must never reach a second shard"
        );
    }

    #[test]
    fn runaway_shard_is_survived() {
        let opts = chaos_fleet_opts(2);
        let mut factory = fleet_factory(2);
        let schedule = FleetChaosSchedule {
            runaway_shard: Some(1),
            ..FleetChaosSchedule::quiet(5)
        };
        let run = run_fleet_schedule(&mut factory, &schedule, &opts).unwrap();
        assert_eq!(
            run.violations,
            Vec::<String>::new(),
            "repro: {}",
            schedule.repro()
        );
        assert!(run.served > 0);
    }

    #[test]
    fn degenerate_schedules_are_typed_errors() {
        let mut opts = chaos_fleet_opts(2);
        let mut factory = fleet_factory(2);
        let mut runaway = FleetChaosSchedule::quiet(1);
        runaway.runaway_shard = Some(0);
        opts.fleet.sup.dual.watchdog = None;
        assert_eq!(
            run_fleet_schedule(&mut factory, &runaway, &opts).unwrap_err(),
            FleetChaosError::RunawayWithoutWatchdog
        );
        let opts = chaos_fleet_opts(2);
        let mut oob = FleetChaosSchedule::quiet(1);
        oob.crashes = vec![(9, 1)];
        assert_eq!(
            run_fleet_schedule(&mut factory, &oob, &opts).unwrap_err(),
            FleetChaosError::CrashShardOutOfRange
        );
    }

    #[test]
    fn poison_is_caught_by_gates_and_recovery_repin_is_trusted() {
        // The poison mutator must actually produce a gate-detectable
        // artifact, or the containment oracles test nothing.
        let mut factory = fleet_factory(2);
        let world = factory(&FleetChaosSchedule::quiet(0));
        let sup = chaos_sup();
        let mut poisoned = world.initial.clone();
        poison_yield_saves(&mut poisoned);
        let lint = &sup.degrade.pipeline.lint;
        let caught = lint_gate(&poisoned.prog, &poisoned.origin, lint).is_err()
            || verify_gate(&world.original, &poisoned.prog, &poisoned.origin, lint).is_err();
        assert!(
            caught,
            "poison_yield_saves must be detectable by the swap gates"
        );
    }

    #[test]
    fn fleet_campaign_batch_is_deterministic_and_clean() {
        let opts = chaos_fleet_opts(2);
        let run = || {
            let mut factory = fleet_factory(2);
            run_fleet_campaigns(&mut factory, 5, 0xF1EE7, &opts).unwrap()
        };
        let a = run();
        for (s, v) in &a.violations {
            eprintln!("violating schedule: {}\n  {:?}", s.repro(), v);
        }
        assert_eq!(
            a.violating, 0,
            "fixed-seed campaign batch must be violation-free"
        );
        assert_eq!(a.campaigns, 5);
        assert!(a.served > 0);
        let b = run();
        assert_eq!(
            a.xr_hash, b.xr_hash,
            "campaign batch must replay bit-for-bit"
        );
    }
}

//! The fleet supervisor: N per-core shard supervisors composed under
//! one deterministic fleet clock.
//!
//! Everything the single-shard supervisor does — dual-mode serving,
//! staleness-triggered rebuilds, circuit breaking, journaled crash
//! recovery — keeps happening *per shard*, unchanged, on that shard's
//! own core of a [`MultiCore`]. This module adds the failure modes only
//! a fleet can express, each behind an explicit, journal-auditable
//! rule:
//!
//! * **Key-sharded routing with bounded forwarding** — every request
//!   has an owner shard; requests that land elsewhere (or arrive while
//!   the owner is draining or down) wait in a bounded forwarding queue
//!   with per-request timeout and deterministic-jitter retry backoff,
//!   and are shed on overflow. No request is ever silently re-homed: a
//!   key's data lives on its owner, so serving it elsewhere would be a
//!   wrong answer, not a slow one.
//! * **Rolling re-instrumentation deploys** — one shard at a time:
//!   drain (stop admissions, serve the backlog down), build + gate the
//!   new instrumented binary, deploy, then watch a health window before
//!   touching the next shard. The whole rollout sits behind a
//!   max-unavailable=1 gate: a drain only begins while every shard is
//!   serving, and any crash cancels an in-progress drain.
//! * **Fleet-level correlated-failure detection** — per-shard breakers
//!   already contain local rebuild storms; when ≥ `breaker_k` breakers
//!   open within `breaker_window` epochs, that is no longer a local
//!   problem. The fleet freezes any rollout and pins the last-known-good
//!   build fleet-wide.
//! * **Work-stealing of scavenger slices** — a draining or crashed
//!   shard's scavenger budget is idle capacity; it is granted
//!   round-robin to the serving shards as a volatile (never journaled)
//!   bonus, and reclaimed the moment the donor returns.
//!
//! Determinism carries over wholesale: the router's jitter comes from
//! one seeded [`SplitMix64`], shard seeds derive from the fleet seed,
//! and the fleet event log serializes to canonical JSON with an FNV-1a
//! digest, so a fleet replay is byte-identical — the property the fleet
//! chaos engine gates on.

use crate::chaos::build_is_trusted;
use crate::degrade::{pgo_pipeline_degrading, Rung};
use crate::journal::{fnv1a, project, Journal};
use crate::metrics::percentile;
use crate::pipeline::{lint_gate, verify_gate};
use crate::supervisor::{
    incidents_hash, recover, validate_options, BreakerState, CrashPoint, DeployedBuild, EpochLoop,
    Incident, RecoverOptions, ServiceWorkload, SupervisorConfigError, SupervisorOptions,
};
use reach_profile::Json;
use reach_sim::{Context, MultiCore, Program, SplitMix64};
use std::collections::VecDeque;

/// One request entering the fleet: where it landed and which shard owns
/// its key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Shard the request arrived at (the load balancer's pick).
    pub ingress: usize,
    /// Shard that owns the request's key and must serve it.
    pub owner: usize,
}

/// The sharded service the fleet runs. The fleet owns admission and
/// routing; the workload provides traffic and per-shard contexts, like
/// [`ServiceWorkload`] does for one shard. Job numbers are per-shard
/// admission sequence numbers.
pub trait FleetWorkload {
    /// Requests arriving fleet-wide at the start of `epoch`.
    fn arrivals(&mut self, epoch: u64) -> Vec<Arrival>;
    /// Primary context for `shard`'s job number `job`.
    fn primary_context(&mut self, shard: usize, job: u64) -> Context;
    /// Scavenger-pool context for `slot` while `shard` serves `job`.
    fn scavenger_context(&mut self, shard: usize, epoch: u64, job: u64, slot: usize) -> Context;
    /// Optional scavenger-pool program override for `shard` during
    /// `epoch` (the fleet chaos runaway arm).
    fn scavenger_program(&mut self, _shard: usize, _epoch: u64) -> Option<Program> {
        None
    }
    /// Fresh profiling contexts for `shard`'s rebuild attempt `attempt`.
    fn profiling_contexts(&mut self, shard: usize, attempt: u32) -> Vec<Context>;
}

/// Adapts one shard's slice of a [`FleetWorkload`] to the single-shard
/// [`ServiceWorkload`] the epoch loop serves. The fleet router decides
/// admissions, so `arrivals` returns whatever the router granted this
/// epoch rather than consulting the workload.
struct ShardAdapter<'a> {
    shard: usize,
    admitted: usize,
    fleet: &'a mut dyn FleetWorkload,
}

impl ServiceWorkload for ShardAdapter<'_> {
    fn arrivals(&mut self, _epoch: u64) -> usize {
        self.admitted
    }
    fn primary_context(&mut self, job: u64) -> Context {
        self.fleet.primary_context(self.shard, job)
    }
    fn scavenger_context(&mut self, epoch: u64, job: u64, slot: usize) -> Context {
        self.fleet.scavenger_context(self.shard, epoch, job, slot)
    }
    fn scavenger_program(&mut self, epoch: u64) -> Option<Program> {
        self.fleet.scavenger_program(self.shard, epoch)
    }
    fn profiling_contexts(&mut self, attempt: u32) -> Vec<Context> {
        self.fleet.profiling_contexts(self.shard, attempt)
    }
}

/// Rolling-deploy configuration.
#[derive(Clone, Copy, Debug)]
pub struct RolloutOptions {
    /// Fleet epoch at which the rollout may begin.
    pub start_epoch: u64,
    /// Serving epochs the freshly-deployed shard is watched before the
    /// rollout advances to the next shard.
    pub health_epochs: u64,
    /// Health gate: post-deploy p99 above `pre-drain p99 × p99_factor`
    /// fails the window (any new job fault fails it outright).
    pub p99_factor: f64,
    /// Fault hook: corrupts the rollout build *after* the build-time
    /// gates pass — the supply-chain window the per-shard re-validation
    /// and the health gate exist to contain.
    pub poison: Option<fn(&mut DeployedBuild)>,
}

impl Default for RolloutOptions {
    fn default() -> Self {
        RolloutOptions {
            start_epoch: 2,
            health_epochs: 2,
            p99_factor: 3.0,
            poison: None,
        }
    }
}

/// Configuration for [`run_fleet`].
#[derive(Clone, Debug)]
pub struct FleetOptions {
    /// Shard count; must equal the [`MultiCore`]'s core count.
    pub shards: usize,
    /// Fleet epochs to run (each shard's `sup.epochs` is overridden).
    pub epochs: u64,
    /// Per-shard supervisor template. Shard `s` runs it with seed
    /// `mix(seed, s)`; everything else is shared.
    pub sup: SupervisorOptions,
    /// Forwarding-queue bound; requests beyond it are shed on arrival.
    pub forward_bound: usize,
    /// Epochs a queued request may wait before it is shed as timed out.
    pub forward_timeout_epochs: u64,
    /// Base retry backoff (epochs); doubles per attempt, plus jitter.
    pub forward_backoff_base: u64,
    /// Retry backoff cap (epochs), before jitter.
    pub forward_backoff_max: u64,
    /// Rolling re-instrumentation deploy; `None` = steady state.
    pub rollout: Option<RolloutOptions>,
    /// Correlated-failure threshold: this many breaker-opens within
    /// `breaker_window` freezes the rollout and pins the LKG build.
    pub breaker_k: usize,
    /// Sliding window (epochs) for correlated breaker detection.
    pub breaker_window: u64,
    /// Grant drained/down shards' scavenger slices to serving shards.
    pub steal: bool,
    /// Fleet seed: router jitter and per-shard seed derivation.
    pub seed: u64,
    /// Crash-recovery options for every shard.
    pub recover: RecoverOptions,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            shards: 2,
            epochs: 16,
            sup: SupervisorOptions::default(),
            forward_bound: 16,
            forward_timeout_epochs: 4,
            forward_backoff_base: 1,
            forward_backoff_max: 4,
            rollout: None,
            breaker_k: 2,
            breaker_window: 8,
            steal: true,
            seed: 0,
            recover: RecoverOptions { revalidate: true },
        }
    }
}

/// A fleet configuration [`run_fleet`] refuses to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetConfigError {
    /// The per-shard supervisor template is degenerate.
    Supervisor(SupervisorConfigError),
    /// `shards == 0`.
    ZeroShards,
    /// `shards` does not match the machine's core count.
    ShardCoreMismatch,
    /// `breaker_k == 0`: the fleet would freeze before the first epoch.
    ZeroBreakerK,
}

impl From<SupervisorConfigError> for FleetConfigError {
    fn from(e: SupervisorConfigError) -> Self {
        FleetConfigError::Supervisor(e)
    }
}

impl std::fmt::Display for FleetConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetConfigError::Supervisor(e) => e.fmt(f),
            FleetConfigError::ZeroShards => write!(f, "shards must be >= 1"),
            FleetConfigError::ShardCoreMismatch => {
                write!(f, "shards must equal the MultiCore core count")
            }
            FleetConfigError::ZeroBreakerK => write!(f, "breaker_k must be >= 1"),
        }
    }
}

impl std::error::Error for FleetConfigError {}

/// One fleet-level control-plane event. Canonical JSON, like the
/// per-shard [`Incident`] log: the fleet replay-determinism hash covers
/// both.
#[derive(Clone, Debug, PartialEq)]
pub enum FleetEvent {
    /// The rolling deploy began.
    RolloutStarted {
        /// Fleet epoch.
        epoch: u64,
    },
    /// A shard stopped admitting and began serving its backlog down.
    DrainStarted {
        /// Fleet epoch.
        epoch: u64,
        /// Draining shard.
        shard: u64,
    },
    /// The rollout build was deployed to a drained shard.
    RolloutDeployed {
        /// Fleet epoch.
        epoch: u64,
        /// Receiving shard.
        shard: u64,
        /// Deployed rung.
        rung: Rung,
    },
    /// A freshly-deployed shard served its health window cleanly.
    HealthPassed {
        /// Fleet epoch.
        epoch: u64,
        /// The watched shard.
        shard: u64,
    },
    /// The rollout froze; no further shard will receive the build.
    RolloutFrozen {
        /// Fleet epoch.
        epoch: u64,
        /// Why.
        reason: String,
    },
    /// A shard was re-pinned to the last-known-good build.
    RevertedToLkg {
        /// Fleet epoch.
        epoch: u64,
        /// Re-pinned shard.
        shard: u64,
    },
    /// Every shard runs the rollout build; it is the new LKG.
    RolloutCompleted {
        /// Fleet epoch.
        epoch: u64,
    },
    /// A shard's injected crash channel fired.
    ShardCrashed {
        /// Fleet epoch.
        epoch: u64,
        /// Crashed shard.
        shard: u64,
        /// Loop stage the crash landed in.
        point: CrashPoint,
    },
    /// A crashed shard recovered and resumed serving.
    ShardRecovered {
        /// Fleet epoch.
        epoch: u64,
        /// Recovered shard.
        shard: u64,
        /// True when recovery fell down the ladder.
        degraded: bool,
    },
    /// ≥ `breaker_k` per-shard breakers opened within the window.
    CorrelatedBreakers {
        /// Fleet epoch.
        epoch: u64,
        /// Breaker-opens inside the window.
        opens: u64,
    },
    /// Idle scavenger slices were granted to the serving shards.
    StealGranted {
        /// Fleet epoch.
        epoch: u64,
        /// Unavailable (donating) shards.
        donors: u64,
        /// Total slices granted this epoch (split evenly, remainder to
        /// the lowest-indexed serving shards).
        granted: u64,
    },
}

impl FleetEvent {
    fn to_json(&self) -> Json {
        let kv = |k: &str, v: Json| (k.to_string(), v);
        let fields = match self {
            FleetEvent::RolloutStarted { epoch } => vec![
                kv("kind", Json::Str("rollout-started".into())),
                kv("epoch", Json::UInt(*epoch)),
            ],
            FleetEvent::DrainStarted { epoch, shard } => vec![
                kv("kind", Json::Str("drain-started".into())),
                kv("epoch", Json::UInt(*epoch)),
                kv("shard", Json::UInt(*shard)),
            ],
            FleetEvent::RolloutDeployed { epoch, shard, rung } => vec![
                kv("kind", Json::Str("rollout-deployed".into())),
                kv("epoch", Json::UInt(*epoch)),
                kv("shard", Json::UInt(*shard)),
                kv("rung", Json::Str(rung.to_string())),
            ],
            FleetEvent::HealthPassed { epoch, shard } => vec![
                kv("kind", Json::Str("health-passed".into())),
                kv("epoch", Json::UInt(*epoch)),
                kv("shard", Json::UInt(*shard)),
            ],
            FleetEvent::RolloutFrozen { epoch, reason } => vec![
                kv("kind", Json::Str("rollout-frozen".into())),
                kv("epoch", Json::UInt(*epoch)),
                kv("reason", Json::Str(reason.clone())),
            ],
            FleetEvent::RevertedToLkg { epoch, shard } => vec![
                kv("kind", Json::Str("reverted-to-lkg".into())),
                kv("epoch", Json::UInt(*epoch)),
                kv("shard", Json::UInt(*shard)),
            ],
            FleetEvent::RolloutCompleted { epoch } => vec![
                kv("kind", Json::Str("rollout-completed".into())),
                kv("epoch", Json::UInt(*epoch)),
            ],
            FleetEvent::ShardCrashed {
                epoch,
                shard,
                point,
            } => vec![
                kv("kind", Json::Str("shard-crashed".into())),
                kv("epoch", Json::UInt(*epoch)),
                kv("shard", Json::UInt(*shard)),
                kv("point", Json::Str(point.as_str().into())),
            ],
            FleetEvent::ShardRecovered {
                epoch,
                shard,
                degraded,
            } => vec![
                kv("kind", Json::Str("shard-recovered".into())),
                kv("epoch", Json::UInt(*epoch)),
                kv("shard", Json::UInt(*shard)),
                kv("degraded", Json::UInt(u64::from(*degraded))),
            ],
            FleetEvent::CorrelatedBreakers { epoch, opens } => vec![
                kv("kind", Json::Str("correlated-breakers".into())),
                kv("epoch", Json::UInt(*epoch)),
                kv("opens", Json::UInt(*opens)),
            ],
            FleetEvent::StealGranted {
                epoch,
                donors,
                granted,
            } => vec![
                kv("kind", Json::Str("steal-granted".into())),
                kv("epoch", Json::UInt(*epoch)),
                kv("donors", Json::UInt(*donors)),
                kv("granted", Json::UInt(*granted)),
            ],
        };
        Json::Object(fields)
    }
}

/// Canonical JSON text of a fleet event sequence.
pub fn fleet_events_json(events: &[FleetEvent]) -> String {
    Json::Array(events.iter().map(FleetEvent::to_json).collect()).to_string()
}

/// FNV-1a digest of [`fleet_events_json`].
pub fn fleet_events_hash(events: &[FleetEvent]) -> u64 {
    fnv1a(fleet_events_json(events).as_bytes())
}

/// One shard's totals across every crash segment of the fleet run.
#[derive(Clone, Debug)]
pub struct ShardSummary {
    /// Jobs served to completion.
    pub served: u64,
    /// Jobs shed by the shard's own admission queue.
    pub shed_jobs: u64,
    /// Jobs whose primary faulted.
    pub job_faults: u64,
    /// Deployment changes (local swaps, breaker fallbacks, rollouts).
    pub swaps: u64,
    /// Local rebuild attempts.
    pub rebuilds: u64,
    /// Injected crashes this shard took.
    pub crashes: u64,
    /// Recoveries that fell down the ladder.
    pub recoveries_degraded: u64,
    /// `(epoch, primary latency)` per served job, across segments.
    pub latencies: Vec<(u64, u64)>,
    /// Concatenated incident log (segments + recoveries), the unit of
    /// the per-shard replay-determinism contract.
    pub incidents: Vec<Incident>,
    /// Rung serving traffic at fleet end.
    pub final_rung: Rung,
    /// Breaker state at fleet end.
    pub breaker: BreakerState,
}

impl Default for ShardSummary {
    fn default() -> Self {
        ShardSummary {
            served: 0,
            shed_jobs: 0,
            job_faults: 0,
            swaps: 0,
            rebuilds: 0,
            crashes: 0,
            recoveries_degraded: 0,
            latencies: Vec::new(),
            incidents: Vec::new(),
            final_rung: Rung::Uninstrumented,
            breaker: BreakerState::Closed,
        }
    }
}

impl ShardSummary {
    /// FNV-1a digest of this shard's concatenated incident log.
    pub fn incident_hash(&self) -> u64 {
        incidents_hash(&self.incidents)
    }

    /// p99 primary latency across the whole run.
    pub fn p99(&self) -> u64 {
        let v: Vec<u64> = self.latencies.iter().map(|(_, l)| *l).collect();
        percentile(&v, 0.99)
    }
}

/// Everything the fleet run did, measured, and audited.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Per-shard totals, indexed by shard.
    pub shards: Vec<ShardSummary>,
    /// The fleet control-plane event log, in order.
    pub events: Vec<FleetEvent>,
    /// Requests admitted directly at their owner.
    pub admitted_direct: u64,
    /// Requests that needed a cross-shard forward.
    pub forwarded: u64,
    /// Retry attempts by queued requests.
    pub retries: u64,
    /// Queued requests shed after `forward_timeout_epochs`.
    pub timeouts: u64,
    /// Requests shed because the forwarding queue was full.
    pub forward_shed: u64,
    /// Crashes across all shards.
    pub crashes: u64,
    /// Recoveries across all shards.
    pub recoveries: u64,
    /// Epochs in which no shard was down or draining.
    pub healthy_epochs: u64,
    /// Minimum serving-shard count over crash-free epochs (the
    /// (N−1)/N capacity oracle's witness).
    pub min_serving_healthy: usize,
    /// Shards the rollout build reached.
    pub rollout_deploys: u64,
    /// True when the rollout deployed to every shard and became LKG.
    pub rollout_completed: bool,
    /// True when the rollout froze.
    pub rollout_frozen: bool,
    /// Scavenger slices granted via work-stealing (slice-epochs).
    pub steals: u64,
    /// Fleet oracle violations (empty on a healthy run).
    pub violations: Vec<String>,
}

impl FleetReport {
    /// Order-sensitive digest of the whole fleet's logs: every shard's
    /// incident hash folded with the fleet event hash. Byte-identical
    /// across replays — the fleet determinism contract.
    pub fn fleet_hash(&self) -> u64 {
        let mut h = fleet_events_hash(&self.events);
        for s in &self.shards {
            h = fleet_mix(h, s.incident_hash());
        }
        h
    }

    /// Total jobs served fleet-wide.
    pub fn served(&self) -> u64 {
        self.shards.iter().map(|s| s.served).sum()
    }
}

/// The seed shard `shard` runs under for fleet seed `fleet_seed` —
/// exposed so differential tests can configure a standalone supervisor
/// identically to a fleet shard.
pub fn shard_seed(fleet_seed: u64, shard: u64) -> u64 {
    fleet_mix(fleet_seed, shard)
}

pub(crate) fn fleet_mix(seed: u64, k: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(k.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Why a shard is not currently serving.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ShardState {
    Serving,
    Draining,
    Down,
}

/// A request waiting for its owner shard to come back.
#[derive(Clone, Copy, Debug)]
struct QueuedRequest {
    owner: usize,
    enqueued: u64,
    next_try: u64,
    attempts: u32,
}

/// Rollout progress.
#[derive(Clone, Copy)]
enum RolloutPhase {
    Idle,
    Draining {
        shard: usize,
    },
    Health {
        shard: usize,
        left: u64,
        deploy_epoch: u64,
        baseline_p99: u64,
        baseline_faults: u64,
    },
    Done,
    Frozen,
}

struct Shard {
    el: Option<EpochLoop>,
    journal: Journal,
    sup: SupervisorOptions,
    state: ShardState,
    summary: ShardSummary,
    /// Pending recovery: set when the shard crashed and recovery has
    /// not run yet (it runs at the top of the next epoch).
    needs_recovery: bool,
}

/// Runs the sharded fleet for `opts.epochs` fleet epochs on
/// `mc.cores[shard]` per shard, journaled throughout, and audits the
/// fleet oracles inline. Crashes injected through a core's fault
/// channel down that shard for the epoch; it recovers through
/// [`recover`] at the top of the next one.
pub fn run_fleet(
    mc: &mut MultiCore,
    workload: &mut dyn FleetWorkload,
    original: &Program,
    initial: DeployedBuild,
    opts: &FleetOptions,
) -> Result<FleetReport, FleetConfigError> {
    if opts.shards == 0 {
        return Err(FleetConfigError::ZeroShards);
    }
    if opts.shards != mc.len() {
        return Err(FleetConfigError::ShardCoreMismatch);
    }
    if opts.breaker_k == 0 {
        return Err(FleetConfigError::ZeroBreakerK);
    }

    let mut rng = SplitMix64::new(opts.seed ^ 0xF1EE_7000);
    let mut shards: Vec<Shard> = Vec::with_capacity(opts.shards);
    for s in 0..opts.shards {
        let mut sup = opts.sup.clone();
        sup.epochs = opts.epochs;
        sup.seed = fleet_mix(opts.seed, s as u64);
        validate_options(&sup)?;
        shards.push(Shard {
            el: Some(EpochLoop::new(initial.clone(), &sup, None)),
            journal: Journal::new(),
            sup,
            state: ShardState::Serving,
            summary: ShardSummary {
                final_rung: initial.rung,
                ..ShardSummary::default()
            },
            needs_recovery: false,
        });
    }

    let mut rep = FleetReport {
        shards: Vec::new(),
        events: Vec::new(),
        admitted_direct: 0,
        forwarded: 0,
        retries: 0,
        timeouts: 0,
        forward_shed: 0,
        crashes: 0,
        recoveries: 0,
        healthy_epochs: 0,
        min_serving_healthy: opts.shards,
        rollout_deploys: 0,
        rollout_completed: false,
        rollout_frozen: false,
        steals: 0,
        violations: Vec::new(),
    };

    // Persist each shard's initial deployment before the first epoch.
    for s in 0..opts.shards {
        let sh = &mut shards[s];
        let mut jopt = Some(&mut sh.journal);
        let el = sh.el.as_mut().expect("fresh shard");
        if let Err(point) = el.persist_initial(&mut mc.cores[s], &mut jopt) {
            // A crash before the first epoch: treat like any other.
            crash_shard(&mut shards[s], &mut rep, 0, s, point);
        }
    }

    let mut queue: VecDeque<QueuedRequest> = VecDeque::new();
    let mut lkg = initial.clone();
    let mut rollout_build: Option<DeployedBuild> = None;
    let mut phase = if opts.rollout.is_some() {
        RolloutPhase::Idle
    } else {
        RolloutPhase::Done
    };
    let mut breaker_opens: Vec<u64> = Vec::new(); // epochs of open transitions
    let mut prev_breakers: Vec<bool> = vec![false; opts.shards];
    let mut frozen_by_breakers = false;
    let mut poisoned_fp: Option<u64> = None;
    let mut poisoned_deploys: Vec<usize> = Vec::new();

    for epoch in 0..opts.epochs {
        // --- Recovery: shards that died last epoch restart now. The
        // dead process's injector died with it.
        for s in 0..opts.shards {
            if !shards[s].needs_recovery {
                continue;
            }
            mc.cores[s].faults = None;
            let sh = &mut shards[s];
            let rec = recover(
                &mut sh.journal,
                original,
                &mut mc.cores[s],
                &sh.sup,
                &opts.recover,
            )?;
            rep.recoveries += 1;
            if rec.degraded {
                sh.summary.recoveries_degraded += 1;
            }
            sh.summary.incidents.extend(rec.incidents.iter().cloned());
            let mut resume = rec.resume;
            // The fleet clock kept running while the shard was down;
            // resume at the fleet epoch (journal epochs stay monotone).
            resume.epoch = epoch;
            // Fleet invariant: a recovered shard never serves an
            // unverified build. If the journal resurrected one (e.g. a
            // poisoned rollout artifact deployed just before the crash),
            // pin the fleet's last-known-good build over it and freeze
            // any in-flight rollout — the artifact is bad.
            let untrusted = !build_is_trusted(original, &rec.build, &sh.sup);
            let mut el = EpochLoop::new(rec.build, &sh.sup, Some(resume));
            if untrusted {
                let mut jopt = Some(&mut sh.journal);
                el.deploy_rollout(&mut mc.cores[s], &mut jopt, lkg.clone(), epoch)
                    .expect("injector was cleared before recovery");
                rep.events.push(FleetEvent::RevertedToLkg {
                    epoch,
                    shard: s as u64,
                });
                if !matches!(phase, RolloutPhase::Done | RolloutPhase::Frozen) {
                    phase = RolloutPhase::Frozen;
                    rep.rollout_frozen = true;
                    rep.events.push(FleetEvent::RolloutFrozen {
                        epoch,
                        reason: format!("shard {s} recovered with an untrusted build"),
                    });
                }
                // Oracle: the re-pin must leave the shard trusted.
                if !build_is_trusted(original, el.deployed(), &sh.sup) {
                    rep.violations.push(format!(
                        "oracle/unverified-build: shard {s} still serving an untrusted build \
                         after the LKG re-pin at epoch {epoch}"
                    ));
                }
            }
            sh.el = Some(el);
            sh.state = ShardState::Serving;
            sh.needs_recovery = false;
            rep.events.push(FleetEvent::ShardRecovered {
                epoch,
                shard: s as u64,
                degraded: rec.degraded,
            });
        }

        // --- Rollout state machine (control decisions for this epoch).
        if let Some(ro) = opts.rollout.as_ref() {
            match phase {
                RolloutPhase::Idle => {
                    let all_serving = shards.iter().all(|sh| sh.state == ShardState::Serving);
                    let next = rep.rollout_deploys as usize;
                    if epoch >= ro.start_epoch && all_serving && next < opts.shards {
                        if next == 0 && rollout_build.is_none() {
                            rep.events.push(FleetEvent::RolloutStarted { epoch });
                        }
                        shards[next].state = ShardState::Draining;
                        phase = RolloutPhase::Draining { shard: next };
                        rep.events.push(FleetEvent::DrainStarted {
                            epoch,
                            shard: next as u64,
                        });
                    }
                }
                RolloutPhase::Draining { shard } => {
                    // Any down shard cancels the drain: max-unavailable=1
                    // counts the draining shard itself, so a concurrent
                    // crash means two unavailable shards — back out.
                    if shards.iter().any(|sh| sh.state == ShardState::Down) {
                        shards[shard].state = ShardState::Serving;
                        phase = RolloutPhase::Idle;
                    }
                }
                RolloutPhase::Health {
                    shard,
                    left,
                    deploy_epoch,
                    baseline_p99,
                    baseline_faults,
                } => {
                    if shards[shard].state == ShardState::Down {
                        phase = RolloutPhase::Frozen;
                        rep.rollout_frozen = true;
                        rep.events.push(FleetEvent::RolloutFrozen {
                            epoch,
                            reason: format!("shard {shard} crashed during its health window"),
                        });
                    } else if left == 0 {
                        let el = shards[shard].el.as_ref().expect("serving shard has a loop");
                        let post_faults = el.report().job_faults + shards[shard].summary.job_faults;
                        let post_p99 = el.report().p99_after(deploy_epoch);
                        let p99_limit = (baseline_p99 as f64 * ro.p99_factor) as u64;
                        let faulted = post_faults > baseline_faults;
                        let slow = baseline_p99 > 0 && post_p99 > p99_limit;
                        if faulted || slow {
                            phase = RolloutPhase::Frozen;
                            rep.rollout_frozen = true;
                            rep.events.push(FleetEvent::RolloutFrozen {
                                epoch,
                                reason: if faulted {
                                    format!(
                                        "shard {shard} faulted {} job(s) in its health window",
                                        post_faults - baseline_faults
                                    )
                                } else {
                                    format!(
                                        "shard {shard} p99 {post_p99} exceeded {p99_limit} \
                                         (baseline {baseline_p99})"
                                    )
                                },
                            });
                            // Pin the shard back to the last-known-good
                            // build immediately.
                            let sh = &mut shards[shard];
                            let mut jopt = Some(&mut sh.journal);
                            let el = sh.el.as_mut().expect("serving shard");
                            if let Err(point) = el.deploy_rollout(
                                &mut mc.cores[shard],
                                &mut jopt,
                                lkg.clone(),
                                epoch,
                            ) {
                                crash_shard(&mut shards[shard], &mut rep, epoch, shard, point);
                            } else {
                                rep.events.push(FleetEvent::RevertedToLkg {
                                    epoch,
                                    shard: shard as u64,
                                });
                            }
                        } else {
                            rep.events.push(FleetEvent::HealthPassed {
                                epoch,
                                shard: shard as u64,
                            });
                            if rep.rollout_deploys as usize == opts.shards {
                                phase = RolloutPhase::Done;
                                rep.rollout_completed = true;
                                lkg = rollout_build
                                    .clone()
                                    .expect("completed rollout has a build");
                                rep.events.push(FleetEvent::RolloutCompleted { epoch });
                            } else {
                                phase = RolloutPhase::Idle;
                            }
                        }
                    } else {
                        phase = RolloutPhase::Health {
                            shard,
                            left: left - 1,
                            deploy_epoch,
                            baseline_p99,
                            baseline_faults,
                        };
                    }
                }
                RolloutPhase::Done | RolloutPhase::Frozen => {}
            }
        }

        // --- Routing: fleet arrivals → owner shards, the forwarding
        // queue, or the shedder.
        let mut admit = vec![0usize; opts.shards];
        // Queued requests first (they have waited longest).
        let mut still_queued: VecDeque<QueuedRequest> = VecDeque::new();
        while let Some(mut q) = queue.pop_front() {
            if epoch < q.next_try {
                still_queued.push_back(q);
                continue;
            }
            if shards[q.owner].state == ShardState::Serving {
                admit[q.owner] += 1;
                continue;
            }
            if epoch.saturating_sub(q.enqueued) >= opts.forward_timeout_epochs {
                rep.timeouts += 1;
                continue;
            }
            rep.retries += 1;
            let shift = q.attempts.min(31);
            let delay = opts
                .forward_backoff_base
                .saturating_mul(1u64 << shift)
                .min(opts.forward_backoff_max);
            let jitter = rng.next_below(opts.forward_backoff_base + 1);
            q.next_try = epoch + 1 + delay + jitter;
            q.attempts += 1;
            still_queued.push_back(q);
        }
        queue = still_queued;
        for a in workload.arrivals(epoch) {
            let cross = a.ingress != a.owner;
            if cross {
                rep.forwarded += 1;
            }
            if shards[a.owner].state == ShardState::Serving {
                admit[a.owner] += 1;
                if !cross {
                    rep.admitted_direct += 1;
                }
            } else if queue.len() < opts.forward_bound {
                queue.push_back(QueuedRequest {
                    owner: a.owner,
                    enqueued: epoch,
                    next_try: epoch + 1,
                    attempts: 0,
                });
            } else {
                rep.forward_shed += 1;
            }
        }

        // --- Work-stealing: drained/down shards donate their scavenger
        // slices to the serving shards this epoch.
        let serving = shards
            .iter()
            .filter(|sh| sh.state == ShardState::Serving)
            .count();
        let donors = opts.shards - serving;
        let mut bonus_of = vec![0u64; opts.shards];
        if opts.steal && donors > 0 && serving > 0 {
            // Each donor gives away what it actually has: a draining
            // shard's live (possibly shed) budget, a dead shard's
            // configured pool. Slices split evenly over the serving
            // shards; the remainder goes to the lowest-indexed ones, so
            // every donated slice lands and the split stays
            // deterministic.
            let donated: u64 = shards
                .iter()
                .filter(|sh| sh.state != ShardState::Serving)
                .map(|sh| {
                    sh.el
                        .as_ref()
                        .map_or(opts.sup.scavengers, EpochLoop::scav_budget)
                        as u64
                })
                .sum();
            let base = donated / serving as u64;
            let rem = donated % serving as u64;
            let mut rank = 0u64;
            for (s, sh) in shards.iter().enumerate() {
                if sh.state == ShardState::Serving {
                    bonus_of[s] = base + u64::from(rank < rem);
                    rank += 1;
                }
            }
            if donated > 0 {
                rep.steals += donated;
                rep.events.push(FleetEvent::StealGranted {
                    epoch,
                    donors: donors as u64,
                    granted: donated,
                });
            }
        }

        // --- Serve: step every live shard's epoch loop on its core.
        let mut any_down_this_epoch = shards.iter().any(|sh| sh.state == ShardState::Down);
        for s in 0..opts.shards {
            if shards[s].state == ShardState::Down {
                continue;
            }
            let stealing = shards[s].state == ShardState::Serving;
            let admitted = if stealing { admit[s] } else { 0 };
            let mut adapter = ShardAdapter {
                shard: s,
                admitted,
                fleet: &mut *workload,
            };
            let sh = &mut shards[s];
            let el = sh.el.as_mut().expect("live shard has a loop");
            el.set_scav_bonus(if stealing { bonus_of[s] as usize } else { 0 });
            let mut jopt = Some(&mut sh.journal);
            if let Err(point) =
                el.step_epoch(&mut mc.cores[s], &mut adapter, original, &mut jopt, epoch)
            {
                crash_shard(&mut shards[s], &mut rep, epoch, s, point);
                any_down_this_epoch = true;
            }
        }

        // --- Drained? Deploy the rollout build at this epoch boundary.
        if let RolloutPhase::Draining { shard } = phase {
            let sh_pending = shards[shard]
                .el
                .as_ref()
                .map(|el| el.pending_len())
                .unwrap_or(0);
            if shards[shard].state == ShardState::Down {
                phase = RolloutPhase::Idle;
            } else if sh_pending == 0 {
                let ro = opts
                    .rollout
                    .as_ref()
                    .expect("rollout phase without options");
                // Build once, on the drained shard's idle core; gate it,
                // then (the fault hook) poison it after the gates.
                if rollout_build.is_none() {
                    let built = build_rollout(
                        &mut mc.cores[shard],
                        workload,
                        shard,
                        original,
                        &shards[shard].sup,
                    );
                    match built {
                        Some(mut b) => {
                            if let Some(poison) = ro.poison {
                                poison(&mut b);
                                poisoned_fp = Some(b.prog.fingerprint());
                            }
                            rollout_build = Some(b);
                        }
                        None => {
                            phase = RolloutPhase::Frozen;
                            rep.rollout_frozen = true;
                            rep.events.push(FleetEvent::RolloutFrozen {
                                epoch,
                                reason: "rollout build failed its gates".to_string(),
                            });
                            shards[shard].state = ShardState::Serving;
                        }
                    }
                }
                if let Some(b) = rollout_build.clone() {
                    // Every shard after the first re-validates the
                    // artifact it fetched; the first shard is the
                    // supply-chain window the health gate covers.
                    let second_or_later = rep.rollout_deploys > 0;
                    if second_or_later && !build_is_trusted(original, &b, &shards[shard].sup) {
                        phase = RolloutPhase::Frozen;
                        rep.rollout_frozen = true;
                        rep.events.push(FleetEvent::RolloutFrozen {
                            epoch,
                            reason: format!(
                                "shard {shard} re-validation rejected the rollout artifact"
                            ),
                        });
                        shards[shard].state = ShardState::Serving;
                    } else {
                        let sh = &mut shards[shard];
                        let baseline_p99 = sh
                            .summary
                            .p99_with_live(sh.el.as_ref().expect("drained shard"));
                        let baseline_faults =
                            sh.el.as_ref().map(|el| el.report().job_faults).unwrap_or(0)
                                + sh.summary.job_faults;
                        let mut jopt = Some(&mut sh.journal);
                        let el = sh.el.as_mut().expect("drained shard");
                        match el.deploy_rollout(&mut mc.cores[shard], &mut jopt, b.clone(), epoch) {
                            Err(point) => {
                                crash_shard(&mut shards[shard], &mut rep, epoch, shard, point);
                                any_down_this_epoch = true;
                                phase = RolloutPhase::Idle;
                            }
                            Ok(()) => {
                                rep.rollout_deploys += 1;
                                if Some(b.prog.fingerprint()) == poisoned_fp {
                                    poisoned_deploys.push(shard);
                                }
                                shards[shard].state = ShardState::Serving;
                                rep.events.push(FleetEvent::RolloutDeployed {
                                    epoch,
                                    shard: shard as u64,
                                    rung: b.rung,
                                });
                                phase = RolloutPhase::Health {
                                    shard,
                                    left: ro.health_epochs,
                                    deploy_epoch: epoch + 1,
                                    baseline_p99,
                                    baseline_faults,
                                };
                            }
                        }
                    }
                }
            }
        }

        // --- Correlated breaker detection over the serving shards.
        for (s, sh) in shards.iter().enumerate() {
            let open = sh
                .el
                .as_ref()
                .is_some_and(|el| el.breaker() == BreakerState::Open);
            if open && !prev_breakers[s] {
                breaker_opens.push(epoch);
            }
            prev_breakers[s] = open;
        }
        breaker_opens.retain(|&e| epoch.saturating_sub(e) < opts.breaker_window);
        if breaker_opens.len() >= opts.breaker_k && !frozen_by_breakers {
            frozen_by_breakers = true;
            rep.events.push(FleetEvent::CorrelatedBreakers {
                epoch,
                opens: breaker_opens.len() as u64,
            });
            if !matches!(phase, RolloutPhase::Done) {
                phase = RolloutPhase::Frozen;
                rep.rollout_frozen = true;
                rep.events.push(FleetEvent::RolloutFrozen {
                    epoch,
                    reason: format!(
                        "{} breakers opened within {} epochs",
                        breaker_opens.len(),
                        opts.breaker_window
                    ),
                });
            }
            // Pin every serving shard to the last-known-good build:
            // correlated opens mean the *inputs* to rebuilding are bad
            // fleet-wide, so stop letting shards individually degrade.
            for s in 0..opts.shards {
                if shards[s].state != ShardState::Serving {
                    continue;
                }
                let on_lkg = shards[s]
                    .el
                    .as_ref()
                    .is_some_and(|el| el.deployed().prog.fingerprint() == lkg.prog.fingerprint());
                if on_lkg {
                    continue;
                }
                let sh = &mut shards[s];
                let mut jopt = Some(&mut sh.journal);
                let el = sh.el.as_mut().expect("serving shard");
                if let Err(point) =
                    el.deploy_rollout(&mut mc.cores[s], &mut jopt, lkg.clone(), epoch)
                {
                    crash_shard(&mut shards[s], &mut rep, epoch, s, point);
                    any_down_this_epoch = true;
                } else {
                    rep.events.push(FleetEvent::RevertedToLkg {
                        epoch,
                        shard: s as u64,
                    });
                }
            }
        }

        // --- Capacity accounting + oracle. A crash-free epoch must keep
        // at least N−1 shards serving, rolling deploy or not.
        let serving_now = shards
            .iter()
            .filter(|sh| sh.state == ShardState::Serving)
            .count();
        if !any_down_this_epoch {
            rep.healthy_epochs += 1;
            rep.min_serving_healthy = rep.min_serving_healthy.min(serving_now);
            if serving_now + 1 < opts.shards {
                rep.violations.push(format!(
                    "oracle/capacity: epoch {epoch} healthy but only {serving_now}/{} shards \
                     serving",
                    opts.shards
                ));
            }
        }

        // --- Shared-uncore contention for the window just served.
        mc.apply_contention();
    }

    // --- Seal every surviving loop and audit the journals.
    for (s, sh) in shards.iter_mut().enumerate() {
        if let Some(el) = sh.el.take() {
            let live_fp = el.deployed().prog.fingerprint();
            let live_breaker = el.breaker();
            let live_next_job = el.next_job();
            if sh.state != ShardState::Down {
                sh.journal.flush();
                // Fleet oracle: each shard's journal, projected, equals
                // that shard's live state — jointly, the live fleet.
                let st = project(&sh.journal.replay().records);
                match st.deploy {
                    Some((fp, rung, _)) => {
                        if fp != live_fp || rung != el.deployed().rung {
                            rep.violations.push(format!(
                                "oracle/journal-projection: shard {s} journal deploy {fp:#x}/{rung} \
                                 != live {live_fp:#x}/{}",
                                el.deployed().rung
                            ));
                        }
                    }
                    None => rep.violations.push(format!(
                        "oracle/journal-projection: shard {s} journal has no deploy record"
                    )),
                }
                if st.breaker != live_breaker {
                    rep.violations.push(format!(
                        "oracle/journal-projection: shard {s} journal breaker {:?} != live {:?}",
                        st.breaker, live_breaker
                    ));
                }
                if st.next_job > live_next_job {
                    rep.violations.push(format!(
                        "oracle/journal-projection: shard {s} journal next_job {} ahead of live {}",
                        st.next_job, live_next_job
                    ));
                }
            }
            let r = el.seal();
            sh.summary.served += r.served;
            sh.summary.shed_jobs += r.shed_jobs;
            sh.summary.job_faults += r.job_faults;
            sh.summary.swaps += r.swaps;
            sh.summary.rebuilds += r.rebuilds;
            sh.summary.latencies.extend(r.latencies.iter().cloned());
            sh.summary.incidents.extend(r.incidents.iter().cloned());
            sh.summary.final_rung = r.final_rung;
            sh.summary.breaker = r.breaker;
        }
    }

    // Fleet oracle: a poisoned rollout build never reaches a second
    // shard.
    if poisoned_fp.is_some() && poisoned_deploys.len() > 1 {
        rep.violations.push(format!(
            "oracle/poison-containment: poisoned build deployed to shards {:?}",
            poisoned_deploys
        ));
    }

    rep.shards = shards.into_iter().map(|sh| sh.summary).collect();
    Ok(rep)
}

impl ShardSummary {
    /// p99 over this summary's accumulated latencies plus the live
    /// (unsealed) loop's — the pre-drain baseline for the health gate.
    fn p99_with_live(&self, el: &EpochLoop) -> u64 {
        let v: Vec<u64> = self
            .latencies
            .iter()
            .chain(el.report().latencies.iter())
            .map(|(_, l)| *l)
            .collect();
        percentile(&v, 0.99)
    }
}

/// Marks a shard down after its crash channel fired: seals the dead
/// loop's report into the shard totals and schedules recovery for the
/// top of the next epoch.
fn crash_shard(sh: &mut Shard, rep: &mut FleetReport, epoch: u64, s: usize, point: CrashPoint) {
    let r = sh.el.take().expect("crashing shard had a loop").seal();
    sh.summary.served += r.served;
    sh.summary.shed_jobs += r.shed_jobs;
    sh.summary.job_faults += r.job_faults;
    sh.summary.swaps += r.swaps;
    sh.summary.rebuilds += r.rebuilds;
    sh.summary.crashes += 1;
    sh.summary.latencies.extend(r.latencies.iter().cloned());
    sh.summary.incidents.extend(r.incidents);
    sh.state = ShardState::Down;
    sh.needs_recovery = true;
    rep.crashes += 1;
    rep.events.push(FleetEvent::ShardCrashed {
        epoch,
        shard: s as u64,
        point,
    });
}

/// Builds the rollout's re-instrumented binary on the drained shard's
/// idle core and runs the same lint + symbolic-equivalence gates a hot
/// swap passes. `None` when the ladder degraded or a gate refused.
fn build_rollout(
    machine: &mut reach_sim::Machine,
    workload: &mut dyn FleetWorkload,
    shard: usize,
    original: &Program,
    sup: &SupervisorOptions,
) -> Option<DeployedBuild> {
    let built = pgo_pipeline_degrading(
        machine,
        original,
        |a| workload.profiling_contexts(shard, a),
        &sup.degrade,
    );
    if built.rung != Rung::FullPgo {
        return None;
    }
    let build = DeployedBuild::from(built);
    if lint_gate(&build.prog, &build.origin, &sup.degrade.pipeline.lint).is_err() {
        return None;
    }
    if sup.degrade.pipeline.verify
        && verify_gate(
            original,
            &build.prog,
            &build.origin,
            &sup.degrade.pipeline.lint,
        )
        .is_err()
    {
        return None;
    }
    Some(build)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dualmode::{DualModeOptions, WatchdogOptions};
    use reach_profile::OnlineEstimatorOptions;
    use reach_sim::{Inst, MultiCoreConfig};
    use reach_workloads::{build_zipf_kv, AddrAlloc, InstanceSetup, ZipfKvParams};

    const LOOKUPS: u64 = 1024;

    struct ShardStreams {
        live: Vec<InstanceSetup>,
        cursor: usize,
        prof: Vec<InstanceSetup>,
        prof_cursor: usize,
    }

    /// Key-sharded zipf-KV service: every core holds an identical table
    /// layout (so one program serves fleet-wide), each shard draws from
    /// its own instance streams, and arrivals rotate owners round-robin
    /// with an optional cross-shard ingress offset.
    struct FleetService {
        per: Vec<ShardStreams>,
        shards: usize,
        per_epoch: usize,
        cross: bool,
    }

    impl FleetWorkload for FleetService {
        fn arrivals(&mut self, epoch: u64) -> Vec<Arrival> {
            (0..self.per_epoch)
                .map(|i| {
                    let owner = (epoch as usize + i) % self.shards;
                    let ingress = if self.cross {
                        (owner + 1) % self.shards
                    } else {
                        owner
                    };
                    Arrival { ingress, owner }
                })
                .collect()
        }
        fn primary_context(&mut self, shard: usize, _job: u64) -> Context {
            let p = &mut self.per[shard];
            let i = p.cursor;
            p.cursor += 1;
            p.live[i % p.live.len()].make_context(1_000 + i)
        }
        fn scavenger_context(
            &mut self,
            shard: usize,
            _epoch: u64,
            _job: u64,
            _slot: usize,
        ) -> Context {
            let p = &mut self.per[shard];
            let i = p.cursor;
            p.cursor += 1;
            p.live[i % p.live.len()].make_context(1_000 + i)
        }
        fn profiling_contexts(&mut self, shard: usize, _attempt: u32) -> Vec<Context> {
            let p = &mut self.per[shard];
            let n = p.prof.len();
            (0..2)
                .map(|_| {
                    let i = p.prof_cursor;
                    p.prof_cursor += 1;
                    p.prof[i % n].make_context(9_000 + i)
                })
                .collect()
        }
    }

    fn fast_degrade() -> DegradeOptions {
        let mut d = DegradeOptions::default();
        d.pipeline.collector.periods = reach_profile::Periods {
            l2_miss: 13,
            l3_miss: 13,
            stall: 13,
            retired: 13,
        };
        d
    }

    use crate::degrade::DegradeOptions;

    fn fleet_sup() -> SupervisorOptions {
        SupervisorOptions {
            epochs: 12,
            service_per_epoch: 1,
            scavengers: 2,
            insitu_period: 31,
            estimator: OnlineEstimatorOptions {
                window: 2048,
                min_samples: 8,
            },
            staleness_threshold: 0.6,
            seed: 42,
            degrade: fast_degrade(),
            dual: DualModeOptions {
                drain_scavengers: false,
                isolate_faults: true,
                watchdog: Some(WatchdogOptions {
                    slice_steps: 2_000,
                    overrun_cycles: 500,
                    max_overruns: u32::MAX,
                    ..WatchdogOptions::default()
                }),
                ..DualModeOptions::default()
            },
            ..SupervisorOptions::default()
        }
    }

    /// Builds an N-core machine with identical per-core table layouts,
    /// the shared original program, and the shared initial deployment
    /// (profiled against the live distribution, so steady state stays
    /// trigger-free).
    fn fleet_world(
        shards: usize,
        per_epoch: usize,
        cross: bool,
    ) -> (MultiCore, FleetService, Program, DeployedBuild) {
        let mut mc = MultiCore::new(MultiCoreConfig::new(shards));
        let mut per = Vec::new();
        let mut orig: Option<Program> = None;
        for s in 0..shards {
            let m = &mut mc.cores[s];
            let mut alloc = AddrAlloc::new(0x800_0000);
            let params = |theta: f64, seed: u64| ZipfKvParams {
                table_entries: 1 << 15,
                lookups: LOOKUPS,
                theta,
                seed,
            };
            let live = build_zipf_kv(&mut m.mem, &mut alloc, params(3.0, 13), 56);
            let prof = build_zipf_kv(&mut m.mem, &mut alloc, params(3.0, 17), 12);
            match &orig {
                None => orig = Some(live.prog.clone()),
                Some(o) => assert_eq!(
                    o.fingerprint(),
                    live.prog.fingerprint(),
                    "cores must share one program"
                ),
            }
            per.push(ShardStreams {
                live: live.instances,
                cursor: 0,
                prof: prof.instances,
                prof_cursor: 0,
            });
        }
        let orig = orig.unwrap();
        let mut svc = FleetService {
            per,
            shards,
            per_epoch,
            cross,
        };
        let built = {
            let contexts = |svc: &mut FleetService, a: u32| svc.profiling_contexts(0, a);
            let mc0 = &mut mc.cores[0];
            pgo_pipeline_degrading(mc0, &orig, |a| contexts(&mut svc, a), &fast_degrade())
        };
        assert_eq!(built.rung, Rung::FullPgo, "{:?}", built.reasons);
        (mc, svc, orig, DeployedBuild::from(built))
    }

    #[test]
    fn steady_fleet_is_deterministic_and_clean() {
        let run = || {
            let (mut mc, mut svc, orig, initial) = fleet_world(2, 2, true);
            let opts = FleetOptions {
                shards: 2,
                epochs: 10,
                sup: fleet_sup(),
                seed: 7,
                ..FleetOptions::default()
            };
            run_fleet(&mut mc, &mut svc, &orig, initial, &opts).unwrap()
        };
        let a = run();
        assert_eq!(a.violations, Vec::<String>::new());
        assert!(a.served() > 0, "fleet served nothing");
        assert!(a.forwarded > 0, "cross-shard arrivals should be counted");
        assert_eq!(
            a.min_serving_healthy, 2,
            "steady state must keep all shards serving"
        );
        assert_eq!(a.crashes, 0);
        assert_eq!(a.rollout_deploys, 0);
        let b = run();
        assert_eq!(
            a.fleet_hash(),
            b.fleet_hash(),
            "fleet replay must be byte-identical"
        );
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.served, y.served);
            assert_eq!(x.incident_hash(), y.incident_hash());
        }
    }

    #[test]
    fn rolling_deploy_completes_behind_max_unavailable_one() {
        let (mut mc, mut svc, orig, initial) = fleet_world(2, 2, false);
        let opts = FleetOptions {
            shards: 2,
            epochs: 12,
            sup: fleet_sup(),
            rollout: Some(RolloutOptions {
                start_epoch: 2,
                health_epochs: 1,
                p99_factor: 100.0,
                poison: None,
            }),
            seed: 7,
            ..FleetOptions::default()
        };
        let rep = run_fleet(&mut mc, &mut svc, &orig, initial, &opts).unwrap();
        assert_eq!(rep.violations, Vec::<String>::new());
        assert!(rep.rollout_completed, "events: {:?}", rep.events);
        assert_eq!(rep.rollout_deploys, 2);
        assert!(!rep.rollout_frozen);
        assert!(rep.min_serving_healthy >= 1, "capacity fell below (N-1)/N");
        assert!(
            rep.steals > 0,
            "drained shards should donate scavenger slices"
        );
        let health_passes = rep
            .events
            .iter()
            .filter(|e| matches!(e, FleetEvent::HealthPassed { .. }))
            .count();
        assert_eq!(health_passes, 2);
    }

    #[test]
    fn poisoned_rollout_never_reaches_a_second_shard() {
        fn clobber_yield_saves(b: &mut DeployedBuild) {
            for inst in &mut b.prog.insts {
                if let Inst::Yield { save_regs, .. } = inst {
                    *save_regs = Some(0);
                }
            }
        }
        let (mut mc, mut svc, orig, initial) = fleet_world(2, 2, false);
        let opts = FleetOptions {
            shards: 2,
            epochs: 14,
            sup: fleet_sup(),
            rollout: Some(RolloutOptions {
                start_epoch: 2,
                health_epochs: 1,
                p99_factor: 100.0,
                poison: Some(clobber_yield_saves),
            }),
            seed: 7,
            ..FleetOptions::default()
        };
        let rep = run_fleet(&mut mc, &mut svc, &orig, initial, &opts).unwrap();
        assert_eq!(rep.violations, Vec::<String>::new());
        assert!(
            rep.rollout_frozen,
            "poison must freeze the rollout: {:?}",
            rep.events
        );
        assert!(!rep.rollout_completed);
        assert!(
            rep.rollout_deploys <= 1,
            "poisoned build reached {} shards",
            rep.rollout_deploys
        );
    }

    #[test]
    fn forwarding_queue_sheds_on_overflow_and_times_out() {
        // A long drain (big backlog, service rate 1) forces queued
        // cross-shard requests to outlive a 1-epoch timeout.
        let (mut mc, mut svc, orig, initial) = fleet_world(2, 4, true);
        let opts = FleetOptions {
            shards: 2,
            epochs: 12,
            sup: fleet_sup(),
            rollout: Some(RolloutOptions {
                start_epoch: 2,
                health_epochs: 1,
                p99_factor: 100.0,
                poison: None,
            }),
            forward_timeout_epochs: 1,
            seed: 7,
            ..FleetOptions::default()
        };
        let rep = run_fleet(&mut mc, &mut svc, &orig, initial, &opts).unwrap();
        assert_eq!(rep.violations, Vec::<String>::new());
        assert!(rep.timeouts > 0, "expected forward-queue timeouts: {rep:?}");

        // Bound 0: every request that cannot be admitted at its owner is
        // shed immediately.
        let (mut mc, mut svc, orig, initial) = fleet_world(2, 4, true);
        let opts = FleetOptions {
            forward_bound: 0,
            ..opts
        };
        let rep = run_fleet(&mut mc, &mut svc, &orig, initial, &opts).unwrap();
        assert_eq!(rep.violations, Vec::<String>::new());
        assert!(rep.forward_shed > 0, "bound-0 queue must shed: {rep:?}");
    }

    #[test]
    fn degenerate_fleet_configs_are_typed_errors() {
        let (mut mc, mut svc, orig, initial) = fleet_world(2, 1, false);
        let base = FleetOptions {
            shards: 2,
            epochs: 2,
            sup: fleet_sup(),
            ..FleetOptions::default()
        };
        let opts = FleetOptions {
            shards: 0,
            ..base.clone()
        };
        assert_eq!(
            run_fleet(&mut mc, &mut svc, &orig, initial.clone(), &opts).unwrap_err(),
            FleetConfigError::ZeroShards
        );
        let opts = FleetOptions {
            shards: 3,
            ..base.clone()
        };
        assert_eq!(
            run_fleet(&mut mc, &mut svc, &orig, initial.clone(), &opts).unwrap_err(),
            FleetConfigError::ShardCoreMismatch
        );
        let opts = FleetOptions {
            breaker_k: 0,
            ..base.clone()
        };
        assert_eq!(
            run_fleet(&mut mc, &mut svc, &orig, initial.clone(), &opts).unwrap_err(),
            FleetConfigError::ZeroBreakerK
        );
        let mut sup = fleet_sup();
        sup.max_rebuild_failures = 0;
        let opts = FleetOptions { sup, ..base };
        assert_eq!(
            run_fleet(&mut mc, &mut svc, &orig, initial, &opts).unwrap_err(),
            FleetConfigError::Supervisor(SupervisorConfigError::ZeroMaxRebuildFailures)
        );
    }

    #[test]
    fn fleet_event_log_serializes_canonically() {
        let events = vec![
            FleetEvent::RolloutStarted { epoch: 2 },
            FleetEvent::DrainStarted { epoch: 2, shard: 0 },
            FleetEvent::RolloutFrozen {
                epoch: 5,
                reason: "x".to_string(),
            },
        ];
        let json = fleet_events_json(&events);
        assert!(json.contains("\"kind\":\"rollout-started\""), "{json}");
        assert!(json.contains("\"kind\":\"drain-started\""), "{json}");
        assert_eq!(
            fleet_events_hash(&events),
            fleet_events_hash(&events.clone())
        );
    }
}

//! The no-hiding baseline: run every instance back to back on one core,
//! eating every stall. This is the denominator of every speedup the paper
//! implies.

use reach_sim::{Context, ExecError, Exit, Machine, Program};

/// Result of a sequential run.
#[derive(Clone, Debug, Default)]
pub struct SequentialReport {
    /// Total cycles for all instances.
    pub cycles: u64,
    /// Per-instance wall-clock latency.
    pub latencies: Vec<u64>,
    /// Instances completed.
    pub completed: usize,
}

/// Runs `contexts` one after another to completion (yields self-resume at
/// zero cost — there is nothing to hide behind).
///
/// # Errors
///
/// Propagates execution errors; an instance exceeding `max_steps` counts
/// as not completed.
pub fn run_sequential(
    machine: &mut Machine,
    prog: &Program,
    contexts: &mut [Context],
    max_steps: u64,
) -> Result<SequentialReport, ExecError> {
    let started_at = machine.now;
    let mut report = SequentialReport::default();
    for ctx in contexts.iter_mut() {
        let exit = machine.run_to_completion(prog, ctx, max_steps)?;
        if exit == Exit::Done {
            report.completed += 1;
            report
                .latencies
                .push(ctx.stats.latency().expect("finished context has latency"));
        }
    }
    report.cycles = machine.now - started_at;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::MachineConfig;
    use reach_workloads::{build_scan, AddrAlloc, ScanParams};

    #[test]
    fn sequential_runs_all_and_sums_latencies() {
        let mut m = Machine::new(MachineConfig::default());
        let mut alloc = AddrAlloc::new(0x40_0000);
        let w = build_scan(
            &mut m.mem,
            &mut alloc,
            ScanParams {
                words: 512,
                passes: 1,
                seed: 1,
            },
            3,
        );
        let mut ctxs = w.make_contexts();
        let r = run_sequential(&mut m, &w.prog, &mut ctxs, 1_000_000).unwrap();
        assert_eq!(r.completed, 3);
        assert_eq!(r.latencies.len(), 3);
        for (i, c) in ctxs.iter().enumerate() {
            w.instances[i].assert_checksum(c);
        }
        // Back-to-back: total == sum of latencies.
        assert_eq!(r.cycles, r.latencies.iter().sum::<u64>());
    }
}

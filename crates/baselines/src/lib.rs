//! # reach-baselines — the comparators
//!
//! Every mechanism the paper positions itself against, on the same
//! substrate and workloads:
//!
//! | baseline | where | models |
//! |---|---|---|
//! | no hiding | [`sequential`] | a plain in-order run; every stall exposed |
//! | manual yields | [`manual::instrument_manual`] | CoroBase-style developer-placed `prefetch+yield` at pointer dereferences, full-register saves |
//! | prefetch only | [`manual::instrument_prefetch_only`] | software prefetching without interleaving |
//! | SMT | [`reach_sim::run_smt`] | 2–8 hardware contexts, switch-on-stall, zero latency control |
//! | OS threads | [`reach_core::run_interleaved`] with [`reach_core::SwitchMode::Thread`] | 1 µs context switches |
//!
//! The mechanism under study — profile-guided coroutine instrumentation —
//! lives in [`reach_core`]; this crate only holds what it is compared to.

pub mod manual;
pub mod sequential;

pub use manual::{instrument_manual, instrument_prefetch_only};
pub use sequential::{run_sequential, SequentialReport};

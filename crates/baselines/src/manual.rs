//! CoroBase-style *manual* instrumentation (§2's prior software
//! approaches [23, 28, 53]).
//!
//! Instead of consulting a profile, the developer "decides where these
//! events may happen (e.g., loads that cause cache misses) and hard codes
//! event handlers at these locations at development time": a prefetch and
//! an unconditional yield before every load the developer believes is a
//! pointer dereference likely to miss. The developer:
//!
//! * cannot know which dereferences actually miss in production (skewed
//!   or cache-resident data makes many of them hits), and
//! * does not run liveness analysis, so every manual yield saves the full
//!   register file.
//!
//! Both blind spots are exactly what profile-guided instrumentation fixes;
//! experiment F6 quantifies them.

use reach_instrument::{insert_before, Insertion, PcMap, RewriteError};
use reach_sim::isa::{Inst, Program, YieldKind};

/// Inserts `prefetch + manual yield` before each load in `pcs` (PCs of the
/// input program).
///
/// # Errors
///
/// Returns an error if a PC is out of range, duplicated, or not a load.
pub fn instrument_manual(prog: &Program, pcs: &[usize]) -> Result<(Program, PcMap), RewriteError> {
    let insertions = plan(prog, pcs, true)?;
    insert_before(prog, insertions)
}

/// Inserts only the prefetches (no yields): the software-prefetch-only
/// baseline (APT-get-style, paper ref \[27\], without interleaving). For *dependent*
/// access chains there is no independent work between prefetch and load,
/// so this hides almost nothing — the motivation for yielding at all.
pub fn instrument_prefetch_only(
    prog: &Program,
    pcs: &[usize],
) -> Result<(Program, PcMap), RewriteError> {
    let insertions = plan(prog, pcs, false)?;
    insert_before(prog, insertions)
}

fn plan(prog: &Program, pcs: &[usize], with_yield: bool) -> Result<Vec<Insertion>, RewriteError> {
    pcs.iter()
        .map(|&pc| {
            let Some(Inst::Load { addr, offset, .. }) = prog.insts.get(pc) else {
                return Err(RewriteError::BadInsertionPc { at_pc: pc });
            };
            let mut insts = vec![Inst::Prefetch {
                addr: *addr,
                offset: *offset,
            }];
            if with_yield {
                insts.push(Inst::Yield {
                    kind: YieldKind::Manual,
                    save_regs: None, // developers do not run liveness
                });
            }
            Ok(Insertion { at_pc: pc, insts })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::isa::{AluOp, Cond, ProgramBuilder, Reg};
    use reach_sim::{Context, Machine, MachineConfig};

    fn chase_prog() -> Program {
        let mut b = ProgramBuilder::new("chase");
        let top = b.label();
        b.bind(top);
        b.load(Reg(4), Reg(0), 0);
        b.alu(AluOp::Or, Reg(0), Reg(4), Reg(4), 1);
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(6), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn manual_inserts_prefetch_and_full_save_yield() {
        let p = chase_prog();
        let (q, _) = instrument_manual(&p, &[0]).unwrap();
        assert!(matches!(q.insts[0], Inst::Prefetch { .. }));
        assert!(matches!(
            q.insts[1],
            Inst::Yield {
                kind: YieldKind::Manual,
                save_regs: None
            }
        ));
        assert!(matches!(q.insts[2], Inst::Load { .. }));
    }

    #[test]
    fn prefetch_only_inserts_no_yield() {
        let p = chase_prog();
        let (q, _) = instrument_prefetch_only(&p, &[0]).unwrap();
        assert!(matches!(q.insts[0], Inst::Prefetch { .. }));
        assert!(matches!(q.insts[1], Inst::Load { .. }));
        assert!(!q.insts.iter().any(Inst::is_yield));
    }

    #[test]
    fn non_load_pc_rejected() {
        let p = chase_prog();
        assert!(instrument_manual(&p, &[1]).is_err());
        assert!(instrument_manual(&p, &[99]).is_err());
    }

    #[test]
    fn manual_variant_preserves_semantics() {
        let p = chase_prog();
        let (q, _) = instrument_manual(&p, &[0]).unwrap();
        let run = |prog: &Program| {
            let mut m = Machine::new(MachineConfig::default());
            m.mem.write(0x1000, 0x2000).unwrap();
            m.mem.write(0x2000, 0).unwrap();
            let mut ctx = Context::new(0);
            ctx.set_reg(Reg(0), 0x1000);
            ctx.set_reg(Reg(1), 2);
            ctx.set_reg(Reg(6), 1);
            m.run_to_completion(prog, &mut ctx, 1000).unwrap();
            ctx.reg(Reg(0))
        };
        assert_eq!(run(&p), run(&q));
    }

    #[test]
    fn prefetch_only_barely_helps_dependent_chase() {
        // A dependent chase: the prefetch immediately precedes its own
        // load, so overlap is ~zero.
        let p = chase_prog();
        let (q, _) = instrument_prefetch_only(&p, &[0]).unwrap();
        let stall_of = |prog: &Program| {
            let mut m = Machine::new(MachineConfig::default());
            for i in 0..32u64 {
                let a = 0x10_0000 + i * 4096;
                let next = if i == 31 { 0 } else { a + 4096 };
                m.mem.write(a, next).unwrap();
            }
            let mut ctx = Context::new(0);
            ctx.set_reg(Reg(0), 0x10_0000);
            ctx.set_reg(Reg(1), 32);
            ctx.set_reg(Reg(6), 1);
            m.run_to_completion(prog, &mut ctx, 10_000).unwrap();
            m.counters.stall_cycles
        };
        let base = stall_of(&p);
        let pf = stall_of(&q);
        assert!(
            pf > base * 9 / 10,
            "prefetch-only should hide <10% of a dependent chase: {pf} vs {base}"
        );
    }
}

//! # reach-instrument — profile-guided yield instrumentation
//!
//! Step (ii) of the paper's pipeline (§3.2–3.3), operating at the binary
//! (micro-IR) level like BOLT-class rewriters so it "can be applied to any
//! application or implementation":
//!
//! 1. [`cfg`](mod@cfg) — disassembly: CFG construction over the flat instruction
//!    stream (leaders, blocks, edges, back edges, RPO).
//! 2. [`liveness`] — backward register-liveness dataflow; yields save only
//!    live registers, shrinking switch cost.
//! 3. [`dependence`] — independence of adjacent loads, enabling *yield
//!    coalescing* (several prefetches amortize one switch).
//! 4. [`cost_model`] — the quantitative gain/cost model plus the insertion
//!    policies (threshold, top-K, cost-model, all).
//! 5. [`primary`] — insert `prefetch + yield` at likely-miss loads.
//! 6. [`scavenger`] — insert *conditional* yields so the inter-yield
//!    interval along every path stays below a target (LBR/profile-
//!    calibrated common case, static worst-case bound).
//! 7. [`rewrite`] — the relocation engine that keeps branch targets
//!    correct across insertions and maps PCs between program versions.
//! 8. [`dataflow`] — the generic worklist engine (forward/backward,
//!    join-semilattice, widening) every analysis above instantiates.
//! 9. [`analyses`] — reaching definitions, available prefetches,
//!    anticipated loads, SFI maskedness.
//! 10. [`lint`] — `reach-lint`, the static verifier: stable-coded,
//!     PC-anchored diagnostics (RL0001–RL0010) over the analyses, used
//!     as a defense-in-depth shipping gate next to translation
//!     validation.
//! 11. [`symexec`] + [`equiv`] — translation validation: a symbolic
//!     evaluator over a small term algebra and a CFG bisimulation
//!     checker that *proves* each rewrite observationally equivalent to
//!     its input modulo inserted yields/prefetches, discharging
//!     save-mask, prefetch-address and SFI-maskedness obligations
//!     (RL0008–RL0010).
//!
//! All passes are semantics-preserving: instrumented programs compute the
//! same results as the originals under any interleaving (enforced by
//! integration and property tests, including register-poisoning runs that
//! verify liveness soundness).

pub mod analyses;
pub mod cfg;
pub mod cost_model;
pub mod counting;
pub mod dataflow;
pub mod dependence;
pub mod elide;
pub mod equiv;
pub mod lint;
pub mod liveness;
pub mod loops;
pub mod primary;
pub mod rewrite;
pub mod scavenger;
pub mod sfi;
pub mod symexec;
pub mod validate;

pub use analyses::{
    AnticipatedLoads, AnticipatedLoadsProblem, AvailablePrefetches, AvailablePrefetchesProblem,
    ReachingDefs, ReachingDefsProblem, SfiMasked, SfiMaskedProblem, ENTRY_DEF,
};
pub use cfg::{BasicBlock, Cfg};
pub use cost_model::{remap_to_origin, select_sites, smooth_profile, Policy, SiteDecision};
pub use counting::{instrument_counting, CountingInstrumented, R_COUNTER_BASE};
pub use dataflow::{solve, DataflowProblem, Direction, Solution};
pub use dependence::{coalesce_groups, hoistable_to_start};
pub use elide::{elide_yields, ElideMode, ElideReport};
pub use equiv::{verify_rewrite, verify_rewrite_map, VerifyReport};
pub use lint::{lint_program, Diagnostic, Level, Lint, LintOptions, LintReport};
pub use liveness::{regset_to_string, Liveness, LivenessProblem, RegSet, ALL_REGS};
pub use loops::{natural_loops, Dominators, NaturalLoop};
pub use primary::{instrument_primary, PrimaryOptions, PrimaryReport};
pub use rewrite::{insert_before, Insertion, PcMap, RewriteError};
pub use scavenger::{instrument_scavenger, ScavReport, ScavengerOptions};
pub use sfi::{instrument_sfi, SfiReport, R_SFI_ADDR, R_SFI_MASK};
pub use symexec::{sym_exec_range, BlockRun, MemEvent, MemKind, SymExit, Term, TermId, TermPool};
pub use validate::{validate_rewrite, ValidationError};

//! Generic worklist dataflow engine over the micro-IR CFG.
//!
//! Every static analysis in this crate — liveness, reaching definitions,
//! available prefetches, the SFI address-range verifier — is an instance
//! of the same schema: facts drawn from a join-semilattice, a monotone
//! per-instruction transfer function, and iteration to a fixpoint over
//! the CFG. This module factors that schema out once so analyses are
//! written as a [`DataflowProblem`] (a lattice + a transfer function) and
//! never re-implement worklists, direction handling or convergence
//! checking.
//!
//! Design points:
//!
//! * **Direction-generic.** Forward problems propagate entry→exit along
//!   CFG edges; backward problems run on the reversed graph. The engine
//!   owns the orientation; transfer functions are always written in their
//!   natural direction (backward transfers map the fact *after* an
//!   instruction to the fact *before* it).
//! * **Join-semilattice facts.** `Fact: Clone + PartialEq` with an
//!   explicit [`DataflowProblem::bottom`] (the join identity) and
//!   [`DataflowProblem::join`]. Must-analyses encode ⊤ as an `Option`
//!   (`None` = "unvisited / no information", which joins as identity) —
//!   see `AvailablePrefetches` in [`crate::prefetch_analysis`].
//! * **Widening hook.** After [`WIDEN_AFTER`] visits to a loop head the
//!   engine routes the joined fact through [`DataflowProblem::widen`].
//!   The default is the identity (every lattice currently used has finite
//!   height, so plain iteration terminates); an analysis over an
//!   unbounded lattice (e.g. numeric ranges) overrides it to jump to a
//!   coarser fact and force termination.
//! * **Convergence guard.** A non-monotone transfer function would
//!   oscillate forever; the engine panics after an impossible number of
//!   block visits instead of hanging, turning an analysis bug into a
//!   loud test failure.
//!
//! The solved [`Solution`] materializes the fact at every program point
//! (before and after each instruction), which is what the lint passes
//! consume.

use crate::cfg::Cfg;
use reach_sim::isa::{Inst, Program};
use std::collections::VecDeque;

/// Propagation direction of a dataflow problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry along CFG edges (e.g. reaching
    /// definitions, available prefetches).
    Forward,
    /// Facts flow from exits against CFG edges (e.g. liveness).
    Backward,
}

/// Number of joins at a loop head before the engine applies
/// [`DataflowProblem::widen`].
pub const WIDEN_AFTER: usize = 8;

/// A dataflow analysis: a join-semilattice of facts plus a monotone
/// transfer function over instructions.
pub trait DataflowProblem {
    /// The lattice element attached to every program point.
    type Fact: Clone + PartialEq;

    /// Propagation direction.
    fn direction(&self) -> Direction;

    /// The join identity ("no paths reach here yet"). Also the initial
    /// fact of every block-boundary before iteration.
    fn bottom(&self) -> Self::Fact;

    /// Fact at the analysis boundary: the program entry for forward
    /// problems; for backward problems the point after `last`, the final
    /// instruction of an exit block (no CFG successors). Liveness uses
    /// this to make `ret` conservative (everything live for the unknown
    /// caller) and `halt` strict.
    fn boundary(&self, last: Option<&Inst>) -> Self::Fact;

    /// Joins `from` into `into` (least upper bound). The engine detects
    /// convergence by comparing the joined fact with its previous value.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact);

    /// Transfer across one instruction, mutating the fact in place. For
    /// forward problems `fact` is the state before `inst` and becomes the
    /// state after; for backward problems it is the state after and
    /// becomes the state before.
    fn transfer(&self, pc: usize, inst: &Inst, fact: &mut Self::Fact);

    /// Widening: accelerates (or forces) convergence at loop heads on
    /// lattices of unbounded height. `old` is the fact from the previous
    /// visit, `new` the freshly joined one; the result must be an upper
    /// bound of both. The default — returning `new` unchanged — is
    /// correct for any finite-height lattice.
    fn widen(&self, _old: &Self::Fact, new: Self::Fact) -> Self::Fact {
        new
    }
}

/// A solved dataflow problem: the fact at every program point.
#[derive(Clone, Debug)]
pub struct Solution<F> {
    /// `before[pc]`: fact at the point immediately before the
    /// instruction at `pc` executes (in program order, regardless of the
    /// analysis direction).
    pub before: Vec<F>,
    /// `after[pc]`: fact at the point immediately after.
    pub after: Vec<F>,
    /// Total block visits the worklist performed (fixpoint diagnostics;
    /// bounded for monotone transfers on finite lattices).
    pub iterations: usize,
}

impl<F> Solution<F> {
    /// The fact immediately before the instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn before(&self, pc: usize) -> &F {
        &self.before[pc]
    }

    /// The fact immediately after the instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn after(&self, pc: usize) -> &F {
        &self.after[pc]
    }
}

/// Solves `problem` over `prog` and `cfg` by worklist iteration to a
/// fixpoint.
///
/// # Panics
///
/// Panics if the iteration fails to converge within a generous bound —
/// which a monotone transfer function on a finite-height (or widened)
/// lattice cannot do, so a panic here means the [`DataflowProblem`]
/// implementation is buggy, not the input program.
pub fn solve<P: DataflowProblem>(problem: &P, prog: &Program, cfg: &Cfg) -> Solution<P::Fact> {
    let nb = cfg.len();
    let forward = problem.direction() == Direction::Forward;

    // Orient the graph once: edge sources feeding each block, and the
    // iteration order that converges fastest (RPO forward, reverse RPO
    // backward).
    let feeds_of = |b: usize| -> &[usize] {
        if forward {
            &cfg.blocks[b].preds
        } else {
            &cfg.blocks[b].succs
        }
    };
    let outputs_of = |b: usize| -> &[usize] {
        if forward {
            &cfg.blocks[b].succs
        } else {
            &cfg.blocks[b].preds
        }
    };
    let mut order = cfg.reverse_post_order();
    // RPO covers only entry-reachable blocks; unreachable blocks still
    // get facts (the reference analyses computed them, and lints reason
    // about dead code), so append them in index order.
    let mut in_order = vec![false; nb];
    for &b in &order {
        in_order[b] = true;
    }
    for (b, seen) in in_order.iter().enumerate() {
        if !seen {
            order.push(b);
        }
    }
    if !forward {
        order.reverse();
    }

    // Loop heads in the analysis direction: targets of retreating edges,
    // where widening applies.
    let mut is_loop_head = vec![false; nb];
    for (tail, head) in cfg.back_edges() {
        let h = if forward { head } else { tail };
        is_loop_head[h] = true;
    }

    // in_fact[b]: fact at the block's analysis entry (start of the block
    // forward, end of the block backward).
    let mut in_fact: Vec<P::Fact> = (0..nb).map(|_| problem.bottom()).collect();
    let mut out_fact: Vec<P::Fact> = (0..nb).map(|_| problem.bottom()).collect();
    let mut visits = vec![0usize; nb];

    // A block with no feeding edges takes the boundary fact: the entry
    // block forward, exit blocks (ret/halt/trailing) backward.
    let boundary_fact = |b: usize| -> Option<P::Fact> {
        if forward {
            (b == 0).then(|| problem.boundary(None))
        } else {
            feeds_of(b)
                .is_empty()
                .then(|| problem.boundary(Some(&prog.insts[cfg.blocks[b].end - 1])))
        }
    };

    // Transfer a whole block from its analysis-entry fact.
    let transfer_block = |b: usize, fact: &mut P::Fact| {
        let block = &cfg.blocks[b];
        if forward {
            for pc in block.start..block.end {
                problem.transfer(pc, &prog.insts[pc], fact);
            }
        } else {
            for pc in (block.start..block.end).rev() {
                problem.transfer(pc, &prog.insts[pc], fact);
            }
        }
    };

    let mut queue: VecDeque<usize> = order.iter().copied().collect();
    let mut queued = vec![false; nb];
    for &b in &order {
        queued[b] = true;
    }

    // Convergence guard: lattice chains here are short (≤ a few hundred
    // joins per block even for per-register set lattices); this bound is
    // orders of magnitude above any legitimate run.
    let max_visits = 1024 + nb * 256;
    let mut iterations = 0usize;

    while let Some(b) = queue.pop_front() {
        queued[b] = false;
        iterations += 1;
        assert!(
            iterations <= max_visits,
            "dataflow failed to converge after {iterations} block visits: \
             non-monotone transfer or unbounded lattice without widening"
        );
        visits[b] += 1;

        // Join the feeding facts (plus the boundary, where applicable).
        let mut joined = match boundary_fact(b) {
            Some(f) => f,
            None => problem.bottom(),
        };
        for &f in feeds_of(b) {
            problem.join(&mut joined, &out_fact[f]);
        }
        if is_loop_head[b] && visits[b] > WIDEN_AFTER {
            joined = problem.widen(&in_fact[b], joined);
        }

        let first_visit = visits[b] == 1;
        if !first_visit && joined == in_fact[b] {
            continue; // stable input ⇒ stable output
        }
        in_fact[b] = joined.clone();

        let mut out = joined;
        transfer_block(b, &mut out);
        if first_visit || out != out_fact[b] {
            out_fact[b] = out;
            for &s in outputs_of(b) {
                if !queued[s] {
                    queued[s] = true;
                    queue.push_back(s);
                }
            }
        }
    }

    // Materialize per-PC facts from the stable block-entry facts.
    let n = prog.len();
    let mut before: Vec<P::Fact> = (0..n).map(|_| problem.bottom()).collect();
    let mut after: Vec<P::Fact> = (0..n).map(|_| problem.bottom()).collect();
    for (b, block) in cfg.blocks.iter().enumerate() {
        let mut fact = in_fact[b].clone();
        if forward {
            for pc in block.start..block.end {
                before[pc] = fact.clone();
                problem.transfer(pc, &prog.insts[pc], &mut fact);
                after[pc] = fact.clone();
            }
        } else {
            for pc in (block.start..block.end).rev() {
                after[pc] = fact.clone();
                problem.transfer(pc, &prog.insts[pc], &mut fact);
                before[pc] = fact.clone();
            }
        }
    }

    Solution {
        before,
        after,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::isa::{AluOp, Cond, ProgramBuilder, Reg};

    /// A toy forward problem: "constant-ish" PC count — each fact counts
    /// instructions seen on the longest path, capped (finite lattice).
    struct CappedCount;

    impl DataflowProblem for CappedCount {
        type Fact = u32;

        fn direction(&self) -> Direction {
            Direction::Forward
        }

        fn bottom(&self) -> u32 {
            0
        }

        fn boundary(&self, _last: Option<&Inst>) -> u32 {
            0
        }

        fn join(&self, into: &mut u32, from: &u32) {
            *into = (*into).max(*from);
        }

        fn transfer(&self, _pc: usize, _inst: &Inst, fact: &mut u32) {
            *fact = (*fact + 1).min(100);
        }
    }

    fn loop_prog() -> reach_sim::isa::Program {
        let mut b = ProgramBuilder::new("l");
        b.imm(Reg(0), 3).imm(Reg(1), 1);
        let top = b.label();
        b.bind(top);
        b.alu(AluOp::Sub, Reg(0), Reg(0), Reg(1), 1);
        b.branch(Cond::Nez, Reg(0), top);
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn forward_fixpoint_saturates_around_loop() {
        let p = loop_prog();
        let cfg = Cfg::build(&p);
        let sol = solve(&CappedCount, &p, &cfg);
        // The loop re-feeds itself; the capped count must hit the cap at
        // the loop head and stay consistent (before + 1 = after).
        assert_eq!(*sol.before(2), 100);
        for pc in 0..p.len() {
            assert_eq!(*sol.after(pc), (*sol.before(pc) + 1).min(100));
        }
    }

    #[test]
    fn solution_is_a_fixpoint() {
        // Re-applying the transfer to every block entry reproduces the
        // recorded exits (the definition of a fixpoint).
        let p = loop_prog();
        let cfg = Cfg::build(&p);
        let sol = solve(&CappedCount, &p, &cfg);
        for block in &cfg.blocks {
            let mut f = sol.before[block.start];
            for pc in block.start..block.end {
                CappedCount.transfer(pc, &p.insts[pc], &mut f);
            }
            assert_eq!(f, sol.after[block.end - 1]);
        }
    }

    /// Widening to ⊤ (here: the cap) after repeated loop-head visits.
    struct NeedsWidening;

    impl DataflowProblem for NeedsWidening {
        type Fact = u64;

        fn direction(&self) -> Direction {
            Direction::Forward
        }

        fn bottom(&self) -> u64 {
            0
        }

        fn boundary(&self, _last: Option<&Inst>) -> u64 {
            0
        }

        fn join(&self, into: &mut u64, from: &u64) {
            *into = (*into).max(*from);
        }

        fn transfer(&self, _pc: usize, _inst: &Inst, fact: &mut u64) {
            // Strictly increasing: never converges without widening.
            *fact = fact.saturating_add(1);
        }

        fn widen(&self, _old: &u64, _new: u64) -> u64 {
            u64::MAX - 1000 // jump far up the chain; saturation finishes it
        }
    }

    #[test]
    fn widening_forces_convergence_on_unbounded_lattice() {
        let p = loop_prog();
        let cfg = Cfg::build(&p);
        let sol = solve(&NeedsWidening, &p, &cfg);
        assert!(*sol.before(2) >= u64::MAX - 1000);
        assert!(sol.iterations < 1000);
    }
}

//! `reach-lint` — a static verifier for micro-IR binaries.
//!
//! Instrumented binaries ship only after translation validation
//! ([`crate::validate`]) proves they are faithful rewrites. That check is
//! *relative* (rewritten vs. original); the lints here are *absolute*
//! properties of the final binary, computed from the dataflow analyses in
//! [`crate::analyses`], and form a second, independent defense-in-depth
//! gate in the PGO pipeline:
//!
//! | code   | lint                           | default | meaning |
//! |--------|--------------------------------|---------|---------|
//! | RL0001 | clobbered-live-at-yield        | deny    | a yield's save mask omits a live register — a context switch would corrupt state |
//! | RL0002 | prefetch-without-consuming-load| warn    | no path loads the prefetched line before its address register dies |
//! | RL0003 | redundant-prefetch             | warn    | the line is already in flight on every path (and no yield intervened) |
//! | RL0004 | unbounded-inter-yield-loop     | warn    | a yielding program contains a loop that can iterate without ever yielding |
//! | RL0005 | sfi-escape                     | deny    | a memory access whose address is not provably masked, or a clobber of the mask register (SFI mode only) |
//! | RL0006 | unreachable-code               | warn    | instructions no path from entry can execute |
//! | RL0007 | branch-into-instrumentation    | deny    | a control transfer targets the middle of an inserted run instead of an original instruction's entry |
//! | RL0008 | pass-equivalence-violation     | deny    | translation validation ([`crate::equiv`]) cannot prove the rewrite observationally equivalent |
//! | RL0009 | save-set-unprovable            | deny    | a yield's save mask cannot be proven sufficient — an unsaved register flows to a use |
//! | RL0010 | pcmap-inconsistent             | deny    | a rewrite's pc map is not a faithful order-preserving embedding of the original |
//!
//! Diagnostics are PC-anchored with stable codes so tests (and humans)
//! can match on them. Deny-level findings make
//! [`LintReport::has_deny`] true, which the pipeline treats as a refusal
//! to ship.

use crate::analyses::{AnticipatedLoads, AvailablePrefetches, SfiMasked};
use crate::cfg::Cfg;
use crate::liveness::{regset_to_string, Liveness};
use crate::loops::natural_loops;
use crate::sfi::R_SFI_MASK;
use reach_sim::isa::{Inst, Program};
use std::collections::BTreeSet;

/// The lint catalog. Codes are stable: tests and tooling match on them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// RL0001: a yield's register save mask omits a live register.
    ClobberedLiveAtYield,
    /// RL0002: a prefetched line is never loaded afterwards.
    PrefetchWithoutConsumingLoad,
    /// RL0003: a prefetch of a line already in flight on every path.
    RedundantPrefetch,
    /// RL0004: a loop in a yielding program that can iterate without
    /// yielding.
    UnboundedInterYieldLoop,
    /// RL0005: a memory access that may escape the SFI sandbox, or a
    /// clobber of the runtime-owned mask register.
    SfiEscape,
    /// RL0006: code no path from entry reaches.
    UnreachableCode,
    /// RL0007: a control transfer into the middle of inserted
    /// instrumentation.
    BranchIntoInstrumentation,
    /// RL0008: translation validation cannot prove the rewrite
    /// observationally equivalent to its input (see [`crate::equiv`]).
    PassEquivalenceViolation,
    /// RL0009: a yield's save mask cannot be proven sufficient — an
    /// unsaved register can flow from the yield to a use.
    SaveSetUnprovable,
    /// RL0010: a rewrite's pc map is internally inconsistent or not an
    /// order-preserving embedding of the original program.
    PcMapInconsistent,
}

impl Lint {
    /// Every lint, in code order.
    pub const ALL: [Lint; 10] = [
        Lint::ClobberedLiveAtYield,
        Lint::PrefetchWithoutConsumingLoad,
        Lint::RedundantPrefetch,
        Lint::UnboundedInterYieldLoop,
        Lint::SfiEscape,
        Lint::UnreachableCode,
        Lint::BranchIntoInstrumentation,
        Lint::PassEquivalenceViolation,
        Lint::SaveSetUnprovable,
        Lint::PcMapInconsistent,
    ];

    /// The stable diagnostic code (`"RL0001"`...).
    pub fn code(self) -> &'static str {
        match self {
            Lint::ClobberedLiveAtYield => "RL0001",
            Lint::PrefetchWithoutConsumingLoad => "RL0002",
            Lint::RedundantPrefetch => "RL0003",
            Lint::UnboundedInterYieldLoop => "RL0004",
            Lint::SfiEscape => "RL0005",
            Lint::UnreachableCode => "RL0006",
            Lint::BranchIntoInstrumentation => "RL0007",
            Lint::PassEquivalenceViolation => "RL0008",
            Lint::SaveSetUnprovable => "RL0009",
            Lint::PcMapInconsistent => "RL0010",
        }
    }

    /// The human-readable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            Lint::ClobberedLiveAtYield => "clobbered-live-at-yield",
            Lint::PrefetchWithoutConsumingLoad => "prefetch-without-consuming-load",
            Lint::RedundantPrefetch => "redundant-prefetch",
            Lint::UnboundedInterYieldLoop => "unbounded-inter-yield-loop",
            Lint::SfiEscape => "sfi-escape",
            Lint::UnreachableCode => "unreachable-code",
            Lint::BranchIntoInstrumentation => "branch-into-instrumentation",
            Lint::PassEquivalenceViolation => "pass-equivalence-violation",
            Lint::SaveSetUnprovable => "save-set-unprovable",
            Lint::PcMapInconsistent => "pcmap-inconsistent",
        }
    }

    /// Parses a stable code (`"RL0003"`) or kebab-case name
    /// (`"redundant-prefetch"`), case-insensitively.
    pub fn parse(s: &str) -> Option<Lint> {
        let s = s.to_ascii_lowercase();
        Lint::ALL
            .into_iter()
            .find(|l| l.code().eq_ignore_ascii_case(&s) || l.name() == s)
    }

    /// Default severity: correctness-critical lints deny, efficiency and
    /// hygiene lints warn.
    pub fn default_level(self) -> Level {
        match self {
            Lint::ClobberedLiveAtYield
            | Lint::SfiEscape
            | Lint::BranchIntoInstrumentation
            | Lint::PassEquivalenceViolation
            | Lint::SaveSetUnprovable
            | Lint::PcMapInconsistent => Level::Deny,
            Lint::PrefetchWithoutConsumingLoad
            | Lint::RedundantPrefetch
            | Lint::UnboundedInterYieldLoop
            | Lint::UnreachableCode => Level::Warn,
        }
    }
}

/// Severity of a lint finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Suppressed entirely.
    Allow,
    /// Reported, does not block shipping.
    Warn,
    /// Reported, blocks the pipeline.
    Deny,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::Allow => "allow",
            Level::Warn => "warn",
            Level::Deny => "deny",
        })
    }
}

/// One finding: a lint, its effective level, and where it fired.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// Effective severity (after [`LintOptions`] overrides).
    pub level: Level,
    /// Anchor PC in the linted program, if the finding is located at a
    /// single instruction.
    pub pc: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.pc {
            Some(pc) => write!(
                f,
                "{} {:4} pc {:4}  {} ({})",
                self.lint.code(),
                self.level,
                pc,
                self.message,
                self.lint.name()
            ),
            None => write!(
                f,
                "{} {:4} pc    -  {} ({})",
                self.lint.code(),
                self.level,
                self.message,
                self.lint.name()
            ),
        }
    }
}

/// Configuration for a lint run.
#[derive(Clone, Debug, Default)]
pub struct LintOptions {
    /// Enable the SFI checks (RL0005). Off by default: un-sandboxed
    /// binaries legitimately access raw addresses.
    pub sfi: bool,
    /// Per-lint severity overrides (last entry wins). `Level::Allow`
    /// suppresses a lint entirely.
    pub levels: Vec<(Lint, Level)>,
}

impl LintOptions {
    /// The effective level for `lint` after overrides.
    pub fn level(&self, lint: Lint) -> Level {
        self.levels
            .iter()
            .rev()
            .find(|(l, _)| *l == lint)
            .map(|&(_, lv)| lv)
            .unwrap_or_else(|| lint.default_level())
    }
}

/// The outcome of linting one program.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All findings, in ascending PC order (unanchored findings last).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// `true` if any finding is deny-level — the pipeline's refusal
    /// signal.
    pub fn has_deny(&self) -> bool {
        self.diagnostics.iter().any(|d| d.level == Level::Deny)
    }

    /// Number of deny-level findings.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Deny)
            .count()
    }

    /// Number of warn-level findings.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.level == Level::Warn)
            .count()
    }

    /// `true` if nothing fired at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The codes that fired, deduplicated, in code order.
    pub fn fired_codes(&self) -> Vec<&'static str> {
        let set: BTreeSet<Lint> = self.diagnostics.iter().map(|d| d.lint).collect();
        set.into_iter().map(Lint::code).collect()
    }
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "clean: no lints fired");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        writeln!(
            f,
            "{} finding(s): {} deny, {} warn",
            self.diagnostics.len(),
            self.deny_count(),
            self.warn_count()
        )
    }
}

/// Lints `prog`.
///
/// `origin` is the rewriting origin map (`origin[new_pc] = Some(old_pc)`
/// for surviving instructions, `None` for inserted ones) when the
/// program is the output of an instrumentation pipeline; it enables the
/// RL0007 branch-into-instrumentation check. Pass `None` for
/// uninstrumented programs (RL0007 is skipped).
pub fn lint_program(
    prog: &Program,
    origin: Option<&[Option<usize>]>,
    opts: &LintOptions,
) -> LintReport {
    let cfg = Cfg::build(prog);
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut emit = |lint: Lint, pc: Option<usize>, message: String| {
        let level = opts.level(lint);
        if level != Level::Allow {
            diags.push(Diagnostic {
                lint,
                level,
                pc,
                message,
            });
        }
    };

    // RL0001: every yield's save mask must cover the live set.
    let liveness = Liveness::compute(prog, &cfg);
    for (pc, inst) in prog.insts.iter().enumerate() {
        if let Inst::Yield {
            save_regs: Some(mask),
            ..
        } = inst
        {
            let clobbered = liveness.live_before(pc) & !mask;
            if clobbered != 0 {
                emit(
                    Lint::ClobberedLiveAtYield,
                    Some(pc),
                    format!(
                        "yield saves {} but {} is live — a context switch here corrupts state",
                        regset_to_string(*mask),
                        regset_to_string(clobbered)
                    ),
                );
            }
        }
    }

    // RL0002 / RL0003: prefetch usefulness.
    let anticipated = AnticipatedLoads::compute(prog, &cfg);
    let available = AvailablePrefetches::compute(prog, &cfg);
    for (pc, inst) in prog.insts.iter().enumerate() {
        if let Inst::Prefetch { addr, offset } = inst {
            let line = (addr.index() as u8, *offset);
            if !anticipated.anticipated_after(pc, line) {
                emit(
                    Lint::PrefetchWithoutConsumingLoad,
                    Some(pc),
                    format!(
                        "prefetch [r{}{:+}] is never consumed by a load on any path",
                        line.0, line.1
                    ),
                );
            } else if available.available_before(pc, line) {
                emit(
                    Lint::RedundantPrefetch,
                    Some(pc),
                    format!(
                        "line [r{}{:+}] is already in flight on every path to this prefetch",
                        line.0, line.1
                    ),
                );
            }
        }
    }

    // RL0004: in a yielding program, every loop should yield. Programs
    // with no yields at all are simply uninstrumented — not lint matter.
    if prog.insts.iter().any(Inst::is_yield) {
        for l in natural_loops(&cfg) {
            let yields = l.body.iter().any(|&b| {
                let blk = &cfg.blocks[b];
                prog.insts[blk.start..blk.end].iter().any(Inst::is_yield)
            });
            if !yields {
                let header_pc = cfg.blocks[l.header].start;
                emit(
                    Lint::UnboundedInterYieldLoop,
                    Some(header_pc),
                    format!(
                        "loop headed at pc {header_pc} can iterate without yielding \
                         (inter-yield interval unbounded)"
                    ),
                );
            }
        }
    }

    // RL0005: SFI escape analysis (abstract interpretation).
    if opts.sfi {
        let masked = SfiMasked::compute(prog, &cfg);
        for (pc, inst) in prog.insts.iter().enumerate() {
            if inst.def() == Some(R_SFI_MASK) {
                emit(
                    Lint::SfiEscape,
                    Some(pc),
                    format!(
                        "instruction clobbers the runtime-owned SFI mask register r{}",
                        R_SFI_MASK.index()
                    ),
                );
            }
            let (what, addr) = match inst {
                Inst::Load { addr, .. } => ("load", addr),
                Inst::Store { addr, .. } => ("store", addr),
                Inst::Prefetch { addr, .. } => ("prefetch", addr),
                _ => continue,
            };
            if !masked.masked_before(pc, addr.index() as u8) {
                emit(
                    Lint::SfiEscape,
                    Some(pc),
                    format!(
                        "{what} address r{} is not provably masked on every path — \
                         access may escape the sandbox",
                        addr.index()
                    ),
                );
            }
        }
    }

    // RL0006: blocks absent from the reverse post-order are unreachable.
    let reachable: BTreeSet<usize> = cfg.reverse_post_order().into_iter().collect();
    for (b, blk) in cfg.blocks.iter().enumerate() {
        if !reachable.contains(&b) {
            emit(
                Lint::UnreachableCode,
                Some(blk.start),
                format!(
                    "instructions {}..{} are unreachable from entry",
                    blk.start,
                    blk.end - 1
                ),
            );
        }
    }

    // RL0007: control transfers must land on original-instruction
    // entries, never inside an inserted instrumentation run.
    if let Some(origin) = origin {
        if origin.len() == prog.len() {
            // entry(old) = start of the inserted run preceding old's
            // relocated position (identical to validate.rs's relocation
            // target rule).
            let mut legal: BTreeSet<usize> = BTreeSet::new();
            let mut prev_new: Option<usize> = None;
            for (new_pc, o) in origin.iter().enumerate() {
                if o.is_some() {
                    legal.insert(match prev_new {
                        None => 0,
                        Some(p) => p + 1,
                    });
                    prev_new = Some(new_pc);
                }
            }
            for (pc, inst) in prog.insts.iter().enumerate() {
                let target = match inst {
                    Inst::Branch { target, .. } => *target,
                    Inst::Call { target } => *target,
                    _ => continue,
                };
                if !legal.contains(&target) {
                    emit(
                        Lint::BranchIntoInstrumentation,
                        Some(pc),
                        format!(
                            "control transfer to pc {target} lands inside inserted \
                             instrumentation, not at an original instruction's entry"
                        ),
                    );
                }
            }
        }
    }

    diags.sort_by_key(|d| (d.pc.unwrap_or(usize::MAX), d.lint));
    LintReport { diagnostics: diags }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sfi::instrument_sfi;
    use reach_sim::isa::{AluOp, Cond, ProgramBuilder, Reg, YieldKind};

    fn lint(prog: &Program) -> LintReport {
        lint_program(prog, None, &LintOptions::default())
    }

    #[test]
    fn clean_straightline_program_is_clean() {
        let mut b = ProgramBuilder::new("c");
        b.imm(Reg(0), 1);
        b.store(Reg(0), Reg(1), 0);
        b.halt();
        let r = lint(&b.finish().unwrap());
        assert!(r.is_clean(), "unexpected findings:\n{r}");
    }

    #[test]
    fn clobbered_live_at_yield_fires() {
        let mut b = ProgramBuilder::new("y");
        b.imm(Reg(2), 7);
        b.push(Inst::Yield {
            kind: YieldKind::Manual,
            save_regs: Some(0), // saves nothing; r2 and r3 are live
        });
        b.store(Reg(2), Reg(3), 0);
        b.halt();
        let r = lint(&b.finish().unwrap());
        assert_eq!(r.fired_codes(), vec!["RL0001"]);
        assert!(r.has_deny());
        assert_eq!(r.diagnostics[0].pc, Some(1));
    }

    #[test]
    fn exact_save_mask_is_clean() {
        let mut b = ProgramBuilder::new("y2");
        b.imm(Reg(2), 7);
        b.push(Inst::Yield {
            kind: YieldKind::Manual,
            save_regs: Some((1 << 2) | (1 << 3)),
        });
        b.store(Reg(2), Reg(3), 0);
        b.halt();
        assert!(lint(&b.finish().unwrap()).is_clean());
    }

    #[test]
    fn orphan_prefetch_fires_rl0002() {
        let mut b = ProgramBuilder::new("o");
        b.prefetch(Reg(3), 8); // nothing ever loads [r3+8]
        b.imm(Reg(0), 1);
        b.halt();
        let r = lint(&b.finish().unwrap());
        assert_eq!(r.fired_codes(), vec!["RL0002"]);
        assert!(!r.has_deny());
    }

    #[test]
    fn redundant_prefetch_fires_rl0003() {
        let mut b = ProgramBuilder::new("rp");
        b.prefetch(Reg(3), 8);
        b.prefetch(Reg(3), 8); // same line, no yield/redef between
        b.load(Reg(4), Reg(3), 8);
        b.halt();
        let r = lint(&b.finish().unwrap());
        assert_eq!(r.fired_codes(), vec!["RL0003"]);
        assert_eq!(r.diagnostics[0].pc, Some(1));
    }

    #[test]
    fn prefetch_across_yield_is_not_redundant() {
        let mut b = ProgramBuilder::new("py");
        b.prefetch(Reg(3), 8);
        b.load(Reg(4), Reg(3), 8);
        b.yield_manual();
        b.prefetch(Reg(3), 8); // line may have been evicted: legitimate
        b.load(Reg(5), Reg(3), 8);
        b.halt();
        assert!(lint(&b.finish().unwrap()).is_clean());
    }

    #[test]
    fn yieldless_loop_in_yielding_program_fires_rl0004() {
        let mut b = ProgramBuilder::new("ul");
        b.yield_manual(); // the program does yield...
        let top = b.label();
        b.bind(top);
        b.alu(AluOp::Sub, Reg(0), Reg(0), Reg(1), 1);
        b.branch(Cond::Nez, Reg(0), top); // ...but this loop never does
        b.halt();
        let r = lint(&b.finish().unwrap());
        assert_eq!(r.fired_codes(), vec!["RL0004"]);
    }

    #[test]
    fn yieldless_program_with_loop_is_not_rl0004() {
        let mut b = ProgramBuilder::new("nl");
        let top = b.label();
        b.bind(top);
        b.alu(AluOp::Sub, Reg(0), Reg(0), Reg(1), 1);
        b.branch(Cond::Nez, Reg(0), top);
        b.halt();
        assert!(lint(&b.finish().unwrap()).is_clean());
    }

    #[test]
    fn sfi_mode_accepts_instrumented_and_rejects_raw() {
        let mut b = ProgramBuilder::new("s");
        b.load(Reg(4), Reg(0), 0);
        b.store(Reg(4), Reg(1), 8);
        b.halt();
        let p = b.finish().unwrap();
        let opts = LintOptions {
            sfi: true,
            ..Default::default()
        };
        // Raw program: two escapes.
        let raw = lint_program(&p, None, &opts);
        assert_eq!(raw.fired_codes(), vec!["RL0005"]);
        assert_eq!(raw.deny_count(), 2);
        // SFI-instrumented: clean.
        let (q, _) = instrument_sfi(&p).unwrap();
        let inst = lint_program(&q, None, &opts);
        assert!(inst.is_clean(), "unexpected findings:\n{inst}");
    }

    #[test]
    fn mask_clobber_fires_rl0005() {
        let mut b = ProgramBuilder::new("mc");
        b.load(Reg(4), Reg(0), 0);
        b.halt();
        let (mut q, _) = instrument_sfi(&b.finish().unwrap()).unwrap();
        // Tamper: overwrite the mask register before the access.
        q.insts[0] = Inst::Imm {
            dst: R_SFI_MASK,
            val: u64::MAX,
        };
        let opts = LintOptions {
            sfi: true,
            ..Default::default()
        };
        let r = lint_program(&q, None, &opts);
        assert!(r.fired_codes().contains(&"RL0005"));
        assert!(r.has_deny());
    }

    #[test]
    fn unreachable_code_fires_rl0006() {
        let mut b = ProgramBuilder::new("u");
        let over = b.label();
        b.jump(over);
        b.imm(Reg(0), 1); // skipped by the unconditional jump
        b.bind(over);
        b.halt();
        let r = lint(&b.finish().unwrap());
        assert_eq!(r.fired_codes(), vec!["RL0006"]);
        assert_eq!(r.diagnostics[0].pc, Some(1));
    }

    #[test]
    fn branch_into_instrumentation_fires_rl0007() {
        // original: loop back to pc 0.
        let mut b = ProgramBuilder::new("bi");
        let top = b.label();
        b.bind(top);
        b.load(Reg(4), Reg(0), 0);
        b.branch(Cond::Nez, Reg(4), top);
        b.halt();
        let p = b.finish().unwrap();
        // "Instrumented": one prefetch inserted at the front, branch
        // relocated... wrongly, to pc 1 (the load) instead of pc 0 (the
        // inserted run's start).
        let q = {
            let mut insts = vec![Inst::Prefetch {
                addr: Reg(0),
                offset: 0,
            }];
            insts.extend(p.insts.iter().cloned());
            if let Inst::Branch { target, .. } = &mut insts[2] {
                *target = 1;
            }
            Program {
                name: "bi+".into(),
                insts,
            }
        };
        let origin = [None, Some(0), Some(1), Some(2)];
        let r = lint_program(&q, Some(&origin), &LintOptions::default());
        assert!(r.fired_codes().contains(&"RL0007"));
        assert!(r.has_deny());
        // With the correct relocation (target 0 = run entry), RL0007 is
        // quiet.
        let mut ok = q.clone();
        if let Inst::Branch { target, .. } = &mut ok.insts[2] {
            *target = 0;
        }
        let r2 = lint_program(&ok, Some(&origin), &LintOptions::default());
        assert!(!r2.fired_codes().contains(&"RL0007"));
    }

    #[test]
    fn level_overrides_apply() {
        let mut b = ProgramBuilder::new("lv");
        b.prefetch(Reg(3), 8);
        b.imm(Reg(0), 1);
        b.halt();
        let p = b.finish().unwrap();
        // Promote RL0002 to deny.
        let deny = LintOptions {
            sfi: false,
            levels: vec![(Lint::PrefetchWithoutConsumingLoad, Level::Deny)],
        };
        assert!(lint_program(&p, None, &deny).has_deny());
        // Allow silences it.
        let allow = LintOptions {
            sfi: false,
            levels: vec![(Lint::PrefetchWithoutConsumingLoad, Level::Allow)],
        };
        assert!(lint_program(&p, None, &allow).is_clean());
    }

    #[test]
    fn lint_parse_accepts_codes_and_names() {
        assert_eq!(Lint::parse("RL0003"), Some(Lint::RedundantPrefetch));
        assert_eq!(Lint::parse("rl0003"), Some(Lint::RedundantPrefetch));
        assert_eq!(Lint::parse("sfi-escape"), Some(Lint::SfiEscape));
        assert_eq!(Lint::parse("nope"), None);
        for l in Lint::ALL {
            assert_eq!(Lint::parse(l.code()), Some(l));
            assert_eq!(Lint::parse(l.name()), Some(l));
        }
    }

    #[test]
    fn report_formatting_is_stable() {
        let mut b = ProgramBuilder::new("f");
        b.prefetch(Reg(3), 8);
        b.imm(Reg(0), 1);
        b.halt();
        let r = lint(&b.finish().unwrap());
        let text = r.to_string();
        assert!(text.contains("RL0002"), "{text}");
        assert!(text.contains("pc    0"), "{text}");
        assert!(text.contains("1 finding(s): 0 deny, 1 warn"), "{text}");
    }
}

//! Register liveness analysis over the binary (§3.2's first optimization:
//! "identify registers whose values will be used later via a register
//! liveness analysis [45, 52] and only preserve the values of these
//! registers").
//!
//! A standard backward may-analysis on the CFG: a register is live at a
//! point if some path from that point reads it before writing it. Yield
//! sites then save exactly the live set instead of the full architectural
//! file, directly reducing the modelled switch cost.
//!
//! Conservatism: `ret` is treated as "all registers live" (an unknown
//! caller may read anything), `halt` as "nothing live". Both directions
//! are sound for save-set purposes: over-approximating liveness only costs
//! cycles, never correctness — and the executor's register-poisoning test
//! mode verifies we never under-approximate.
//!
//! Implementation: an instance of the generic worklist engine in
//! [`crate::dataflow`] ([`LivenessProblem`]). The original hand-rolled
//! worklist is preserved as [`Liveness::compute_reference`] and pinned
//! bit-identical to the engine by differential tests
//! (`tests/prop_dataflow.rs`).

use crate::cfg::Cfg;
use crate::dataflow::{self, DataflowProblem, Direction};
use reach_sim::isa::{Inst, Program, Reg, NUM_REGS};

/// A register set as a bitmask (bit *i* = register *i*).
pub type RegSet = u32;

/// Mask with every architectural register set.
pub const ALL_REGS: RegSet = u32::MAX;

/// Per-instruction liveness results.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// `live_in[pc]`: registers live immediately before the instruction at
    /// `pc` executes.
    live_in: Vec<RegSet>,
}

pub(crate) fn def_use(inst: &Inst, uses_buf: &mut Vec<Reg>) -> (RegSet, RegSet) {
    let def = inst.def().map_or(0, |r| 1u32 << r.index());
    uses_buf.clear();
    inst.uses(uses_buf);
    let mut uses = 0u32;
    for r in uses_buf.iter() {
        uses |= 1u32 << r.index();
    }
    (def, uses)
}

/// Liveness as a [`DataflowProblem`]: backward may-analysis on the
/// `RegSet` powerset lattice (join = union), transfer
/// `live' = (live \ def) ∪ uses`.
pub struct LivenessProblem;

impl DataflowProblem for LivenessProblem {
    type Fact = RegSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self) -> RegSet {
        0
    }

    fn boundary(&self, last: Option<&Inst>) -> RegSet {
        // Exit-block conservatism: an unknown caller may read anything
        // after `ret`; nothing is observable after `halt`.
        match last {
            Some(Inst::Ret) => ALL_REGS,
            _ => 0,
        }
    }

    fn join(&self, into: &mut RegSet, from: &RegSet) {
        *into |= *from;
    }

    fn transfer(&self, _pc: usize, inst: &Inst, fact: &mut RegSet) {
        let mut uses_buf = Vec::with_capacity(4);
        let (def, uses) = def_use(inst, &mut uses_buf);
        *fact = (*fact & !def) | uses;
    }
}

impl Liveness {
    /// Computes liveness for `prog` over its `cfg` via the generic
    /// dataflow engine.
    pub fn compute(prog: &Program, cfg: &Cfg) -> Liveness {
        let sol = dataflow::solve(&LivenessProblem, prog, cfg);
        Liveness {
            live_in: sol.before,
        }
    }

    /// The original hand-rolled backward worklist, kept as a differential
    /// oracle: tests assert [`Liveness::compute`] matches it bit-for-bit
    /// on every program.
    pub fn compute_reference(prog: &Program, cfg: &Cfg) -> Liveness {
        let n = prog.len();
        let mut live_in = vec![0u32; n];
        let mut live_out_block = vec![0u32; cfg.len()];
        let mut uses_buf = Vec::with_capacity(4);

        // Worklist over blocks, backward.
        let mut dirty = vec![true; cfg.len()];
        let mut work: Vec<usize> = (0..cfg.len()).rev().collect();
        while let Some(b) = work.pop() {
            if !dirty[b] {
                continue;
            }
            dirty[b] = false;
            let block = &cfg.blocks[b];

            // live-out of the block = union of successors' live-in, with
            // the conservative exits baked in.
            let last = &prog.insts[block.end - 1];
            let mut out = match last {
                Inst::Ret => ALL_REGS,
                _ => 0,
            };
            for &s in &block.succs {
                out |= live_in[cfg.blocks[s].start];
            }
            live_out_block[b] = out;

            // Backward transfer through the block.
            let mut live = out;
            let mut changed = false;
            for pc in (block.start..block.end).rev() {
                let (def, uses) = def_use(&prog.insts[pc], &mut uses_buf);
                live = (live & !def) | uses;
                if live_in[pc] != live {
                    live_in[pc] = live;
                    changed = true;
                }
            }
            if changed {
                for &p in &block.preds {
                    if !dirty[p] {
                        dirty[p] = true;
                        work.push(p);
                    }
                }
            }
        }

        Liveness { live_in }
    }

    /// Registers live immediately before the instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[inline]
    pub fn live_before(&self, pc: usize) -> RegSet {
        self.live_in[pc]
    }

    /// Number of live registers before `pc`.
    #[inline]
    pub fn live_count(&self, pc: usize) -> u32 {
        self.live_in[pc].count_ones()
    }
}

/// Formats a register set for debugging ("{r0,r3,r7}").
pub fn regset_to_string(set: RegSet) -> String {
    let regs: Vec<String> = (0..NUM_REGS)
        .filter(|&i| set & (1 << i) != 0)
        .map(|i| format!("r{i}"))
        .collect();
    format!("{{{}}}", regs.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::isa::{AluOp, Cond, ProgramBuilder};

    fn analyze(prog: &Program) -> Liveness {
        let cfg = Cfg::build(prog);
        let l = Liveness::compute(prog, &cfg);
        // Every unit test doubles as a differential check against the
        // reference worklist.
        let r = Liveness::compute_reference(prog, &cfg);
        assert_eq!(l.live_in, r.live_in, "engine deviates from reference");
        l
    }

    #[test]
    fn dead_value_is_not_live() {
        // r0 = 1 (dead: overwritten); r0 = 2; store uses r0, r1.
        let mut b = ProgramBuilder::new("t");
        b.imm(Reg(0), 1);
        b.imm(Reg(0), 2);
        b.store(Reg(0), Reg(1), 0);
        b.halt();
        let p = b.finish().unwrap();
        let l = analyze(&p);
        // Before pc 0: r1 is live (used by the store), r0 is not (it is
        // redefined before use).
        assert_eq!(l.live_before(0), 1 << 1);
        // Before the store: r0 and r1 live.
        assert_eq!(l.live_before(2), 0b11);
        // After halt nothing is live; before it nothing is used.
        assert_eq!(l.live_before(3), 0);
    }

    #[test]
    fn liveness_flows_around_loop() {
        // Loop decrements r0 by r1: both live throughout the body.
        let mut b = ProgramBuilder::new("loop");
        b.imm(Reg(0), 3);
        b.imm(Reg(1), 1);
        let top = b.label();
        b.bind(top);
        b.alu(AluOp::Sub, Reg(0), Reg(0), Reg(1), 1);
        b.branch(Cond::Nez, Reg(0), top);
        b.halt();
        let p = b.finish().unwrap();
        let l = analyze(&p);
        // At the loop head both r0 (redefined but used first) and r1
        // (loop-carried) are live.
        assert_eq!(l.live_before(2), 0b11);
        assert_eq!(l.live_count(2), 2);
        // Before pc 1 only r0 is live-in... r0 defined at 0 and used at 2;
        // r1 defined at 1. So live_before(1) = {r0}.
        assert_eq!(l.live_before(1), 0b01);
    }

    #[test]
    fn branch_condition_register_is_live_on_both_arms() {
        let mut b = ProgramBuilder::new("d");
        let then_l = b.label();
        b.branch(Cond::Nez, Reg(5), then_l);
        b.imm(Reg(1), 2);
        b.bind(then_l);
        b.store(Reg(1), Reg(2), 0);
        b.halt();
        let p = b.finish().unwrap();
        let l = analyze(&p);
        // Before the branch: r5 (condition), r2 (store addr) and r1 (store
        // value on the taken path, where pc1's def is skipped) are live.
        assert_eq!(l.live_before(0), (1 << 5) | (1 << 2) | (1 << 1));
    }

    #[test]
    fn ret_makes_everything_live() {
        let mut b = ProgramBuilder::new("r");
        let f = b.label();
        b.call(f);
        b.halt();
        b.bind(f);
        b.imm(Reg(3), 1);
        b.ret();
        let p = b.finish().unwrap();
        let l = analyze(&p);
        // Inside the callee: before the `ret` (pc 3) everything is
        // conservatively live; before the `imm r3` (pc 2), r3 is killed by
        // its own definition.
        assert_eq!(l.live_before(3), ALL_REGS);
        assert_eq!(l.live_before(2), ALL_REGS & !(1 << 3));
    }

    #[test]
    fn load_addr_register_is_live_before_load() {
        let mut b = ProgramBuilder::new("ld");
        b.load(Reg(4), Reg(9), 8);
        b.store(Reg(4), Reg(10), 0);
        b.halt();
        let p = b.finish().unwrap();
        let l = analyze(&p);
        assert_eq!(l.live_before(0), (1 << 9) | (1 << 10));
        assert_eq!(l.live_before(1), (1 << 4) | (1 << 10));
    }

    #[test]
    fn yields_are_transparent_to_liveness() {
        let mut b = ProgramBuilder::new("y");
        b.imm(Reg(2), 7);
        b.yield_manual();
        b.store(Reg(2), Reg(3), 0);
        b.halt();
        let p = b.finish().unwrap();
        let l = analyze(&p);
        // Live across the yield: r2 (value) and r3 (addr) — exactly what a
        // switch at pc 1 must save.
        assert_eq!(l.live_before(1), (1 << 2) | (1 << 3));
    }

    #[test]
    fn regset_formatting() {
        assert_eq!(regset_to_string(0), "{}");
        assert_eq!(regset_to_string(0b1001), "{r0,r3}");
    }
}

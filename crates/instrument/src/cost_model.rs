//! The gain/cost model and insertion policies (§3.2: "quantitatively model
//! the gain and the cost of instrumenting at a specific load instruction").
//!
//! Per executed load, instrumenting costs `prefetch + switch(save set)`
//! cycles *unconditionally* (primary yields always fire), and gains the
//! expected hidden stall `p_miss × stall_per_miss`. The statistics come
//! from the profile (likelihood from the miss/retired counters, stall per
//! miss from the §3.2 two-event correlation); machine characteristics
//! (switch cost, prefetch cost, DRAM latency) come from the
//! [`MachineConfig`].
//!
//! Policies:
//! * [`Policy::Threshold`] — the paper's "simple policy": instrument when
//!   the miss likelihood clears a threshold. Blind to how *long* the miss
//!   stalls, so it overpays at L3-resident sites.
//! * [`Policy::CostModel`] — instrument when `gain > margin × cost`.
//! * [`Policy::TopK`] — instrument the K sites with the highest estimated
//!   total stall.
//! * [`Policy::All`] — instrument every static load site (the no-profile
//!   upper bound on coverage and overhead).

use reach_profile::Profile;
use reach_sim::isa::{Inst, Program};
use reach_sim::MachineConfig;

/// Returns a copy of `profile` with basic-block-smoothed execution
/// estimates for `prog` (the program the profile was collected on).
///
/// Instruction-counter samples land on only a few PCs of a short loop;
/// pooling them per basic block (every instruction of a block executes
/// equally often) is what makes per-PC miss *likelihoods* usable — the
/// same block-level aggregation production FDO pipelines perform.
pub fn smooth_profile(profile: &Profile, prog: &Program) -> Profile {
    let cfg = crate::cfg::Cfg::build(prog);
    let mut p = profile.clone();
    p.set_block_smoothing(cfg.blocks.iter().map(|b| b.start..b.end));
    p
}

/// Remaps a profile collected on an *instrumented* binary back to the
/// original program's PC space using the rewriting `origin` map
/// (samples attributed to inserted instructions are dropped).
///
/// This is what makes *continuous* PGO possible: production runs the
/// instrumented binary, its samples are folded back onto original PCs,
/// and the next instrumentation round consumes them like any other
/// profile.
pub fn remap_to_origin(profile: &Profile, origin: &[Option<usize>]) -> Profile {
    let mut out = Profile::new(profile.program.clone(), profile.periods);
    let remap = |map: &std::collections::HashMap<usize, u64>,
                 out_map: &mut std::collections::HashMap<usize, u64>| {
        for (&pc, &n) in map {
            if let Some(Some(opc)) = origin.get(pc) {
                *out_map.entry(*opc).or_insert(0) += n;
            }
        }
    };
    remap(&profile.l2_miss_samples, &mut out.l2_miss_samples);
    remap(&profile.l3_miss_samples, &mut out.l3_miss_samples);
    remap(&profile.stall_samples, &mut out.stall_samples);
    remap(&profile.retired_samples, &mut out.retired_samples);
    out.total_samples = profile.total_samples;
    out
}

/// An insertion policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Policy {
    /// Instrument loads whose estimated miss likelihood is ≥ the value.
    Threshold(f64),
    /// Instrument the K loads with the highest estimated total stall.
    TopK(usize),
    /// Instrument loads whose expected gain exceeds `margin ×` expected
    /// cost.
    CostModel {
        /// Required gain/cost ratio (1.0 = break-even).
        margin: f64,
    },
    /// Instrument every load in the binary.
    All,
}

/// The model's verdict for one load site.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SiteDecision {
    /// PC of the load (in the program being instrumented).
    pub pc: usize,
    /// Whether the policy selected this site.
    pub instrument: bool,
    /// Estimated miss likelihood.
    pub likelihood: f64,
    /// Expected hidden cycles per execution (`likelihood × stall/miss`).
    pub gain: f64,
    /// Expected overhead cycles per execution (prefetch + switch).
    pub cost: f64,
    /// Estimated executions (profile-scaled), for TopK ranking.
    pub est_executions: f64,
}

/// Evaluates the model at every load site of `prog` and applies `policy`.
///
/// `live_count_at` supplies the number of registers a switch at each PC
/// would save (from liveness analysis); pass `|_| 32` when liveness is
/// disabled.
pub fn select_sites(
    prog: &Program,
    profile: &Profile,
    mcfg: &MachineConfig,
    policy: Policy,
    mut live_count_at: impl FnMut(usize) -> u32,
) -> Vec<SiteDecision> {
    // Fallback when the two-counter correlation has no data for a PC: the
    // worst-case visible stall (a DRAM miss past the OoO window).
    let default_stall = (mcfg.mem_latency.saturating_sub(mcfg.ooo_window)) as f64;

    let mut decisions: Vec<SiteDecision> = prog
        .insts
        .iter()
        .enumerate()
        .filter(|(_, i)| matches!(i, Inst::Load { .. }))
        .map(|(pc, _)| {
            let likelihood = profile.miss_likelihood(pc);
            let stall_per_miss = profile.stall_per_miss(pc).unwrap_or(default_stall);
            let gain = likelihood * stall_per_miss;
            let cost =
                mcfg.prefetch_cost as f64 + mcfg.coro_switch_cost(live_count_at(pc) as u8) as f64;
            SiteDecision {
                pc,
                instrument: false,
                likelihood,
                gain,
                cost,
                est_executions: profile.est_executions(pc),
            }
        })
        .collect();

    match policy {
        Policy::Threshold(t) => {
            for d in &mut decisions {
                d.instrument = d.likelihood >= t;
            }
        }
        Policy::CostModel { margin } => {
            for d in &mut decisions {
                d.instrument = d.gain > margin * d.cost;
            }
        }
        Policy::TopK(k) => {
            let mut ranked: Vec<usize> = (0..decisions.len()).collect();
            ranked.sort_by(|&a, &b| {
                let sa = decisions[a].gain * decisions[a].est_executions;
                let sb = decisions[b].gain * decisions[b].est_executions;
                sb.total_cmp(&sa)
                    .then(decisions[a].pc.cmp(&decisions[b].pc))
            });
            for &i in ranked.iter().take(k) {
                // Never select sites the profile saw no misses at: TopK of
                // a cold profile must not instrument noise.
                if decisions[i].gain > 0.0 {
                    decisions[i].instrument = true;
                }
            }
        }
        Policy::All => {
            for d in &mut decisions {
                d.instrument = true;
            }
        }
    }
    decisions
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_profile::Periods;
    use reach_sim::isa::{ProgramBuilder, Reg};

    #[test]
    fn remap_folds_samples_onto_original_pcs() {
        let mut p = Profile::new("t", Periods::default());
        p.l2_miss_samples.insert(2, 5); // original pc 0 after 2 insertions
        p.l2_miss_samples.insert(0, 3); // an inserted prefetch: dropped
        p.retired_samples.insert(3, 7);
        p.total_samples = 15;
        let origin = vec![None, None, Some(0), Some(1)];
        let q = remap_to_origin(&p, &origin);
        assert_eq!(q.l2_miss_samples.get(&0), Some(&5));
        assert_eq!(q.l2_miss_samples.len(), 1);
        assert_eq!(q.retired_samples.get(&1), Some(&7));
        assert_eq!(q.total_samples, 15);
    }

    /// Program with three loads at pcs 0, 1, 2.
    fn three_load_prog() -> Program {
        let mut b = ProgramBuilder::new("t");
        b.load(Reg(1), Reg(8), 0);
        b.load(Reg(2), Reg(9), 0);
        b.load(Reg(3), Reg(10), 0);
        b.halt();
        b.finish().unwrap()
    }

    /// Profile: pc0 misses often & stalls long; pc1 misses often but
    /// stalls short (L3-resident); pc2 almost never misses.
    fn profile() -> Profile {
        let periods = Periods {
            l2_miss: 1,
            l3_miss: 1,
            stall: 1,
            retired: 1,
        };
        let mut p = Profile::new("t", periods);
        p.retired_samples.insert(0, 1000);
        p.retired_samples.insert(1, 1000);
        p.retired_samples.insert(2, 1000);
        p.l2_miss_samples.insert(0, 800);
        p.stall_samples.insert(0, 800 * 270);
        p.l2_miss_samples.insert(1, 900);
        p.stall_samples.insert(1, 900 * 12);
        p.l2_miss_samples.insert(2, 10);
        p.stall_samples.insert(2, 10 * 270);
        p
    }

    #[test]
    fn threshold_selects_by_likelihood_only() {
        let prog = three_load_prog();
        let d = select_sites(
            &prog,
            &profile(),
            &MachineConfig::default(),
            Policy::Threshold(0.5),
            |_| 8,
        );
        assert_eq!(d.len(), 3);
        assert!(d[0].instrument, "pc0: p=0.8");
        assert!(
            d[1].instrument,
            "pc1: p=0.9 — threshold cannot tell it stalls briefly"
        );
        assert!(!d[2].instrument, "pc2: p=0.01");
    }

    #[test]
    fn cost_model_skips_short_stall_sites() {
        let prog = three_load_prog();
        let mcfg = MachineConfig::default();
        let d = select_sites(
            &prog,
            &profile(),
            &mcfg,
            Policy::CostModel { margin: 1.0 },
            |_| 8,
        );
        // pc0: gain 0.8*270 = 216 > cost ~32 -> yes.
        assert!(d[0].instrument);
        // pc1: gain 0.9*12 = 10.8 < cost -> no (the threshold policy got
        // this wrong).
        assert!(!d[1].instrument);
        // pc2: gain 0.01*270 = 2.7 < cost -> no.
        assert!(!d[2].instrument);
    }

    #[test]
    fn gain_and_cost_fields_are_populated() {
        let prog = three_load_prog();
        let mcfg = MachineConfig::default();
        let d = select_sites(&prog, &profile(), &mcfg, Policy::All, |_| 8);
        assert!((d[0].gain - 0.8 * 270.0).abs() < 1.0);
        let expected_cost = mcfg.prefetch_cost as f64 + mcfg.coro_switch_cost(8) as f64;
        assert!((d[0].cost - expected_cost).abs() < 1e-9);
        assert!(d.iter().all(|x| x.instrument), "All selects everything");
    }

    #[test]
    fn liveness_reduces_modelled_cost() {
        let prog = three_load_prog();
        let mcfg = MachineConfig::default();
        let slim = select_sites(&prog, &profile(), &mcfg, Policy::All, |_| 4);
        let fat = select_sites(&prog, &profile(), &mcfg, Policy::All, |_| 32);
        assert!(slim[0].cost < fat[0].cost);
    }

    #[test]
    fn topk_ranks_by_total_stall() {
        let prog = three_load_prog();
        let d = select_sites(
            &prog,
            &profile(),
            &MachineConfig::default(),
            Policy::TopK(1),
            |_| 8,
        );
        assert!(d[0].instrument, "pc0 has the largest total stall");
        assert!(!d[1].instrument);
        assert!(!d[2].instrument);
    }

    #[test]
    fn topk_ignores_missless_sites() {
        let prog = three_load_prog();
        let p = Profile::new("t", Periods::default()); // empty profile
        let d = select_sites(&prog, &p, &MachineConfig::default(), Policy::TopK(3), |_| 8);
        assert!(d.iter().all(|x| !x.instrument));
    }

    #[test]
    fn unprofiled_pc_uses_default_stall() {
        let prog = three_load_prog();
        let periods = Periods {
            l2_miss: 1,
            l3_miss: 1,
            stall: 1,
            retired: 1,
        };
        let mut p = Profile::new("t", periods);
        // pc0 has misses but no stall samples: fallback kicks in.
        p.retired_samples.insert(0, 100);
        p.l2_miss_samples.insert(0, 50);
        let mcfg = MachineConfig::default();
        let d = select_sites(&prog, &p, &mcfg, Policy::All, |_| 8);
        let expected = 0.5 * (mcfg.mem_latency - mcfg.ooo_window) as f64;
        assert!((d[0].gain - expected).abs() < 1e-9);
    }
}

//! Scavenger instrumentation (§3.3): bound the inter-yield interval.
//!
//! Primary yields sit wherever the memory-access pattern put them, so two
//! adjacent yields "can be arbitrarily far apart". This pass places
//! *conditional* [`YieldKind::Scavenger`] yields so that, along every
//! static path, the cycles between consecutive yield points never exceed a
//! user-supplied target (e.g. 300 cycles = 100 ns — "bounded but
//! sufficient to hide L2/L3 cache misses").
//!
//! Per the paper, placement is profile-assisted: common-case instruction
//! costs come from the profile (miss likelihoods tell us which loads
//! actually stall; LBR-derived CPI calibrates everything else), and a
//! worst-case *static* dataflow over the CFG bounds all paths, loops
//! included. The dataflow propagates the maximum possible
//! cycles-since-last-yield into each block (max over predecessors),
//! planning an insertion wherever the accumulator would cross the target;
//! insertions reset the accumulator, which is what makes the fixpoint
//! converge even around loops.

use crate::cfg::Cfg;
use crate::liveness::Liveness;
use crate::rewrite::{insert_before, Insertion, PcMap, RewriteError};
use reach_profile::Profile;
use reach_sim::isa::{Inst, Program, YieldKind};
use reach_sim::MachineConfig;

/// Options for the scavenger pass.
#[derive(Clone, Copy, Debug)]
pub struct ScavengerOptions {
    /// Target maximum inter-yield interval in cycles.
    pub target_interval: u64,
    /// Annotate inserted yields with liveness save sets.
    pub use_liveness: bool,
}

impl Default for ScavengerOptions {
    fn default() -> Self {
        ScavengerOptions {
            target_interval: 300, // 100 ns at 3 GHz
            use_liveness: true,
        }
    }
}

/// Report from the scavenger pass.
#[derive(Clone, Debug)]
pub struct ScavReport {
    /// Conditional yields inserted.
    pub yields_inserted: usize,
    /// Static worst-case inter-yield interval before the pass
    /// (`None` = unbounded: some cycle contains no yield).
    pub max_interval_before: Option<u64>,
    /// Static worst-case interval after the pass.
    pub max_interval_after: Option<u64>,
    /// PC map from the input program to the instrumented one.
    pub pc_map: PcMap,
}

/// Common-case cost estimator for one instruction of `prog`.
///
/// `origin` maps PCs of `prog` back to the binary the profile was
/// collected on (pass the composed [`PcMap::origin`] when `prog` was
/// already rewritten by the primary pass).
struct CostModel<'a> {
    prog: &'a Program,
    profile: Option<&'a Profile>,
    origin: Option<&'a [Option<usize>]>,
    mcfg: &'a MachineConfig,
    default_stall: f64,
}

impl<'a> CostModel<'a> {
    fn new(
        prog: &'a Program,
        profile: Option<&'a Profile>,
        origin: Option<&'a [Option<usize>]>,
        mcfg: &'a MachineConfig,
    ) -> Self {
        CostModel {
            prog,
            profile,
            origin,
            mcfg,
            default_stall: (mcfg.mem_latency - mcfg.ooo_window) as f64,
        }
    }

    /// Expected cycles the instruction at `pc` consumes in the common
    /// case.
    fn cost(&self, pc: usize) -> u64 {
        match &self.prog.insts[pc] {
            Inst::Alu { lat, .. } => *lat as u64,
            Inst::Imm { .. } | Inst::Store { .. } | Inst::Branch { .. } => 1,
            Inst::Call { .. } | Inst::Ret => 2,
            Inst::Prefetch { .. } => self.mcfg.prefetch_cost,
            Inst::Halt => 0,
            Inst::Yield { .. } => self.mcfg.cond_check_cost,
            Inst::Load { addr, offset, .. } => {
                // A load right after its own prefetch (primary
                // instrumentation) does not stall: the yield hid the fill.
                if self.is_prefetched(pc, *addr, *offset) {
                    return 1;
                }
                let Some(profile) = self.profile else {
                    return 1;
                };
                let opc = match self.origin {
                    Some(origin) => match origin[pc] {
                        Some(o) => o,
                        None => return 1,
                    },
                    None => pc,
                };
                let p = profile.miss_likelihood(opc);
                let stall = profile.stall_per_miss(opc).unwrap_or(self.default_stall);
                1 + (p * stall) as u64
            }
        }
    }

    /// Looks back a short window for a prefetch of the same address.
    fn is_prefetched(&self, pc: usize, addr: reach_sim::Reg, offset: i64) -> bool {
        let lo = pc.saturating_sub(6);
        self.prog.insts[lo..pc].iter().any(
            |i| matches!(i, Inst::Prefetch { addr: a, offset: o } if *a == addr && *o == offset),
        )
    }

    /// Whether executing `pc` resets the inter-yield accumulator (a yield
    /// that fires in scavenger mode).
    fn resets(&self, pc: usize) -> bool {
        matches!(
            self.prog.insts[pc],
            Inst::Yield {
                kind: YieldKind::Primary | YieldKind::Scavenger | YieldKind::Manual,
                ..
            }
        )
        // IfAbsent yields are conservatively NOT resets: in the worst case
        // the line is present and the yield does not fire.
    }
}

/// Forward max-dataflow: returns per-block worst-case accumulator at
/// entry, the set of planned insertion PCs (empty when `target` is
/// `None`), and the worst interval observed (saturating at `cap`).
fn interval_dataflow(
    prog: &Program,
    cfg: &Cfg,
    cost: &CostModel<'_>,
    target: Option<u64>,
) -> (Vec<usize>, Option<u64>) {
    // Saturation cap: anything that reaches it is effectively unbounded
    // (a cycle with no reset).
    let cap: u64 = prog
        .insts
        .iter()
        .enumerate()
        .map(|(pc, _)| cost.cost(pc))
        .sum::<u64>()
        .saturating_add(target.unwrap_or(0))
        .saturating_add(1);

    let nb = cfg.len();
    let mut acc_in = vec![0u64; nb];
    let mut dirty = vec![true; nb];
    let rpo = cfg.reverse_post_order();
    let mut max_seen = 0u64;

    // Transfer: walk the block from `acc`, planning (virtually) and
    // resetting; returns acc_out. `plan` receives insertion PCs when
    // provided.
    let transfer =
        |acc_in: u64, b: usize, mut plan: Option<&mut Vec<usize>>, max_seen: &mut u64| {
            let block = &cfg.blocks[b];
            let mut acc = acc_in;
            for pc in block.start..block.end {
                let c = cost.cost(pc);
                if let Some(t) = target {
                    if acc > 0 && acc.saturating_add(c) > t {
                        if let Some(plan) = plan.as_deref_mut() {
                            plan.push(pc);
                        }
                        acc = 0;
                    }
                }
                acc = acc.saturating_add(c).min(cap);
                *max_seen = (*max_seen).max(acc);
                if cost.resets(pc) {
                    acc = 0;
                }
            }
            acc
        };

    // Fixpoint on acc_in (monotone, bounded by cap). Plain iteration
    // climbs by one block-cost per pass, so a cheap loop body could need
    // ~cap/cost passes to reach the target; after `nb + 2` passes any
    // block still rising sits on a reset-free cycle — widen it straight
    // to the cap (the unbounded verdict) and let one more sweep close
    // the fixpoint.
    let mut iterations = 0usize;
    loop {
        let mut changed = false;
        for &b in &rpo {
            if !dirty[b] {
                continue;
            }
            dirty[b] = false;
            let out = transfer(acc_in[b], b, None, &mut max_seen);
            for &s in &cfg.blocks[b].succs {
                if out > acc_in[s] {
                    acc_in[s] = out;
                    dirty[s] = true;
                    changed = true;
                }
            }
        }
        iterations += 1;
        if !changed || iterations > 2 * nb + 4 {
            break;
        }
        if iterations == nb + 2 {
            for b in 0..nb {
                if dirty[b] {
                    acc_in[b] = cap;
                }
            }
        }
    }

    // Final pass: derive the plan and the true max with stable acc_in.
    max_seen = 0;
    let mut plan = Vec::new();
    for &b in &rpo {
        let mut block_plan = Vec::new();
        let _ = transfer(acc_in[b], b, Some(&mut block_plan), &mut max_seen);
        plan.extend(block_plan);
    }
    plan.sort_unstable();
    plan.dedup();

    let max = if max_seen >= cap {
        None
    } else {
        Some(max_seen)
    };
    (plan, max)
}

/// Runs the scavenger pass on `prog` (typically already
/// primary-instrumented).
///
/// `profile_and_origin` optionally supplies the profile plus the
/// `origin` map translating `prog` PCs back to the profiled binary; with
/// `None` the pass falls back to purely static cost estimates.
pub fn instrument_scavenger(
    prog: &Program,
    profile_and_origin: Option<(&Profile, &[Option<usize>])>,
    mcfg: &MachineConfig,
    opts: &ScavengerOptions,
) -> Result<(Program, ScavReport), RewriteError> {
    assert!(opts.target_interval > 0, "target interval must be positive");
    let cfg = Cfg::build(prog);
    let liveness = Liveness::compute(prog, &cfg);
    let (profile, origin) = match profile_and_origin {
        Some((p, o)) => (Some(p), Some(o)),
        None => (None, None),
    };
    let cost = CostModel::new(prog, profile, origin, mcfg);

    let (_, max_before) = interval_dataflow(prog, &cfg, &cost, None);
    let (plan, _) = interval_dataflow(prog, &cfg, &cost, Some(opts.target_interval));

    let insertions: Vec<Insertion> = plan
        .iter()
        .map(|&pc| {
            let save_regs = if opts.use_liveness {
                Some(liveness.live_before(pc))
            } else {
                None
            };
            Insertion {
                at_pc: pc,
                insts: vec![Inst::Yield {
                    kind: YieldKind::Scavenger,
                    save_regs,
                }],
            }
        })
        .collect();
    let yields_inserted = insertions.len();
    let (new_prog, pc_map) = insert_before(prog, insertions)?;

    // Re-analyze the instrumented binary to report the achieved bound.
    let new_cfg = Cfg::build(&new_prog);
    // Compose origins so load costs still resolve to the profiled binary.
    let composed: Option<Vec<Option<usize>>> = origin.map(|orig| {
        pc_map
            .origin
            .iter()
            .map(|&o| o.and_then(|p| orig[p]))
            .collect()
    });
    let new_cost = CostModel::new(&new_prog, profile, composed.as_deref(), mcfg);
    let (_, max_after) = interval_dataflow(&new_prog, &new_cfg, &new_cost, None);

    Ok((
        new_prog,
        ScavReport {
            yields_inserted,
            max_interval_before: max_before,
            max_interval_after: max_after,
            pc_map,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::isa::{AluOp, Cond, ProgramBuilder, Reg};

    /// A loop whose body burns ~`work` cycles with no yield.
    fn busy_loop(work: u32) -> Program {
        let mut b = ProgramBuilder::new("busy");
        let top = b.label();
        b.bind(top);
        b.alu(AluOp::Add, Reg(2), Reg(2), Reg(6), work);
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(6), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        b.finish().unwrap()
    }

    fn opts(target: u64) -> ScavengerOptions {
        ScavengerOptions {
            target_interval: target,
            use_liveness: true,
        }
    }

    #[test]
    fn yieldless_loop_is_statically_unbounded() {
        let prog = busy_loop(50);
        let (q, rep) =
            instrument_scavenger(&prog, None, &MachineConfig::default(), &opts(300)).unwrap();
        assert_eq!(rep.max_interval_before, None, "no yield on the cycle");
        assert!(rep.yields_inserted >= 1);
        let bound = rep.max_interval_after.expect("bounded after the pass");
        assert!(bound <= 300 + 52, "bound {bound} way above target");
        assert!(q.insts.iter().any(|i| matches!(
            i,
            Inst::Yield {
                kind: YieldKind::Scavenger,
                ..
            }
        )));
    }

    #[test]
    fn long_straight_line_gets_periodic_yields() {
        let mut b = ProgramBuilder::new("line");
        for _ in 0..10 {
            b.alu(AluOp::Add, Reg(2), Reg(2), Reg(6), 100);
        }
        b.halt();
        let prog = b.finish().unwrap();
        let (_, rep) =
            instrument_scavenger(&prog, None, &MachineConfig::default(), &opts(300)).unwrap();
        // 1000 cycles of work at a 300-cycle target: at least 3 yields.
        assert!(rep.yields_inserted >= 3, "{}", rep.yields_inserted);
        let after = rep.max_interval_after.unwrap();
        assert!(after <= 400, "interval after = {after}");
    }

    #[test]
    fn already_dense_yields_mean_no_insertions() {
        let mut b = ProgramBuilder::new("dense");
        let top = b.label();
        b.bind(top);
        b.alu(AluOp::Add, Reg(2), Reg(2), Reg(6), 10);
        b.yield_manual();
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(6), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        let prog = b.finish().unwrap();
        let (q, rep) =
            instrument_scavenger(&prog, None, &MachineConfig::default(), &opts(300)).unwrap();
        assert_eq!(rep.yields_inserted, 0);
        assert_eq!(q, prog);
        assert!(rep.max_interval_before.unwrap() <= 300);
    }

    #[test]
    fn primary_yields_count_as_resets() {
        let mut b = ProgramBuilder::new("p");
        let top = b.label();
        b.bind(top);
        b.push(Inst::Yield {
            kind: YieldKind::Primary,
            save_regs: Some(0b1),
        });
        b.alu(AluOp::Add, Reg(2), Reg(2), Reg(6), 100);
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(6), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        let prog = b.finish().unwrap();
        let (_, rep) =
            instrument_scavenger(&prog, None, &MachineConfig::default(), &opts(300)).unwrap();
        assert_eq!(rep.yields_inserted, 0, "primary yield already resets");
    }

    #[test]
    fn diamond_takes_worst_case_path() {
        // One arm is cheap, the other burns 250 cycles; the join plus tail
        // burns 100 more. Worst path = 350 > 300 -> needs a yield even
        // though the hot (cheap) path would not.
        let mut b = ProgramBuilder::new("diamond");
        let expensive = b.label();
        let join = b.label();
        b.branch(Cond::Nez, Reg(0), expensive);
        b.alu(AluOp::Add, Reg(2), Reg(2), Reg(6), 10);
        b.jump(join);
        b.bind(expensive);
        b.alu(AluOp::Add, Reg(2), Reg(2), Reg(6), 250);
        b.bind(join);
        b.alu(AluOp::Add, Reg(3), Reg(3), Reg(6), 100);
        b.halt();
        let prog = b.finish().unwrap();
        let (_, rep) =
            instrument_scavenger(&prog, None, &MachineConfig::default(), &opts(300)).unwrap();
        assert!(rep.yields_inserted >= 1);
        assert!(rep.max_interval_after.unwrap() <= 352);
    }

    #[test]
    fn profile_aware_load_costs_drive_placement() {
        // Straight-line loads the profile says miss hard: their expected
        // cost alone exceeds the target, so the pass must insert even
        // though statically each load is "1 cycle" (and the whole
        // sequence is far under the target).
        let mut b = ProgramBuilder::new("l");
        for i in 0..4i64 {
            b.load(Reg(4), Reg(0), i * 8);
            b.alu(AluOp::Or, Reg(5), Reg(5), Reg(4), 1);
        }
        b.halt();
        let prog = b.finish().unwrap();

        let periods = reach_profile::Periods {
            l2_miss: 1,
            l3_miss: 1,
            stall: 1,
            retired: 1,
        };
        let mut profile = Profile::new("l", periods);
        for pc in [0usize, 2, 4, 6] {
            profile.retired_samples.insert(pc, 100);
            profile.l2_miss_samples.insert(pc, 90);
            profile.stall_samples.insert(pc, 90 * 270);
        }
        let origin: Vec<Option<usize>> = (0..prog.len()).map(Some).collect();

        let with_profile = instrument_scavenger(
            &prog,
            Some((&profile, &origin)),
            &MachineConfig::default(),
            &opts(300),
        )
        .unwrap()
        .1;
        let without = instrument_scavenger(&prog, None, &MachineConfig::default(), &opts(300))
            .unwrap()
            .1;
        // Statically the sequence is ~8 cycles: no yields needed. With
        // the profile each load is ~244 expected cycles: the pass must
        // insert.
        assert_eq!(without.yields_inserted, 0);
        assert!(with_profile.yields_inserted >= 1);
    }

    #[test]
    fn cheap_yieldless_loop_still_gets_a_yield() {
        // Regression for the fixpoint iteration cap: a reset-free cycle
        // is unbounded no matter how cheap one trip is (the trip count is
        // not statically known), so the pass must break it. The old
        // `nb + 2` cap quit before a 4-cycle body could climb past the
        // target, silently planning nothing.
        let mut b = ProgramBuilder::new("cheap");
        let top = b.label();
        b.bind(top);
        b.load(Reg(4), Reg(0), 0);
        b.alu(AluOp::Or, Reg(0), Reg(4), Reg(4), 1);
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(6), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        let prog = b.finish().unwrap();

        let (_, rep) =
            instrument_scavenger(&prog, None, &MachineConfig::default(), &opts(300)).unwrap();
        assert_eq!(rep.max_interval_before, None, "reset-free cycle");
        assert!(rep.yields_inserted >= 1);
        assert!(
            rep.max_interval_after.is_some(),
            "instrumented loop must be statically bounded"
        );
    }

    #[test]
    fn prefetched_load_is_cheap_for_placement() {
        // prefetch+yield+load (primary-instrumented shape): the load after
        // its own prefetch costs ~1, so no scavenger yield needed even
        // under a hot profile.
        let mut b = ProgramBuilder::new("pf");
        let top = b.label();
        b.bind(top);
        b.prefetch(Reg(0), 0);
        b.push(Inst::Yield {
            kind: YieldKind::Primary,
            save_regs: Some(0b1),
        });
        b.load(Reg(4), Reg(0), 0);
        b.alu(AluOp::Or, Reg(0), Reg(4), Reg(4), 1);
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(6), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        let prog = b.finish().unwrap();
        let periods = reach_profile::Periods {
            l2_miss: 1,
            l3_miss: 1,
            stall: 1,
            retired: 1,
        };
        let mut profile = Profile::new("pf", periods);
        profile.retired_samples.insert(2, 100);
        profile.l2_miss_samples.insert(2, 90);
        profile.stall_samples.insert(2, 90 * 270);
        let origin: Vec<Option<usize>> = (0..prog.len()).map(Some).collect();
        let (_, rep) = instrument_scavenger(
            &prog,
            Some((&profile, &origin)),
            &MachineConfig::default(),
            &opts(300),
        )
        .unwrap();
        assert_eq!(rep.yields_inserted, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_target_panics() {
        let prog = busy_loop(10);
        let _ = instrument_scavenger(&prog, None, &MachineConfig::default(), &opts(0));
    }
}

//! Control-flow-graph construction — the "disassembly" step of the binary
//! instrumentation pipeline (§3.2 points at BOLT-class binary optimizers
//! [7, 50, 51] for this machinery).
//!
//! Operating on the flat instruction stream, we find basic-block leaders
//! (entry, branch/call targets, fall-throughs of terminators), split the
//! stream into blocks, and wire successor edges. Calls are treated
//! conservatively for intra-procedural analyses: a call's successors are
//! both the callee entry and the return point, and `ret` is an exit edge.

use reach_sim::isa::{Cond, Inst, Program};
use std::collections::BTreeSet;

/// A basic block: the instructions `[start, end)` of the program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// PC of the first instruction.
    pub start: usize,
    /// One past the PC of the last instruction.
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

impl BasicBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` for a (degenerate) empty block; never produced by
    /// [`Cfg::build`].
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The control-flow graph of one program.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Blocks in ascending `start` order; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Map from PC to owning block id.
    block_of: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `prog`.
    ///
    /// # Panics
    ///
    /// Panics if the program is empty or fails validation — the caller is
    /// expected to instrument only valid binaries.
    pub fn build(prog: &Program) -> Cfg {
        prog.validate()
            .expect("cannot build a CFG of an invalid program");
        let n = prog.len();

        // 1. Leaders.
        let mut leaders = BTreeSet::new();
        leaders.insert(0usize);
        for (pc, inst) in prog.insts.iter().enumerate() {
            match inst {
                Inst::Branch { target, .. } => {
                    leaders.insert(*target);
                    if pc + 1 < n {
                        leaders.insert(pc + 1);
                    }
                }
                Inst::Call { target } => {
                    leaders.insert(*target);
                    if pc + 1 < n {
                        leaders.insert(pc + 1);
                    }
                }
                Inst::Ret | Inst::Halt if pc + 1 < n => {
                    leaders.insert(pc + 1);
                }
                _ => {}
            }
        }

        // 2. Blocks.
        let starts: Vec<usize> = leaders.into_iter().collect();
        let mut blocks: Vec<BasicBlock> = starts
            .iter()
            .enumerate()
            .map(|(i, &start)| BasicBlock {
                start,
                end: starts.get(i + 1).copied().unwrap_or(n),
                succs: Vec::new(),
                preds: Vec::new(),
            })
            .collect();
        let mut block_of = vec![0usize; n];
        for (id, b) in blocks.iter().enumerate() {
            block_of[b.start..b.end].fill(id);
        }

        // 3. Edges.
        for id in 0..blocks.len() {
            let last_pc = blocks[id].end - 1;
            let succs: Vec<usize> = match &prog.insts[last_pc] {
                Inst::Branch {
                    cond: Cond::Always,
                    target,
                    ..
                } => vec![block_of[*target]],
                Inst::Branch { target, .. } => {
                    let mut v = vec![block_of[*target]];
                    if last_pc + 1 < n {
                        v.push(block_of[last_pc + 1]);
                    }
                    v
                }
                // Conservative: control reaches the callee and, later, the
                // return point.
                Inst::Call { target } => {
                    let mut v = vec![block_of[*target]];
                    if last_pc + 1 < n {
                        v.push(block_of[last_pc + 1]);
                    }
                    v
                }
                Inst::Ret | Inst::Halt => vec![],
                // Fall through.
                _ => {
                    if last_pc + 1 < n {
                        vec![block_of[last_pc + 1]]
                    } else {
                        vec![]
                    }
                }
            };
            for &s in &succs {
                blocks[s].preds.push(id);
            }
            blocks[id].succs = succs;
        }

        Cfg { blocks, block_of }
    }

    /// The block containing `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn block_of_pc(&self, pc: usize) -> usize {
        self.block_of[pc]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` if the CFG has no blocks (never after `build`).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Block ids in reverse post-order from the entry (good iteration
    /// order for forward dataflow).
    pub fn reverse_post_order(&self) -> Vec<usize> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS to avoid recursion limits on long programs.
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        visited[0] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < self.blocks[b].succs.len() {
                let s = self.blocks[b].succs[*next];
                *next += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// The set of back edges `(from, to)` (edges to a block currently on
    /// the DFS stack) — loop detection for the scavenger worst-case pass.
    pub fn back_edges(&self) -> Vec<(usize, usize)> {
        #[derive(Clone, Copy, PartialEq)]
        enum State {
            New,
            Active,
            Done,
        }
        let mut state = vec![State::New; self.blocks.len()];
        let mut edges = Vec::new();
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        state[0] = State::Active;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < self.blocks[b].succs.len() {
                let s = self.blocks[b].succs[*next];
                *next += 1;
                match state[s] {
                    State::Active => edges.push((b, s)),
                    State::New => {
                        state[s] = State::Active;
                        stack.push((s, 0));
                    }
                    State::Done => {}
                }
            } else {
                state[b] = State::Done;
                stack.pop();
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::isa::{AluOp, ProgramBuilder, Reg};

    fn loop_program() -> Program {
        // 0: imm r0, 3
        // 1: imm r1, 1
        // 2: sub r0, r0, r1     <- loop head
        // 3: br.nez r0, @2
        // 4: halt
        let mut b = ProgramBuilder::new("loop");
        b.imm(Reg(0), 3).imm(Reg(1), 1);
        let top = b.label();
        b.bind(top);
        b.alu(AluOp::Sub, Reg(0), Reg(0), Reg(1), 1);
        b.branch(Cond::Nez, Reg(0), top);
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn straight_line_is_one_block() {
        let mut b = ProgramBuilder::new("s");
        b.imm(Reg(0), 1);
        b.imm(Reg(1), 2);
        b.halt();
        let cfg = Cfg::build(&b.finish().unwrap());
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.blocks[0].start, 0);
        assert_eq!(cfg.blocks[0].end, 3);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn loop_splits_into_three_blocks() {
        let cfg = Cfg::build(&loop_program());
        // [0,2) preamble, [2,4) body, [4,5) exit.
        assert_eq!(cfg.len(), 3);
        assert_eq!(cfg.blocks[0].succs, vec![1]);
        let body = &cfg.blocks[1];
        assert_eq!(body.start, 2);
        assert_eq!(body.end, 4);
        let mut s = body.succs.clone();
        s.sort_unstable();
        assert_eq!(s, vec![1, 2], "body loops to itself and exits");
        assert_eq!(cfg.blocks[2].succs, Vec::<usize>::new());
        assert_eq!(cfg.block_of_pc(3), 1);
        assert_eq!(cfg.block_of_pc(4), 2);
    }

    #[test]
    fn preds_mirror_succs() {
        let cfg = Cfg::build(&loop_program());
        for (id, b) in cfg.blocks.iter().enumerate() {
            for &s in &b.succs {
                assert!(cfg.blocks[s].preds.contains(&id));
            }
            for &p in &b.preds {
                assert!(cfg.blocks[p].succs.contains(&id));
            }
        }
    }

    #[test]
    fn back_edges_found_in_loop() {
        let cfg = Cfg::build(&loop_program());
        assert_eq!(cfg.back_edges(), vec![(1, 1)]);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable_blocks() {
        let cfg = Cfg::build(&loop_program());
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), 3);
    }

    #[test]
    fn call_block_has_callee_and_return_successors() {
        let mut b = ProgramBuilder::new("c");
        let f = b.label();
        b.imm(Reg(0), 1);
        b.call(f);
        b.halt();
        b.bind(f);
        b.alu(AluOp::Add, Reg(0), Reg(0), Reg(0), 1);
        b.ret();
        let cfg = Cfg::build(&b.finish().unwrap());
        // Blocks: [0,2) call-block, [2,3) halt, [3,5) callee.
        let call_block = cfg.block_of_pc(1);
        let mut s = cfg.blocks[call_block].succs.clone();
        s.sort_unstable();
        assert_eq!(s, vec![cfg.block_of_pc(2), cfg.block_of_pc(3)]);
        // The callee's ret has no static successors.
        assert!(cfg.blocks[cfg.block_of_pc(4)].succs.is_empty());
    }

    #[test]
    fn diamond_control_flow() {
        // if r0 { r1 = 1 } else { r1 = 2 }; halt
        let mut b = ProgramBuilder::new("d");
        let then_l = b.label();
        let join = b.label();
        b.branch(Cond::Nez, Reg(0), then_l);
        b.imm(Reg(1), 2);
        b.jump(join);
        b.bind(then_l);
        b.imm(Reg(1), 1);
        b.bind(join);
        b.halt();
        let cfg = Cfg::build(&b.finish().unwrap());
        assert_eq!(cfg.len(), 4);
        let join_id = cfg.block_of_pc(4);
        assert_eq!(cfg.blocks[join_id].preds.len(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid program")]
    fn invalid_program_panics() {
        let p = Program::new("bad");
        let _ = Cfg::build(&p);
    }
}

//! Dominator and natural-loop analysis — standard binary-optimizer
//! equipment used for reporting and instrumentation placement sanity.
//!
//! Dominators follow Cooper–Harvey–Kennedy's "simple, fast" iterative
//! algorithm over reverse post-order; natural loops are recovered from
//! back edges `(tail → head)` with `head` dominating `tail`, taking the
//! union of bodies for loops sharing a head.

use crate::cfg::Cfg;

/// Immediate-dominator tree over a CFG's blocks.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// `idom[b]` = immediate dominator of block `b`; `idom[entry] =
    /// entry`. Unreachable blocks map to `usize::MAX`.
    idom: Vec<usize>,
}

impl Dominators {
    /// Computes dominators for `cfg` (entry = block 0).
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.len();
        let rpo = cfg.reverse_post_order();
        // Position of each block in RPO (usize::MAX = unreachable).
        let mut order = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            order[b] = i;
        }
        let mut idom = vec![usize::MAX; n];
        idom[0] = 0;

        let intersect = |idom: &[usize], order: &[usize], mut a: usize, mut b: usize| -> usize {
            while a != b {
                while order[a] > order[b] {
                    a = idom[a];
                }
                while order[b] > order[a] {
                    b = idom[b];
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor.
                let mut new_idom = usize::MAX;
                for &p in &cfg.blocks[b].preds {
                    if idom[p] == usize::MAX {
                        continue; // not yet processed or unreachable
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&idom, &order, new_idom, p)
                    };
                }
                if new_idom != usize::MAX && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom }
    }

    /// The immediate dominator of `b` (`b` itself for the entry).
    /// Returns `None` for unreachable blocks.
    pub fn idom(&self, b: usize) -> Option<usize> {
        match self.idom.get(b) {
            Some(&d) if d != usize::MAX => Some(d),
            _ => None,
        }
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if self.idom.get(b).copied().unwrap_or(usize::MAX) == usize::MAX {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let next = self.idom[cur];
            if next == cur {
                return a == cur;
            }
            cur = next;
        }
    }
}

/// A natural loop: the blocks strictly reachable backwards from a back
/// edge without passing the header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (dominates every body block).
    pub header: usize,
    /// All blocks of the loop, header included, sorted.
    pub body: Vec<usize>,
}

/// Finds the natural loops of `cfg`, merging loops that share a header.
pub fn natural_loops(cfg: &Cfg) -> Vec<NaturalLoop> {
    let dom = Dominators::compute(cfg);
    let mut by_header: std::collections::BTreeMap<usize, std::collections::BTreeSet<usize>> =
        std::collections::BTreeMap::new();

    for (tail, head) in cfg.back_edges() {
        if !dom.dominates(head, tail) {
            // Irreducible edge: skip (cannot arise from the structured
            // builder, but rewritten binaries are checked anyway).
            continue;
        }
        let body = by_header.entry(head).or_default();
        body.insert(head);
        // Walk predecessors backwards from the tail until the header.
        let mut stack = vec![tail];
        while let Some(b) = stack.pop() {
            if body.insert(b) {
                for &p in &cfg.blocks[b].preds {
                    if b != head {
                        stack.push(p);
                    }
                }
            }
        }
    }

    by_header
        .into_iter()
        .map(|(header, body)| NaturalLoop {
            header,
            body: body.into_iter().collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::isa::{AluOp, Cond, Program, ProgramBuilder, Reg};

    fn simple_loop() -> Program {
        // 0..2 preamble | 2..4 body (self loop) | 4 exit
        let mut b = ProgramBuilder::new("l");
        b.imm(Reg(0), 3).imm(Reg(1), 1);
        let top = b.label();
        b.bind(top);
        b.alu(AluOp::Sub, Reg(0), Reg(0), Reg(1), 1);
        b.branch(Cond::Nez, Reg(0), top);
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn dominators_of_a_chain() {
        let cfg = Cfg::build(&simple_loop());
        let dom = Dominators::compute(&cfg);
        // Blocks: 0 = preamble, 1 = body, 2 = exit.
        assert_eq!(dom.idom(0), Some(0));
        assert_eq!(dom.idom(1), Some(0));
        assert_eq!(dom.idom(2), Some(1));
        assert!(dom.dominates(0, 2));
        assert!(dom.dominates(1, 2));
        assert!(!dom.dominates(2, 1));
        assert!(dom.dominates(1, 1), "dominance is reflexive");
    }

    #[test]
    fn natural_loop_of_self_edge() {
        let cfg = Cfg::build(&simple_loop());
        let loops = natural_loops(&cfg);
        assert_eq!(
            loops,
            vec![NaturalLoop {
                header: 1,
                body: vec![1]
            }]
        );
    }

    #[test]
    fn nested_loops_found() {
        // outer: { inner: {...} }
        let mut b = ProgramBuilder::new("nest");
        let r = Reg(0);
        let s = Reg(1);
        let one = Reg(2);
        b.imm(one, 1);
        b.imm(r, 3);
        let outer = b.label();
        b.bind(outer);
        b.imm(s, 2);
        let inner = b.label();
        b.bind(inner);
        b.alu(AluOp::Sub, s, s, one, 1);
        b.branch(Cond::Nez, s, inner);
        b.alu(AluOp::Sub, r, r, one, 1);
        b.branch(Cond::Nez, r, outer);
        b.halt();
        let p = b.finish().unwrap();
        let cfg = Cfg::build(&p);
        let loops = natural_loops(&cfg);
        assert_eq!(loops.len(), 2);
        // The inner loop body is a subset of the outer's.
        let inner_l = &loops[1];
        let outer_l = &loops[0];
        assert!(
            inner_l.body.iter().all(|b| outer_l.body.contains(b))
                || outer_l.body.iter().all(|b| inner_l.body.contains(b)),
            "one loop nests in the other: {loops:?}"
        );
    }

    #[test]
    fn diamond_has_no_loops() {
        let mut b = ProgramBuilder::new("d");
        let then_l = b.label();
        let join = b.label();
        b.branch(Cond::Nez, Reg(0), then_l);
        b.imm(Reg(1), 2);
        b.jump(join);
        b.bind(then_l);
        b.imm(Reg(1), 1);
        b.bind(join);
        b.halt();
        let p = b.finish().unwrap();
        let cfg = Cfg::build(&p);
        assert!(natural_loops(&cfg).is_empty());
        let dom = Dominators::compute(&cfg);
        let join_id = cfg.block_of_pc(4);
        assert_eq!(dom.idom(join_id), Some(0), "join is dominated by the fork");
    }
}

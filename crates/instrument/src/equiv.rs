//! Translation validation: a CFG bisimulation checker that *proves*
//! each rewrite observationally equivalent to its input, modulo the
//! yields and prefetches the pipeline inserts.
//!
//! [`crate::validate`] checks a rewrite syntactically (survivors intact,
//! insertions drawn from a whitelist, targets relocated). This module
//! goes further: it symbolically executes every corresponding block pair
//! with [`crate::symexec`] and proves, on every path the original can
//! take, that the rewritten program performs the *same stores* (same
//! symbolic address, same symbolic value, same order), takes the *same
//! branches* (same condition over the same operand term, targets related
//! by the pc map), and reaches returns/halts in the *same register
//! state* — the three channels through which a micro-IR program is
//! observable. Yields are invisible to the proof (the executor
//! save/restores context around them) and prefetches are architectural
//! no-ops, which is precisely what "equivalent modulo inserted
//! yields/prefetches" means.
//!
//! The candidate block correspondence comes from the rewrite's own
//! origin map (`PcMap::origin`): original block `[s, e)` corresponds to
//! the rewritten range `[entry(s), new_of(e-1)]`, where `entry` places
//! insertions *before* their anchor inside the anchor's range. The
//! checker runs a forward fixpoint over the original CFG tracking, per
//! block, the set of registers provably equal on entry (the bisimulation
//! relation); unproven registers enter as distinct
//! [`crate::symexec::Term::Diverged`] terms so coincidences never count
//! as proofs. A final reporting pass re-executes each reachable pair and
//! emits deny-level lints through the [`crate::lint`] machinery:
//!
//! | code   | lint                       | fires when |
//! |--------|----------------------------|------------|
//! | RL0008 | pass-equivalence-violation | a store/branch/exit/register-state obligation cannot be proven, an inserted prefetch lacks a consuming load, or a rewritten access is unmasked under SFI |
//! | RL0009 | save-set-unprovable        | an unsaved register can flow from a yield to a use (or a return) without an intervening redefinition |
//! | RL0010 | pcmap-inconsistent         | the pc map is not a faithful order-preserving embedding of the original program |
//!
//! RL0009 *subsumes* RL0001 with a proof: RL0001 flags `live_before(y) &
//! !mask`, a backward may-analysis; the checker runs the exact forward
//! dual (taint the unsaved registers at the yield, kill on
//! redefinition, flag any use the taint reaches — returns count as uses
//! of everything, matching the liveness boundary). The two agree on
//! every program, but the forward run also names the *witness use* that
//! makes the save set insufficient.

use crate::cfg::Cfg;
use crate::lint::{Diagnostic, Level, Lint, LintOptions, LintReport};
use crate::liveness::{regset_to_string, RegSet, ALL_REGS};
use crate::rewrite::PcMap;
use crate::sfi::{R_SFI_ADDR, R_SFI_MASK};
use crate::symexec::{entry_state, sym_exec_range, BlockRun, MemEvent, MemKind, SymExit, TermPool};
use reach_sim::isa::{Inst, Program, Reg, NUM_REGS};
use std::fmt;

/// The outcome of verifying one rewrite.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Diagnostics, reported through the lint machinery (RL0008–RL0010).
    pub lint: LintReport,
    /// Reachable original blocks whose pair was checked.
    pub blocks_checked: usize,
    /// Yield save-mask obligations discharged (yields carrying a mask).
    pub save_obligations: usize,
    /// Inserted-prefetch consuming-load obligations discharged.
    pub prefetch_obligations: usize,
    /// Distinct terms interned while proving.
    pub terms: usize,
}

impl VerifyReport {
    /// `true` when the rewrite is proven equivalent (no deny-level
    /// finding).
    pub fn ok(&self) -> bool {
        !self.lint.has_deny()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.lint.diagnostics.is_empty() {
            writeln!(f, "{}", self.lint)?;
        }
        write!(
            f,
            "verified {} block pair(s): {} save-mask + {} prefetch obligation(s), {} terms — {}",
            self.blocks_checked,
            self.save_obligations,
            self.prefetch_obligations,
            self.terms,
            if self.ok() { "equivalent" } else { "REFUSED" }
        )
    }
}

/// Verifies that `rewritten` is observationally equivalent to
/// `original`, modulo inserted yields/prefetches, using the
/// rewrite's origin map (`origin[new_pc] = Some(old_pc)` for survivors,
/// `None` for insertions).
///
/// `opts.sfi` additionally requires every rewritten memory access to be
/// provably masked (and excuses the SFI scratch register from
/// return/halt state equality). Lint levels in `opts` apply to
/// RL0008–RL0010 like any other lint.
pub fn verify_rewrite(
    original: &Program,
    rewritten: &Program,
    origin: &[Option<usize>],
    opts: &LintOptions,
) -> VerifyReport {
    verify_inner(original, rewritten, origin, None, opts)
}

/// [`verify_rewrite`] plus a consistency check of the full [`PcMap`]:
/// `new_of` must agree with the survivor positions recoverable from
/// `origin` (RL0010 otherwise).
pub fn verify_rewrite_map(
    original: &Program,
    rewritten: &Program,
    map: &PcMap,
    opts: &LintOptions,
) -> VerifyReport {
    verify_inner(original, rewritten, &map.origin, Some(&map.new_of), opts)
}

fn verify_inner(
    original: &Program,
    rewritten: &Program,
    origin: &[Option<usize>],
    new_of_claim: Option<&[usize]>,
    opts: &LintOptions,
) -> VerifyReport {
    let mut v = Verifier {
        original,
        rewritten,
        origin,
        opts,
        entry: Vec::new(),
        new_of: Vec::new(),
        pool: TermPool::new(),
        diags: Vec::new(),
        blocks_checked: 0,
        save_obligations: 0,
        prefetch_obligations: 0,
    };

    // The programs themselves must be well-formed before any CFG is
    // built (Cfg::build panics on invalid programs by contract).
    let mut valid = true;
    if let Err(e) = original.validate() {
        v.emit(
            Lint::PassEquivalenceViolation,
            None,
            format!("original program fails validation: {e}"),
        );
        valid = false;
    }
    if let Err(e) = rewritten.validate() {
        v.emit(
            Lint::PassEquivalenceViolation,
            None,
            format!("rewritten program fails validation: {e}"),
        );
        valid = false;
    }
    if valid && v.check_pc_map(new_of_claim) {
        v.check_save_masks();
        v.bisimulate();
    }
    v.seal()
}

/// A taint witness: the first pc where an unsaved register's stale value
/// becomes observable (`at_ret` distinguishes "used" from "escapes to
/// the caller").
type Witness = (usize, RegSet, bool);

struct Verifier<'a> {
    original: &'a Program,
    rewritten: &'a Program,
    origin: &'a [Option<usize>],
    opts: &'a LintOptions,
    /// `entry[old_pc]`: rewritten pc where `old_pc`'s range (insertions
    /// then survivor) begins.
    entry: Vec<usize>,
    /// `new_of[old_pc]`: rewritten pc of the surviving instruction.
    new_of: Vec<usize>,
    pool: TermPool,
    diags: Vec<Diagnostic>,
    blocks_checked: usize,
    save_obligations: usize,
    prefetch_obligations: usize,
}

impl Verifier<'_> {
    fn emit(&mut self, lint: Lint, pc: Option<usize>, message: String) {
        let level = self.opts.level(lint);
        if level != Level::Allow {
            self.diags.push(Diagnostic {
                lint,
                level,
                pc,
                message,
            });
        }
    }

    fn seal(mut self) -> VerifyReport {
        self.diags
            .sort_by_key(|d| (d.pc.unwrap_or(usize::MAX), d.lint));
        VerifyReport {
            lint: LintReport {
                diagnostics: self.diags,
            },
            blocks_checked: self.blocks_checked,
            save_obligations: self.save_obligations,
            prefetch_obligations: self.prefetch_obligations,
            terms: self.pool.len(),
        }
    }

    /// Structural pc-map checks (RL0010). Returns `false` when the map
    /// is too broken for the bisimulation to even set up its block
    /// correspondence.
    fn check_pc_map(&mut self, new_of_claim: Option<&[usize]>) -> bool {
        let n_old = self.original.len();
        if self.origin.len() != self.rewritten.len() {
            self.emit(
                Lint::PcMapInconsistent,
                None,
                format!(
                    "origin map has {} entries for a {}-instruction rewritten program",
                    self.origin.len(),
                    self.rewritten.len()
                ),
            );
            return false;
        }
        // Survivors must enumerate the original exactly once, in order —
        // the rewrite is an order-preserving embedding.
        let mut next = 0usize;
        for (new_pc, o) in self.origin.iter().enumerate() {
            let Some(old_pc) = *o else { continue };
            if old_pc != next {
                self.emit(
                    Lint::PcMapInconsistent,
                    Some(new_pc),
                    format!(
                        "origin map places original pc {old_pc} here, but pc {next} \
                         is the next original instruction unaccounted for"
                    ),
                );
                return false;
            }
            next += 1;
        }
        if next != n_old {
            self.emit(
                Lint::PcMapInconsistent,
                None,
                format!("origin map covers {next} of {n_old} original instructions"),
            );
            return false;
        }

        // entry[old] = first pc of old's range (insertions ride before
        // their anchor); new_of[old] = the survivor itself.
        self.entry = vec![0; n_old];
        self.new_of = vec![0; n_old];
        let mut prev_new: Option<usize> = None;
        for (new_pc, o) in self.origin.iter().enumerate() {
            let Some(old_pc) = *o else { continue };
            self.entry[old_pc] = match prev_new {
                None => 0,
                Some(p) => p + 1,
            };
            self.new_of[old_pc] = new_pc;
            prev_new = Some(new_pc);
        }

        // The composed map's new_of must tell the same story as its
        // origin — a desynchronized pair means some pass composed or
        // relocated against the wrong image.
        if let Some(claim) = new_of_claim {
            if claim.len() != n_old {
                self.emit(
                    Lint::PcMapInconsistent,
                    None,
                    format!(
                        "pc map new_of has {} entries for a {n_old}-instruction original",
                        claim.len()
                    ),
                );
            } else if let Some((old_pc, &claimed)) = claim
                .iter()
                .enumerate()
                .find(|&(old_pc, &claimed)| claimed != self.new_of[old_pc])
            {
                let actual = self.new_of[old_pc];
                self.emit(
                    Lint::PcMapInconsistent,
                    Some(claimed.min(self.rewritten.len() - 1)),
                    format!(
                        "pc map sends original pc {old_pc} to {claimed}, but the origin \
                         map places its survivor at {actual}"
                    ),
                );
            }
        }
        true
    }

    /// RL0009: for every yield that declares a save mask, prove no
    /// unsaved register flows to a use (or a return) without being
    /// redefined first. Forward taint over the rewritten CFG, the exact
    /// dual of RL0001's backward liveness.
    fn check_save_masks(&mut self) {
        let prog = self.rewritten;
        let cfg = Cfg::build(prog);
        for (ypc, inst) in prog.insts.iter().enumerate() {
            let Inst::Yield {
                save_regs: Some(mask),
                ..
            } = inst
            else {
                continue;
            };
            self.save_obligations += 1;
            let seed: RegSet = !mask & ALL_REGS;
            if seed == 0 {
                continue; // full save: nothing to prove
            }
            let yb = cfg.block_of_pc(ypc);

            // Fixpoint: push the taint out of the yield's block until
            // block-entry taints stabilize.
            let mut tin = vec![0 as RegSet; cfg.len()];
            let mut in_work = vec![false; cfg.len()];
            let mut work = vec![yb];
            in_work[yb] = true;
            while let Some(b) = work.pop() {
                in_work[b] = false;
                let seeded = (b == yb).then_some(ypc);
                let (tout, _) = taint_walk(prog, &cfg.blocks[b], tin[b], seeded, seed, false);
                for &s in &cfg.blocks[b].succs {
                    let merged = tin[s] | tout;
                    if merged != tin[s] {
                        tin[s] = merged;
                        if !in_work[s] {
                            in_work[s] = true;
                            work.push(s);
                        }
                    }
                }
            }

            // Reporting: earliest witness, if any.
            let mut best: Option<Witness> = None;
            for (b, blk) in cfg.blocks.iter().enumerate() {
                if tin[b] == 0 && b != yb {
                    continue;
                }
                let seeded = (b == yb).then_some(ypc);
                let (_, w) = taint_walk(prog, blk, tin[b], seeded, seed, true);
                if let Some(w) = w {
                    if best.map(|(pc, _, _)| w.0 < pc).unwrap_or(true) {
                        best = Some(w);
                    }
                }
            }
            if let Some((pc, bad, at_ret)) = best {
                let regs = regset_to_string(bad);
                let msg = if at_ret {
                    format!(
                        "save mask omits {regs}, which can reach the return at pc {pc} \
                         unredefined — the caller observes clobbered state"
                    )
                } else {
                    format!(
                        "save mask omits {regs}, which can reach the use at pc {pc} \
                         unredefined — a context switch here is unprovably safe"
                    )
                };
                self.emit(Lint::SaveSetUnprovable, Some(ypc), msg);
            }
        }
    }

    /// The rewritten range corresponding to original block
    /// `[start, end)`.
    fn rewritten_range(&self, start: usize, end: usize) -> (usize, usize) {
        (self.entry[start], self.new_of[end - 1] + 1)
    }

    /// Symbolically executes an original block and its rewritten range
    /// from a shared cut-point state where `eq` registers are equal.
    fn run_pair(&mut self, start: usize, end: usize, eq: RegSet) -> (BlockRun, BlockRun) {
        let e_o = entry_state(&mut self.pool, eq, 0);
        let e_r = entry_state(&mut self.pool, eq, 1);
        let mask_o = self.opts.sfi.then(|| e_o[R_SFI_MASK.index()]);
        let mask_r = self.opts.sfi.then(|| e_r[R_SFI_MASK.index()]);
        let o = sym_exec_range(self.original, start..end, &e_o, &mut self.pool, mask_o);
        let (rs, re) = self.rewritten_range(start, end);
        let r = sym_exec_range(self.rewritten, rs..re, &e_r, &mut self.pool, mask_r);
        (o, r)
    }

    /// Forward fixpoint over the original CFG computing, per block, the
    /// registers provably equal on entry; then a reporting pass that
    /// re-executes every reachable pair and emits RL0008 findings.
    fn bisimulate(&mut self) {
        let cfg = Cfg::build(self.original);
        let rpo = cfg.reverse_post_order();
        let mut eq_in: Vec<Option<RegSet>> = vec![None; cfg.len()];
        eq_in[0] = Some(ALL_REGS);

        loop {
            let mut changed = false;
            for &b in &rpo {
                let Some(eq) = eq_in[b] else { continue };
                let blk = &cfg.blocks[b];
                let (o, r) = self.run_pair(blk.start, blk.end, eq);
                let eq_out = eq_regs(&o, &r);
                for &s in &cfg.blocks[b].succs {
                    let merged = match eq_in[s] {
                        None => eq_out,
                        Some(cur) => cur & eq_out,
                    };
                    if eq_in[s] != Some(merged) {
                        eq_in[s] = Some(merged);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        for &b in &rpo {
            let Some(eq) = eq_in[b] else { continue };
            self.blocks_checked += 1;
            let blk = &cfg.blocks[b];
            let (o, r) = self.run_pair(blk.start, blk.end, eq);
            self.compare_pair(&o, &r);
        }
    }

    /// All per-block observation obligations for one pair.
    fn compare_pair(&mut self, o: &BlockRun, r: &BlockRun) {
        self.compare_exits(o, r);
        self.compare_stores(o, r);
        if self.opts.sfi {
            for e in &r.mem {
                if !e.masked {
                    self.emit(
                        Lint::PassEquivalenceViolation,
                        Some(e.pc),
                        format!(
                            "{} address is not provably masked — a rewritten path \
                             may escape the sandbox",
                            kind_name(e.kind)
                        ),
                    );
                }
            }
        }
        // Inserted prefetches must provably request a line some later
        // load in the same block actually reads.
        for (i, e) in r.mem.iter().enumerate() {
            if e.kind != MemKind::Prefetch || self.origin[e.pc].is_some() {
                continue;
            }
            self.prefetch_obligations += 1;
            let consumed = r.mem[i + 1..]
                .iter()
                .any(|l| l.kind == MemKind::Load && l.addr == e.addr);
            if !consumed {
                self.emit(
                    Lint::PassEquivalenceViolation,
                    Some(e.pc),
                    "inserted prefetch's address matches no later load in its block — \
                     cannot prove it prefetches the intended line"
                        .to_string(),
                );
            }
        }
    }

    fn compare_exits(&mut self, o: &BlockRun, r: &BlockRun) {
        match (o.exit, r.exit) {
            (
                SymExit::Branch {
                    cond: c1,
                    src: s1,
                    target: t1,
                },
                SymExit::Branch {
                    cond: c2,
                    src: s2,
                    target: t2,
                },
            ) => {
                if c1 != c2 {
                    self.emit(
                        Lint::PassEquivalenceViolation,
                        Some(r.exit_pc),
                        format!("branch condition {c2:?} differs from the original's {c1:?}"),
                    );
                } else if s1 != s2 {
                    self.emit(
                        Lint::PassEquivalenceViolation,
                        Some(r.exit_pc),
                        format!(
                            "cannot prove the branch at original pc {} decides \
                             identically: the condition operand's term diverges",
                            o.exit_pc
                        ),
                    );
                }
                self.check_relocation("branch", t1, t2, r.exit_pc);
            }
            (SymExit::Call { target: t1 }, SymExit::Call { target: t2 }) => {
                self.check_relocation("call", t1, t2, r.exit_pc);
            }
            (SymExit::Ret, SymExit::Ret) => self.check_observable_state(o, r, "return"),
            (SymExit::Halt, SymExit::Halt) => self.check_observable_state(o, r, "halt"),
            (SymExit::Fallthrough, SymExit::Fallthrough) => {}
            (eo, er) => {
                self.emit(
                    Lint::PassEquivalenceViolation,
                    Some(r.exit_pc),
                    format!(
                        "exit behavior diverges: original block ends at pc {} with {}, \
                         rewritten ends with {}",
                        o.exit_pc,
                        describe_exit(eo),
                        describe_exit(er)
                    ),
                );
            }
        }
    }

    /// The store channel: same count, same symbolic addresses, same
    /// symbolic values, same order.
    fn compare_stores(&mut self, o: &BlockRun, r: &BlockRun) {
        let so: Vec<&MemEvent> = o.mem.iter().filter(|e| e.kind == MemKind::Store).collect();
        let sr: Vec<&MemEvent> = r.mem.iter().filter(|e| e.kind == MemKind::Store).collect();
        if so.len() != sr.len() {
            self.emit(
                Lint::PassEquivalenceViolation,
                Some(r.exit_pc),
                format!(
                    "block performs {} store(s) where the original performs {}",
                    sr.len(),
                    so.len()
                ),
            );
            return;
        }
        for (eo, er) in so.iter().zip(&sr) {
            if eo.addr != er.addr {
                self.emit(
                    Lint::PassEquivalenceViolation,
                    Some(er.pc),
                    format!(
                        "store address term diverges from the original store at pc {}",
                        eo.pc
                    ),
                );
            }
            if eo.value != er.value {
                self.emit(
                    Lint::PassEquivalenceViolation,
                    Some(er.pc),
                    format!(
                        "stored value term diverges from the original store at pc {}",
                        eo.pc
                    ),
                );
            }
        }
    }

    fn check_relocation(&mut self, what: &str, old_target: usize, new_target: usize, pc: usize) {
        let want = self.entry[old_target];
        if new_target != want {
            self.emit(
                Lint::PassEquivalenceViolation,
                Some(pc),
                format!(
                    "{what} targets pc {new_target}, but original target {old_target} \
                     relocates to pc {want}"
                ),
            );
        }
    }

    /// At returns and halts the full register file is observable (minus
    /// the runtime-owned SFI scratch register when sandboxing).
    fn check_observable_state(&mut self, o: &BlockRun, r: &BlockRun, what: &str) {
        let mut required = ALL_REGS;
        if self.opts.sfi {
            required &= !(1 << R_SFI_ADDR.index());
        }
        let missing = required & !eq_regs(o, r);
        if missing != 0 {
            self.emit(
                Lint::PassEquivalenceViolation,
                Some(r.exit_pc),
                format!(
                    "cannot prove {} equal at the {what} — that state is observable",
                    regset_to_string(missing)
                ),
            );
        }
    }
}

/// Registers whose final terms agree between the two runs.
fn eq_regs(o: &BlockRun, r: &BlockRun) -> RegSet {
    (0..NUM_REGS).fold(0, |m, i| {
        if o.regs[i] == r.regs[i] {
            m | (1 << i)
        } else {
            m
        }
    })
}

/// One pass over a block for the save-mask taint: kills taint on
/// definition, injects `seed` right after the yield at `seeded_pc`, and
/// (when `check`) returns the first pc where live taint meets a use or
/// a return.
fn taint_walk(
    prog: &Program,
    blk: &crate::cfg::BasicBlock,
    tin: RegSet,
    seeded_pc: Option<usize>,
    seed: RegSet,
    check: bool,
) -> (RegSet, Option<Witness>) {
    let mut t = tin;
    let mut witness: Option<Witness> = None;
    let mut used: Vec<Reg> = Vec::new();
    for pc in blk.start..blk.end {
        let inst = &prog.insts[pc];
        if check && t != 0 && witness.is_none() {
            used.clear();
            inst.uses(&mut used);
            let used_set: RegSet = used.iter().fold(0, |m, r| m | (1 << r.index()));
            let bad = used_set & t;
            if bad != 0 {
                witness = Some((pc, bad, false));
            } else if matches!(inst, Inst::Ret) {
                witness = Some((pc, t, true));
            }
        }
        if let Some(d) = inst.def() {
            t &= !(1 << d.index());
        }
        if seeded_pc == Some(pc) {
            t |= seed;
        }
    }
    (t, witness)
}

fn kind_name(k: MemKind) -> &'static str {
    match k {
        MemKind::Load => "load",
        MemKind::Store => "store",
        MemKind::Prefetch => "prefetch",
    }
}

fn describe_exit(e: SymExit) -> String {
    match e {
        SymExit::Fallthrough => "fallthrough".to_string(),
        SymExit::Branch { cond, target, .. } => format!("branch({cond:?} -> pc {target})"),
        SymExit::Call { target } => format!("call(pc {target})"),
        SymExit::Ret => "ret".to_string(),
        SymExit::Halt => "halt".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elide::{elide_yields, ElideMode};
    use crate::primary::{instrument_primary, PrimaryOptions};
    use crate::rewrite::{insert_before, Insertion};
    use crate::scavenger::{instrument_scavenger, ScavengerOptions};
    use crate::sfi::instrument_sfi;
    use reach_profile::{Periods, Profile};
    use reach_sim::isa::{AluOp, Cond, ProgramBuilder, YieldKind};
    use reach_sim::MachineConfig;

    /// chase-like loop: 0: load r4,[r0]; 1: mov r0,r4; 2: sub r1; 3: bnez; 4: halt.
    fn chase_prog() -> Program {
        let mut b = ProgramBuilder::new("chase");
        let top = b.label();
        b.bind(top);
        b.load(Reg(4), Reg(0), 0);
        b.alu(AluOp::Or, Reg(0), Reg(4), Reg(4), 1);
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(6), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        b.finish().unwrap()
    }

    fn hot_profile_for(pc: usize) -> Profile {
        let periods = Periods {
            l2_miss: 1,
            l3_miss: 1,
            stall: 1,
            retired: 1,
        };
        let mut p = Profile::new("chase", periods);
        p.retired_samples.insert(pc, 1000);
        p.l2_miss_samples.insert(pc, 950);
        p.stall_samples.insert(pc, 950 * 270);
        p
    }

    fn primary_chase() -> (Program, Program, PcMap) {
        let prog = chase_prog();
        let (q, rep) = instrument_primary(
            &prog,
            &hot_profile_for(0),
            &MachineConfig::default(),
            &PrimaryOptions::default(),
        )
        .unwrap();
        (prog, q, rep.pc_map)
    }

    #[test]
    fn primary_pass_output_verifies() {
        let (prog, q, map) = primary_chase();
        let rep = verify_rewrite_map(&prog, &q, &map, &LintOptions::default());
        assert!(rep.ok(), "primary rewrite should prove out:\n{rep}");
        assert!(rep.lint.is_clean(), "no findings expected:\n{rep}");
        assert!(rep.blocks_checked >= 2);
        assert!(rep.save_obligations >= 1);
        assert!(rep.prefetch_obligations >= 1);
    }

    #[test]
    fn scavenger_pass_output_verifies() {
        let prog = chase_prog();
        let (q, rep) = instrument_scavenger(
            &prog,
            None,
            &MachineConfig::default(),
            &ScavengerOptions::default(),
        )
        .unwrap();
        let v = verify_rewrite_map(&prog, &q, &rep.pc_map, &LintOptions::default());
        assert!(v.ok(), "scavenger rewrite should prove out:\n{v}");
    }

    #[test]
    fn elision_verifies_via_or_identity() {
        // Elide a primary yield into `or x,x,x`: still equivalent — the
        // algebra sees through the no-op.
        let (prog, q, map) = primary_chase();
        let (e, _rep) = elide_yields(&q, ElideMode::All, 1.0, 7, 1);
        let v = verify_rewrite_map(&prog, &e, &map, &LintOptions::default());
        assert!(v.ok(), "elided rewrite should prove out:\n{v}");
    }

    #[test]
    fn sfi_pass_output_verifies_with_maskedness() {
        let prog = chase_prog();
        let (q, rep) = instrument_sfi(&prog).unwrap();
        let opts = LintOptions {
            sfi: true,
            ..Default::default()
        };
        let v = verify_rewrite_map(&prog, &q, &rep.pc_map, &opts);
        assert!(v.ok(), "sfi rewrite should prove out:\n{v}");
    }

    #[test]
    fn clobbering_insertion_fires_rl0008() {
        // Insert `imm r1, 0` before the branch: r1 is the loop counter,
        // observable at the halt and deciding the branch.
        let prog = chase_prog();
        let (q, map) = insert_before(
            &prog,
            vec![Insertion {
                at_pc: 3,
                insts: vec![Inst::Imm {
                    dst: Reg(1),
                    val: 0,
                }],
            }],
        )
        .unwrap();
        let v = verify_rewrite_map(&prog, &q, &map, &LintOptions::default());
        assert!(!v.ok());
        assert!(
            v.lint.fired_codes().contains(&"RL0008"),
            "expected RL0008:\n{v}"
        );
    }

    #[test]
    fn dropped_save_bit_fires_rl0009() {
        let (prog, mut q, map) = primary_chase();
        let ypc = q
            .insts
            .iter()
            .position(|i| matches!(i, Inst::Yield { .. }))
            .unwrap();
        if let Inst::Yield { save_regs, .. } = &mut q.insts[ypc] {
            *save_regs = Some(0); // saves nothing; r0/r1/r6 are live
        }
        let v = verify_rewrite_map(&prog, &q, &map, &LintOptions::default());
        assert!(!v.ok());
        assert!(
            v.lint.fired_codes().contains(&"RL0009"),
            "expected RL0009:\n{v}"
        );
        assert!(v.lint.diagnostics.iter().any(|d| d.pc == Some(ypc)));
    }

    #[test]
    fn retargeted_branch_fires_rl0008() {
        let (prog, mut q, map) = primary_chase();
        let bpc = q
            .insts
            .iter()
            .position(|i| matches!(i, Inst::Branch { .. }))
            .unwrap();
        if let Inst::Branch { target, .. } = &mut q.insts[bpc] {
            *target += 1; // skips the prefetch: not the mapped entry
        }
        let v = verify_rewrite_map(&prog, &q, &map, &LintOptions::default());
        assert!(!v.ok());
        assert!(v.lint.fired_codes().contains(&"RL0008"));
    }

    #[test]
    fn corrupted_origin_fires_rl0010() {
        let (prog, q, map) = primary_chase();
        let mut origin = map.origin.clone();
        // Claim the first two survivors in swapped order.
        let survivors: Vec<usize> = origin
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.map(|_| i))
            .collect();
        origin.swap(survivors[0], survivors[1]);
        let v = verify_rewrite(&prog, &q, &origin, &LintOptions::default());
        assert!(!v.ok());
        assert_eq!(v.lint.fired_codes(), vec!["RL0010"]);
    }

    #[test]
    fn desynchronized_new_of_fires_rl0010() {
        let (prog, q, mut map) = primary_chase();
        map.new_of[1] += 1;
        let v = verify_rewrite_map(&prog, &q, &map, &LintOptions::default());
        assert!(!v.ok());
        assert!(v.lint.fired_codes().contains(&"RL0010"));
    }

    #[test]
    fn skewed_prefetch_offset_fires_rl0008() {
        let (prog, mut q, map) = primary_chase();
        let ppc = q
            .insts
            .iter()
            .position(|i| matches!(i, Inst::Prefetch { .. }))
            .unwrap();
        if let Inst::Prefetch { offset, .. } = &mut q.insts[ppc] {
            *offset += 4096;
        }
        let v = verify_rewrite_map(&prog, &q, &map, &LintOptions::default());
        assert!(!v.ok());
        assert!(
            v.lint.fired_codes().contains(&"RL0008"),
            "expected RL0008:\n{v}"
        );
    }

    #[test]
    fn identity_map_on_identical_program_verifies() {
        let prog = chase_prog();
        let map = PcMap::identity(prog.len());
        let v = verify_rewrite_map(&prog, &prog, &map, &LintOptions::default());
        assert!(v.ok(), "{v}");
        assert_eq!(v.blocks_checked, 2);
    }

    #[test]
    fn manual_yield_without_mask_carries_no_obligation() {
        let mut b = ProgramBuilder::new("m");
        b.imm(Reg(1), 5);
        b.push(Inst::Yield {
            kind: YieldKind::Manual,
            save_regs: None,
        });
        b.halt();
        let prog = b.finish().unwrap();
        let map = PcMap::identity(prog.len());
        let v = verify_rewrite_map(&prog, &prog, &map, &LintOptions::default());
        assert!(v.ok());
        assert_eq!(v.save_obligations, 0);
    }
}

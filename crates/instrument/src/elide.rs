//! Yield elision: the "runaway scavenger" fault for the robustness
//! harness.
//!
//! A scavenger is only cooperative because the instrumenter planted
//! conditional yields on every path (§3.3). This pass produces the
//! misbehaving twin of an instrumented binary: selected `Yield`
//! instructions are replaced in place by a PC-preserving identity ALU op
//! of the same cost, so the program computes the same results in the
//! same number of instructions but never hands the core back. No
//! relocation is needed — every branch target stays valid — which is
//! exactly what makes this the right model for "the compiler's yield got
//! optimized out" or "a third-party library never yields": the code is
//! otherwise indistinguishable from the cooperative version.
//!
//! The elided binary is for *executing* fault experiments only; it would
//! (correctly) fail the reach-lint gate, which is the point of pairing
//! the static gate with runtime containment.

use reach_sim::rng::SplitMix64;
use reach_sim::{AluOp, Inst, Program, Reg, YieldKind};

/// Which yields [`elide_yields`] removes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElideMode {
    /// Only conditional kinds (`Scavenger`, `IfAbsent`) — the cooperative
    /// yields a scavenger depends on.
    Conditional,
    /// Every yield, of any kind.
    All,
}

/// What [`elide_yields`] did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ElideReport {
    /// PCs whose yields were replaced.
    pub elided_pcs: Vec<usize>,
    /// Yields considered but kept (fraction draw said no).
    pub kept: usize,
}

/// Returns a copy of `prog` with `fraction` of the mode-matching yields
/// replaced by a same-cost identity ALU op (`or r0, r0, r0` with the
/// conditional-check latency), chosen deterministically from `seed`.
///
/// `fraction == 1.0` elides every matching yield. The result has the
/// same length and the same architectural behaviour as the input except
/// that elided yields can never fire.
pub fn elide_yields(
    prog: &Program,
    mode: ElideMode,
    fraction: f64,
    seed: u64,
    cond_check_cost: u64,
) -> (Program, ElideReport) {
    let mut rng = SplitMix64::new(seed);
    let mut out = prog.clone();
    out.name = format!("{}+elided", prog.name);
    let mut report = ElideReport::default();
    for (pc, inst) in out.insts.iter_mut().enumerate() {
        let Inst::Yield { kind, .. } = *inst else {
            continue;
        };
        let matches_mode = match mode {
            ElideMode::All => true,
            ElideMode::Conditional => {
                matches!(kind, YieldKind::Scavenger | YieldKind::IfAbsent)
            }
        };
        if !matches_mode {
            continue;
        }
        if fraction < 1.0 && rng.next_f64() >= fraction {
            report.kept += 1;
            continue;
        }
        // Identity op: same register state, roughly the cost the elided
        // conditional check would have paid, and no relocation needed.
        *inst = Inst::Alu {
            op: AluOp::Or,
            dst: Reg(0),
            src1: Reg(0),
            src2: Reg(0),
            lat: cond_check_cost.max(1) as u32,
        };
        report.elided_pcs.push(pc);
    }
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::isa::ProgramBuilder;
    use reach_sim::{Context, Exit, Machine, MachineConfig, Mode};

    fn scav_prog() -> Program {
        let mut b = ProgramBuilder::new("s");
        b.imm(Reg(1), 7);
        b.push(Inst::Yield {
            kind: YieldKind::Scavenger,
            save_regs: Some(0b10),
        });
        b.alu(AluOp::Add, Reg(1), Reg(1), Reg(1), 1);
        b.yield_manual();
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn conditional_mode_keeps_manual_yields() {
        let p = scav_prog();
        let (e, r) = elide_yields(&p, ElideMode::Conditional, 1.0, 1, 2);
        assert_eq!(r.elided_pcs, vec![1]);
        assert_eq!(e.len(), p.len(), "in-place, no relocation");
        assert!(matches!(e.insts[3], Inst::Yield { .. }), "manual kept");
        e.validate().unwrap();
    }

    #[test]
    fn elided_scavenger_never_yields_but_computes_the_same() {
        let p = scav_prog();
        let (e, _) = elide_yields(&p, ElideMode::All, 1.0, 1, 2);
        let mut m = Machine::new(MachineConfig::default());
        let mut ctx = Context::with_mode(0, Mode::Scavenger);
        // The cooperative version yields twice; the elided one runs
        // straight to completion.
        assert_eq!(m.run(&e, &mut ctx, 100).unwrap(), Exit::Done);
        assert_eq!(ctx.reg(Reg(1)), 14);
        let mut ctx2 = Context::with_mode(1, Mode::Scavenger);
        let mut m2 = Machine::new(MachineConfig::default());
        assert!(matches!(
            m2.run(&p, &mut ctx2, 100).unwrap(),
            Exit::Yielded { .. }
        ));
    }

    #[test]
    fn fraction_and_seed_are_deterministic() {
        let mut b = ProgramBuilder::new("many");
        for _ in 0..64 {
            b.push(Inst::Yield {
                kind: YieldKind::Scavenger,
                save_regs: None,
            });
        }
        b.halt();
        let p = b.finish().unwrap();
        let (a, ra) = elide_yields(&p, ElideMode::Conditional, 0.5, 9, 2);
        let (b2, rb) = elide_yields(&p, ElideMode::Conditional, 0.5, 9, 2);
        assert_eq!(a.insts, b2.insts);
        assert_eq!(ra, rb);
        assert!(!ra.elided_pcs.is_empty() && ra.kept > 0, "partial elision");
    }
}

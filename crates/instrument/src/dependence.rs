//! Dependence analysis for yield coalescing (§3.2: "independence of
//! adjacent loads can be determined via dependence analysis [4, 43]").
//!
//! Coalescing rewrites `pref A; yield; load A; …; pref B; yield; load B`
//! into `pref A; pref B; yield; load A; …; load B`, amortizing one switch
//! over several fills. That is only legal when B's *address* is already
//! computable at A's position, i.e. B's address register is not defined by
//! anything between the group start and B (including A itself — the very
//! dependence that makes a pointer chase a chase). Stores and control
//! transfers in between end a group conservatively: our micro-IR cannot
//! prove a store does not feed a later load through memory.

use reach_sim::isa::Inst;

/// Returns `true` if the load at relative index `j` of `window` could be
/// hoisted to the start of the window: no instruction in `window[..j]`
/// defines its address register, and the window prefix contains no store,
/// call/ret, branch or yield.
///
/// `window[0]` is the group's first (anchor) instruction.
pub fn hoistable_to_start(window: &[Inst], j: usize) -> bool {
    let Some(Inst::Load { addr, .. }) = window.get(j) else {
        return false;
    };
    for inst in &window[..j] {
        match inst {
            Inst::Store { .. }
            | Inst::Branch { .. }
            | Inst::Call { .. }
            | Inst::Ret
            | Inst::Halt
            | Inst::Yield { .. } => return false,
            _ => {}
        }
        if inst.def() == Some(*addr) {
            return false;
        }
    }
    true
}

/// Partitions the selected loads of one basic block into coalescable
/// groups.
///
/// `selected` holds block-relative instruction indices of chosen loads in
/// ascending order. Each returned group is a run of selected loads whose
/// later members are all [`hoistable_to_start`] relative to the group's
/// anchor. Groups preserve order and cover `selected` exactly.
pub fn coalesce_groups(insts: &[Inst], selected: &[usize]) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut i = 0;
    while i < selected.len() {
        let anchor = selected[i];
        let mut group = vec![anchor];
        let mut j = i + 1;
        while j < selected.len() {
            let cand = selected[j];
            // Window from the anchor up to (and excluding) the candidate.
            let rel = cand - anchor;
            if hoistable_to_start(&insts[anchor..=cand], rel) {
                group.push(cand);
                j += 1;
            } else {
                break;
            }
        }
        i = j;
        groups.push(group);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::isa::AluOp;
    use reach_sim::isa::Reg;

    fn load(dst: u8, addr: u8) -> Inst {
        Inst::Load {
            dst: Reg(dst),
            addr: Reg(addr),
            offset: 0,
        }
    }

    fn alu(dst: u8, a: u8, b: u8) -> Inst {
        Inst::Alu {
            op: AluOp::Add,
            dst: Reg(dst),
            src1: Reg(a),
            src2: Reg(b),
            lat: 1,
        }
    }

    #[test]
    fn independent_adjacent_loads_coalesce() {
        // load r1,[r8]; load r2,[r9]; load r3,[r10] — all independent.
        let insts = vec![load(1, 8), load(2, 9), load(3, 10)];
        let groups = coalesce_groups(&insts, &[0, 1, 2]);
        assert_eq!(groups, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn dependent_chain_does_not_coalesce() {
        // load r1,[r0]; load r2,[r1] — the second depends on the first.
        let insts = vec![load(1, 0), load(2, 1)];
        let groups = coalesce_groups(&insts, &[0, 1]);
        assert_eq!(groups, vec![vec![0], vec![1]]);
    }

    #[test]
    fn intervening_alu_defining_addr_breaks_group() {
        // load r1,[r8]; r9 = r1+r1; load r2,[r9].
        let insts = vec![load(1, 8), alu(9, 1, 1), load(2, 9)];
        let groups = coalesce_groups(&insts, &[0, 2]);
        assert_eq!(groups, vec![vec![0], vec![2]]);
    }

    #[test]
    fn intervening_unrelated_alu_is_fine() {
        // load r1,[r8]; r5 = r6+r6; load r2,[r9].
        let insts = vec![load(1, 8), alu(5, 6, 6), load(2, 9)];
        let groups = coalesce_groups(&insts, &[0, 2]);
        assert_eq!(groups, vec![vec![0, 2]]);
    }

    #[test]
    fn store_breaks_group_conservatively() {
        let insts = vec![
            load(1, 8),
            Inst::Store {
                src: Reg(1),
                addr: Reg(12),
                offset: 0,
            },
            load(2, 9),
        ];
        let groups = coalesce_groups(&insts, &[0, 2]);
        assert_eq!(groups, vec![vec![0], vec![2]]);
    }

    #[test]
    fn partial_groups_split_correctly() {
        // l0 indep, l1 indep, l2 depends on l1's dst.
        let insts = vec![load(1, 8), load(2, 9), load(3, 2)];
        let groups = coalesce_groups(&insts, &[0, 1, 2]);
        assert_eq!(groups, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn hoistable_rejects_non_load() {
        let insts = vec![alu(1, 2, 3)];
        assert!(!hoistable_to_start(&insts, 0) || matches!(insts[0], Inst::Load { .. }));
        assert!(!hoistable_to_start(&insts, 5), "out of range");
    }

    #[test]
    fn empty_selection_yields_no_groups() {
        let insts = vec![load(1, 8)];
        assert!(coalesce_groups(&insts, &[]).is_empty());
    }
}

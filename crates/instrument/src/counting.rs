//! Instrumentation-based profiling — the *predecessor* technique §2
//! contrasts sample-based profiling against.
//!
//! "Early efforts on PGO relied on instrumentation based profiling, which
//! requires instrumenting the application to collect profile information.
//! However, this approach not only complicates the build process, but also
//! incurs significant CPU and memory overhead. More importantly,
//! instrumentation-based profiling cannot easily support our proposal,
//! because it is hard to obtain visibility into hardware events like
//! L2/L3 cache misses with only instrumentation."
//!
//! This pass reproduces the technique faithfully: a counter
//! load-increment-store sequence before every load site. It yields exact
//! *execution counts* — and nothing else: no miss likelihoods, no stall
//! attribution, which is precisely why it cannot drive yield placement.
//! Experiment T15 measures its overhead against the sampling collector's.

use crate::rewrite::{insert_before, Insertion, PcMap, RewriteError};
use reach_sim::isa::{AluOp, Inst, Program, Reg};
use reach_sim::{Machine, MemError};

/// Registers reserved for the counting harness; instrumented programs
/// must not use them (our workload and test generators stay below r24).
pub const R_COUNTER_BASE: Reg = Reg(31);
const R_TMP: Reg = Reg(30);
const R_ONE: Reg = Reg(28);

/// A counting-instrumented binary plus its counter directory.
#[derive(Clone, Debug)]
pub struct CountingInstrumented {
    /// The rewritten program. Run it with [`R_COUNTER_BASE`] seeded to
    /// the counter region's base address.
    pub prog: Program,
    /// `sites[k]` = original load PC counted by counter word `k`.
    pub sites: Vec<usize>,
    /// PC map from the original program.
    pub pc_map: PcMap,
}

impl CountingInstrumented {
    /// Reads the counter values out of simulated memory after a run.
    ///
    /// Returns `(original_load_pc, executions)` pairs.
    pub fn read_counts(
        &self,
        machine: &Machine,
        counter_base: u64,
    ) -> Result<Vec<(usize, u64)>, MemError> {
        self.sites
            .iter()
            .enumerate()
            .map(|(k, &pc)| Ok((pc, machine.mem.read(counter_base + k as u64 * 8)?)))
            .collect()
    }
}

/// Inserts a `load; add 1; store` counter update before every load site.
///
/// The counters live at `[R_COUNTER_BASE + 8k]`; the caller allocates the
/// region (one word per load site) and seeds the register.
///
/// # Errors
///
/// Propagates rewriting errors (none occur for valid programs).
pub fn instrument_counting(prog: &Program) -> Result<CountingInstrumented, RewriteError> {
    let sites: Vec<usize> = prog.load_pcs();
    let insertions: Vec<Insertion> = sites
        .iter()
        .enumerate()
        .map(|(k, &pc)| Insertion {
            at_pc: pc,
            insts: vec![
                Inst::Imm { dst: R_ONE, val: 1 },
                Inst::Load {
                    dst: R_TMP,
                    addr: R_COUNTER_BASE,
                    offset: k as i64 * 8,
                },
                Inst::Alu {
                    op: AluOp::Add,
                    dst: R_TMP,
                    src1: R_TMP,
                    src2: R_ONE,
                    lat: 1,
                },
                Inst::Store {
                    src: R_TMP,
                    addr: R_COUNTER_BASE,
                    offset: k as i64 * 8,
                },
            ],
        })
        .collect();
    let (new_prog, pc_map) = insert_before(prog, insertions)?;
    Ok(CountingInstrumented {
        prog: new_prog,
        sites,
        pc_map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::isa::{Cond, ProgramBuilder};
    use reach_sim::{Context, MachineConfig};

    /// A loop doing 5 iterations of two loads.
    fn two_load_loop() -> Program {
        let mut b = ProgramBuilder::new("t");
        b.imm(Reg(0), 0x1000);
        b.imm(Reg(1), 5);
        b.imm(Reg(6), 1);
        let top = b.label();
        b.bind(top);
        b.load(Reg(2), Reg(0), 0);
        b.load(Reg(3), Reg(0), 8);
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(6), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        b.finish().unwrap()
    }

    #[test]
    fn counts_are_exact_execution_counts() {
        let prog = two_load_loop();
        let counted = instrument_counting(&prog).unwrap();
        assert_eq!(counted.sites, vec![3, 4]);

        let counter_base = 0x9_0000u64;
        let mut m = Machine::new(MachineConfig::default());
        let mut ctx = Context::new(0);
        ctx.set_reg(R_COUNTER_BASE, counter_base);
        m.run_to_completion(&counted.prog, &mut ctx, 10_000)
            .unwrap();

        let counts = counted.read_counts(&m, counter_base).unwrap();
        assert_eq!(counts, vec![(3, 5), (4, 5)], "5 iterations, 2 loads each");
    }

    #[test]
    fn counting_preserves_program_results() {
        let prog = two_load_loop();
        let counted = instrument_counting(&prog).unwrap();
        let run = |p: &Program| {
            let mut m = Machine::new(MachineConfig::default());
            m.mem.write(0x1000, 77).unwrap();
            m.mem.write(0x1008, 88).unwrap();
            let mut ctx = Context::new(0);
            ctx.set_reg(R_COUNTER_BASE, 0x9_0000);
            m.run_to_completion(p, &mut ctx, 10_000).unwrap();
            (ctx.reg(Reg(2)), ctx.reg(Reg(3)))
        };
        assert_eq!(run(&prog), run(&counted.prog));
    }

    #[test]
    fn counting_adds_significant_overhead() {
        let prog = two_load_loop();
        let counted = instrument_counting(&prog).unwrap();
        let cycles = |p: &Program| {
            let mut m = Machine::new(MachineConfig::default());
            let mut ctx = Context::new(0);
            ctx.set_reg(R_COUNTER_BASE, 0x9_0000);
            m.run_to_completion(p, &mut ctx, 10_000).unwrap();
            m.now
        };
        let clean = cycles(&prog);
        let instrumented = cycles(&counted.prog);
        assert!(
            instrumented > clean + 40,
            "counter updates must cost real cycles: {instrumented} vs {clean}"
        );
    }
}

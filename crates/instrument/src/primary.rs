//! Primary instrumentation (§3.2): insert `prefetch + yield` before the
//! load sites the policy selected.
//!
//! For each selected load, the pass inserts (i) a software prefetch of the
//! requested line and (ii) a [`YieldKind::Primary`] yield annotated with
//! the live-register save set, immediately before the load. When
//! coalescing is enabled, runs of selected loads whose addresses are all
//! computable at the first one (see [`crate::dependence`]) share a single
//! yield: their prefetches issue back-to-back and one switch amortizes
//! over all the fills.

use crate::cfg::Cfg;
use crate::cost_model::{select_sites, Policy, SiteDecision};
use crate::dependence::coalesce_groups;
use crate::liveness::Liveness;
use crate::rewrite::{insert_before, Insertion, PcMap, RewriteError};
use reach_profile::Profile;
use reach_sim::isa::{Inst, Program, YieldKind, NUM_REGS};
use reach_sim::MachineConfig;

/// Options for the primary pass.
#[derive(Clone, Copy, Debug)]
pub struct PrimaryOptions {
    /// Site-selection policy.
    pub policy: Policy,
    /// Annotate yields with liveness-derived save sets (§3.2 optimization
    /// 1). When false, yields save the full architectural file.
    pub use_liveness: bool,
    /// Coalesce adjacent independent selected loads under one yield
    /// (§3.2 optimization 2).
    pub coalesce: bool,
}

impl Default for PrimaryOptions {
    fn default() -> Self {
        PrimaryOptions {
            policy: Policy::CostModel { margin: 1.0 },
            use_liveness: true,
            coalesce: true,
        }
    }
}

/// What the primary pass did.
#[derive(Clone, Debug)]
pub struct PrimaryReport {
    /// Model verdicts for every load site.
    pub decisions: Vec<SiteDecision>,
    /// Yields inserted (≤ selected sites when coalescing).
    pub yields_inserted: usize,
    /// Prefetches inserted (= selected sites).
    pub prefetches_inserted: usize,
    /// PC map from the input program to the instrumented one.
    pub pc_map: PcMap,
}

impl PrimaryReport {
    /// Number of sites the policy selected.
    pub fn sites_selected(&self) -> usize {
        self.decisions.iter().filter(|d| d.instrument).count()
    }
}

/// Runs the primary instrumentation pass.
///
/// `profile` must have been collected on `prog` (PCs must refer to this
/// program image).
pub fn instrument_primary(
    prog: &Program,
    profile: &Profile,
    mcfg: &MachineConfig,
    opts: &PrimaryOptions,
) -> Result<(Program, PrimaryReport), RewriteError> {
    let cfg = Cfg::build(prog);
    let liveness = Liveness::compute(prog, &cfg);

    let decisions = select_sites(prog, profile, mcfg, opts.policy, |pc| {
        if opts.use_liveness {
            liveness.live_count(pc)
        } else {
            NUM_REGS as u32
        }
    });
    let selected: Vec<usize> = decisions
        .iter()
        .filter(|d| d.instrument)
        .map(|d| d.pc)
        .collect();

    // Partition the selected loads by basic block and coalesce within it.
    let mut insertions: Vec<Insertion> = Vec::new();
    let mut yields_inserted = 0;
    let mut prefetches_inserted = 0;
    let mut i = 0;
    while i < selected.len() {
        let block = cfg.block_of_pc(selected[i]);
        let mut in_block = vec![selected[i]];
        let mut j = i + 1;
        while j < selected.len() && cfg.block_of_pc(selected[j]) == block {
            in_block.push(selected[j]);
            j += 1;
        }
        i = j;

        let bstart = cfg.blocks[block].start;
        let rel: Vec<usize> = in_block.iter().map(|&pc| pc - bstart).collect();
        let insts = &prog.insts[cfg.blocks[block].start..cfg.blocks[block].end];
        let groups = if opts.coalesce {
            coalesce_groups(insts, &rel)
        } else {
            rel.iter().map(|&r| vec![r]).collect()
        };

        for group in groups {
            let anchor_pc = bstart + group[0];
            let mut new_insts = Vec::with_capacity(group.len() + 1);
            for &member in &group {
                let Inst::Load { addr, offset, .. } = prog.insts[bstart + member] else {
                    unreachable!("selected site is always a load");
                };
                new_insts.push(Inst::Prefetch { addr, offset });
                prefetches_inserted += 1;
            }
            let save_regs = if opts.use_liveness {
                Some(liveness.live_before(anchor_pc))
            } else {
                None
            };
            new_insts.push(Inst::Yield {
                kind: YieldKind::Primary,
                save_regs,
            });
            yields_inserted += 1;
            insertions.push(Insertion {
                at_pc: anchor_pc,
                insts: new_insts,
            });
        }
    }

    let (new_prog, pc_map) = insert_before(prog, insertions)?;
    Ok((
        new_prog,
        PrimaryReport {
            decisions,
            yields_inserted,
            prefetches_inserted,
            pc_map,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_profile::Periods;
    use reach_sim::isa::{AluOp, Cond, ProgramBuilder, Reg};
    use reach_sim::{Context, Machine, MachineConfig};

    /// chase-like loop: 0: load r4,[r0]; 1: mov r0,r4; 2: sub r1; 3: bnez.
    fn chase_prog() -> Program {
        let mut b = ProgramBuilder::new("chase");
        let top = b.label();
        b.bind(top);
        b.load(Reg(4), Reg(0), 0);
        b.alu(AluOp::Or, Reg(0), Reg(4), Reg(4), 1);
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(6), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        b.finish().unwrap()
    }

    fn hot_profile_for(pc: usize) -> Profile {
        let periods = Periods {
            l2_miss: 1,
            l3_miss: 1,
            stall: 1,
            retired: 1,
        };
        let mut p = Profile::new("chase", periods);
        p.retired_samples.insert(pc, 1000);
        p.l2_miss_samples.insert(pc, 950);
        p.stall_samples.insert(pc, 950 * 270);
        p
    }

    #[test]
    fn inserts_prefetch_and_yield_before_hot_load() {
        let prog = chase_prog();
        let (q, rep) = instrument_primary(
            &prog,
            &hot_profile_for(0),
            &MachineConfig::default(),
            &PrimaryOptions::default(),
        )
        .unwrap();
        assert_eq!(rep.sites_selected(), 1);
        assert_eq!(rep.yields_inserted, 1);
        assert_eq!(rep.prefetches_inserted, 1);
        // Layout: prefetch, yield, load...
        assert!(matches!(q.insts[0], Inst::Prefetch { .. }));
        assert!(matches!(
            q.insts[1],
            Inst::Yield {
                kind: YieldKind::Primary,
                save_regs: Some(_)
            }
        ));
        assert!(matches!(q.insts[2], Inst::Load { .. }));
        // Back edge points at the prefetch.
        let Inst::Branch { target, .. } = q.insts[5] else {
            panic!("expected branch at pc 5, got {:?}", q.insts[5]);
        };
        assert_eq!(target, 0);
    }

    #[test]
    fn save_set_is_live_registers_only() {
        let prog = chase_prog();
        let (q, _) = instrument_primary(
            &prog,
            &hot_profile_for(0),
            &MachineConfig::default(),
            &PrimaryOptions::default(),
        )
        .unwrap();
        let Inst::Yield {
            save_regs: Some(mask),
            ..
        } = q.insts[1]
        else {
            panic!("yield must carry a save set");
        };
        // Live before the load: r0 (addr), r1 (counter), r6 (const 1).
        assert_eq!(mask, (1 << 0) | (1 << 1) | (1 << 6));
    }

    #[test]
    fn no_liveness_means_full_save_set() {
        let prog = chase_prog();
        let (q, _) = instrument_primary(
            &prog,
            &hot_profile_for(0),
            &MachineConfig::default(),
            &PrimaryOptions {
                use_liveness: false,
                ..PrimaryOptions::default()
            },
        )
        .unwrap();
        assert!(matches!(
            q.insts[1],
            Inst::Yield {
                save_regs: None,
                ..
            }
        ));
    }

    #[test]
    fn cold_profile_inserts_nothing() {
        let prog = chase_prog();
        let p = Profile::new("chase", Periods::default());
        let (q, rep) = instrument_primary(
            &prog,
            &p,
            &MachineConfig::default(),
            &PrimaryOptions::default(),
        )
        .unwrap();
        assert_eq!(q, prog);
        assert_eq!(rep.sites_selected(), 0);
    }

    #[test]
    fn coalescing_shares_one_yield_across_independent_loads() {
        // Two independent chains advanced in lockstep.
        let mut b = ProgramBuilder::new("pair");
        let top = b.label();
        b.bind(top);
        b.load(Reg(4), Reg(0), 0); // chain A
        b.load(Reg(5), Reg(2), 0); // chain B, independent
        b.alu(AluOp::Or, Reg(0), Reg(4), Reg(4), 1);
        b.alu(AluOp::Or, Reg(2), Reg(5), Reg(5), 1);
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(6), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        let prog = b.finish().unwrap();

        let mut profile = hot_profile_for(0);
        profile.retired_samples.insert(1, 1000);
        profile.l2_miss_samples.insert(1, 950);
        profile.stall_samples.insert(1, 950 * 270);

        let run = |coalesce: bool| {
            instrument_primary(
                &prog,
                &profile,
                &MachineConfig::default(),
                &PrimaryOptions {
                    coalesce,
                    ..PrimaryOptions::default()
                },
            )
            .unwrap()
            .1
        };
        let with = run(true);
        let without = run(false);
        assert_eq!(with.prefetches_inserted, 2);
        assert_eq!(with.yields_inserted, 1, "one yield for the pair");
        assert_eq!(without.yields_inserted, 2);
    }

    #[test]
    fn dependent_loads_do_not_coalesce() {
        // load r4,[r0]; load r5,[r4]: the classic dependent pair.
        let mut b = ProgramBuilder::new("dep");
        b.load(Reg(4), Reg(0), 0);
        b.load(Reg(5), Reg(4), 0);
        b.halt();
        let prog = b.finish().unwrap();
        let mut profile = hot_profile_for(0);
        profile.retired_samples.insert(1, 1000);
        profile.l2_miss_samples.insert(1, 950);
        profile.stall_samples.insert(1, 950 * 270);
        let (_, rep) = instrument_primary(
            &prog,
            &profile,
            &MachineConfig::default(),
            &PrimaryOptions::default(),
        )
        .unwrap();
        assert_eq!(rep.yields_inserted, 2);
    }

    #[test]
    fn instrumented_program_preserves_semantics() {
        let prog = chase_prog();
        let (q, _) = instrument_primary(
            &prog,
            &hot_profile_for(0),
            &MachineConfig::default(),
            &PrimaryOptions::default(),
        )
        .unwrap();

        let run = |p: &Program| {
            let mut m = Machine::new(MachineConfig::default());
            // A 3-node cycle of self-addressing nodes.
            m.mem.write(0x1000, 0x2000).unwrap();
            m.mem.write(0x2000, 0x3000).unwrap();
            m.mem.write(0x3000, 0x1000).unwrap();
            let mut ctx = Context::new(0);
            ctx.set_reg(Reg(0), 0x1000);
            ctx.set_reg(Reg(1), 5);
            ctx.set_reg(Reg(6), 1);
            m.run_to_completion(p, &mut ctx, 1000).unwrap();
            (ctx.reg(Reg(0)), ctx.reg(Reg(4)))
        };
        assert_eq!(run(&prog), run(&q));
    }
}

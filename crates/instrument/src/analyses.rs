//! Concrete dataflow analyses built on the [`crate::dataflow`] engine.
//!
//! Each analysis here is a [`DataflowProblem`] instance plus a thin
//! result wrapper with domain-specific accessors. They power the
//! `reach-lint` checks in [`crate::lint`]:
//!
//! * [`ReachingDefs`] — classic forward may-analysis: which definition
//!   sites can supply a register's value at a point.
//! * [`AvailablePrefetches`] — forward **must**-analysis: which
//!   `(address register, offset)` cache lines are already in flight on
//!   *every* path to a point. A prefetch of an available line is
//!   redundant (`RL0003`).
//! * [`AnticipatedLoads`] — backward may-analysis: which `(addr, offset)`
//!   lines are loaded on *some* path onward before the address register
//!   is redefined. A prefetch whose line is never anticipated is dead
//!   work (`RL0002`).
//! * [`SfiMasked`] — abstract interpretation for SFI: which registers
//!   provably hold in-domain (masked) addresses. Strictly stronger than
//!   the syntactic "was an `and` inserted?" check: it accepts any data
//!   flow that preserves maskedness and rejects everything else
//!   (`RL0005`).

use crate::cfg::Cfg;
use crate::dataflow::{self, DataflowProblem, Direction, Solution};
use crate::liveness::RegSet;
use crate::sfi::R_SFI_MASK;
use reach_sim::isa::{AluOp, Inst, Program};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------------

/// Sentinel definition site: "the value the register held at program
/// entry" (runtime-seeded arguments, the SFI mask, ...).
pub const ENTRY_DEF: usize = usize::MAX;

/// Fact: the set of `(register, definition pc)` pairs that may reach a
/// point. `ENTRY_DEF` marks the runtime-provided initial value.
pub type DefSet = BTreeSet<(u8, usize)>;

/// Reaching definitions as a forward may-problem on the powerset lattice
/// of `(reg, def-site)` pairs.
pub struct ReachingDefsProblem;

impl DataflowProblem for ReachingDefsProblem {
    type Fact = DefSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> DefSet {
        DefSet::new()
    }

    fn boundary(&self, _last: Option<&Inst>) -> DefSet {
        // Every register starts with its runtime-seeded entry value.
        (0..reach_sim::isa::NUM_REGS as u8)
            .map(|r| (r, ENTRY_DEF))
            .collect()
    }

    fn join(&self, into: &mut DefSet, from: &DefSet) {
        into.extend(from.iter().copied());
    }

    fn transfer(&self, pc: usize, inst: &Inst, fact: &mut DefSet) {
        if let Some(r) = inst.def() {
            let r = r.index() as u8;
            fact.retain(|&(reg, _)| reg != r);
            fact.insert((r, pc));
        }
    }
}

/// Solved reaching definitions.
pub struct ReachingDefs {
    sol: Solution<DefSet>,
}

impl ReachingDefs {
    /// Runs the analysis.
    pub fn compute(prog: &Program, cfg: &Cfg) -> ReachingDefs {
        ReachingDefs {
            sol: dataflow::solve(&ReachingDefsProblem, prog, cfg),
        }
    }

    /// Definition sites of `reg` that may reach the point before `pc`
    /// ([`ENTRY_DEF`] = the runtime-seeded entry value).
    pub fn defs_before(&self, pc: usize, reg: u8) -> Vec<usize> {
        self.sol
            .before(pc)
            .iter()
            .filter(|&&(r, _)| r == reg)
            .map(|&(_, d)| d)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Available prefetches (forward must)
// ---------------------------------------------------------------------------

/// A cache line identified by its address register and constant offset.
pub type Line = (u8, i64);

/// Must-facts use `Option`: `None` is ⊥ ("unvisited — no path
/// constraints yet") and joins as the identity; `Some(set)` intersects.
pub type MustLines = Option<BTreeSet<Line>>;

/// Available prefetches: `(addr, offset)` lines requested (by prefetch
/// or load) on **every** path to a point, with the address register
/// unmodified since. Yields kill everything — the line may be evicted
/// while another coroutine runs, so re-prefetching after a yield is
/// legitimate, never redundant.
pub struct AvailablePrefetchesProblem;

fn kill_reg(set: &mut BTreeSet<Line>, reg: u8) {
    set.retain(|&(r, _)| r != reg);
}

impl DataflowProblem for AvailablePrefetchesProblem {
    type Fact = MustLines;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> MustLines {
        None
    }

    fn boundary(&self, _last: Option<&Inst>) -> MustLines {
        Some(BTreeSet::new())
    }

    fn join(&self, into: &mut MustLines, from: &MustLines) {
        match (into.as_mut(), from) {
            (_, None) => {}
            (None, Some(f)) => *into = Some(f.clone()),
            (Some(i), Some(f)) => i.retain(|line| f.contains(line)),
        }
    }

    fn transfer(&self, _pc: usize, inst: &Inst, fact: &mut MustLines) {
        let Some(set) = fact.as_mut() else { return };
        match inst {
            Inst::Prefetch { addr, offset } => {
                set.insert((addr.index() as u8, *offset));
            }
            Inst::Load { dst, addr, offset } => {
                // The load brings the line in, then redefines dst.
                set.insert((addr.index() as u8, *offset));
                kill_reg(set, dst.index() as u8);
            }
            Inst::Yield { .. } => set.clear(),
            _ => {
                if let Some(d) = inst.def() {
                    kill_reg(set, d.index() as u8);
                }
            }
        }
    }
}

/// Solved available-prefetch analysis.
pub struct AvailablePrefetches {
    sol: Solution<MustLines>,
}

impl AvailablePrefetches {
    /// Runs the analysis.
    pub fn compute(prog: &Program, cfg: &Cfg) -> AvailablePrefetches {
        AvailablePrefetches {
            sol: dataflow::solve(&AvailablePrefetchesProblem, prog, cfg),
        }
    }

    /// Is `line` already in flight on every path reaching the point
    /// before `pc`? (`false` for unreachable code.)
    pub fn available_before(&self, pc: usize, line: Line) -> bool {
        self.sol
            .before(pc)
            .as_ref()
            .is_some_and(|s| s.contains(&line))
    }
}

// ---------------------------------------------------------------------------
// Anticipated loads (backward may)
// ---------------------------------------------------------------------------

/// Anticipated loads: `(addr, offset)` lines loaded on **some** path
/// onward, before the address register is redefined. The consumer test
/// for prefetches — a prefetch whose line nobody anticipates can never
/// hide a miss.
pub struct AnticipatedLoadsProblem;

impl DataflowProblem for AnticipatedLoadsProblem {
    type Fact = BTreeSet<Line>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self) -> BTreeSet<Line> {
        BTreeSet::new()
    }

    fn boundary(&self, _last: Option<&Inst>) -> BTreeSet<Line> {
        BTreeSet::new()
    }

    fn join(&self, into: &mut BTreeSet<Line>, from: &BTreeSet<Line>) {
        into.extend(from.iter().copied());
    }

    fn transfer(&self, _pc: usize, inst: &Inst, fact: &mut BTreeSet<Line>) {
        // Backward: `fact` is the state *after* the instruction and
        // becomes the state *before*. Kill first (a def at this point
        // invalidates downstream pairs through that register), then gen.
        if let Some(d) = inst.def() {
            kill_reg(fact, d.index() as u8);
        }
        if let Inst::Load { addr, offset, .. } = inst {
            fact.insert((addr.index() as u8, *offset));
        }
        // Yields do NOT kill: prefetch → yield → load is the canonical
        // instrumentation pattern and the load still consumes the line.
    }
}

/// Solved anticipated-loads analysis.
pub struct AnticipatedLoads {
    sol: Solution<BTreeSet<Line>>,
}

impl AnticipatedLoads {
    /// Runs the analysis.
    pub fn compute(prog: &Program, cfg: &Cfg) -> AnticipatedLoads {
        AnticipatedLoads {
            sol: dataflow::solve(&AnticipatedLoadsProblem, prog, cfg),
        }
    }

    /// Is `line` loaded on some path starting after `pc`, before its
    /// address register is redefined?
    pub fn anticipated_after(&self, pc: usize, line: Line) -> bool {
        self.sol.after(pc).contains(&line)
    }
}

// ---------------------------------------------------------------------------
// SFI maskedness (forward must / abstract interpretation)
// ---------------------------------------------------------------------------

/// SFI address-range analysis. Abstract domain per register: *masked*
/// (value provably satisfies `bits(v) ⊆ bits(mask in r26)`) or unknown.
/// The fact is the must-set of masked registers (`None` = unvisited).
///
/// Transfer rules (each sound by bit-algebra on the AND-mask domain):
///
/// * `and d, a, b` — masked if *either* source is masked:
///   `bits(a & b) ⊆ bits(a)`.
/// * `or d, a, b` — masked if *both* sources are masked:
///   `bits(a | b) = bits(a) ∪ bits(b)`.
/// * `imm d, 0` — masked: the empty bit-set is inside every domain.
/// * any other definition — unknown (conservative).
/// * a definition of [`R_SFI_MASK`] itself clears its maskedness; the
///   lint layer additionally flags it as a clobber, since the runtime
///   owns that register.
///
/// This subsumes the syntactic pattern `and r27, addr, r26; access r27`
/// that [`crate::sfi::instrument_sfi`] emits, but also accepts hand-
/// written or optimized guard sequences — and rejects any access whose
/// address cannot be proven in-domain on every path.
pub struct SfiMaskedProblem;

impl DataflowProblem for SfiMaskedProblem {
    type Fact = Option<RegSet>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn bottom(&self) -> Option<RegSet> {
        None
    }

    fn boundary(&self, _last: Option<&Inst>) -> Option<RegSet> {
        // At entry only the mask register itself is trivially in-domain.
        Some(1 << R_SFI_MASK.index())
    }

    fn join(&self, into: &mut Option<RegSet>, from: &Option<RegSet>) {
        match (into.as_mut(), from) {
            (_, None) => {}
            (None, Some(f)) => *into = Some(*f),
            (Some(i), Some(f)) => *i &= *f,
        }
    }

    fn transfer(&self, _pc: usize, inst: &Inst, fact: &mut Option<RegSet>) {
        let Some(masked) = fact.as_mut() else { return };
        let bit = |r: reach_sim::isa::Reg| 1u32 << r.index();
        match inst {
            Inst::Alu {
                op: AluOp::And,
                dst,
                src1,
                src2,
                ..
            } => {
                if *masked & (bit(*src1) | bit(*src2)) != 0 {
                    *masked |= bit(*dst);
                } else {
                    *masked &= !bit(*dst);
                }
            }
            Inst::Alu {
                op: AluOp::Or,
                dst,
                src1,
                src2,
                ..
            } => {
                if *masked & bit(*src1) != 0 && *masked & bit(*src2) != 0 {
                    *masked |= bit(*dst);
                } else {
                    *masked &= !bit(*dst);
                }
            }
            Inst::Imm { dst, val } => {
                if *val == 0 {
                    *masked |= bit(*dst);
                } else {
                    *masked &= !bit(*dst);
                }
            }
            _ => {
                if let Some(d) = inst.def() {
                    *masked &= !bit(d);
                }
            }
        }
    }
}

/// Solved SFI maskedness analysis.
pub struct SfiMasked {
    sol: Solution<Option<RegSet>>,
}

impl SfiMasked {
    /// Runs the analysis.
    pub fn compute(prog: &Program, cfg: &Cfg) -> SfiMasked {
        SfiMasked {
            sol: dataflow::solve(&SfiMaskedProblem, prog, cfg),
        }
    }

    /// Is `reg` provably masked on every path reaching the point before
    /// `pc`? Unreachable code vacuously passes (`None` fact — no path
    /// can execute the access).
    pub fn masked_before(&self, pc: usize, reg: u8) -> bool {
        match self.sol.before(pc) {
            None => true,
            Some(set) => set & (1 << reg) != 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sfi::{instrument_sfi, R_SFI_ADDR};
    use reach_sim::isa::{Cond, ProgramBuilder, Reg};

    fn cfg_of(p: &Program) -> Cfg {
        Cfg::build(p)
    }

    #[test]
    fn reaching_defs_track_redefinition_and_merge() {
        let mut b = ProgramBuilder::new("rd");
        let join = b.label();
        b.imm(Reg(0), 1); // pc 0
        b.branch(Cond::Nez, Reg(5), join); // pc 1
        b.imm(Reg(0), 2); // pc 2
        b.bind(join);
        b.store(Reg(0), Reg(1), 0); // pc 3
        b.halt();
        let p = b.finish().unwrap();
        let rd = ReachingDefs::compute(&p, &cfg_of(&p));
        // At the store both defs of r0 may reach.
        let mut defs = rd.defs_before(3, 0);
        defs.sort_unstable();
        assert_eq!(defs, vec![0, 2]);
        // r1 is only ever entry-defined.
        assert_eq!(rd.defs_before(3, 1), vec![ENTRY_DEF]);
        // Before pc 2, only the pc-0 def of r0 reaches.
        assert_eq!(rd.defs_before(2, 0), vec![0]);
    }

    #[test]
    fn available_prefetch_killed_by_redef_and_yield() {
        let mut b = ProgramBuilder::new("ap");
        b.prefetch(Reg(3), 8); // pc 0
        b.prefetch(Reg(3), 8); // pc 1: redundant
        b.yield_manual(); // pc 2: kills availability
        b.prefetch(Reg(3), 8); // pc 3: NOT redundant (post-yield)
        b.imm(Reg(3), 0); // pc 4: redefines addr reg
        b.prefetch(Reg(3), 8); // pc 5: NOT redundant (new value)
        b.halt();
        let p = b.finish().unwrap();
        let ap = AvailablePrefetches::compute(&p, &cfg_of(&p));
        assert!(!ap.available_before(0, (3, 8)));
        assert!(ap.available_before(1, (3, 8)));
        assert!(!ap.available_before(3, (3, 8)));
        assert!(!ap.available_before(5, (3, 8)));
    }

    #[test]
    fn available_prefetch_is_a_must_analysis() {
        // Prefetched on only one arm of a diamond ⇒ not available at the
        // join.
        let mut b = ProgramBuilder::new("apm");
        let join = b.label();
        b.branch(Cond::Nez, Reg(5), join); // pc 0
        b.prefetch(Reg(3), 0); // pc 1 (fallthrough arm only)
        b.bind(join);
        b.load(Reg(4), Reg(3), 0); // pc 2
        b.halt();
        let p = b.finish().unwrap();
        let ap = AvailablePrefetches::compute(&p, &cfg_of(&p));
        assert!(!ap.available_before(2, (3, 0)));
    }

    #[test]
    fn anticipated_loads_survive_yields_and_die_at_redef() {
        let mut b = ProgramBuilder::new("al");
        b.prefetch(Reg(3), 8); // pc 0: consumed (load at 2)
        b.yield_manual(); // pc 1
        b.load(Reg(4), Reg(3), 8); // pc 2
        b.prefetch(Reg(3), 16); // pc 3: orphan — r3 redefined first
        b.imm(Reg(3), 0); // pc 4
        b.load(Reg(5), Reg(3), 16); // pc 5 (different r3 value)
        b.halt();
        let p = b.finish().unwrap();
        let al = AnticipatedLoads::compute(&p, &cfg_of(&p));
        assert!(al.anticipated_after(0, (3, 8)));
        assert!(!al.anticipated_after(3, (3, 16)));
        // After the redef, the downstream load is anticipated again.
        assert!(al.anticipated_after(4, (3, 16)));
    }

    #[test]
    fn anticipated_load_with_dst_equal_addr() {
        // Pointer chase: `load r3, [r3]` — the load's own def kills the
        // pair going further backward, but the pair is anticipated
        // immediately before the load.
        let mut b = ProgramBuilder::new("chase");
        b.prefetch(Reg(3), 0); // pc 0
        b.load(Reg(3), Reg(3), 0); // pc 1
        b.load(Reg(3), Reg(3), 0); // pc 2
        b.halt();
        let p = b.finish().unwrap();
        let al = AnticipatedLoads::compute(&p, &cfg_of(&p));
        assert!(al.anticipated_after(0, (3, 0)));
        // After pc 1 the *new* r3 is loaded at pc 2, so (3,0) is still
        // anticipated — but that's a different dynamic address; the
        // may-analysis is conservative here by design.
        assert!(al.anticipated_after(1, (3, 0)));
    }

    #[test]
    fn sfi_instrumented_program_is_fully_masked() {
        let mut b = ProgramBuilder::new("s");
        b.load(Reg(4), Reg(0), 0);
        b.store(Reg(4), Reg(1), 8);
        b.halt();
        let p = b.finish().unwrap();
        let (q, _) = instrument_sfi(&p).unwrap();
        let sm = SfiMasked::compute(&q, &cfg_of(&q));
        for (pc, inst) in q.insts.iter().enumerate() {
            if let Inst::Load { addr, .. } | Inst::Store { addr, .. } = inst {
                assert!(
                    sm.masked_before(pc, addr.index() as u8),
                    "access at pc {pc} not proven masked"
                );
            }
        }
    }

    #[test]
    fn sfi_detects_unmasked_path_through_diamond() {
        // One arm masks the address, the other does not ⇒ must-analysis
        // rejects the access at the join.
        let mut b = ProgramBuilder::new("sd");
        let join = b.label();
        b.branch(Cond::Nez, Reg(5), join); // pc 0: skips the mask
        b.alu(AluOp::And, R_SFI_ADDR, Reg(0), R_SFI_MASK, 1); // pc 1
        b.bind(join);
        b.load(Reg(4), R_SFI_ADDR, 0); // pc 2
        b.halt();
        let p = b.finish().unwrap();
        let sm = SfiMasked::compute(&p, &cfg_of(&p));
        assert!(!sm.masked_before(2, R_SFI_ADDR.index() as u8));
    }

    #[test]
    fn sfi_maskedness_flows_through_or_and_zero() {
        let mut b = ProgramBuilder::new("sf");
        b.alu(AluOp::And, Reg(10), Reg(0), R_SFI_MASK, 1); // r10 masked
        b.imm(Reg(11), 0); // r11 masked (zero)
        b.alu(AluOp::Or, Reg(12), Reg(10), Reg(11), 1); // or of masked: masked
        b.load(Reg(4), Reg(12), 0);
        b.alu(AluOp::Add, Reg(12), Reg(10), Reg(11), 1); // add: unknown
        b.load(Reg(4), Reg(12), 0);
        b.halt();
        let p = b.finish().unwrap();
        let sm = SfiMasked::compute(&p, &cfg_of(&p));
        assert!(sm.masked_before(3, 12));
        assert!(!sm.masked_before(5, 12));
    }
}

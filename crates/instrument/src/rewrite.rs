//! Binary rewriting with relocation: the mechanical core of operating at
//! the post-linked-binary level.
//!
//! Inserting instructions into a flat stream shifts every later PC, so all
//! branch/call targets must be relocated — the same fix-up a real binary
//! rewriter performs. [`insert_before`] applies a batch of insertions and
//! returns both the new program and the PC maps needed to carry
//! profile data (which refers to *original* PCs) across rewriting passes.

use reach_sim::isa::{Inst, Program};

/// A batch entry: place `insts` immediately before the original
/// instruction at `at_pc`.
#[derive(Clone, Debug)]
pub struct Insertion {
    /// Original PC the new instructions precede.
    pub at_pc: usize,
    /// Instructions to insert (kept in order).
    pub insts: Vec<Inst>,
}

/// Mapping between original and rewritten PC spaces.
#[derive(Clone, Debug)]
pub struct PcMap {
    /// `new_of[old_pc]` = new PC of the original instruction.
    pub new_of: Vec<usize>,
    /// `origin[new_pc]` = original PC, or `None` for inserted
    /// instructions.
    pub origin: Vec<Option<usize>>,
}

impl PcMap {
    /// Identity map for an untouched program of length `n`.
    pub fn identity(n: usize) -> PcMap {
        PcMap {
            new_of: (0..n).collect(),
            origin: (0..n).map(Some).collect(),
        }
    }

    /// Composes two rewriting steps: `self` (first) then `later`.
    ///
    /// The result maps the *original* PC space of `self` to the final PC
    /// space of `later`.
    pub fn then(&self, later: &PcMap) -> PcMap {
        PcMap {
            new_of: self.new_of.iter().map(|&p| later.new_of[p]).collect(),
            origin: later
                .origin
                .iter()
                .map(|&o| o.and_then(|p| self.origin[p]))
                .collect(),
        }
    }
}

/// Errors from [`insert_before`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RewriteError {
    /// An insertion targets a PC outside the program.
    BadInsertionPc {
        /// The offending PC.
        at_pc: usize,
    },
    /// Two insertions target the same PC (merge them first — order would
    /// be ambiguous).
    DuplicateInsertionPc {
        /// The duplicated PC.
        at_pc: usize,
    },
    /// The rewritten program failed validation (an internal bug).
    Invalid(String),
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::BadInsertionPc { at_pc } => {
                write!(f, "insertion at pc {at_pc} outside program")
            }
            RewriteError::DuplicateInsertionPc { at_pc } => {
                write!(f, "two insertions at pc {at_pc}")
            }
            RewriteError::Invalid(e) => write!(f, "rewritten program invalid: {e}"),
        }
    }
}

impl std::error::Error for RewriteError {}

/// Inserts every batch entry before its original instruction, relocating
/// all branch and call targets.
///
/// Branch targets that pointed at an instruction with an insertion now
/// point at the *first inserted instruction* — i.e. control arriving at a
/// load via a branch still executes the prefetch+yield placed before it.
pub fn insert_before(
    prog: &Program,
    mut insertions: Vec<Insertion>,
) -> Result<(Program, PcMap), RewriteError> {
    let n = prog.len();
    insertions.sort_by_key(|i| i.at_pc);
    for w in insertions.windows(2) {
        if w[0].at_pc == w[1].at_pc {
            return Err(RewriteError::DuplicateInsertionPc { at_pc: w[0].at_pc });
        }
    }
    if let Some(last) = insertions.last() {
        if last.at_pc >= n {
            return Err(RewriteError::BadInsertionPc { at_pc: last.at_pc });
        }
    }

    // Build the new stream and the PC maps.
    let extra: usize = insertions.iter().map(|i| i.insts.len()).sum();
    let mut insts = Vec::with_capacity(n + extra);
    let mut new_of = vec![0usize; n];
    let mut origin = Vec::with_capacity(n + extra);
    let mut ins_iter = insertions.iter().peekable();
    // `entry_of[old_pc]`: where control arriving at `old_pc` should land
    // (the first inserted instruction if any, else the instruction
    // itself).
    let mut entry_of = vec![0usize; n];

    for (old_pc, inst) in prog.insts.iter().enumerate() {
        let mut entry = insts.len();
        if let Some(ins) = ins_iter.peek() {
            if ins.at_pc == old_pc {
                let ins = ins_iter.next().expect("peeked");
                entry = insts.len();
                for new_inst in &ins.insts {
                    origin.push(None);
                    insts.push(new_inst.clone());
                }
            }
        }
        entry_of[old_pc] = entry;
        new_of[old_pc] = insts.len();
        origin.push(Some(old_pc));
        insts.push(inst.clone());
    }

    // Relocate targets: branches land on the entry point (inserted code
    // included) of their original target.
    for inst in &mut insts {
        match inst {
            Inst::Branch { target, .. } | Inst::Call { target } => {
                *target = entry_of[*target];
            }
            _ => {}
        }
    }

    let new_prog = Program {
        insts,
        name: prog.name.clone(),
    };
    new_prog
        .validate()
        .map_err(|e| RewriteError::Invalid(e.to_string()))?;
    Ok((new_prog, PcMap { new_of, origin }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::isa::{AluOp, Cond, ProgramBuilder, Reg, YieldKind};
    use reach_sim::{Context, Machine, MachineConfig};

    fn loop_prog() -> Program {
        // 0: imm r0,3  1: imm r1,1  2: sub r0,r0,r1  3: br.nez r0,@2
        // 4: halt
        let mut b = ProgramBuilder::new("loop");
        b.imm(Reg(0), 3).imm(Reg(1), 1);
        let top = b.label();
        b.bind(top);
        b.alu(AluOp::Sub, Reg(0), Reg(0), Reg(1), 1);
        b.branch(Cond::Nez, Reg(0), top);
        b.halt();
        b.finish().unwrap()
    }

    fn yield_inst() -> Inst {
        Inst::Yield {
            kind: YieldKind::Primary,
            save_regs: Some(0b11),
        }
    }

    #[test]
    fn insertion_shifts_and_relocates_backedge() {
        let p = loop_prog();
        let (q, map) = insert_before(
            &p,
            vec![Insertion {
                at_pc: 2,
                insts: vec![yield_inst()],
            }],
        )
        .unwrap();
        assert_eq!(q.len(), 6);
        // The yield sits where pc 2 was; the sub moved to 3.
        assert!(matches!(q.insts[2], Inst::Yield { .. }));
        assert!(matches!(q.insts[3], Inst::Alu { .. }));
        // The back edge retargets to the *yield* (entry of old pc 2): a
        // loop iteration hits the instrumentation every time around.
        let Inst::Branch { target, .. } = q.insts[4] else {
            panic!("pc 4 should be the branch");
        };
        assert_eq!(target, 2);
        assert_eq!(map.new_of[2], 3);
        assert_eq!(map.origin[2], None);
        assert_eq!(map.origin[3], Some(2));
    }

    #[test]
    fn rewritten_program_has_identical_semantics() {
        let p = loop_prog();
        let (q, _) = insert_before(
            &p,
            vec![
                Insertion {
                    at_pc: 0,
                    insts: vec![yield_inst()],
                },
                Insertion {
                    at_pc: 4,
                    insts: vec![yield_inst()],
                },
            ],
        )
        .unwrap();
        let run = |prog: &Program| {
            let mut m = Machine::new(MachineConfig::default());
            let mut ctx = Context::new(0);
            m.run_to_completion(prog, &mut ctx, 1000).unwrap();
            ctx.regs
        };
        assert_eq!(run(&p), run(&q));
    }

    #[test]
    fn multiple_insertions_accumulate_offsets() {
        let p = loop_prog();
        let (q, map) = insert_before(
            &p,
            vec![
                Insertion {
                    at_pc: 1,
                    insts: vec![yield_inst(), yield_inst()],
                },
                Insertion {
                    at_pc: 3,
                    insts: vec![yield_inst()],
                },
            ],
        )
        .unwrap();
        assert_eq!(q.len(), 8);
        assert_eq!(map.new_of[0], 0);
        assert_eq!(map.new_of[1], 3);
        assert_eq!(map.new_of[2], 4);
        assert_eq!(map.new_of[3], 6);
        assert_eq!(map.new_of[4], 7);
    }

    #[test]
    fn duplicate_insertion_pc_rejected() {
        let p = loop_prog();
        let r = insert_before(
            &p,
            vec![
                Insertion {
                    at_pc: 2,
                    insts: vec![yield_inst()],
                },
                Insertion {
                    at_pc: 2,
                    insts: vec![yield_inst()],
                },
            ],
        );
        assert_eq!(
            r.unwrap_err(),
            RewriteError::DuplicateInsertionPc { at_pc: 2 }
        );
    }

    #[test]
    fn out_of_range_insertion_rejected() {
        let p = loop_prog();
        let r = insert_before(
            &p,
            vec![Insertion {
                at_pc: 99,
                insts: vec![yield_inst()],
            }],
        );
        assert_eq!(r.unwrap_err(), RewriteError::BadInsertionPc { at_pc: 99 });
    }

    #[test]
    fn pcmap_composition() {
        let p = loop_prog();
        let (q, m1) = insert_before(
            &p,
            vec![Insertion {
                at_pc: 2,
                insts: vec![yield_inst()],
            }],
        )
        .unwrap();
        let (_, m2) = insert_before(
            &q,
            vec![Insertion {
                at_pc: 0,
                insts: vec![yield_inst()],
            }],
        )
        .unwrap();
        let m = m1.then(&m2);
        // Original pc 2 → new pc 3 after step 1 → pc 4 after step 2.
        assert_eq!(m.new_of[2], 4);
        // Origins survive composition.
        assert_eq!(m.origin[4], Some(2));
        assert_eq!(m.origin[0], None, "step-2 insertion has no origin");
        assert_eq!(m.origin[3], None, "step-1 insertion has no origin");
    }

    #[test]
    fn identity_map() {
        let m = PcMap::identity(3);
        assert_eq!(m.new_of, vec![0, 1, 2]);
        assert_eq!(m.origin, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn empty_insertion_batch_is_identity_rewrite() {
        let p = loop_prog();
        let (q, map) = insert_before(&p, vec![]).unwrap();
        assert_eq!(q, p);
        assert_eq!(map.new_of, (0..p.len()).collect::<Vec<_>>());
    }
}

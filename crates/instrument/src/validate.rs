//! Translation validation: statically check that a rewritten binary is a
//! faithful instrumentation of its original.
//!
//! Production binary rewriters pair every transformation with a
//! validation pass — trust comes from checking, not from the rewriter's
//! own bookkeeping. [`validate_rewrite`] checks, given the original, the
//! rewritten program and the rewriting `origin` map:
//!
//! 1. **coverage** — every original instruction appears exactly once, in
//!    order;
//! 2. **identity modulo relocation** — each surviving instruction is
//!    unchanged except for branch/call targets, which must point at the
//!    relocated position of their original target (its *entry*, i.e.
//!    possibly at instrumentation inserted before it);
//! 3. **insertion discipline** — inserted instructions come only from the
//!    allowed set (prefetches, yields, and SFI masking ALUs into the
//!    reserved registers), none of which can change architectural state
//!    the original program observes.

use crate::sfi::{R_SFI_ADDR, R_SFI_MASK};
use reach_sim::isa::{AluOp, Inst, Program};

/// A validation failure.
#[derive(Clone, Debug, PartialEq)]
pub enum ValidationError {
    /// The origin map's length does not match the rewritten program.
    MapLengthMismatch,
    /// Original instructions are missing, duplicated or out of order.
    CoverageBroken {
        /// Number of original PCs covered.
        covered: usize,
        /// Expected count.
        expected: usize,
    },
    /// A surviving instruction changed beyond target relocation.
    InstructionAltered {
        /// PC in the rewritten program.
        new_pc: usize,
        /// PC in the original program.
        old_pc: usize,
    },
    /// A relocated target does not reach its original target's entry.
    BadRelocation {
        /// PC of the branch in the rewritten program.
        new_pc: usize,
        /// The (wrong) rewritten target.
        got: usize,
        /// The expected rewritten target.
        want: usize,
    },
    /// An inserted instruction is outside the allowed set.
    IllegalInsertion {
        /// PC of the inserted instruction.
        new_pc: usize,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::MapLengthMismatch => write!(f, "origin map length mismatch"),
            ValidationError::CoverageBroken { covered, expected } => {
                write!(f, "coverage broken: {covered} of {expected} originals")
            }
            ValidationError::InstructionAltered { new_pc, old_pc } => {
                write!(
                    f,
                    "instruction at new pc {new_pc} (orig {old_pc}) was altered"
                )
            }
            ValidationError::BadRelocation { new_pc, got, want } => {
                write!(
                    f,
                    "branch at new pc {new_pc} relocated to {got}, want {want}"
                )
            }
            ValidationError::IllegalInsertion { new_pc } => {
                write!(f, "illegal inserted instruction at new pc {new_pc}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Returns `true` if `inst` is allowed as *inserted* instrumentation.
fn is_legal_insertion(inst: &Inst) -> bool {
    match inst {
        Inst::Prefetch { .. } | Inst::Yield { .. } => true,
        // SFI masking: `and R_SFI_ADDR, <any>, R_SFI_MASK`.
        Inst::Alu {
            op: AluOp::And,
            dst,
            src2,
            ..
        } => *dst == R_SFI_ADDR && *src2 == R_SFI_MASK,
        _ => false,
    }
}

/// Validates that `rewritten` instruments `original` per `origin`.
///
/// `allow_addr_rerouting` permits surviving memory accesses to have their
/// address register replaced by [`R_SFI_ADDR`] (the SFI pass does this);
/// leave it false for yield-only pipelines.
pub fn validate_rewrite(
    original: &Program,
    rewritten: &Program,
    origin: &[Option<usize>],
    allow_addr_rerouting: bool,
) -> Result<(), ValidationError> {
    if origin.len() != rewritten.len() {
        return Err(ValidationError::MapLengthMismatch);
    }

    // Coverage + entry map: entry[old_pc] = first new pc whose run of
    // insertions precedes old_pc's relocated instruction.
    let mut survivors: Vec<(usize, usize)> = Vec::new(); // (new, old)
    for (new_pc, o) in origin.iter().enumerate() {
        if let Some(old_pc) = o {
            survivors.push((new_pc, *old_pc));
        }
    }
    let expected = original.len();
    let in_order = survivors.windows(2).all(|w| w[0].1 + 1 == w[1].1);
    if survivors.len() != expected || !in_order || survivors.first().map(|s| s.1) != Some(0) {
        return Err(ValidationError::CoverageBroken {
            covered: survivors.len(),
            expected,
        });
    }
    // Entry of old pc = new position of the first instruction inserted
    // before it (or the instruction itself).
    let mut entry = vec![0usize; expected];
    let mut prev_new = 0usize;
    for &(new_pc, old_pc) in &survivors {
        // The insertions between the previous survivor and this one
        // belong to this old pc's entry.
        entry[old_pc] = if old_pc == 0 { 0 } else { prev_new + 1 };
        prev_new = new_pc;
    }

    for &(new_pc, old_pc) in &survivors {
        let orig = &original.insts[old_pc];
        let new = &rewritten.insts[new_pc];
        let same = match (orig, new) {
            (
                Inst::Branch {
                    cond: c1,
                    src: s1,
                    target: t1,
                },
                Inst::Branch {
                    cond: c2,
                    src: s2,
                    target: t2,
                },
            ) => {
                if c1 != c2 || s1 != s2 {
                    false
                } else {
                    let want = entry[*t1];
                    if *t2 != want {
                        return Err(ValidationError::BadRelocation {
                            new_pc,
                            got: *t2,
                            want,
                        });
                    }
                    true
                }
            }
            (Inst::Call { target: t1 }, Inst::Call { target: t2 }) => {
                let want = entry[*t1];
                if *t2 != want {
                    return Err(ValidationError::BadRelocation {
                        new_pc,
                        got: *t2,
                        want,
                    });
                }
                true
            }
            (
                Inst::Load {
                    dst: d1,
                    addr: a1,
                    offset: o1,
                },
                Inst::Load {
                    dst: d2,
                    addr: a2,
                    offset: o2,
                },
            ) => d1 == d2 && o1 == o2 && (a1 == a2 || (allow_addr_rerouting && *a2 == R_SFI_ADDR)),
            (
                Inst::Store {
                    src: s1,
                    addr: a1,
                    offset: o1,
                },
                Inst::Store {
                    src: s2,
                    addr: a2,
                    offset: o2,
                },
            ) => s1 == s2 && o1 == o2 && (a1 == a2 || (allow_addr_rerouting && *a2 == R_SFI_ADDR)),
            (
                Inst::Prefetch {
                    addr: a1,
                    offset: o1,
                },
                Inst::Prefetch {
                    addr: a2,
                    offset: o2,
                },
            ) => o1 == o2 && (a1 == a2 || (allow_addr_rerouting && *a2 == R_SFI_ADDR)),
            (a, b) => a == b,
        };
        if !same {
            return Err(ValidationError::InstructionAltered { new_pc, old_pc });
        }
    }

    for (new_pc, o) in origin.iter().enumerate() {
        if o.is_none() && !is_legal_insertion(&rewritten.insts[new_pc]) {
            return Err(ValidationError::IllegalInsertion { new_pc });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primary::{instrument_primary, PrimaryOptions};
    use crate::scavenger::{instrument_scavenger, ScavengerOptions};
    use crate::sfi::instrument_sfi;
    use reach_profile::{Periods, Profile};
    use reach_sim::isa::{Cond, ProgramBuilder, Reg};
    use reach_sim::MachineConfig;

    fn chase_prog() -> Program {
        let mut b = ProgramBuilder::new("chase");
        let top = b.label();
        b.bind(top);
        b.load(Reg(4), Reg(0), 0);
        b.alu(AluOp::Or, Reg(0), Reg(4), Reg(4), 1);
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(6), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        b.finish().unwrap()
    }

    fn hot_profile() -> Profile {
        let periods = Periods {
            l2_miss: 1,
            l3_miss: 1,
            stall: 1,
            retired: 1,
        };
        let mut p = Profile::new("chase", periods);
        p.retired_samples.insert(0, 1000);
        p.l2_miss_samples.insert(0, 900);
        p.stall_samples.insert(0, 900 * 270);
        p
    }

    #[test]
    fn primary_pass_validates() {
        let p = chase_prog();
        let (q, rep) = instrument_primary(
            &p,
            &hot_profile(),
            &MachineConfig::default(),
            &PrimaryOptions::default(),
        )
        .unwrap();
        validate_rewrite(&p, &q, &rep.pc_map.origin, false).unwrap();
    }

    #[test]
    fn scavenger_pass_validates() {
        let p = chase_prog();
        let (q, rep) = instrument_scavenger(
            &p,
            None,
            &MachineConfig::default(),
            &ScavengerOptions {
                target_interval: 2,
                use_liveness: true,
            },
        )
        .unwrap();
        validate_rewrite(&p, &q, &rep.pc_map.origin, false).unwrap();
    }

    #[test]
    fn sfi_pass_validates_with_rerouting_allowed() {
        let p = chase_prog();
        let (q, rep) = instrument_sfi(&p).unwrap();
        validate_rewrite(&p, &q, &rep.pc_map.origin, true).unwrap();
        // ...and is rejected without the rerouting allowance.
        assert!(matches!(
            validate_rewrite(&p, &q, &rep.pc_map.origin, false),
            Err(ValidationError::InstructionAltered { .. })
        ));
    }

    #[test]
    fn tampering_is_caught() {
        let p = chase_prog();
        let (mut q, rep) = instrument_primary(
            &p,
            &hot_profile(),
            &MachineConfig::default(),
            &PrimaryOptions::default(),
        )
        .unwrap();
        // Corrupt a surviving instruction.
        let victim = rep.pc_map.origin.iter().position(|o| o.is_some()).unwrap();
        q.insts[victim] = Inst::Imm {
            dst: Reg(9),
            val: 666,
        };
        assert!(validate_rewrite(&p, &q, &rep.pc_map.origin, false).is_err());
    }

    #[test]
    fn illegal_insertion_is_caught() {
        let p = chase_prog();
        let (mut q, rep) = instrument_primary(
            &p,
            &hot_profile(),
            &MachineConfig::default(),
            &PrimaryOptions::default(),
        )
        .unwrap();
        let inserted = rep
            .pc_map
            .origin
            .iter()
            .position(|o| o.is_none())
            .expect("pass inserted something");
        q.insts[inserted] = Inst::Imm {
            dst: Reg(9),
            val: 1,
        };
        assert_eq!(
            validate_rewrite(&p, &q, &rep.pc_map.origin, false),
            Err(ValidationError::IllegalInsertion { new_pc: inserted })
        );
    }

    #[test]
    fn bad_relocation_is_caught() {
        let p = chase_prog();
        let (mut q, rep) = instrument_primary(
            &p,
            &hot_profile(),
            &MachineConfig::default(),
            &PrimaryOptions::default(),
        )
        .unwrap();
        // Find the back edge and mis-relocate it.
        let branch_pc = q
            .insts
            .iter()
            .position(|i| {
                matches!(
                    i,
                    Inst::Branch {
                        cond: Cond::Nez,
                        ..
                    }
                )
            })
            .unwrap();
        if let Inst::Branch { target, .. } = &mut q.insts[branch_pc] {
            *target += 1;
        }
        assert!(matches!(
            validate_rewrite(&p, &q, &rep.pc_map.origin, false),
            Err(ValidationError::BadRelocation { .. })
        ));
    }

    #[test]
    fn wrong_map_length_is_caught() {
        let p = chase_prog();
        assert_eq!(
            validate_rewrite(&p, &p, &[], false),
            Err(ValidationError::MapLengthMismatch)
        );
    }
}

//! Symbolic evaluation of micro-IR basic blocks over a small term
//! algebra — the engine under the translation-validation pass
//! ([`crate::equiv`]).
//!
//! A block is executed once over *terms* instead of values: registers
//! start as opaque entry terms, ALU results become operator nodes
//! (constant-folded when both operands are known), and loads become
//! uninterpreted reads keyed by their symbolic effective address and the
//! number of stores executed before them. Two blocks that produce the
//! same store sequence, the same exit behavior and the same final
//! register terms are observationally indistinguishable to any context
//! that enters them in equal states — which is exactly the per-block
//! proof obligation of the CFG bisimulation in [`crate::equiv`].
//!
//! The algebra is deliberately tiny. Hash-consing makes term equality a
//! pointer (id) comparison; the only simplifications are constant
//! folding through [`AluOp::eval`] and the handful of identities the
//! pipeline's own rewrites need to validate (`or x,x = x` is how
//! [`crate::elide`] replaces a yield with an architectural no-op;
//! `x + 0 = x` folds zero load offsets so SFI mask stripping composes).

use reach_sim::isa::{AluOp, Cond, Inst, Program, YieldKind, NUM_REGS};
use std::collections::HashMap;
use std::ops::Range;

/// Index of a hash-consed term in its [`TermPool`]. Equal ids ⇔ equal
/// terms.
pub type TermId = u32;

/// A node in the term algebra.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// The value register `reg` held at the cut point, on paths where
    /// both programs provably agree on it.
    Entry {
        /// Register index.
        reg: u8,
    },
    /// The value register `reg` held at the cut point on one side only
    /// (`side` 0 = original, 1 = rewritten) — used for registers the
    /// bisimulation could not prove equal, so that accidental
    /// coincidences never count as proofs.
    Diverged {
        /// Which program's entry state (0 = original, 1 = rewritten).
        side: u8,
        /// Register index.
        reg: u8,
    },
    /// A known 64-bit constant.
    Const(u64),
    /// An ALU operation over two terms.
    Alu {
        /// The operation.
        op: AluOp,
        /// Left operand.
        a: TermId,
        /// Right operand.
        b: TermId,
    },
    /// An uninterpreted memory read: the value at symbolic address
    /// `addr` after `version` stores have executed in this block.
    Read {
        /// Normalized effective-address term.
        addr: TermId,
        /// Store count before this read (the block-local memory
        /// version).
        version: u32,
    },
}

/// A hash-consing arena of [`Term`]s: structurally equal terms intern to
/// the same [`TermId`], so term equality is id equality.
#[derive(Clone, Debug, Default)]
pub struct TermPool {
    terms: Vec<Term>,
    index: HashMap<Term, TermId>,
}

impl TermPool {
    /// An empty pool.
    pub fn new() -> TermPool {
        TermPool::default()
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The node behind `id`.
    pub fn get(&self, id: TermId) -> Term {
        self.terms[id as usize]
    }

    /// Interns `t`, returning the existing id for structurally equal
    /// terms.
    pub fn intern(&mut self, t: Term) -> TermId {
        if let Some(&id) = self.index.get(&t) {
            return id;
        }
        let id = self.terms.len() as TermId;
        self.terms.push(t);
        self.index.insert(t, id);
        id
    }

    /// Interns a constant.
    pub fn constant(&mut self, v: u64) -> TermId {
        self.intern(Term::Const(v))
    }

    /// Interns an ALU node, constant-folding through [`AluOp::eval`] and
    /// applying the identities the pipeline's rewrites rely on
    /// (`or/and x,x = x`; `x op 0 = x` for add/sub/or/xor/shifts).
    pub fn alu(&mut self, op: AluOp, a: TermId, b: TermId) -> TermId {
        if let (Term::Const(x), Term::Const(y)) = (self.get(a), self.get(b)) {
            return self.constant(op.eval(x, y));
        }
        match op {
            AluOp::Or | AluOp::And | AluOp::Min | AluOp::Max if a == b => return a,
            AluOp::Add | AluOp::Sub | AluOp::Or | AluOp::Xor | AluOp::Shl | AluOp::Shr
                if self.get(b) == Term::Const(0) =>
            {
                return a
            }
            _ => {}
        }
        self.intern(Term::Alu { op, a, b })
    }

    /// The effective-address term `base + offset` (folded when the
    /// offset is zero, so address normalization composes with SFI mask
    /// stripping).
    pub fn eff_addr(&mut self, base: TermId, offset: i64) -> TermId {
        if offset == 0 {
            return base;
        }
        let off = self.constant(offset as u64);
        self.alu(AluOp::Add, base, off)
    }

    /// If `t` is `and(x, mask)`, returns `x` — the raw address under an
    /// SFI mask application. `None` otherwise.
    pub fn strip_mask(&self, t: TermId, mask: TermId) -> Option<TermId> {
        match self.get(t) {
            Term::Alu {
                op: AluOp::And,
                a,
                b,
            } if b == mask => Some(a),
            _ => None,
        }
    }
}

/// The kind of a symbolic memory event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemKind {
    /// A load (its value entered the register file as a [`Term::Read`]).
    Load,
    /// A store (`value` carries the stored term).
    Store,
    /// A software prefetch (no architectural effect; tracked for the
    /// consuming-load obligation).
    Prefetch,
}

/// One memory access the block performed, in program order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemEvent {
    /// PC of the access in the evaluated program.
    pub pc: usize,
    /// Load, store or prefetch.
    pub kind: MemKind,
    /// Normalized effective-address term (SFI masks stripped when a
    /// mask term was supplied).
    pub addr: TermId,
    /// The stored value ([`MemKind::Store`] only).
    pub value: Option<TermId>,
    /// `true` when the base register's term carried the SFI mask
    /// pattern `and(x, mask)` — the maskedness obligation witness.
    pub masked: bool,
}

/// One yield the block passed, in program order. Yields are
/// architectural no-ops to the evaluator (the executor saves and
/// restores the context around them); they are recorded so the checker
/// can discharge their save-mask obligations separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SymYield {
    /// PC of the yield.
    pub pc: usize,
    /// Yield kind.
    pub kind: YieldKind,
    /// Declared save mask.
    pub save_regs: Option<u32>,
}

/// How the evaluated range ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymExit {
    /// Ran off the end of the range without a terminator (falls through
    /// to the next block).
    Fallthrough,
    /// A branch. `src` is the condition operand's term (`None` for
    /// [`Cond::Always`], whose operand is architecturally ignored).
    Branch {
        /// Branch condition.
        cond: Cond,
        /// Condition operand term, when the condition reads it.
        src: Option<TermId>,
        /// Absolute target PC (in the evaluated program's image).
        target: usize,
    },
    /// A call to `target` (the return point is the instruction after
    /// the call).
    Call {
        /// Absolute callee entry PC.
        target: usize,
    },
    /// Return to the caller — every register is caller-observable here.
    Ret,
    /// Successful termination — the final context is observable.
    Halt,
}

/// The result of symbolically executing one block.
#[derive(Clone, Debug)]
pub struct BlockRun {
    /// Final register terms.
    pub regs: [TermId; NUM_REGS],
    /// Memory events in program order.
    pub mem: Vec<MemEvent>,
    /// Yields passed, in program order.
    pub yields: Vec<SymYield>,
    /// How the range ended.
    pub exit: SymExit,
    /// PC of the terminator (or one past the last executed instruction
    /// for [`SymExit::Fallthrough`]) — the diagnostic anchor.
    pub exit_pc: usize,
}

/// Symbolically executes `prog[range]` from the register state `entry`,
/// stopping at the first terminator.
///
/// `sfi_mask` enables SFI address normalization: when the base register
/// of an access holds `and(x, sfi_mask)`, the access is keyed by the
/// *raw* address `x` and flagged [`MemEvent::masked`]. Applying it to
/// both programs of a pair makes a masked rewrite's reads produce the
/// same terms as the original's raw reads, turning "equivalent modulo
/// sandboxing" into plain term equality while keeping the maskedness
/// obligation checkable.
pub fn sym_exec_range(
    prog: &Program,
    range: Range<usize>,
    entry: &[TermId; NUM_REGS],
    pool: &mut TermPool,
    sfi_mask: Option<TermId>,
) -> BlockRun {
    let mut regs = *entry;
    let mut mem: Vec<MemEvent> = Vec::new();
    let mut yields: Vec<SymYield> = Vec::new();
    let mut version = 0u32;

    let access = |pool: &mut TermPool, base: TermId, offset: i64| -> (TermId, bool) {
        match sfi_mask.and_then(|m| pool.strip_mask(base, m)) {
            Some(raw) => (pool.eff_addr(raw, offset), true),
            None => (pool.eff_addr(base, offset), false),
        }
    };

    for pc in range.clone() {
        match &prog.insts[pc] {
            Inst::Imm { dst, val } => {
                regs[dst.index()] = pool.constant(*val);
            }
            Inst::Alu {
                op,
                dst,
                src1,
                src2,
                ..
            } => {
                regs[dst.index()] = pool.alu(*op, regs[src1.index()], regs[src2.index()]);
            }
            Inst::Load { dst, addr, offset } => {
                let (a, masked) = access(pool, regs[addr.index()], *offset);
                mem.push(MemEvent {
                    pc,
                    kind: MemKind::Load,
                    addr: a,
                    value: None,
                    masked,
                });
                regs[dst.index()] = pool.intern(Term::Read { addr: a, version });
            }
            Inst::Store { src, addr, offset } => {
                let (a, masked) = access(pool, regs[addr.index()], *offset);
                mem.push(MemEvent {
                    pc,
                    kind: MemKind::Store,
                    addr: a,
                    value: Some(regs[src.index()]),
                    masked,
                });
                version += 1;
            }
            Inst::Prefetch { addr, offset } => {
                let (a, masked) = access(pool, regs[addr.index()], *offset);
                mem.push(MemEvent {
                    pc,
                    kind: MemKind::Prefetch,
                    addr: a,
                    value: None,
                    masked,
                });
            }
            Inst::Yield { kind, save_regs } => {
                yields.push(SymYield {
                    pc,
                    kind: *kind,
                    save_regs: *save_regs,
                });
            }
            Inst::Branch { cond, src, target } => {
                let src = if *cond == Cond::Always {
                    None
                } else {
                    Some(regs[src.index()])
                };
                return BlockRun {
                    regs,
                    mem,
                    yields,
                    exit: SymExit::Branch {
                        cond: *cond,
                        src,
                        target: *target,
                    },
                    exit_pc: pc,
                };
            }
            Inst::Call { target } => {
                return BlockRun {
                    regs,
                    mem,
                    yields,
                    exit: SymExit::Call { target: *target },
                    exit_pc: pc,
                };
            }
            Inst::Ret => {
                return BlockRun {
                    regs,
                    mem,
                    yields,
                    exit: SymExit::Ret,
                    exit_pc: pc,
                };
            }
            Inst::Halt => {
                return BlockRun {
                    regs,
                    mem,
                    yields,
                    exit: SymExit::Halt,
                    exit_pc: pc,
                };
            }
        }
    }
    BlockRun {
        regs,
        mem,
        yields,
        exit: SymExit::Fallthrough,
        exit_pc: range.end,
    }
}

/// The shared entry register state for a cut point: registers in
/// `equal` (a bitmask) get the side-agnostic [`Term::Entry`]; the rest
/// get [`Term::Diverged`] for `side`, so unproven registers can never
/// accidentally compare equal downstream.
pub fn entry_state(pool: &mut TermPool, equal: u32, side: u8) -> [TermId; NUM_REGS] {
    std::array::from_fn(|r| {
        if equal & (1 << r) != 0 {
            pool.intern(Term::Entry { reg: r as u8 })
        } else {
            pool.intern(Term::Diverged { side, reg: r as u8 })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::isa::{ProgramBuilder, Reg};

    #[test]
    fn constant_folding_matches_machine_semantics() {
        let mut p = TermPool::new();
        let a = p.constant(7);
        let b = p.constant(0);
        let div = p.alu(AluOp::Div, a, b);
        assert_eq!(p.get(div), Term::Const(u64::MAX));
        let rem = p.alu(AluOp::Rem, a, b);
        assert_eq!(p.get(rem), Term::Const(7));
        let c = p.constant(u64::MAX);
        let one = p.constant(1);
        let wrap = p.alu(AluOp::Add, c, one);
        assert_eq!(p.get(wrap), Term::Const(0));
    }

    #[test]
    fn or_self_is_identity() {
        // `or r, x, x` is how elide.rs turns a yield into a no-op; the
        // algebra must see through it.
        let mut p = TermPool::new();
        let x = p.intern(Term::Entry { reg: 3 });
        assert_eq!(p.alu(AluOp::Or, x, x), x);
        assert_eq!(p.alu(AluOp::And, x, x), x);
        let zero = p.constant(0);
        assert_eq!(p.alu(AluOp::Add, x, zero), x);
    }

    #[test]
    fn hash_consing_dedups() {
        let mut p = TermPool::new();
        let a = p.constant(42);
        let b = p.constant(42);
        assert_eq!(a, b);
        let x = p.intern(Term::Entry { reg: 1 });
        let t1 = p.alu(AluOp::Add, x, a);
        let t2 = p.alu(AluOp::Add, x, b);
        assert_eq!(t1, t2);
    }

    #[test]
    fn straightline_block_produces_expected_events() {
        let mut b = ProgramBuilder::new("s");
        b.imm(Reg(1), 8);
        b.load(Reg(2), Reg(0), 16);
        b.store(Reg(2), Reg(0), 24);
        b.halt();
        let prog = b.finish().unwrap();
        let mut pool = TermPool::new();
        let entry = entry_state(&mut pool, u32::MAX, 0);
        let run = sym_exec_range(&prog, 0..prog.len(), &entry, &mut pool, None);
        assert_eq!(run.exit, SymExit::Halt);
        assert_eq!(run.exit_pc, 3);
        assert_eq!(run.mem.len(), 2);
        assert_eq!(run.mem[0].kind, MemKind::Load);
        assert_eq!(run.mem[1].kind, MemKind::Store);
        // The store writes exactly what the load read.
        assert_eq!(run.mem[1].value, Some(run.regs[2]));
        assert!(matches!(pool.get(run.regs[2]), Term::Read { .. }));
        // r1 folded to a constant.
        assert_eq!(pool.get(run.regs[1]), Term::Const(8));
    }

    #[test]
    fn yields_are_recorded_but_change_nothing() {
        let mut b = ProgramBuilder::new("y");
        b.imm(Reg(1), 5);
        b.push(Inst::Yield {
            kind: YieldKind::Primary,
            save_regs: Some(0b10),
        });
        b.halt();
        let prog = b.finish().unwrap();
        let mut pool = TermPool::new();
        let entry = entry_state(&mut pool, u32::MAX, 0);
        let run = sym_exec_range(&prog, 0..prog.len(), &entry, &mut pool, None);
        assert_eq!(run.yields.len(), 1);
        assert_eq!(run.yields[0].save_regs, Some(0b10));
        assert_eq!(pool.get(run.regs[1]), Term::Const(5));
    }

    #[test]
    fn sfi_mask_stripping_normalizes_access_keys() {
        // and r27, r0, r26 ; load r4, [r27+8]  — with the mask term
        // supplied, the read keys by the *raw* r0 + 8 and is flagged
        // masked.
        let mut b = ProgramBuilder::new("sfi");
        b.alu(AluOp::And, Reg(27), Reg(0), Reg(26), 1);
        b.load(Reg(4), Reg(27), 8);
        b.halt();
        let prog = b.finish().unwrap();
        let mut pool = TermPool::new();
        let entry = entry_state(&mut pool, u32::MAX, 1);
        let mask = entry[26];
        let run = sym_exec_range(&prog, 0..prog.len(), &entry, &mut pool, Some(mask));
        assert!(run.mem[0].masked);
        let raw = entry[0];
        let want = pool.eff_addr(raw, 8);
        assert_eq!(run.mem[0].addr, want);
    }
}

//! Software-based fault isolation (SFI) — §4.2's coroutine-isolation
//! discussion, made concrete.
//!
//! "SFI establishes a logical protection domain by inserting dynamic
//! checks before memory and control-transfer instructions [58, 65, 69]."
//! This pass implements classic sandboxing by address masking: every load
//! and store first ANDs its effective base into a scratch register with a
//! domain mask, and the access is rewritten to go through the masked
//! register. For programs whose addresses already lie inside the domain
//! the transformation is semantics-preserving — it only costs the check,
//! which is the quantity §4.2's co-design question ("can a co-design of
//! SFI and our proposal help reduce the runtime overhead of SFI?") is
//! about. Experiment T16 measures that cost with and without miss hiding.
//!
//! The pass must run *before* yield instrumentation: primary prefetches
//! read the load's address register, and masking rewrites which register
//! that is.

use crate::rewrite::{insert_before, Insertion, PcMap, RewriteError};
use reach_sim::isa::{AluOp, Inst, Program, Reg};

/// Register holding the domain mask; seeded by the runtime before entry.
pub const R_SFI_MASK: Reg = Reg(26);
/// Scratch register receiving the masked address.
pub const R_SFI_ADDR: Reg = Reg(27);

/// Report from the SFI pass.
#[derive(Clone, Debug)]
pub struct SfiReport {
    /// Memory operations guarded (loads + stores).
    pub guarded: usize,
    /// PC map from the input program.
    pub pc_map: PcMap,
}

/// Inserts an address-masking check before every load and store and
/// reroutes the access through [`R_SFI_ADDR`].
///
/// The offset stays on the access itself (real SFI leaves the domain a
/// guard zone for bounded displacements).
///
/// # Errors
///
/// Propagates rewriting errors (none occur for valid programs).
pub fn instrument_sfi(prog: &Program) -> Result<(Program, SfiReport), RewriteError> {
    // 1. Insert the masking op before every memory access.
    let mut insertions = Vec::new();
    for (pc, inst) in prog.insts.iter().enumerate() {
        let addr = match inst {
            Inst::Load { addr, .. } | Inst::Store { addr, .. } | Inst::Prefetch { addr, .. } => {
                *addr
            }
            _ => continue,
        };
        insertions.push(Insertion {
            at_pc: pc,
            insts: vec![Inst::Alu {
                op: AluOp::And,
                dst: R_SFI_ADDR,
                src1: addr,
                src2: R_SFI_MASK,
                lat: 1,
            }],
        });
    }
    let guarded = insertions.len();
    let (mut new_prog, pc_map) = insert_before(prog, insertions)?;

    // 2. Reroute each guarded access through the masked register.
    for &old_pc in pc_map.origin.iter().flatten().collect::<Vec<_>>().iter() {
        let new_pc = pc_map.new_of[*old_pc];
        match &mut new_prog.insts[new_pc] {
            Inst::Load { addr, .. } | Inst::Store { addr, .. } | Inst::Prefetch { addr, .. } => {
                *addr = R_SFI_ADDR;
            }
            _ => {}
        }
    }
    new_prog
        .validate()
        .map_err(|e| RewriteError::Invalid(e.to_string()))?;
    Ok((new_prog, SfiReport { guarded, pc_map }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reach_sim::isa::{Cond, ProgramBuilder};
    use reach_sim::{Context, Machine, MachineConfig};

    fn chase_prog() -> Program {
        let mut b = ProgramBuilder::new("chase");
        let top = b.label();
        b.bind(top);
        b.load(Reg(4), Reg(0), 0);
        b.alu(AluOp::Or, Reg(0), Reg(4), Reg(4), 1);
        b.alu(AluOp::Sub, Reg(1), Reg(1), Reg(6), 1);
        b.branch(Cond::Nez, Reg(1), top);
        b.halt();
        b.finish().unwrap()
    }

    fn run(prog: &Program, mask: u64) -> (u64, u64) {
        let mut m = Machine::new(MachineConfig::default());
        m.mem.write(0x1000, 0x2000).unwrap();
        m.mem.write(0x2000, 0).unwrap();
        let mut ctx = Context::new(0);
        ctx.set_reg(Reg(0), 0x1000);
        ctx.set_reg(Reg(1), 2);
        ctx.set_reg(Reg(6), 1);
        ctx.set_reg(R_SFI_MASK, mask);
        m.run_to_completion(prog, &mut ctx, 10_000).unwrap();
        (ctx.reg(Reg(0)), m.counters.busy_cycles)
    }

    #[test]
    fn sfi_preserves_in_domain_semantics() {
        let p = chase_prog();
        let (q, rep) = instrument_sfi(&p).unwrap();
        assert_eq!(rep.guarded, 1);
        let full_mask = u64::MAX;
        assert_eq!(run(&p, full_mask).0, run(&q, full_mask).0);
    }

    #[test]
    fn sfi_rewrites_accesses_through_the_masked_register() {
        let p = chase_prog();
        let (q, _) = instrument_sfi(&p).unwrap();
        // Masking ALU precedes the load; the load reads R_SFI_ADDR.
        assert!(matches!(
            q.insts[0],
            Inst::Alu {
                op: AluOp::And,
                dst: R_SFI_ADDR,
                ..
            }
        ));
        assert!(matches!(
            q.insts[1],
            Inst::Load {
                addr: R_SFI_ADDR,
                ..
            }
        ));
    }

    #[test]
    fn sfi_actually_confines_addresses() {
        // A malicious mask... rather, a confining mask redirects the
        // out-of-domain pointer 0x2000 to 0x0000 within the 0x1FFF domain:
        // the chase reads 0 (untouched memory) and terminates immediately.
        let p = chase_prog();
        let (q, _) = instrument_sfi(&p).unwrap();
        let (end, _) = run(&q, 0x1FF8);
        assert_eq!(end, 0, "masked walk never leaves the domain");
    }

    #[test]
    fn sfi_costs_cycles() {
        let p = chase_prog();
        let (q, _) = instrument_sfi(&p).unwrap();
        let (_, busy0) = run(&p, u64::MAX);
        let (_, busy1) = run(&q, u64::MAX);
        assert!(
            busy1 > busy0,
            "each guard costs a cycle: {busy1} vs {busy0}"
        );
    }

    #[test]
    fn sfi_composes_with_stores_and_prefetches() {
        let mut b = ProgramBuilder::new("sp");
        b.prefetch(Reg(0), 0);
        b.load(Reg(2), Reg(0), 0);
        b.store(Reg(2), Reg(1), 8);
        b.halt();
        let p = b.finish().unwrap();
        let (q, rep) = instrument_sfi(&p).unwrap();
        assert_eq!(rep.guarded, 3);
        // Every memory op now goes through the masked register.
        for inst in &q.insts {
            if let Inst::Load { addr, .. }
            | Inst::Store { addr, .. }
            | Inst::Prefetch { addr, .. } = inst
            {
                assert_eq!(*addr, R_SFI_ADDR);
            }
        }
    }
}
